#ifndef HATTRICK_TOOLS_FLAGS_H_
#define HATTRICK_TOOLS_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace hattrick {
namespace tools {

/// Minimal --key=value / --key value / --flag command-line parser for the
/// CLI tools (no external dependencies).
class Flags {
 public:
  /// Parses argv; unknown positional arguments are collected in order.
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                     0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool Has(const std::string& key) const {
    return values_.count(key) > 0;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int GetInt(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

  /// GetInt clamped to [lo, hi] — for knobs with a valid range (e.g.
  /// --dop, where 0 or a negative value would be meaningless).
  int GetBoundedInt(const std::string& key, int fallback, int lo,
                    int hi) const {
    const int v = GetInt(key, fallback);
    return v < lo ? lo : (v > hi ? hi : v);
  }

  /// GetInt for strictly positive knobs (e.g. --batch-size): 0, negative,
  /// and unparsable values are rejected in favor of `fallback`.
  int GetPositiveInt(const std::string& key, int fallback) const {
    const int v = GetInt(key, fallback);
    return v < 1 ? fallback : v;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tools
}  // namespace hattrick

#endif  // HATTRICK_TOOLS_FLAGS_H_
