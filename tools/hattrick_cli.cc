// hattrick_cli — run the HATtrick benchmark from the command line.
//
// Modes (as --mode=<m> or the first positional argument):
//   point    run one (T, A) operating point and print its metrics
//   frontier run the full saturation method and print grid + frontier
//   sweep    sweep A-clients at a fixed T (one fixed-T line)
//   query    run analytical queries standalone, with EXPLAIN ANALYZE
//
// Examples:
//   hattrick_cli --mode=point --system=postgres --sf=10 --t=8 --a=4
//   hattrick_cli --mode=frontier --system=postgres-sr --sf=100
//   hattrick_cli --mode=sweep --system=tidb --sf=10 --t=4 --max_a=12
//   hattrick_cli point --system shared --trace-out=/tmp/t.json
//       --metrics-out=/tmp/m.json   (continuation of the previous line)
//   hattrick_cli query --system=system-x --sf=10 --query=Q1.1 --explain
//   hattrick_cli query --query=all --dop=4 --profile-out=/tmp/profiles.json
//
// Flags:
//   --system    postgres | postgres-rc | postgres-sr | postgres-sr-ra |
//               system-x | tidb | tidb-dist            (default postgres)
//               design-class aliases: shared -> postgres,
//               isolated -> postgres-sr, hybrid -> system-x
//   --sf        scale factor                           (default 1)
//   --schema    none | semi | all                      (default per system)
//   --t, --a    client counts for --mode=point         (default 4 / 2)
//   --warmup, --measure   period lengths in virtual s  (default 0.25 / 1)
//   --seed      workload seed                          (default 7)
//   --lines, --points, --max_clients   frontier options
//   --rows_per_sf  lineorders per SF unit              (default 2000)
//   --threaded  use wall-clock threads instead of the simulator (point)
//   --dop       intra-query parallelism per A-client   (default 1)
//   --batch-size  rows per column-vector batch in the vectorized
//               executor (default 1024; values < 1 are rejected and
//               fall back to the default)
//   --row-exec  row-at-a-time oracle executor instead of vectorized
//               batches (same results and metered work; for A/B runs)
//   --shards    shard count for --system=tidb-dist with the sharded
//               distribution model (default: HATTRICK_SHARDS env, else 3;
//               ignored by single-node systems)
//   --dist-model  sharded | surcharge — how tidb-dist models
//               distribution: a real N-shard engine with 2PC and
//               per-shard replication, or the legacy flat latency
//               surcharge (default: HATTRICK_DIST_MODEL env, else
//               sharded)
//   --merge-mode  eager | bitmap — hybrid engines' delta visibility:
//               eager merges the delta before every analytical query
//               (the paper's protocol), bitmap serves analytics from
//               CSN-stamped version snapshots with background folds
//               (default: HATTRICK_MERGE_MODE env, else eager; ignored
//               by non-hybrid systems)
//   --fault-profile  none | drop | duplicate | reorder | crash | delay |
//               chaos — replication fault injection (isolated systems
//               only; default none)
//   --fault-seed     fault schedule seed               (default 1)
//   --trace-out    write the run's span trace (point and query modes).
//                  ".csv" writes a flat CSV; anything else writes Chrome
//                  trace-event JSON loadable in Perfetto / chrome://tracing.
//                  In query mode the trace holds per-operator spans.
//   --metrics-out  write the run's metrics snapshot (point mode), JSON or
//                  CSV by extension as above.
//   --query     which query to run in query mode: a name ("Q1.1"), an id
//               (0..12), or "all" (default)
//   --explain   print each query's EXPLAIN ANALYZE operator tree (query
//               mode): rows, batches, selection density, zone-map blocks
//               pruned vs scanned, snapshot lanes, work-meter units, time
//   --profile-out  write the per-query profiles as deterministic JSON
//               ({"profiles":[...]}; timing fields are wall-clock, the
//               digest covers only shape + metered counters)
//   --txns      apply N seeded transactions before profiling (query
//               mode) so scans have a delta: with --merge-mode=bitmap
//               the --explain lanes show the override/insert rows the
//               snapshot reads; eager merges them first

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/support.h"
#include "common/rng.h"
#include "exec/batch.h"
#include "hattrick/transactions.h"
#include "obs/trace.h"
#include "tools/flags.h"

namespace hattrick {
namespace tools {
namespace {

using bench::EngineKind;

bool ParseSystem(const std::string& name, EngineKind* kind) {
  static const std::pair<const char*, EngineKind> kSystems[] = {
      {"postgres", EngineKind::kPostgres},
      {"postgres-rc", EngineKind::kPostgresRC},
      {"postgres-sr", EngineKind::kPostgresSR},
      {"postgres-sr-ra", EngineKind::kPostgresSRRA},
      {"system-x", EngineKind::kSystemX},
      {"tidb", EngineKind::kTidb},
      {"tidb-dist", EngineKind::kTidbDist},
      // Design-class aliases (Section 2.2 of the paper).
      {"shared", EngineKind::kPostgres},
      {"isolated", EngineKind::kPostgresSR},
      {"hybrid", EngineKind::kSystemX},
  };
  for (const auto& [key, value] : kSystems) {
    if (name == key) {
      *kind = value;
      return true;
    }
  }
  return false;
}

PhysicalSchema DefaultSchema(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPostgres:
    case EngineKind::kPostgresRC:
    case EngineKind::kPostgresSR:
    case EngineKind::kPostgresSRRA:
      return PhysicalSchema::kAllIndexes;
    default:
      return PhysicalSchema::kSemiIndexes;  // hybrid: T indexes only
  }
}

bool ParseSchema(const std::string& name, PhysicalSchema* schema) {
  if (name == "none") {
    *schema = PhysicalSchema::kNoIndexes;
  } else if (name == "semi") {
    *schema = PhysicalSchema::kSemiIndexes;
  } else if (name == "all") {
    *schema = PhysicalSchema::kAllIndexes;
  } else {
    return false;
  }
  return true;
}

void PrintPoint(const RunMetrics& metrics) {
  std::printf("t_throughput_tps,%.2f\n", metrics.t_throughput);
  std::printf("a_throughput_qps,%.3f\n", metrics.a_throughput);
  std::printf("committed,%llu\n",
              static_cast<unsigned long long>(metrics.committed));
  std::printf("aborts,%llu\n",
              static_cast<unsigned long long>(metrics.aborts));
  std::printf("failed,%llu\n",
              static_cast<unsigned long long>(metrics.failed));
  std::printf("queries,%llu\n",
              static_cast<unsigned long long>(metrics.queries));
  if (!metrics.txn_latency.empty()) {
    const LatencySummary tail = Summarize(metrics.txn_latency);
    std::printf("txn_latency_ms_p50,%.4f\n", tail.p50 * 1e3);
    std::printf("txn_latency_ms_p95,%.4f\n", tail.p95 * 1e3);
    std::printf("txn_latency_ms_p99,%.4f\n", tail.p99 * 1e3);
  }
  for (int t = 0; t < 3; ++t) {
    const Sampler& sampler = metrics.txn_latency_by_type[t];
    if (!sampler.empty()) {
      std::printf("txn_latency_ms_mean_%s,%.4f\n",
                  TxnTypeName(static_cast<TxnType>(t)),
                  sampler.Mean() * 1e3);
    }
  }
  if (!metrics.query_latency.empty()) {
    const LatencySummary tail = Summarize(metrics.query_latency);
    std::printf("query_latency_ms_p50,%.3f\n", tail.p50 * 1e3);
    std::printf("query_latency_ms_p95,%.3f\n", tail.p95 * 1e3);
    std::printf("query_latency_ms_p99,%.3f\n", tail.p99 * 1e3);
  }
  for (int q = 0; q < kNumQueries; ++q) {
    const Sampler& sampler = metrics.query_latency_by_id[q];
    if (!sampler.empty()) {
      std::printf("query_latency_ms_mean_%s,%.3f\n", QueryName(q),
                  sampler.Mean() * 1e3);
    }
  }
  if (!metrics.freshness.empty()) {
    std::printf("freshness_s_p50,%.5f\n",
                metrics.freshness.Percentile(0.5));
    std::printf("freshness_s_p99,%.5f\n",
                metrics.freshness.Percentile(0.99));
    std::printf("freshness_fresh_fraction,%.4f\n",
                metrics.freshness.CdfAt(1e-3));
  }
}

/// Writes `content` to `path`; returns false (with a message on stderr)
/// on failure.
bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

bool WantsCsv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hattrick_cli --mode=point|frontier|sweep|query "
               "--system=<name> [--sf=N] [--t=N --a=N] ...\n"
               "see the header of tools/hattrick_cli.cc for all flags\n");
  return 2;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string mode = flags.positional().empty()
                               ? flags.GetString("mode", "point")
                               : flags.positional().front();

  EngineKind kind;
  if (!ParseSystem(flags.GetString("system", "postgres"), &kind)) {
    std::fprintf(stderr, "unknown --system\n");
    return Usage();
  }
  PhysicalSchema schema = DefaultSchema(kind);
  if (flags.Has("schema") &&
      !ParseSchema(flags.GetString("schema", ""), &schema)) {
    std::fprintf(stderr, "unknown --schema\n");
    return Usage();
  }
  const double sf = flags.GetDouble("sf", 1.0);

  FaultConfig fault;
  if (flags.Has("fault-profile")) {
    StatusOr<FaultConfig> parsed = MakeFaultProfile(
        flags.GetString("fault-profile", "none"),
        static_cast<uint64_t>(flags.GetInt("fault-seed", 1)));
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --fault-profile: %s\n",
                   parsed.status().message().c_str());
      return Usage();
    }
    fault = std::move(parsed).value();
  }

  MergeMode merge_mode = DefaultMergeMode();
  if (flags.Has("merge-mode")) {
    const std::string mode_name = flags.GetString("merge-mode", "eager");
    if (mode_name == "eager") {
      merge_mode = MergeMode::kEager;
    } else if (mode_name == "bitmap") {
      merge_mode = MergeMode::kBitmap;
    } else {
      std::fprintf(stderr, "unknown --merge-mode\n");
      return Usage();
    }
  }

  bench::DistModel dist_model = bench::DefaultDistModel();
  if (flags.Has("dist-model") &&
      !bench::ParseDistModel(flags.GetString("dist-model", "sharded"),
                             &dist_model)) {
    std::fprintf(stderr, "unknown --dist-model (sharded or surcharge)\n");
    return Usage();
  }
  uint32_t shards = bench::DefaultShards();
  if (flags.Has("shards")) {
    shards = static_cast<uint32_t>(flags.GetBoundedInt("shards", 3, 1, 64));
  }

  std::printf("# system=%s sf=%.1f schema=%s\n",
              bench::EngineKindName(kind), sf, PhysicalSchemaName(schema));
  if (kind == EngineKind::kTidbDist) {
    std::printf("# dist-model=%s shards=%u\n",
                dist_model == bench::DistModel::kSharded ? "sharded"
                                                         : "surcharge",
                shards);
  }
  if (merge_mode == MergeMode::kBitmap) {
    std::printf("# merge-mode=bitmap\n");
  }
  if (fault.enabled) {
    std::printf("# fault profile=%s seed=%llu\n", fault.profile.c_str(),
                static_cast<unsigned long long>(fault.seed));
  }
  std::printf("# loading...\n");
  std::fflush(stdout);
  bench::BenchEnv env =
      bench::MakeEnv(kind, sf, schema, fault, merge_mode, dist_model, shards);
  std::printf("# loaded %zu lineorders\n", env.dataset.lineorder.size());

  WorkloadConfig base;
  base.warmup_seconds = flags.GetDouble("warmup", 0.25);
  base.measure_seconds = flags.GetDouble("measure", 1.0);
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  base.dop = flags.GetBoundedInt("dop", 1, 1, 64);
  base.vectorized = !flags.GetBool("row-exec", false);
  if (flags.Has("batch-size")) {
    base.batch_rows =
        flags.GetPositiveInt("batch-size", static_cast<int>(kDefaultBatchRows));
  }

  if (mode == "point") {
    base.t_clients = flags.GetInt("t", 4);
    base.a_clients = flags.GetInt("a", 2);
    const std::string trace_out = flags.GetString("trace-out", "");
    const std::string metrics_out = flags.GetString("metrics-out", "");
    obs::Tracer tracer;
    RunMetrics metrics;
    if (flags.GetBool("threaded", false)) {
      ThreadedDriver threaded(env.engine.get(), env.context.get());
      if (!trace_out.empty()) threaded.SetTracer(&tracer);
      metrics = threaded.Run(base);
    } else {
      if (!trace_out.empty()) env.driver->SetTracer(&tracer);
      metrics = env.driver->Run(base);
      env.driver->SetTracer(nullptr);
    }
    PrintPoint(metrics);
    if (!trace_out.empty()) {
      const std::string body =
          WantsCsv(trace_out) ? tracer.ToCsv() : tracer.ToChromeJson();
      if (!WriteFile(trace_out, body)) return 1;
      std::printf("# trace: %zu spans (%llu dropped) -> %s\n", tracer.size(),
                  static_cast<unsigned long long>(tracer.dropped()),
                  trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      const std::string body = WantsCsv(metrics_out)
                                   ? metrics.observed.ToCsv()
                                   : metrics.observed.ToJson();
      if (!WriteFile(metrics_out, body)) return 1;
      std::printf("# metrics: %zu entries -> %s\n",
                  metrics.observed.entries.size(), metrics_out.c_str());
    }
    return 0;
  }
  if (mode == "query") {
    const std::string which = flags.GetString("query", "all");
    std::vector<int> qids;
    if (which == "all") {
      for (int q = 0; q < kNumQueries; ++q) qids.push_back(q);
    } else {
      int qid = -1;
      for (int q = 0; q < kNumQueries; ++q) {
        if (which == QueryName(q)) qid = q;
      }
      if (qid < 0 && !which.empty() &&
          which.find_first_not_of("0123456789") == std::string::npos) {
        const int parsed = std::atoi(which.c_str());
        if (parsed >= 0 && parsed < kNumQueries) qid = parsed;
      }
      if (qid < 0) {
        std::fprintf(stderr,
                     "unknown --query (use Q1.1..Q4.3, 0..12, or all)\n");
        return Usage();
      }
      qids.push_back(qid);
    }
    const bool explain = flags.GetBool("explain", false);
    const std::string profile_out = flags.GetString("profile-out", "");
    const std::string trace_out = flags.GetString("trace-out", "");
    // Apply a burst of transactions before profiling so the scans have a
    // delta to show: on the hybrid designs, --merge-mode=eager then
    // merges it before the query while bitmap mode reads it through the
    // override/insert snapshot lanes (visible in --explain).
    const int txns = flags.GetInt("txns", 0);
    if (txns > 0) {
      const EngineHandles handles = EngineHandles::Resolve(
          *env.engine->primary_catalog(), env.context->num_freshness_tables);
      Rng rng(base.seed);
      uint64_t committed = 0;
      for (int i = 0; i < txns; ++i) {
        const TxnParams params = GenerateTxnParams(env.context.get(), &rng);
        WorkMeter txn_meter;
        const uint32_t client =
            1 + static_cast<uint32_t>(i) % env.context->num_freshness_tables;
        if (env.engine
                ->ExecuteTransaction(
                    MakeTxnBody(params, handles, client, i + 1), client,
                    i + 1, &txn_meter)
                .status.ok()) {
          ++committed;
        }
      }
      std::printf("# txns: %llu/%d committed\n",
                  static_cast<unsigned long long>(committed), txns);
    }
    WallClock clock;
    obs::Tracer tracer;
    std::string profiles_json = "{\"profiles\":[";
    std::printf("# query,rows,work_units,time_ms,digest\n");
    for (size_t k = 0; k < qids.size(); ++k) {
      const int qid = qids[k];
      WorkMeter meter;
      AnalyticsSession session = env.engine->BeginAnalytics(&meter);
      ExecContext ctx;
      ctx.meter = &meter;
      ctx.dop = base.dop;
      ctx.dynamic_morsels = true;  // wall-clock: balance via stealing
      ctx.vectorized = base.vectorized;
      if (base.batch_rows > 0) {
        ctx.batch_rows = static_cast<size_t>(base.batch_rows);
      }
      ctx.session_pin = session.guard;
      obs::PlanProfile profile(&clock);
      ctx.profile = &profile;
      const double t0 = clock.Now();
      const QueryResult result = RunQuery(
          qid, *session.source, env.context->num_freshness_tables, &ctx);
      const double elapsed = clock.Now() - t0;
      ctx.session_pin.reset();
      session.source.reset();
      session.guard.reset();
      std::printf("%s,%zu,%llu,%.3f,%s\n", QueryName(qid), result.rows,
                  static_cast<unsigned long long>(meter.Total()),
                  elapsed * 1e3, profile.Digest().c_str());
      if (explain) {
        std::printf("%s\n", profile.ToText().c_str());
      }
      if (!trace_out.empty()) {
        const uint32_t track =
            obs::kTrackAClientBase + static_cast<uint32_t>(qid);
        tracer.SetTrackName(track, QueryName(qid));
        profile.EmitSpans(&tracer, track);
      }
      if (!profile_out.empty()) {
        std::string one = profile.ToJson();
        while (!one.empty() && one.back() == '\n') one.pop_back();
        if (k > 0) profiles_json += ",";
        profiles_json += one;
      }
      std::fflush(stdout);
    }
    if (!profile_out.empty()) {
      profiles_json += "]}\n";
      if (!WriteFile(profile_out, profiles_json)) return 1;
      std::printf("# profiles: %zu queries -> %s\n", qids.size(),
                  profile_out.c_str());
    }
    if (!trace_out.empty()) {
      const std::string body =
          WantsCsv(trace_out) ? tracer.ToCsv() : tracer.ToChromeJson();
      if (!WriteFile(trace_out, body)) return 1;
      std::printf("# trace: %zu spans (%llu dropped) -> %s\n", tracer.size(),
                  static_cast<unsigned long long>(tracer.dropped()),
                  trace_out.c_str());
    }
    return 0;
  }
  if (mode == "frontier") {
    FrontierOptions options;
    options.lines = flags.GetInt("lines", 5);
    options.points_per_line = flags.GetInt("points", 5);
    options.max_clients = flags.GetInt("max_clients", 32);
    const GridGraph grid = BuildGridGraph(
        MakeRunner(env.driver.get(), base), options,
        [](const std::string& note) {
          std::fprintf(stderr, "%s\n", note.c_str());
        });
    PrintFrontierSummary(bench::EngineKindName(kind), grid);
    PrintGridCsv(bench::EngineKindName(kind), grid);
    const auto freshness = MeasureRatioFreshness(
        MakeRunner(env.driver.get(), base), grid.tau_max, grid.alpha_max);
    PrintRatioFreshness(bench::EngineKindName(kind), freshness);
    PlotFrontiers({bench::EngineKindName(kind)}, {&grid});
    return 0;
  }
  if (mode == "sweep") {
    const int t = flags.GetInt("t", 4);
    const int max_a = flags.GetInt("max_a", 8);
    std::printf("t_clients,a_clients,tps,qps,freshness_p99_s\n");
    for (int a = 0; a <= max_a; ++a) {
      base.t_clients = t;
      base.a_clients = a;
      const RunMetrics metrics = env.driver->Run(base);
      std::printf("%d,%d,%.1f,%.2f,%.5f\n", t, a, metrics.t_throughput,
                  metrics.a_throughput,
                  metrics.freshness.empty()
                      ? 0.0
                      : metrics.freshness.Percentile(0.99));
      std::fflush(stdout);
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace tools
}  // namespace hattrick

int main(int argc, char** argv) {
  return hattrick::tools::Main(argc, argv);
}
