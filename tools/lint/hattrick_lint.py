#!/usr/bin/env python3
"""hattrick-lint: determinism and locking-hygiene checks for the tree.

The simulator's core promise is that two runs with the same seed produce
byte-identical results. That promise is easy to break with one stray
wall-clock read or one iteration over an unordered container in an export
path, and such bugs only show up as flaky golden files months later. This
checker bans the foot-guns at review time instead:

  nondeterministic-time     wall-clock sources (time(), std::chrono::
                            system_clock / steady_clock / high_resolution_
                            clock) outside src/common/clock.h. All time
                            must flow through the injected Clock.
  nondeterministic-random   ambient randomness (std::rand, srand,
                            std::random_device, seeding from entropy)
                            outside src/common/rng.h. All randomness must
                            flow through the seeded Rng.
  raw-lock                  std synchronization primitives (<mutex>,
                            <shared_mutex>, std::lock_guard, .lock() /
                            .unlock(), ...) outside src/common/mutex.h.
                            The annotated wrappers there are the only way
                            to lock, so Clang thread-safety analysis sees
                            every acquisition.
  unordered-export          iteration over std::unordered_* in export /
                            snapshot translation units (obs exporters,
                            report, frontier). Hash ordering varies
                            run-to-run and across libstdc++ versions;
                            exports must use ordered containers or sort.
  assert-in-replication     assert() in src/replication/. NDEBUG builds
                            compile asserts out, silently changing
                            replication control flow between Debug and
                            Release; use Status returns or explicit
                            aborts instead.
  raw-cas                   compare_exchange_weak / _strong outside
                            src/txn/mvcc*. Hand-rolled CAS loops are
                            where the lock-free protocol bugs live; all
                            version-chain CAS goes through the audited
                            helpers in src/txn/mvcc.h (TryPushHead,
                            Unlink, the epoch manager).
  concrete-engine-include   #include of a concrete engine header
                            (engine/shared_engine.h, isolated_engine.h,
                            hybrid_engine.h) — either the quote or the
                            angle-bracket form — outside src/engine/ and
                            src/shard/. Everything above the engine layer
                            programs against the HtapEngine facade and
                            constructs through engine/engine_factory.h,
                            so engines stay swappable (and the sharded
                            engine slots in behind every caller).
  allow-without-reason      a `lint:allow(...)` escape with no same-line
                            justification after the closing paren. Every
                            suppression must say why, where it is, or the
                            next reader cannot tell a considered
                            exception from a silenced bug. This rule is
                            not itself suppressible — write the reason.

Escape hatch: a `// lint:allow(rule-name)` comment on the offending line
suppresses that rule for that line (comma-separate several rules). Use it
sparingly and say why on the same line — `allow-without-reason` enforces
the "say why" part.

Usage:
  hattrick_lint.py                 # lint the default tree (src/, tools/,
                                   # bench/)
  hattrick_lint.py FILE [FILE...]  # lint specific files (tests use this)
  hattrick_lint.py --list-rules

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)

# Directories scanned when no explicit files are given (repo-relative).
DEFAULT_SCAN_DIRS = ("src", "tools", "bench")
SOURCE_EXTENSIONS = (".cc", ".h")

# Files allowed to touch the banned primitives, keyed by rule
# (repo-relative, forward slashes).
ALLOWLIST = {
    "nondeterministic-time": {"src/common/clock.h", "src/common/clock.cc"},
    "nondeterministic-random": {"src/common/rng.h", "src/common/rng.cc"},
    "raw-lock": {"src/common/mutex.h"},
}

# Translation units whose output is part of a deterministic export or
# snapshot (golden-file surface). Hash-ordered iteration here produces
# run-to-run diffs.
EXPORT_PATHS = {
    "src/obs/metrics.cc",
    "src/obs/metrics.h",
    "src/obs/trace.cc",
    "src/obs/trace.h",
    "src/hattrick/report.cc",
    "src/hattrick/report.h",
    "src/hattrick/frontier.cc",
    "src/hattrick/frontier.h",
}

ALLOW_RE = re.compile(r"lint:allow\(([a-zA-Z0-9_,\s-]+)\)")


class Rule:
    def __init__(self, name, pattern, message, applies, use_raw=False,
                 raw_needs_hash=True, suppressible=True):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.applies = applies  # callable(rel_path) -> bool
        # Match against the raw line instead of the comment/string-blanked
        # one. Needed for rules that target quoted #include paths, which
        # the blanking pass erases; guarded (raw_needs_hash) so
        # comment-only lines (no surviving '#') never fire. Rules that
        # target comment *markers* themselves (allow-without-reason) drop
        # the guard.
        self.use_raw = use_raw
        self.raw_needs_hash = raw_needs_hash
        # lint:allow(<this rule>) suppresses the finding, except for rules
        # policing the allow markers themselves.
        self.suppressible = suppressible


def _outside_allowlist(rule_name):
    allowed = ALLOWLIST.get(rule_name, set())
    return lambda rel: rel not in allowed


RULES = [
    Rule(
        "nondeterministic-time",
        r"\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b"
        r"|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\blocaltime\s*\(",
        "wall-clock read; inject a Clock (src/common/clock.h) instead",
        _outside_allowlist("nondeterministic-time"),
    ),
    Rule(
        "nondeterministic-random",
        r"\bstd::rand\b|(?<![\w:])srand\s*\(|\bstd::random_device\b"
        r"|\brandom_device\s*\{",
        "ambient randomness; use the seeded Rng (src/common/rng.h) instead",
        _outside_allowlist("nondeterministic-random"),
    ),
    Rule(
        "raw-lock",
        r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
        r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
        r"scoped_lock)\b"
        r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
        r"|\.\s*(lock|unlock|try_lock|lock_shared|unlock_shared)\s*\(\s*\)",
        "raw std synchronization; use the annotated wrappers in "
        "src/common/mutex.h so thread-safety analysis sees the acquisition",
        _outside_allowlist("raw-lock"),
    ),
    Rule(
        "unordered-export",
        r"\bstd::unordered_(map|set|multimap|multiset)\b",
        "unordered container in an export/snapshot path; hash order varies "
        "run-to-run — use std::map/std::set or sort before emitting",
        lambda rel: rel in EXPORT_PATHS,
    ),
    Rule(
        "assert-in-replication",
        r"(?<![\w.])assert\s*\(",
        "assert() in replication code vanishes under NDEBUG, changing "
        "control flow between build types; return a Status or abort "
        "explicitly",
        lambda rel: rel.startswith("src/replication/"),
    ),
    Rule(
        "raw-cas",
        r"(?:\.|->)\s*compare_exchange_(weak|strong)\b",
        "raw compare-exchange outside the MVCC module; use the audited "
        "chain helpers in src/txn/mvcc.h (TryPushHead, Unlink) so every "
        "lock-free publication point stays in one reviewed file",
        lambda rel: not rel.startswith("src/txn/mvcc"),
    ),
    Rule(
        "concrete-engine-include",
        r'#\s*include\s*["<]engine/(shared|isolated|hybrid)_engine\.h[">]',
        "concrete engine header outside src/engine/ and src/shard/; "
        "construct through engine/engine_factory.h and program against "
        "the HtapEngine facade",
        lambda rel: not (rel.startswith("src/engine/")
                         or rel.startswith("src/shard/")),
        use_raw=True,
    ),
    Rule(
        "allow-without-reason",
        # Fires when nothing letter-like follows the allow group on the
        # line: the justification is missing.
        r"lint:allow\([a-zA-Z0-9_,\s-]+\)(?!.*[A-Za-z])",
        "lint:allow escape without a same-line justification; say why "
        "the suppression is sound where it is",
        lambda rel: True,
        use_raw=True,
        raw_needs_hash=False,
        suppressible=False,
    ),
]


def extract_allows(line):
    """Returns the set of rule names allow-listed on this line."""
    allows = set()
    for m in ALLOW_RE.finditer(line):
        allows.update(part.strip() for part in m.group(1).split(","))
    return allows


def strip_comments_and_strings(text):
    """Blanks out comment bodies and string/char literal contents while
    preserving the line structure, so rule regexes never match prose or
    quoted text (e.g. a comment *mentioning* std::mutex)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                out.append("  ")
                i += 2
                state = "line_comment"
                continue
            if c == "/" and nxt == "*":
                out.append("  ")
                i += 2
                state = "block_comment"
                continue
            if c == '"':
                # Raw strings R"delim(...)delim" need their own scan.
                if (i > 0 and text[i - 1] == "R"
                        and (i < 2 or not (text[i - 2].isalnum()
                                           or text[i - 2] == "_"))):
                    m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:])
                    if m:
                        closer = ")" + m.group(1) + '"'
                        end = text.find(closer, i + len(m.group(0)) - 1)
                        end = n if end < 0 else end + len(closer)
                        out.append('"')
                        for ch in text[i + 1:end]:
                            out.append("\n" if ch == "\n" else " ")
                        i = end
                        continue
                out.append(c)
                i += 1
                state = "string"
                continue
            if c == "'":
                out.append(c)
                i += 1
                state = "char"
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                out.append(c)
                state = "code"
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 2
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                out.append(c)
                i += 1
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def lint_file(path, repo_root=REPO_ROOT):
    """Lints one file; returns a list of (path, line, rule, message)."""
    rel = os.path.relpath(os.path.abspath(path), repo_root).replace(
        os.sep, "/"
    )
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        return [(path, 0, "io-error", str(e))]

    raw_lines = raw.split("\n")
    allows = [extract_allows(line) for line in raw_lines]
    code_lines = strip_comments_and_strings(raw).split("\n")

    findings = []
    active = [r for r in RULES if r.applies(rel)]
    for lineno, code in enumerate(code_lines, start=1):
        for rule in active:
            if rule.use_raw:
                # Quoted include paths are blanked by the comment/string
                # pass; match the raw line, but (for include-shaped rules)
                # only when a preprocessor '#' survived outside comments.
                if rule.raw_needs_hash and "#" not in code:
                    continue
                subject = raw_lines[lineno - 1]
            else:
                subject = code
            if rule.pattern.search(subject):
                if rule.suppressible and rule.name in allows[lineno - 1]:
                    continue
                findings.append((path, lineno, rule.name, rule.message))
    return findings


def default_files():
    files = []
    for d in DEFAULT_SCAN_DIRS:
        for root, _, names in os.walk(os.path.join(REPO_ROOT, d)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    files.append(os.path.join(root, name))
    return sorted(files)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="hattrick-lint",
        description="determinism and locking-hygiene linter",
    )
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: src/ and tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    parser.add_argument("--repo-root", default=REPO_ROOT,
                        help="root used to resolve per-rule allowlists "
                             "(tests point this at a fixture dir)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule.name)
        return 0

    files = args.files or default_files()
    findings = []
    for path in files:
        findings.extend(lint_file(path, repo_root=args.repo_root))

    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"hattrick-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
