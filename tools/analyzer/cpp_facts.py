#!/usr/bin/env python3
"""Built-in C++ fact-extraction frontend for hattrick-analyzer.

Produces the same `FileFacts` structure as the libclang frontend
(clang_frontend.py) from a dependency-free tokenizer and a micro-parser
tuned to this codebase's Google-style C++ (see DESIGN.md §9). It is the
reference frontend: every analyzer pass is fixture-tested against it,
and the libclang frontend is the opportunistic upgrade when
clang.cindex is importable.

The parser is deliberately *not* a general C++ parser. It recognizes
exactly the constructs the passes consume:

  - namespace / class / struct nesting (for qualified names),
  - enum (class) definitions with their enumerator lists,
  - member-field declarations with their declared type and any
    GUARDED_BY / ACQUIRED_BEFORE / ACQUIRED_AFTER annotations,
  - function definitions (free, member, out-of-line `Class::Method`)
    with parameter types and REQUIRES / REQUIRES_SHARED annotations,
  - inside function bodies: scoped lock acquisitions (MutexLock,
    SharedMutexLock, SharedReaderLock), manual Lock()/Unlock() pairs,
    the address-ordered-acquisition idiom, SessionPinLatch
    AcquirePin()/WithExclusive() pins, mvcc::EpochManager::Guard
    declarations, calls (for the interprocedural lock graph),
    range-for loops and .begin() iteration (for the determinism pass),
    switch statements with their case labels (for the exhaustiveness
    pass), and local variable declarations (for type resolution).

Anything it cannot classify it skips conservatively; the analyzer
documents the resulting blind spots in DESIGN.md §8.
"""

import bisect
import os
import re

# Scoped RAII lock wrappers (common/mutex.h): type name -> shared mode.
SCOPED_LOCK_TYPES = {
    "MutexLock": False,
    "SharedMutexLock": False,
    "SharedReaderLock": True,
}
# Lock capability types whose member fields are lock-graph nodes.
LOCK_FIELD_TYPES = ("Mutex", "SharedMutex", "SessionPinLatch")
# Manual acquisition / release member functions on the capability types.
MANUAL_ACQUIRE = {"Lock": False, "LockShared": True}
MANUAL_RELEASE = {"Unlock": False, "UnlockShared": True}
# Callback-runs-under idioms: calling `x.WithExclusive(f)` runs `f` with
# x's internal mutex_ held (session_pin.h). Modeled as a scoped
# acquisition spanning the call statement.
CALLBACK_HOLDS = {"WithExclusive": "SessionPinLatch::mutex_"}
# Pin-establishing facts for the unpinned-snapshot pass.
PIN_CALLS = {"AcquirePin", "WithExclusive"}
EPOCH_GUARD_SUFFIX = ("EpochManager", "::", "Guard")
# Version-chain / snapshot reads that require a dominating pin.
PROTECTED_CALLS = {"SnapshotVersions", "FoldVisible"}
PROTECTED_MEMBER_CHAINS = ("head", "load")  # `....head.load(`

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "case", "default",
    "else", "do", "new", "delete", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "throw", "catch", "alignof",
    "co_await", "co_return", "co_yield", "assert",
}

ALLOW_RE = re.compile(r"lint:allow\(([a-zA-Z0-9_,\s-]+)\)")
TOKEN_RE = re.compile(
    r"""
    (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<num>(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.xXeEpPuUlLfF+-]*))
  | (?P<punct>->|::|<<=|>>=|<=>|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=?:;,.(){}\[\]#\\])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


class Acquisition:
    """One lock-acquisition event inside a function body."""

    __slots__ = ("line", "expr", "shared", "ordered", "held", "kind")

    def __init__(self, line, expr, shared, ordered, held, kind):
        self.line = line
        self.expr = expr          # raw chain, e.g. ["&", "other", ".", "latch_"]
        self.shared = shared
        self.ordered = ordered    # inside an address-ordered branch
        self.held = held          # list of (expr_chain, line) held at this point
        self.kind = kind          # "scoped" | "manual" | "callback"


class Call:
    __slots__ = ("line", "name", "recv", "held")

    def __init__(self, line, name, recv, held):
        self.line = line
        self.name = name          # bare callee name
        self.recv = recv          # receiver chain tokens or []
        self.held = held          # list of (expr_chain, line)


class SwitchFact:
    __slots__ = ("line", "cases", "has_default")

    def __init__(self, line):
        self.line = line
        self.cases = []           # list of (line, label_text)
        self.has_default = False


class IterFact:
    __slots__ = ("line", "chain", "via")

    def __init__(self, line, chain, via):
        self.line = line
        self.chain = chain        # expression chain being iterated
        self.via = via            # "range-for" | "begin"


class FunctionFacts:
    def __init__(self, qualname, cls, path, line):
        self.qualname = qualname  # e.g. "BTree::CopyFrom"
        self.cls = cls            # enclosing/qualifying class or None
        self.path = path
        self.line = line
        self.is_lifecycle = False  # constructor/destructor
        self.params = {}          # name -> type string
        self.locals = {}          # name -> type string
        self.requires = []        # raw lock exprs from REQUIRES[_SHARED]
        self.acquisitions = []
        self.calls = []
        self.pins = []            # list of (line, kind)
        self.protected_reads = []  # list of (line, what)
        self.iterations = []      # list of IterFact
        self.switches = []


class FileFacts:
    def __init__(self, path):
        self.path = path          # repo-relative, forward slashes
        self.functions = []
        self.classes = {}         # qualname -> {field: type string}
        self.class_short = {}     # short name -> qualname (ambiguous -> None)
        self.enums = {}           # qualname -> [enumerators]
        self.order_annotations = []  # (class, field, "before"|"after", arg, line)
        self.allows = {}          # line -> set(rule names)


def _collect_allows(raw):
    allows = {}
    for lineno, line in enumerate(raw.split("\n"), start=1):
        hit = set()
        for m in ALLOW_RE.finditer(line):
            hit.update(p.strip() for p in m.group(1).split(","))
        if hit:
            allows[lineno] = hit
    return allows


def _strip(text):
    """Blanks comments and string/char literal contents, preserving line
    structure (same contract as hattrick_lint's stripper)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                out.append("  ")
                i += 2
                state = "line"
            elif c == "/" and nxt == "*":
                out.append("  ")
                i += 2
                state = "block"
            elif c == '"':
                if (i > 0 and text[i - 1] == "R"
                        and (i < 2 or not (text[i - 2].isalnum()
                                           or text[i - 2] == "_"))):
                    m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:])
                    if m:
                        closer = ")" + m.group(1) + '"'
                        end = text.find(closer, i + len(m.group(0)) - 1)
                        end = n if end < 0 else end + len(closer)
                        out.append('"')
                        for ch in text[i + 1:end]:
                            out.append("\n" if ch == "\n" else " ")
                        i = end
                        continue
                out.append(c)
                i += 1
                state = "string"
            elif c == "'":
                out.append(c)
                i += 1
                state = "char"
            else:
                out.append(c)
                i += 1
        elif state == "line":
            out.append(c if c == "\n" else " ")
            if c == "\n":
                state = "code"
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 2
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                out.append(c)
                i += 1
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def _lex(code):
    """Tokenizes comment/string-stripped code. Preprocessor lines (with
    their continuations) are dropped entirely, preserving line numbers."""
    lines = code.split("\n")
    cleaned = []
    in_pp = False
    for text in lines:
        stripped = text.lstrip()
        if in_pp or stripped.startswith("#"):
            in_pp = text.rstrip().endswith("\\")
            cleaned.append("")
        else:
            in_pp = False
            cleaned.append(text)
    code = "\n".join(cleaned)
    # Precompute line numbers by offset for O(n) lexing.
    tokens = []
    line_starts = [0]
    for idx, ch in enumerate(code):
        if ch == "\n":
            line_starts.append(idx + 1)
    for m in TOKEN_RE.finditer(code):
        lineno = bisect.bisect_right(line_starts, m.start())
        tokens.append(Token(m.lastgroup, m.group(), lineno))
    return tokens


class _Parser:
    """Single-file micro-parser. Parse is two-stage: `parse` collects
    structure (classes, enums, fields, function body slices); callers
    then run `extract_bodies` once a global class index exists."""

    def __init__(self, path, rel, tokens):
        self.path = path
        self.rel = rel
        self.toks = tokens
        self.facts = FileFacts(rel)
        self.pending_bodies = []  # (FunctionFacts, body_token_slice)

    # -- token helpers ----------------------------------------------------
    def _match_close(self, i, open_t="{", close_t="}"):
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    # -- structure parsing -------------------------------------------------
    def parse(self):
        self._parse_region(0, len(self.toks), [])
        return self.facts

    def _parse_region(self, i, end, scope):
        """Parses declarations between token indices [i, end). `scope` is
        the stack of enclosing ('ns'|'class', name) entries."""
        toks = self.toks
        while i < end:
            t = toks[i]
            if t.text == "namespace":
                j = i + 1
                name = ""
                while j < end and toks[j].text != "{" and toks[j].text != ";":
                    if toks[j].kind == "id":
                        name = toks[j].text
                    j += 1
                if j < end and toks[j].text == "{":
                    close = self._match_close(j)
                    self._parse_region(j + 1, close, scope + [("ns", name)])
                    i = close + 1
                else:
                    i = j + 1
                continue
            if t.text == "enum":
                i = self._parse_enum(i, end, scope)
                continue
            if t.text in ("class", "struct"):
                i = self._parse_class_or_decl(i, end, scope)
                continue
            if t.text == "template":
                i = self._skip_template_header(i, end)
                continue
            if t.text in ("using", "typedef", "friend", "static_assert"):
                while i < end and toks[i].text != ";":
                    if toks[i].text == "{":
                        i = self._match_close(i)
                    i += 1
                i += 1
                continue
            # Possible field or function at this scope.
            i = self._parse_member(i, end, scope)
        return i

    def _skip_template_header(self, i, end):
        # template < ... > : balance angle brackets naively.
        j = i + 1
        if j < end and self.toks[j].text == "<":
            depth = 0
            while j < end:
                if self.toks[j].text == "<":
                    depth += 1
                elif self.toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        return j + 1
                elif self.toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        return j + 1
                j += 1
        return j

    def _qual(self, scope, name):
        parts = [n for k, n in scope if k == "class"]
        parts.append(name)
        return "::".join(parts)

    def _parse_enum(self, i, end, scope):
        toks = self.toks
        j = i + 1
        if j < end and toks[j].text in ("class", "struct"):
            j += 1
        name = None
        while j < end and toks[j].text not in ("{", ";"):
            if toks[j].kind == "id" and name is None:
                name = toks[j].text
            j += 1
        if j >= end or toks[j].text == ";" or name is None:
            return j + 1
        close = self._match_close(j)
        enumerators = []
        depth = 0
        expect = True
        for k in range(j + 1, close):
            t = toks[k]
            if t.text in ("{", "(", "["):
                depth += 1
            elif t.text in ("}", ")", "]"):
                depth -= 1
            elif depth == 0:
                if t.text == ",":
                    expect = True
                elif expect and t.kind == "id":
                    enumerators.append(t.text)
                    expect = False
        qual = self._qual(scope, name)
        self.facts.enums[qual] = enumerators
        return close + 1

    def _parse_class_or_decl(self, i, end, scope):
        toks = self.toks
        j = i + 1
        name = None
        # The class name is the last plain identifier before '{', ':' (base
        # clause) or ';' (forward declaration); attribute macros like
        # CAPABILITY("mutex") appear as id '(' ... ')' groups and are skipped.
        while j < end and toks[j].text not in ("{", ";", ":"):
            if toks[j].kind == "id":
                if j + 1 < end and toks[j + 1].text == "(":
                    j = self._match_close(j + 1, "(", ")") + 1
                    continue
                if toks[j].text != "final":  # contextual keyword
                    name = toks[j].text
            j += 1
        if j >= end:
            return end
        if toks[j].text == ";":
            return j + 1  # forward declaration
        if toks[j].text == ":":  # base clause: skip to '{'
            while j < end and toks[j].text != "{":
                j += 1
            if j >= end:
                return end
        close = self._match_close(j)
        if name is not None:
            qual = self._qual(scope, name)
            self.facts.classes.setdefault(qual, {})
            short = name
            if short in self.facts.class_short and \
                    self.facts.class_short[short] != qual:
                self.facts.class_short[short] = None  # ambiguous
            else:
                self.facts.class_short[short] = qual
            self._parse_region(j + 1, close, scope + [("class", name)])
        # A variable may be declared after the class body; skip to ';'.
        k = close + 1
        while k < end and toks[k].text != ";":
            if toks[k].text == "{":
                k = self._match_close(k)
            k += 1
        return k + 1

    def _parse_member(self, i, end, scope):
        """Parses one member/declaration starting at i: a field, a function
        definition, or something to skip. Returns the next index."""
        toks = self.toks
        # Skip access specifiers and stray punctuation.
        if toks[i].text in ("public", "private", "protected"):
            j = i + 1
            if j < end and toks[j].text == ":":
                j += 1
            return j
        if toks[i].kind != "id" and toks[i].text not in ("~", "::"):
            return i + 1

        # Scan ahead to the first ';' or body '{' at depth 0.
        j = i
        paren_depth = 0
        saw_paren_group = False
        first_paren = None
        body = None
        semi = None
        while j < end:
            t = toks[j].text
            if t == "(":
                if paren_depth == 0 and first_paren is None:
                    first_paren = j
                paren_depth += 1
            elif t == ")":
                paren_depth -= 1
                if paren_depth == 0:
                    saw_paren_group = True
            elif paren_depth == 0:
                if t == ";":
                    semi = j
                    break
                if t == "{":
                    prev = toks[j - 1]
                    # Brace-init (`head{nullptr}`) directly follows an
                    # identifier/]>; a function body follows ')', 'const',
                    # annotation macros, 'noexcept', 'override', or ':'
                    # init-list material.
                    if prev.kind == "id" and not saw_paren_group:
                        j = self._match_close(j) + 1
                        continue
                    body = j
                    break
                if t == "=" and not saw_paren_group:
                    # default member initializer / assignment decl
                    pass
            j += 1
        if body is not None and first_paren is not None:
            return self._parse_function(i, first_paren, body, scope)
        if semi is not None:
            self._maybe_record_field(i, semi, scope)
            return semi + 1
        return (body if body is not None else end) + 1

    def _maybe_record_field(self, i, semi, scope):
        """Records `Type name_ [annotations];` member fields, including
        lock-order annotations, when directly inside a class."""
        classes = [n for k, n in scope if k == "class"]
        if not classes:
            return
        cls = "::".join(classes)
        toks = self.toks[i:semi]
        if not toks:
            return
        # Find the field name: the last identifier that is not inside an
        # annotation-macro argument list and not a macro name itself.
        ann = {"GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_BEFORE",
               "ACQUIRED_AFTER"}
        name = None
        type_tokens = []
        k = 0
        order_notes = []
        while k < len(toks):
            t = toks[k]
            if t.kind == "id" and t.text in ann and \
                    k + 1 < len(toks) and toks[k + 1].text == "(":
                close = k + 1
                depth = 0
                while close < len(toks):
                    if toks[close].text == "(":
                        depth += 1
                    elif toks[close].text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    close += 1
                arg = "".join(x.text for x in toks[k + 2:close])
                if t.text == "ACQUIRED_BEFORE":
                    order_notes.append(("before", arg, t.line))
                elif t.text == "ACQUIRED_AFTER":
                    order_notes.append(("after", arg, t.line))
                k = close + 1
                continue
            if t.text == "=":
                break
            if t.text == "(":
                return  # function declaration, not a data member
            if t.kind == "id":
                name = t.text
                type_tokens.append(t.text)
            elif t.text in ("::", "<", ">", "*", "&", ",", "[", "]"):
                type_tokens.append(t.text)
            k += 1
        if name is None:
            return
        # Type = everything before the final name occurrence.
        if type_tokens and type_tokens[-1] == name:
            type_tokens = type_tokens[:-1]
        type_str = "".join(type_tokens)
        if not type_str:
            return
        self.facts.classes.setdefault(cls, {})[name] = type_str
        for direction, arg, line in order_notes:
            self.facts.order_annotations.append(
                (cls, name, direction, arg, line))

    def _parse_function(self, i, paren, body, scope):
        toks = self.toks
        close_paren = self._match_close(paren, "(", ")")
        # Name: identifier immediately before '('; qualified names walk
        # back over `::`.
        name_idx = paren - 1
        if toks[name_idx].kind != "id":
            # operator overloads, conversion operators: skip the body.
            return self._match_close(body) + 1
        name_parts = [toks[name_idx].text]
        k = name_idx - 1
        is_dtor = False
        if k >= 0 and toks[k].text == "~":
            is_dtor = True
            name_parts[0] = "~" + name_parts[0]
            k -= 1
        while k > 0 and toks[k].text == "::" and toks[k - 1].kind == "id":
            name_parts.insert(0, toks[k - 1].text)
            k -= 2
        classes = [n for _, n in scope if _ == "class"]
        if len(name_parts) > 1:
            cls = "::".join(classes + name_parts[:-1]) if classes \
                else "::".join(name_parts[:-1])
        else:
            cls = "::".join(classes) if classes else None
        qualname = (cls + "::" if cls else "") + name_parts[-1]
        fn = FunctionFacts(qualname, cls, self.rel, toks[name_idx].line)
        short = name_parts[-1]
        cls_short = cls.split("::")[-1] if cls else None
        fn.is_lifecycle = is_dtor or (cls_short is not None
                                      and short == cls_short)

        # Parameters: split the top-level comma groups of ( ... ).
        self._parse_params(fn, paren + 1, close_paren)

        # Trailing REQUIRES / REQUIRES_SHARED annotations before the body.
        k = close_paren + 1
        while k < body:
            t = toks[k]
            if t.kind == "id" and t.text in ("REQUIRES", "REQUIRES_SHARED") \
                    and k + 1 < body and toks[k + 1].text == "(":
                c = self._match_close(k + 1, "(", ")")
                args = "".join(x.text for x in toks[k + 2:c])
                fn.requires.extend(a for a in args.split(",") if a)
                k = c + 1
                continue
            if t.text == ":":
                # Constructor init list: scan it for scoped-lock-style
                # member initializations? Not needed; skip to body.
                break
            k += 1

        body_close = self._match_close(body)
        self.facts.functions.append(fn)
        self.pending_bodies.append((fn, (body + 1, body_close)))
        return body_close + 1

    def _parse_params(self, fn, i, end):
        toks = self.toks
        group = []
        depth = 0
        groups = []
        for k in range(i, end):
            t = toks[k]
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                groups.append(group)
                group = []
            else:
                group.append(t)
        if group:
            groups.append(group)
        for g in groups:
            # Drop default arguments.
            for idx, t in enumerate(g):
                if t.text == "=":
                    g = g[:idx]
                    break
            ids = [t for t in g if t.kind == "id"]
            if len(ids) < 2:
                continue  # unnamed or too simple to matter
            name = ids[-1].text
            type_str = "".join(t.text for t in g[:-1]
                               if t is not g[-1]).replace("const", "")
            # Rebuild type from all tokens except the trailing name token.
            last = g[-1]
            if last.kind == "id" and last.text == name:
                type_str = "".join(t.text for t in g[:-1])
            fn.params[name] = type_str

    # -- body analysis -----------------------------------------------------
    def extract_bodies(self):
        for fn, (start, end) in self.pending_bodies:
            _BodyWalker(self, fn).walk(start, end)


class _Scope:
    __slots__ = ("locks", "ordered", "callback", "deferred")

    def __init__(self, ordered=False):
        self.locks = []       # (expr_chain, line) scoped acquisitions
        self.ordered = ordered
        self.callback = None  # synthetic held entry for WithExclusive
        self.deferred = False  # lambda body not invoked inline: outer
        #                        holds do not apply inside it


class _BodyWalker:
    """Walks one function body's tokens, tracking lock scopes."""

    def __init__(self, parser, fn):
        self.p = parser
        self.fn = fn
        self.toks = parser.toks
        self.scopes = [_Scope()]
        self.manual = []      # (expr_chain, line, scope_idx) manual holds
        # Pending flags applied to the next opened block.
        self.next_block_ordered = False
        self.pending_callback = None   # synthetic held for next block
        self.pending_deferred = False  # next block is a lambda body
        self.else_ordered_ready = False

    def walk(self, start, end):
        toks = self.toks
        self._manual_ordered = False
        i = start
        while i < end:
            t = toks[i]
            text = t.text

            if text == "{":
                sc = _Scope(ordered=self.next_block_ordered or
                            self._any_ordered_scope())
                if self.pending_callback is not None:
                    # WithExclusive-style: the lambda DOES run inline
                    # under the latch; it is not deferred.
                    sc.callback = self.pending_callback
                    self.pending_callback = None
                elif self.pending_deferred:
                    sc.deferred = True
                self.pending_deferred = False
                self.next_block_ordered = False
                self.scopes.append(sc)
                i += 1
                continue
            if text == "}":
                if len(self.scopes) > 1:
                    self.scopes.pop()
                i += 1
                continue

            if text == ";":
                # No lambda body follows once the statement ends
                # ([[attributes]] would otherwise leak a deferred flag).
                self.pending_deferred = False
                i += 1
                continue
            if text == "[":
                # Lambda introducer vs. array subscript/attribute: a
                # subscript's '[' directly follows an id/')'/']'.
                prev = toks[i - 1] if i > start else None
                if prev is None or (prev.kind != "id"
                                    and prev.text not in (")", "]")):
                    close = self.p._match_close(i, "[", "]")
                    j = close + 1
                    if j < end and toks[j].text == "(":
                        j = self.p._match_close(j, "(", ")") + 1
                    self.pending_deferred = True
                    i = j
                    continue

            if text == "if" and i + 1 < end and toks[i + 1].text == "(":
                close = self.p._match_close(i + 1, "(", ")")
                cond = toks[i + 2:close]
                if self._is_address_order_cond(cond):
                    self.next_block_ordered = True
                    self.else_ordered_ready = True
                i = close + 1
                continue
            if text == "else" and self.else_ordered_ready:
                self.next_block_ordered = True
                self.else_ordered_ready = False
                i += 1
                continue

            if text == "for" and i + 1 < end and toks[i + 1].text == "(":
                close = self.p._match_close(i + 1, "(", ")")
                self._scan_range_for(i + 2, close, t.line)
                i = close + 1
                continue

            if text == "switch" and i + 1 < end and toks[i + 1].text == "(":
                close = self.p._match_close(i + 1, "(", ")")
                i = close + 1
                # Attach the switch body scan; cases recorded flat.
                if i < end and toks[i].text == "{":
                    body_close = self.p._match_close(i)
                    self._scan_switch(t.line, i + 1, body_close)
                    # Keep walking inside for locks/calls too.
                continue

            # Scoped lock declaration: MutexLock name(&expr);
            if t.kind == "id" and text in SCOPED_LOCK_TYPES \
                    and i + 2 < end and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "(":
                close = self.p._match_close(i + 2, "(", ")")
                expr = [x.text for x in toks[i + 3:close]]
                self._record_acquire(t.line, expr,
                                     SCOPED_LOCK_TYPES[text], "scoped")
                self.scopes[-1].locks.append((expr, t.line))
                i = close + 1
                continue

            # Local declaration of an unordered container (for pass 3) and
            # EpochManager::Guard pins. Generic local decl capture:
            if t.kind == "id" and self._try_local_decl(i, end):
                i = self._local_decl_end
                continue

            # Member function calls & manual lock ops.
            if t.kind == "id" and i + 1 < end and toks[i + 1].text == "(" \
                    and text not in KEYWORDS:
                recv = self._receiver_chain(i)
                if text in MANUAL_ACQUIRE and recv:
                    expr = recv
                    self._manual_ordered = self._any_ordered_scope() or \
                        self.next_block_ordered or self._manual_ordered
                    self._record_acquire(t.line, list(expr),
                                         MANUAL_ACQUIRE[text], "manual")
                    self.manual.append(
                        (list(expr), t.line, len(self.scopes) - 1))
                elif text in MANUAL_RELEASE and recv:
                    self._release_manual(recv)
                elif text in CALLBACK_HOLDS:
                    # x.WithExclusive(lambda): the lambda body runs under
                    # the latch's internal mutex. Record the pin, the
                    # synthetic acquisition, and arrange for the next
                    # block (the lambda body) to carry the held entry.
                    self.fn.pins.append((t.line, "with-exclusive"))
                    self._record_acquire(
                        t.line, ["<cb>", CALLBACK_HOLDS[text]], False,
                        "callback")
                    self.pending_callback = (CALLBACK_HOLDS[text], t.line)
                elif text in PIN_CALLS:
                    self.fn.pins.append((t.line, "pin"))
                elif text in PROTECTED_CALLS:
                    self.fn.protected_reads.append((t.line, text))
                    self.fn.calls.append(
                        Call(t.line, text, recv, self._held_chains()))
                elif text == "begin" and recv:
                    self.fn.iterations.append(
                        IterFact(t.line, recv, "begin"))
                else:
                    if text == "load" and len(recv) >= 2 and \
                            recv[-1] == "head":
                        self.fn.protected_reads.append((t.line, "head.load"))
                    self.fn.calls.append(
                        Call(t.line, text, recv, self._held_chains()))
                i += 1
                continue

            i += 1

    # -- helpers -----------------------------------------------------------
    def _any_ordered_scope(self):
        return any(s.ordered for s in self.scopes[1:])

    def _innermost_deferred(self):
        for idx in range(len(self.scopes) - 1, 0, -1):
            if self.scopes[idx].deferred:
                return idx
        return None

    def _held_chains(self):
        """Lock holds in effect at the current point. Inside a deferred
        lambda body, holds from outside the lambda do not apply (the
        lambda runs later, without them)."""
        out = []
        d = self._innermost_deferred()
        if d is None:
            for r in self.fn.requires:
                out.append((["<req>", r], self.fn.line, False))
        for chain, line, depth in self.manual:
            if d is None or depth >= d:
                out.append((chain, line, self._manual_ordered))
        for idx, s in enumerate(self.scopes):
            if d is not None and idx < d:
                continue
            for chain, line in s.locks:
                out.append((chain, line, s.ordered))
            if s.callback is not None:
                out.append((["<cb>", s.callback[0]], s.callback[1], False))
        return out

    def _record_acquire(self, line, expr, shared, kind):
        ordered = (self._any_ordered_scope() or self.next_block_ordered or
                   (kind == "manual" and self._manual_ordered))
        held = self._held_chains()
        self.fn.acquisitions.append(
            Acquisition(line, expr, shared, ordered, held, kind))

    def _release_manual(self, recv):
        for idx in range(len(self.manual) - 1, -1, -1):
            if self.manual[idx][0] == recv:
                del self.manual[idx]
                return
        # Release of a differently-spelled alias: drop oldest with same
        # trailing field name.
        tail = recv[-1] if recv else None
        for idx in range(len(self.manual) - 1, -1, -1):
            if self.manual[idx][0] and self.manual[idx][0][-1] == tail:
                del self.manual[idx]
                return
        if not self.manual:
            self._manual_ordered = False

    def _receiver_chain(self, i):
        """Walks back from the callee-name token collecting the receiver
        chain, e.g. `other . latch_ . Lock (` -> ['other', '.', 'latch_']
        minus the final separator; returns [] for free calls."""
        toks = self.toks
        k = i - 1
        if k < 0 or toks[k].text not in (".", "->", "::"):
            return []
        chain = []
        while k >= 0:
            t = toks[k]
            if t.text in (".", "->", "::"):
                chain.insert(0, t.text)
                k -= 1
                continue
            if t.kind == "id" or t.text == ")":
                if t.text == ")":
                    # receiver is a call result; unsupported
                    return chain[1:] if chain else []
                chain.insert(0, t.text)
                k -= 1
                if k >= 0 and toks[k].text in (".", "->", "::"):
                    continue
                break
            if t.text == "this":
                chain.insert(0, "this")
                k -= 1
                break
            break
        # Drop the trailing separator before the callee.
        if chain and chain[-1] in (".", "->", "::"):
            chain = chain[:-1]
        return chain

    def _is_address_order_cond(self, cond):
        """True for address-comparison conditions: `this < &other`,
        `&a < &b`, `a < &b`, std::less<...>()(a, b) is not used here."""
        texts = [t.text for t in cond]
        if "<" not in texts and ">" not in texts:
            return False
        has_addr = "this" in texts or "&" in texts
        return has_addr

    def _try_local_decl(self, i, end):
        """Recognizes `Type name ...;` local declarations worth recording:
        unordered containers, EpochManager::Guard, and class-typed locals
        (for receiver resolution). Returns True and sets _local_decl_end
        when consumed."""
        toks = self.toks
        # Qualified type chain: id (:: id)* possibly with <...> args.
        j = i
        type_parts = []
        while j < end:
            t = toks[j]
            if t.kind == "id":
                type_parts.append(t.text)
                j += 1
                if j < end and toks[j].text == "<":
                    depth = 0
                    while j < end:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text in (">", ">>"):
                            depth -= 2 if toks[j].text == ">>" else 1
                            if depth <= 0:
                                j += 1
                                break
                        type_parts.append(toks[j].text)
                        j += 1
                    type_parts.append(">")
                if j < end and toks[j].text == "::":
                    type_parts.append("::")
                    j += 1
                    continue
                break
            break
        if not type_parts or j >= end:
            return False
        # Pointer/reference declarators between type and name.
        while j < end and toks[j].text in ("*", "&", "const"):
            if toks[j].text == "*":
                type_parts.append("*")
            j += 1
        # Next must be the variable name, then one of ; = ( {.
        if j >= end or toks[j].kind != "id":
            return False
        name = toks[j].text
        nxt = toks[j + 1].text if j + 1 < end else ";"
        if nxt not in (";", "=", "(", "{"):
            return False
        type_str = "".join(type_parts)
        is_guard = type_str.endswith("EpochManager::Guard") or \
            type_str == "Guard"
        is_unordered = "unordered_" in type_str
        interesting = (is_guard or is_unordered or
                       type_str[0].isupper() or "::" in type_str)
        if not interesting:
            return False
        line = toks[i].line
        if is_guard:
            self.fn.pins.append((line, "epoch-guard"))
        self.fn.locals[name] = type_str
        # Consume through the declarator end.
        k = j + 1
        while k < end and toks[k].text != ";":
            if toks[k].text == "(":
                k = self.p._match_close(k, "(", ")")
            elif toks[k].text == "{":
                k = self.p._match_close(k, "{", "}")
            k += 1
        self._local_decl_end = j + 1  # re-scan initializer for calls
        return True

    def _scan_range_for(self, i, end, line):
        toks = self.toks
        # Classic for has ';' at depth 0; range-for has ':'.
        depth = 0
        colon = None
        for k in range(i, end):
            t = toks[k].text
            if t in ("(", "[", "{", "<"):
                depth += 1
            elif t in (")", "]", "}", ">"):
                depth -= 1
            elif depth == 0:
                if t == ";":
                    return  # classic for loop
                if t == ":" and colon is None:
                    colon = k
        if colon is None:
            return
        chain = [t.text for t in toks[colon + 1:end]]
        self.fn.iterations.append(IterFact(line, chain, "range-for"))

    def _scan_switch(self, line, i, end):
        toks = self.toks
        sw = SwitchFact(line)
        depth = 0
        k = i
        while k < end:
            t = toks[k]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
            elif t.text == "switch" and depth > 0:
                # Nested switch: handled when the walker reaches it.
                pass
            elif depth == 0 and t.text == "case":
                label = []
                k += 1
                while k < end and toks[k].text != ":":
                    label.append(toks[k].text)
                    k += 1
                sw.cases.append((t.line, "".join(label)))
            elif depth == 0 and t.text == "default":
                sw.has_default = True
            k += 1
        self.fn.switches.append(sw)


def parse_file(path, repo_root):
    """Parses one file; returns (FileFacts, parser) — call
    parser.extract_bodies() after building the global class index."""
    rel = os.path.relpath(os.path.abspath(path), repo_root).replace(
        os.sep, "/")
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    allows = _collect_allows(raw)
    tokens = _lex(_strip(raw))
    parser = _Parser(path, rel, tokens)
    facts = parser.parse()
    facts.allows = allows
    return facts, parser
