#!/usr/bin/env python3
"""libclang (clang.cindex) frontend for hattrick-analyzer.

Preferred frontend when the clang Python bindings and libclang shared
library are installed (neither ships in the minimal CI image, so the
analyzer falls back to the built-in tokenizer frontend in cpp_facts.py
— see `--frontend` in hattrick_analyzer.py).

Division of labour: cindex gives us *semantically resolved* structure —
record types, member fields with canonical types, enum definitions with
their enumerator lists, and function extents — which is exactly where
the built-in micro-parser has to guess (typedef chains, template
aliases, using-declarations). Body-level facts (acquisition sites,
pins, loops, switches) are harvested by running the shared body walker
over each function's source extent, so both frontends report identical
fact shapes and line numbers and the fixture tests cover the body
logic for both.

Importing this module raises ImportError when clang.cindex or
libclang is unavailable; hattrick_analyzer catches that and falls
back. Never add a hard dependency here — the analyzer must stay
dependency-free on the reference path.
"""

import json
import os

import clang.cindex as cindex  # raises ImportError when bindings absent

import cpp_facts

_LOCK_FIELD_TYPES = cpp_facts.LOCK_FIELD_TYPES


def _ensure_loadable():
    """Force-resolves libclang once; raises if the shared library is
    missing even though the Python bindings import."""
    try:
        cindex.Config().get_cindex_library()
    except Exception as e:  # cindex.LibclangError and friends
        raise ImportError(f"libclang shared library unavailable: {e}")


class ClangFrontend:
    def __init__(self, repo_root, compile_db_path=None):
        _ensure_loadable()
        self.repo_root = repo_root
        self.index = cindex.Index.create()
        self.args_by_file = {}
        db = compile_db_path or os.path.join(repo_root, "build",
                                             "compile_commands.json")
        if os.path.exists(db):
            with open(db, encoding="utf-8") as f:
                for entry in json.load(f):
                    path = os.path.normpath(os.path.join(
                        entry.get("directory", ""), entry["file"]))
                    self.args_by_file[path] = self._clean_args(entry)

    @staticmethod
    def _clean_args(entry):
        """Extracts include/define/standard flags from a compile-db
        entry; drops the compiler name, -c/-o pairs, and warning noise."""
        if "arguments" in entry:
            argv = entry["arguments"]
        else:
            argv = entry.get("command", "").split()
        out = []
        skip = False
        for a in argv[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", "-o"):
                skip = (a == "-o")
                continue
            if a.startswith(("-I", "-D", "-std=", "-isystem", "-f")):
                out.append(a)
        return out

    def _args_for(self, path):
        if path in self.args_by_file:
            return self.args_by_file[path]
        # Headers: borrow any TU's flags (they share -I/-std).
        for args in self.args_by_file.values():
            return args
        return [f"-I{os.path.join(self.repo_root, 'src')}", "-std=c++20"]

    def parse(self, path):
        """Parses one file; returns FileFacts, or raises on hard parse
        failure (the caller falls back to the built-in frontend)."""
        tu = self.index.parse(
            path, args=self._args_for(path) + ["-x", "c++"],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES)
        fatal = [d for d in tu.diagnostics
                 if d.severity >= cindex.Diagnostic.Fatal]
        if fatal:
            raise RuntimeError(f"fatal diagnostics: {fatal[0].spelling}")

        # Body facts + allow lines come from the shared reference walker;
        # the cursor walk below then *overlays* resolved structure.
        facts, parser = cpp_facts.parse_file(path, self.repo_root)
        parser.extract_bodies()

        target = os.path.abspath(path)
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None or os.path.abspath(loc.file.name) != target:
                continue
            kind = cur.kind
            if kind in (cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL) \
                    and cur.is_definition():
                qual = self._qualname(cur)
                fields = facts.classes.setdefault(qual, {})
                short = cur.spelling
                if short in facts.class_short and \
                        facts.class_short[short] != qual:
                    facts.class_short[short] = None
                else:
                    facts.class_short[short] = qual
                for child in cur.get_children():
                    if child.kind == cindex.CursorKind.FIELD_DECL:
                        fields[child.spelling] = \
                            child.type.get_canonical().spelling
            elif kind == cindex.CursorKind.ENUM_DECL and cur.is_definition():
                qual = self._qualname(cur)
                facts.enums[qual] = [
                    c.spelling for c in cur.get_children()
                    if c.kind == cindex.CursorKind.ENUM_CONSTANT_DECL]
        return facts

    @staticmethod
    def _qualname(cur):
        parts = []
        c = cur
        while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
            if c.kind in (cindex.CursorKind.CLASS_DECL,
                          cindex.CursorKind.STRUCT_DECL,
                          cindex.CursorKind.ENUM_DECL):
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))
