#!/usr/bin/env python3
"""hattrick-analyzer: AST-level semantic checks for the tree.

Where hattrick-lint (tools/lint/) bans line-shaped foot-guns with
regexes, this tool checks *protocol* rules that need symbol resolution
and whole-program views. It parses every translation unit named by the
compile database (plus all headers under src/) into a fact stream —
lock acquisitions, TSA annotations, pins, loops, switches, declared
types — and runs four passes over the merged program:

  lock-order-cycle      Builds the static member-field-resolved lock
                        graph: an edge A -> B for every site that
                        acquires B while holding A (scoped RAII locks,
                        manual Lock()/Unlock(), locks taken inside
                        functions reached from the site via the call
                        graph, and the latch internally held around
                        SessionPinLatch::WithExclusive callbacks),
                        merged with declared ACQUIRED_BEFORE /
                        ACQUIRED_AFTER and REQUIRES annotations. Any
                        cycle is reported with witness acquisition
                        paths — the BTree::CopyFrom class of deadlock,
                        caught before TSan ever runs. The
                        address-ordered-acquisition idiom (acquiring a
                        peer pair under an `if (this < &other)` branch)
                        is recognized and exempts the self-pair.
  unpinned-snapshot     In engine, shard and storage code, every
                        version-chain read (SnapshotVersions,
                        FoldVisible, `head.load`) must be dominated by
                        a session pin (AcquirePin / WithExclusive) or
                        an mvcc::EpochManager::Guard in the same
                        function — the GC-safety contract.
  unordered-iteration   Type-resolved detection of range-for /
                        .begin() iteration over std::unordered_*
                        containers in TUs that feed exports, WAL
                        encoding, or commit publish order (replaces the
                        filename-scoped `unordered-export` line regex
                        with whole-tree, declaration-resolved analysis).
  switch-exhaustive     Every switch over WAL op kinds, MVCC status
                        words, and 2PC record kinds must cover all
                        enumerators with no `default:` that would
                        swallow newly added kinds.

Frontends: the preferred frontend is libclang (clang.cindex) driven by
the compile database; when the bindings or the shared library are not
installed (the container image ships neither), the built-in
tokenizer/micro-parser frontend (cpp_facts.py) produces the same fact
stream and is the fixture-tested reference. `--frontend` selects
explicitly; `auto` (default) upgrades to libclang when importable.

Escape hatch: `// lint:allow(rule-name)` on the reported line, same as
hattrick-lint (and the `allow-without-reason` lint rule applies: say
why on the same line).

Exit status: 0 clean, 1 findings, 2 usage errors.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_facts  # noqa: E402

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)

RULES = [
    ("lock-order-cycle",
     "cycle in the static lock-order graph; two threads taking the "
     "cycle's locks in opposite witness orders deadlock"),
    ("unpinned-snapshot",
     "version-chain read not dominated by a session pin or "
     "mvcc::EpochManager::Guard in the same function; a concurrent "
     "fold/vacuum can reclaim the versions mid-read"),
    ("unordered-iteration",
     "iteration over a std::unordered_* container in a TU that feeds "
     "exports, WAL encoding, or commit publish order; hash order varies "
     "run-to-run and across libstdc++ versions"),
    ("switch-exhaustive",
     "switch over a protocol enum must cover every enumerator and must "
     "not have a default: that silently swallows new kinds"),
]

# Files whose facts are excluded everywhere: the audited primitive layer
# (wrapper internals would alias every wrapped lock into one node).
EXCLUDED_FILES = {"src/common/mutex.h", "src/common/thread_annotations.h"}

# Pass 2 scope: the pin/epoch GC-safety contract applies here.
PIN_REGIONS = ("src/engine/", "src/shard/", "src/storage/")

# Pass 3 scope: deterministic-output TUs (export/snapshot surfaces, WAL
# encoding, commit publish order, replication apply order).
DETERMINISM_PATHS = (
    "src/obs/",
    "src/hattrick/report",
    "src/hattrick/frontier",
    "src/txn/wal",
    "src/txn/txn_manager",
    "src/replication/",
    "src/shard/two_pc",
    "src/shard/sharded_engine",
)

# Pass 4 scope: protocol enums whose dispatch must stay exhaustive.
MONITORED_ENUM_SUFFIXES = ("WalOp::Kind", "TwoPcRecord::Kind",
                           "VersionStatus")

LOCK_TYPES = ("Mutex", "SharedMutex")


class Program:
    """Whole-program fact index merged across files."""

    def __init__(self):
        self.files = []
        self.classes = {}       # class qualname -> {field: type}
        self.class_short = {}   # short name -> qualname | None (ambiguous)
        self.enums = {}         # enum qualname -> [enumerators]
        self.functions = []     # FunctionFacts (excluding EXCLUDED_FILES)
        self.order_annotations = []
        self.allows = {}        # (path, line) -> set(rules)
        self.fn_by_qual = {}    # qualname -> FunctionFacts (last def wins)
        self.fn_by_short = {}   # short name -> [FunctionFacts]

    def add(self, facts):
        self.files.append(facts)
        for cls, fields in facts.classes.items():
            self.classes.setdefault(cls, {}).update(fields)
            short = cls.split("::")[-1]
            if short in self.class_short and self.class_short[short] != cls:
                self.class_short[short] = None
            else:
                self.class_short[short] = cls
        self.enums.update(facts.enums)
        self.order_annotations.extend(facts.order_annotations)
        for line, rules in facts.allows.items():
            self.allows.setdefault((facts.path, line), set()).update(rules)
        if facts.path in EXCLUDED_FILES:
            return
        for fn in facts.functions:
            self.functions.append(fn)
            self.fn_by_qual[fn.qualname] = fn
            self.fn_by_short.setdefault(
                fn.qualname.split("::")[-1], []).append(fn)

    # -- type & lock resolution -------------------------------------------
    def base_class(self, type_str):
        """Reduces a declared type string to a known class qualname."""
        if not type_str:
            return None
        t = type_str.replace("const", "").replace("std::", "")
        t = t.replace("*", "").replace("&", "").strip()
        # unique_ptr<T> / shared_ptr<T> / vector<T> dereference to T for
        # member-chain purposes.
        for wrapper in ("unique_ptr<", "shared_ptr<", "vector<", "deque<",
                        "array<", "optional<"):
            idx = t.find(wrapper)
            if idx >= 0:
                t = t[idx + len(wrapper):]
                if t.endswith(">"):
                    t = t[:-1]
                t = t.split(",")[0]
        t = t.strip()
        if t in self.classes:
            return t
        short = t.split("::")[-1]
        return self.class_short.get(short)

    def field_type(self, cls, field):
        fields = self.classes.get(cls)
        if fields and field in fields:
            return fields[field]
        return None

    def resolve_chain_type(self, chain, fn):
        """Resolves an expression chain (tokens with ./->/:: separators)
        to a declared type string, or None."""
        segs = [t for t in chain if t not in (".", "->", "::", "&", "*",
                                              "this", "(", ")")]
        if "(" in chain or ")" in chain:
            return None  # call results are out of scope
        if not segs:
            return None
        first = segs[0]
        cur_cls = None
        cur_type = None
        if chain and chain[0] == "this":
            cur_cls = self.base_class(fn.cls or "")
            start = 0
        elif first in fn.locals:
            cur_type = fn.locals[first]
            start = 1
        elif first in fn.params:
            cur_type = fn.params[first]
            start = 1
        elif fn.cls and self._field_in_class_chain(fn.cls, first):
            cur_type = self._field_in_class_chain(fn.cls, first)
            start = 1
        elif first in self.classes or first in self.class_short:
            cur_cls = self.base_class(first)
            start = 1
        else:
            return None
        for seg in segs[start:]:
            if cur_type is not None:
                cur_cls = self.base_class(cur_type)
                cur_type = None
            if cur_cls is None:
                return None
            nxt = self.field_type(cur_cls, seg)
            if nxt is None:
                return None
            cur_type = nxt
        return cur_type

    def _field_in_class_chain(self, cls, field):
        """Looks up a field in `cls`, resolving the class name through the
        short-name index (out-of-line methods know only 'BTree')."""
        resolved = self.base_class(cls) or cls
        t = self.field_type(resolved, field)
        if t is not None:
            return t
        # Nested-class methods ('Outer::Inner'): try suffix classes.
        parts = resolved.split("::")
        for i in range(1, len(parts)):
            t = self.field_type("::".join(parts[i:]), field)
            if t is not None:
                return t
        return None

    def resolve_lock_id(self, chain, fn):
        """Resolves a lock expression to a member-field identity
        'Class::field', or a site-unique '?' identity when unresolvable.
        Returns None for expressions that must not participate (e.g.
        REQUIRES on parameters, whose identity is caller-dependent)."""
        if not chain:
            return None
        if chain[0] == "<cb>":
            return chain[1]
        if chain[0] == "<req>":
            arg = chain[1]
            arg = arg.lstrip("&*")
            if arg in fn.params:
                return None  # caller-dependent identity
            chain = [arg]
        # Strip leading address-of / dereference.
        chain = [t for t in chain if t not in ("&", "*")]
        segs = []
        seps = []
        for t in chain:
            if t in (".", "->", "::"):
                seps.append(t)
            else:
                segs.append(t)
        if not segs:
            return None
        if segs[0] == "this" and len(segs) > 1:
            segs = segs[1:]
        field = segs[-1]
        if len(segs) == 1:
            owner = self._owning_class(fn.cls, field)
            if owner is not None:
                return f"{owner}::{field}"
            if field in fn.params:
                return None  # lock passed by pointer: caller-dependent
            return None
        # Walk the prefix to find the owner's class.
        prefix_type = self.resolve_chain_type(
            self._rebuild_chain(segs[:-1]), fn)
        if prefix_type is not None:
            owner_cls = self.base_class(prefix_type)
            if owner_cls is not None and \
                    self.field_type(owner_cls, field) is not None:
                return f"{owner_cls}::{field}"
        # Qualified static-ish spelling: Class::field.
        maybe_cls = self.base_class(segs[-2])
        if maybe_cls is not None and \
                self.field_type(maybe_cls, field) is not None:
            return f"{maybe_cls}::{field}"
        return None

    def _rebuild_chain(self, segs):
        chain = []
        for i, s in enumerate(segs):
            if i:
                chain.append(".")
            chain.append(s)
        return chain

    def _owning_class(self, cls, field):
        if not cls:
            return None
        resolved = self.base_class(cls) or cls
        if self.field_type(resolved, field) is not None:
            return resolved
        parts = resolved.split("::")
        for i in range(1, len(parts)):
            cand = "::".join(parts[i:])
            if self.field_type(cand, field) is not None:
                return cand
        return None


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule, self.message)


def _allowed(program, path, line, rule):
    return rule in program.allows.get((path, line), ())


# ---------------------------------------------------------------------------
# Pass 1: lock-order cycle detection
# ---------------------------------------------------------------------------

def lock_order_pass(program):
    findings = []
    # adj[u][v] = list of witness strings (provenance), at most 2 kept.
    adj = {}
    anchor = {}   # (u, v) -> (path, line) for finding anchors

    def add_edge(u, v, path, line, witness):
        slots = adj.setdefault(u, {}).setdefault(v, [])
        if len(slots) < 2:
            slots.append(witness)
        anchor.setdefault((u, v), (path, line))

    # Direct (intra-function) acquisitions + self-cycle check.
    direct_sites = {}   # fn -> {lock_id: (path, line)}
    for fn in program.functions:
        sites = {}
        for acq in fn.acquisitions:
            a_id = program.resolve_lock_id(acq.expr, fn)
            if a_id is None:
                continue
            sites.setdefault(a_id, (fn.path, acq.line))
            for h_chain, h_line, h_ordered in acq.held:
                h_id = program.resolve_lock_id(h_chain, fn)
                if h_id is None:
                    continue
                if h_id == a_id:
                    if acq.ordered and h_ordered:
                        continue  # address-ordered peer pair
                    if acq.kind == "callback":
                        continue
                witness = (
                    f"{fn.qualname} acquires {a_id} at {fn.path}:{acq.line} "
                    f"while holding {h_id} (held since {fn.path}:{h_line})")
                add_edge(h_id, a_id, fn.path, acq.line, witness)
        direct_sites[fn] = sites

    # Declared ordering annotations (ACQUIRED_BEFORE / ACQUIRED_AFTER).
    for cls, field, direction, arg, line in program.order_annotations:
        this_id = f"{program.base_class(cls) or cls}::{field}"
        arg_name = arg.lstrip("&*").split(",")[0]
        owner = program._owning_class(cls, arg_name)
        other_id = f"{owner}::{arg_name}" if owner else None
        if other_id is None:
            continue
        src_path = ""
        for f in program.files:
            if any(a[0] == cls and a[1] == field
                   for a in f.order_annotations):
                src_path = f.path
                break
        w = (f"declared {field} ACQUIRED_{direction.upper()}({arg}) "
             f"on {cls} at {src_path}:{line}")
        if direction == "before":
            add_edge(this_id, other_id, src_path, line, w)
        else:
            add_edge(other_id, this_id, src_path, line, w)

    # Interprocedural: transitive acquires through the call graph.
    def resolve_callee(call, fn):
        if call.recv:
            t = program.resolve_chain_type(call.recv, fn)
            if t is not None:
                cls = program.base_class(t)
                if cls is not None:
                    target = program.fn_by_qual.get(f"{cls}::{call.name}")
                    if target is not None:
                        return target
            # Receiver resolved to nothing useful; fall through to the
            # unique-name rule.
        cands = program.fn_by_short.get(call.name, [])
        if len(cands) == 1:
            return cands[0]
        return None  # ambiguous or unknown: skipped (documented blind spot)

    callees = {fn: [] for fn in program.functions}
    for fn in program.functions:
        for call in fn.calls:
            target = resolve_callee(call, fn)
            if target is not None and target is not fn:
                callees[fn].append((call, target))

    # Fixpoint: trans[fn] = direct ∪ callees' trans, with a sample
    # provenance chain per lock id.
    trans = {fn: dict(direct_sites[fn]) for fn in program.functions}
    trace = {fn: {k: [fn.qualname] for k in direct_sites[fn]}
             for fn in program.functions}
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for fn in program.functions:
            for call, target in callees[fn]:
                for lock_id, site in trans[target].items():
                    if lock_id not in trans[fn]:
                        trans[fn][lock_id] = site
                        trace[fn][lock_id] = \
                            [fn.qualname] + trace[target][lock_id]
                        changed = True

    for fn in program.functions:
        for call, target in callees[fn]:
            for h_chain, h_line, h_ordered in call.held:
                h_id = program.resolve_lock_id(h_chain, fn)
                if h_id is None:
                    continue
                for lock_id, site in trans[target].items():
                    if lock_id == h_id:
                        # Re-acquisition through a call chain is real,
                        # but the direct self-pair case is handled above
                        # with ordered-idiom context; through calls we
                        # cannot see the ordering idiom, so only flag
                        # when the immediate callee acquires it.
                        if lock_id not in direct_sites[target]:
                            continue
                    chain = " -> ".join(
                        [fn.qualname] + trace[target][lock_id])
                    witness = (
                        f"{fn.qualname} calls {target.qualname} at "
                        f"{fn.path}:{call.line} while holding {h_id} "
                        f"(held since {fn.path}:{h_line}); the call chain "
                        f"{chain} acquires {lock_id} at "
                        f"{site[0]}:{site[1]}")
                    add_edge(h_id, lock_id, fn.path, call.line, witness)

    # Cycle detection: self-loops, then SCCs of size > 1.
    reported = set()
    for u in sorted(adj):
        if u in adj.get(u, {}):
            path, line = anchor[(u, u)]
            if _allowed(program, path, line, "lock-order-cycle"):
                continue
            wits = adj[u][u]
            msg = (f"lock-order cycle on {u}: two instances are acquired "
                   f"without address ordering. witness: {wits[0]}"
                   + (f" | second witness: {wits[1]}"
                      if len(wits) > 1 else
                      " | second witness: the same site run by a second "
                        "thread with the two objects' roles swapped"))
            findings.append(Finding(path, line, "lock-order-cycle", msg))
            reported.add(frozenset([u]))

    for scc in _sccs(adj):
        if len(scc) < 2 or frozenset(scc) in reported:
            continue
        cycle = _find_cycle(adj, scc)
        if cycle is None:
            continue
        parts = []
        anchor_site = None
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            wit = adj[a][b][0]
            parts.append(f"[{a} -> {b}] {wit}")
            if anchor_site is None:
                anchor_site = anchor[(a, b)]
        path, line = anchor_site
        if _allowed(program, path, line, "lock-order-cycle"):
            continue
        msg = ("lock-order cycle: " + " -> ".join(cycle + [cycle[0]])
               + ". " + " | ".join(parts))
        findings.append(Finding(path, line, "lock-order-cycle", msg))
        reported.add(frozenset(scc))
    return findings


def _sccs(adj):
    """Iterative Tarjan over the adjacency map; yields each SCC as a
    sorted list."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    counter = [0]
    result = []
    nodes = sorted(set(adj) | {v for m in adj.values() for v in m})

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(adj.get(root, {}))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, {})))))
                    advanced = True
                    break
                elif nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                result.append(sorted(comp))
    return result


def _find_cycle(adj, scc):
    """Finds one simple cycle within an SCC; returns the node list."""
    scc_set = set(scc)
    start = scc[0]
    # BFS back to start.
    from collections import deque
    prev = {start: None}
    q = deque([start])
    while q:
        u = q.popleft()
        for v in sorted(adj.get(u, {})):
            if v not in scc_set:
                continue
            if v == start:
                # reconstruct
                path = [u]
                while prev[path[-1]] is not None:
                    path.append(prev[path[-1]])
                return list(reversed(path))
            if v not in prev:
                prev[v] = u
                q.append(v)
    return None


# ---------------------------------------------------------------------------
# Pass 2: pin/epoch protocol
# ---------------------------------------------------------------------------

def unpinned_snapshot_pass(program):
    findings = []
    for fn in program.functions:
        if not fn.path.startswith(PIN_REGIONS):
            continue
        if getattr(fn, "is_lifecycle", False):
            continue  # ctor/dtor: single-owner, no concurrent GC
        short = fn.qualname.split("::")[-1]
        if short in cpp_facts.PROTECTED_CALLS:
            continue  # the protected callee's own definition
        for line, what in fn.protected_reads:
            dominated = any(pin_line <= line for pin_line, _ in fn.pins)
            if dominated:
                continue
            if _allowed(program, fn.path, line, "unpinned-snapshot"):
                continue
            findings.append(Finding(
                fn.path, line, "unpinned-snapshot",
                f"{what} in {fn.qualname} is not dominated by a session "
                f"pin (AcquirePin/WithExclusive) or "
                f"mvcc::EpochManager::Guard in the same function; a "
                f"concurrent fold or vacuum can reclaim the versions "
                f"mid-read (GC-safety contract, DESIGN.md §8)"))
    return findings


# ---------------------------------------------------------------------------
# Pass 3: determinism by type
# ---------------------------------------------------------------------------

def unordered_iteration_pass(program):
    findings = []
    for fn in program.functions:
        if not fn.path.startswith(DETERMINISM_PATHS):
            continue
        for it in fn.iterations:
            t = program.resolve_chain_type(it.chain, fn)
            if t is None or "unordered_" not in t:
                continue
            if _allowed(program, fn.path, it.line, "unordered-iteration"):
                continue
            expr = "".join(it.chain)
            findings.append(Finding(
                fn.path, it.line, "unordered-iteration",
                f"{fn.qualname} iterates `{expr}` (declared {t}) via "
                f"{it.via} in a deterministic-output TU; hash order "
                f"varies run-to-run — use an ordered container or sort "
                f"before emitting"))
    return findings


# ---------------------------------------------------------------------------
# Pass 4: exhaustive protocol switches
# ---------------------------------------------------------------------------

def switch_exhaustive_pass(program):
    findings = []
    # enumerator name -> (enum qualname, [all enumerators])
    monitored = {}
    for qual, enumerators in program.enums.items():
        if not qual.endswith(MONITORED_ENUM_SUFFIXES):
            continue
        for e in enumerators:
            monitored.setdefault(e, []).append((qual, enumerators))
    for fn in program.functions:
        for sw in fn.switches:
            # Which monitored enum do the case labels name?
            votes = {}
            covered = {}
            for _, label in sw.cases:
                tail = label.split("::")[-1]
                for qual, enumerators in monitored.get(tail, []):
                    # Accept the label only if its qualification is a
                    # suffix-path of the enum's qualname.
                    label_path = label.split("::")[:-1]
                    enum_path = qual.split("::")
                    if label_path and not _is_subpath(label_path,
                                                      enum_path):
                        continue
                    votes[qual] = votes.get(qual, 0) + 1
                    covered.setdefault(qual, set()).add(tail)
            if not votes:
                continue
            qual = max(sorted(votes), key=lambda q: votes[q])
            enumerators = dict(
                (q, e) for tail in monitored.values()
                for q, e in tail)[qual]
            missing = [e for e in enumerators if e not in covered[qual]]
            if missing and not _allowed(program, fn.path, sw.line,
                                        "switch-exhaustive"):
                findings.append(Finding(
                    fn.path, sw.line, "switch-exhaustive",
                    f"switch over {qual} in {fn.qualname} does not cover "
                    f"{', '.join(missing)}; every protocol kind must be "
                    f"handled explicitly"))
            if sw.has_default and not _allowed(program, fn.path, sw.line,
                                               "switch-exhaustive"):
                findings.append(Finding(
                    fn.path, sw.line, "switch-exhaustive",
                    f"switch over {qual} in {fn.qualname} has a default: "
                    f"that would silently swallow newly added kinds; "
                    f"cover each enumerator and let the compiler flag "
                    f"new ones"))
    return findings


def _is_subpath(label_path, enum_path):
    """True when label_path (e.g. ['WalOp','Kind']) is a contiguous
    suffix-aligned subsequence of enum_path (e.g. ['WalOp','Kind'])."""
    if len(label_path) > len(enum_path):
        return False
    return enum_path[-len(label_path):] == label_path


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def discover_files(repo_root, compile_db):
    """TU list: compile-database sources under src/ plus every header
    under src/ (facts — classes, annotations, inline methods — live in
    headers too)."""
    files = set()
    if compile_db and os.path.exists(compile_db):
        with open(compile_db, encoding="utf-8") as f:
            for entry in json.load(f):
                path = os.path.normpath(
                    os.path.join(entry.get("directory", ""),
                                 entry["file"]))
                rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
                if rel.startswith("src/"):
                    files.add(path)
    src_dir = os.path.join(repo_root, "src")
    for root, _, names in os.walk(src_dir):
        for name in names:
            if name.endswith(".h"):
                files.add(os.path.join(root, name))
            elif name.endswith(".cc") and not files:
                pass
    if not any(p.endswith(".cc") for p in files):
        for root, _, names in os.walk(src_dir):
            for name in names:
                if name.endswith(".cc"):
                    files.add(os.path.join(root, name))
    return sorted(files)


def load_program(paths, repo_root, frontend="auto", verbose=False):
    program = Program()
    clang_fe = None
    if frontend in ("auto", "clang"):
        try:
            import clang_frontend
            clang_fe = clang_frontend.ClangFrontend(repo_root)
        except Exception as e:  # bindings or libclang missing
            if frontend == "clang":
                print(f"hattrick-analyzer: libclang frontend unavailable "
                      f"({e}); install python3-clang or use "
                      f"--frontend=builtin", file=sys.stderr)
                raise SystemExit(2)
            if verbose:
                print(f"note: libclang unavailable ({e}); using built-in "
                      f"frontend", file=sys.stderr)
    parsers = []
    for path in paths:
        facts = None
        if clang_fe is not None:
            try:
                facts = clang_fe.parse(path)
            except Exception as e:
                if verbose:
                    print(f"note: libclang failed on {path} ({e}); "
                          f"falling back to built-in frontend",
                          file=sys.stderr)
                facts = None
        if facts is None:
            facts, parser = cpp_facts.parse_file(path, repo_root)
            parsers.append(parser)
        program.add(facts)
    # Body extraction happens after the structure of every file is known.
    for parser in parsers:
        parser.extract_bodies()
    return program


PASSES = {
    "lock-order-cycle": lock_order_pass,
    "unpinned-snapshot": unpinned_snapshot_pass,
    "unordered-iteration": unordered_iteration_pass,
    "switch-exhaustive": switch_exhaustive_pass,
}


def main(argv):
    parser = argparse.ArgumentParser(
        prog="hattrick-analyzer",
        description="AST-level semantic checks: lock-order cycles, "
                    "pin/epoch protocol, determinism by type, exhaustive "
                    "protocol switches",
    )
    parser.add_argument("files", nargs="*",
                        help="files to analyze (default: the compile "
                             "database's TUs plus src/ headers)")
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json (default: "
                             "<repo-root>/build/compile_commands.json)")
    parser.add_argument("--frontend", choices=("auto", "clang", "builtin"),
                        default="auto")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, _ in RULES:
            print(name)
        return 0

    repo_root = os.path.abspath(args.repo_root)
    compile_db = args.compile_db or os.path.join(
        repo_root, "build", "compile_commands.json")
    if args.files:
        paths = [os.path.abspath(p) for p in args.files]
    else:
        paths = discover_files(repo_root, compile_db)
        if not paths:
            print("hattrick-analyzer: no input files (no compile database "
                  "and no src/ tree)", file=sys.stderr)
            return 2

    program = load_program(paths, repo_root, frontend=args.frontend,
                           verbose=args.verbose)

    selected = [name for name, _ in RULES]
    if args.rules:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in PASSES]
        if unknown:
            print(f"hattrick-analyzer: unknown rule(s): "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    findings = []
    for name in selected:
        findings.extend(PASSES[name](program))
    findings.sort(key=Finding.key)

    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"hattrick-analyzer: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    if args.verbose:
        print(f"hattrick-analyzer: clean over {len(paths)} file(s)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
