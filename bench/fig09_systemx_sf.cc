// Figure 9 reproduction: System-X (hybrid design, OCC serializable, row
// copy + in-memory column store) across scale factors.
//
// Expected shape (Section 6.4): slanted lines at all SFs (shared
// compute) but better analytics than PostgreSQL (columnar copy); SF100
// frontier above or near the proportional line; max-T roughly stable
// across SFs (no analytical index maintenance on the T path); freshness
// identically zero (merge before every query).

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf(
      "=== Figure 9: System-X for different scaling factors ===\n");
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  bool all_fresh = true;
  for (const double sf : {1.0, 10.0, 100.0}) {
    const std::string label =
        "System-X SF" + std::to_string(static_cast<int>(sf));
    BenchEnv env =
        MakeEnv(EngineKind::kSystemX, sf, PhysicalSchema::kSemiIndexes);
    const GridGraph grid = RunGrid(&env, label);
    PrintFrontierSummary(label, grid);
    PrintGridCsv(label, grid);
    const auto freshness = MeasureRatioFreshness(
        MakeRunner(env.driver.get(), DefaultRunConfig()), grid.tau_max,
        grid.alpha_max);
    PrintRatioFreshness(label, freshness);
    for (const auto& row : freshness) {
      if (row.p99 > 0) all_fresh = false;
    }
    grids.push_back(grid);
    labels.push_back(label);
  }
  PlotFrontiers(labels, {&grids[0], &grids[1], &grids[2]});

  std::printf("\n# shape checks\n");
  std::printf("freshness always zero:   %s\n", all_fresh ? "yes" : "NO");
  std::printf("max-T roughly stable:    %s (%.0f, %.0f, %.0f)\n",
              grids[2].xt > grids[0].xt * 0.7 ? "yes" : "NO", grids[0].xt,
              grids[1].xt, grids[2].xt);
  std::printf("max-A falls with SF:     %s (%.2f > %.2f > %.2f)\n",
              grids[0].xa > grids[2].xa ? "yes" : "NO", grids[0].xa,
              grids[1].xa, grids[2].xa);
  std::printf("SF100 at/above prop:     %s (coverage %.3f)\n",
              FrontierCoverage(grids[2]) >= 0.45 ? "yes" : "NO",
              FrontierCoverage(grids[2]));
  return 0;
}
