// Figure 5 reproduction: PostgreSQL (shared design, serializable, all
// indexes) across scale factors SF1 / SF10 / SF100.
//
// Expected shape (Section 6.2): slanted fixed-T and fixed-A lines at all
// SFs (shared compute); frontier below or near the proportional line;
// SF1 worst due to row contention; maximum A throughput falls with SF
// (scan size); maximum T throughput falls at SF100 (index depth);
// freshness identically zero.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;        // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf("=== Figure 5: PostgreSQL for different scaling factors ===\n");
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  for (const double sf : {1.0, 10.0, 100.0}) {
    const std::string label =
        "PostgreSQL SF" + std::to_string(static_cast<int>(sf));
    BenchEnv env =
        MakeEnv(EngineKind::kPostgres, sf, PhysicalSchema::kAllIndexes);
    const GridGraph grid = RunGrid(&env, label);
    ReportSystem(&env, label, grid);
    grids.push_back(grid);
    labels.push_back(label);
  }
  std::vector<const GridGraph*> pointers;
  for (const GridGraph& grid : grids) pointers.push_back(&grid);
  PlotFrontiers(labels, pointers);

  // Shape checks mirrored in EXPERIMENTS.md.
  std::printf("\n# shape checks\n");
  std::printf("max-A falls with SF:    %s (%.2f > %.2f > %.2f)\n",
              grids[0].xa > grids[1].xa && grids[1].xa > grids[2].xa
                  ? "yes"
                  : "NO",
              grids[0].xa, grids[1].xa, grids[2].xa);
  std::printf("max-T falls at SF100:   %s (%.0f vs %.0f)\n",
              grids[2].xt < grids[1].xt ? "yes" : "NO", grids[2].xt,
              grids[1].xt);
  // Shared design never reaches isolation at any SF (the paper's core
  // Figure 5 claim); the exact SF ordering of coverage is sensitive to
  // the scaled-down dimension-table sizes (see EXPERIMENTS.md).
  bool never_isolation = true;
  for (const GridGraph& grid : grids) {
    if (ClassifyFrontier(grid) == FrontierPattern::kIsolation) {
      never_isolation = false;
    }
  }
  std::printf("never isolation:        %s\n",
              never_isolation ? "yes" : "NO");
  std::printf("coverage by SF (info):  %.3f, %.3f, %.3f\n",
              FrontierCoverage(grids[0]), FrontierCoverage(grids[1]),
              FrontierCoverage(grids[2]));
  return 0;
}
