// Response-time extraction (Section 6.1: "HATtrick benchmark extracts
// also the average response time of each transaction type and analytical
// query"): per-transaction-type and per-query latency for every system
// at the 50:50 operating point, SF10.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf("=== Response times per transaction type and query "
              "(SF10, T:A = 8:4) ===\n");
  const struct {
    EngineKind kind;
    PhysicalSchema physical;
  } kSystems[] = {
      {EngineKind::kPostgres, PhysicalSchema::kAllIndexes},
      {EngineKind::kPostgresSR, PhysicalSchema::kAllIndexes},
      {EngineKind::kSystemX, PhysicalSchema::kSemiIndexes},
      {EngineKind::kTidb, PhysicalSchema::kSemiIndexes},
  };

  for (const auto& system : kSystems) {
    BenchEnv env = MakeEnv(system.kind, 10.0, system.physical);
    WorkloadConfig run = DefaultRunConfig();
    run.t_clients = 8;
    run.a_clients = 4;
    run.measure_seconds = 1.5;
    const RunMetrics metrics = env.driver->Run(run);

    std::printf("\n== %s ==\n", EngineKindName(system.kind));
    std::printf("# txn_type,mean_ms,p50_ms,p95_ms,p99_ms,count,commits,"
                "aborts\n");
    for (int t = 0; t < 3; ++t) {
      const Sampler& sampler = metrics.txn_latency_by_type[t];
      if (sampler.empty()) continue;
      const LatencySummary tail = Summarize(sampler);
      std::printf("%s,%.4f,%.4f,%.4f,%.4f,%zu,%llu,%llu\n",
                  TxnTypeName(static_cast<TxnType>(t)),
                  sampler.Mean() * 1e3, tail.p50 * 1e3, tail.p95 * 1e3,
                  tail.p99 * 1e3, sampler.count(),
                  static_cast<unsigned long long>(
                      metrics.committed_by_type[t]),
                  static_cast<unsigned long long>(
                      metrics.aborts_by_type[t]));
    }
    std::printf("# query,mean_ms,p50_ms,p95_ms,p99_ms,count\n");
    for (int q = 0; q < kNumQueries; ++q) {
      const Sampler& sampler = metrics.query_latency_by_id[q];
      if (sampler.empty()) continue;
      const LatencySummary tail = Summarize(sampler);
      std::printf("%s,%.3f,%.3f,%.3f,%.3f,%zu\n", QueryName(q),
                  sampler.Mean() * 1e3, tail.p50 * 1e3, tail.p95 * 1e3,
                  tail.p99 * 1e3, sampler.count());
    }
    std::fflush(stdout);
  }
  return 0;
}
