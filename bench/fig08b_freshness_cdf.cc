// Figure 8b reproduction: CDFs of the per-query freshness scores for
// PostgreSQL-SR (mode ON) at SF10 for T:A client ratios 20:80, 50:50 and
// 80:20.
//
// Expected shape (Section 6.3): the fraction of perfectly fresh queries
// falls as the T share grows (the standby cannot keep up with the update
// rate), and the tail freshness grows.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf(
      "=== Figure 8b: freshness CDFs, PostgreSQL-SR mode ON (SF10) ===\n");
  BenchEnv env =
      MakeEnv(EngineKind::kPostgresSR, 10.0, PhysicalSchema::kAllIndexes);

  // Saturate both sides first so ratios mean the same thing as in the
  // paper (fractions of tau_max / alpha_max).
  PointRunner runner = MakeRunner(env.driver.get(), DefaultRunConfig());
  const int tau_max = FindSaturation(
      [&](int clients) { return runner(clients, 0).tps; }, 32, 0.03);
  const int alpha_max = FindSaturation(
      [&](int clients) { return runner(0, clients).qps; }, 32, 0.03);
  std::printf("# tau_max=%d alpha_max=%d\n", tau_max, alpha_max);

  const struct {
    const char* name;
    double t_fraction;
    double a_fraction;
  } kRatios[] = {{"20:80", 0.2, 0.8}, {"50:50", 0.5, 0.5},
                 {"80:20", 0.8, 0.2}};

  double fresh_fraction[3] = {0, 0, 0};
  int index = 0;
  for (const auto& ratio : kRatios) {
    WorkloadConfig config = DefaultRunConfig();
    config.t_clients = std::max(
        1, static_cast<int>(std::lround(tau_max * ratio.t_fraction)));
    config.a_clients = std::max(
        1, static_cast<int>(std::lround(alpha_max * ratio.a_fraction)));
    config.measure_seconds = 2.0;  // more queries for a smoother CDF
    const RunMetrics metrics = env.driver->Run(config);
    std::printf("# ratio %s (T=%d A=%d): %llu queries\n", ratio.name,
                config.t_clients, config.a_clients,
                static_cast<unsigned long long>(metrics.queries));
    std::printf("# CDF (freshness_seconds,fraction)\n");
    for (const auto& [x, f] : metrics.freshness.Cdf()) {
      std::printf("%.5f,%.4f\n", x, f);
    }
    fresh_fraction[index++] = metrics.freshness.CdfAt(1e-3);
    std::printf("fresh(<=1ms) fraction: %.3f, p99: %.4f s, max: %.4f s\n\n",
                metrics.freshness.CdfAt(1e-3),
                metrics.freshness.Percentile(0.99),
                metrics.freshness.empty() ? 0 : metrics.freshness.Max());
  }

  std::printf("# shape check\n");
  std::printf(
      "fresh fraction falls as T share grows: %s (%.3f >= %.3f >= %.3f)\n",
      fresh_fraction[0] >= fresh_fraction[1] &&
              fresh_fraction[1] >= fresh_fraction[2]
          ? "yes"
          : "NO",
      fresh_fraction[0], fresh_fraction[1], fresh_fraction[2]);
  return 0;
}
