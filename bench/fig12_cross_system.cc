// Figure 12 reproduction: cross-system comparison at SF100 —
// PostgreSQL, PostgreSQL-SR, System-X, TiDB, TiDB-Dist — with the
// freshness score at the 50:50 ratio point for each.
//
// Expected shape (Section 6.6): System-X's frontier envelops the others
// except PostgreSQL's higher max-T; PostgreSQL-SR trades freshness for
// isolation (above its proportional line, stale queries) vs PostgreSQL
// (fresh, interfering); TiDB-Dist beats single-node TiDB on scaling and
// A throughput while losing max-T.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

namespace {

struct SystemRun {
  std::string label;
  GridGraph grid;
  double freshness_5050_p99 = 0;
};

}  // namespace

int main() {
  std::printf("=== Figure 12: cross-system comparison (SF100) ===\n");
  const struct {
    EngineKind kind;
    PhysicalSchema physical;
  } kSystems[] = {
      {EngineKind::kPostgres, PhysicalSchema::kAllIndexes},
      {EngineKind::kPostgresSR, PhysicalSchema::kAllIndexes},
      {EngineKind::kSystemX, PhysicalSchema::kSemiIndexes},
      {EngineKind::kTidb, PhysicalSchema::kSemiIndexes},
      {EngineKind::kTidbDist, PhysicalSchema::kSemiIndexes},
  };

  std::vector<SystemRun> runs;
  for (const auto& system : kSystems) {
    SystemRun run;
    run.label = EngineKindName(system.kind);
    BenchEnv env = MakeEnv(system.kind, 100.0, system.physical);
    run.grid = RunGrid(&env, run.label);
    PrintFrontierSummary(run.label, run.grid);
    std::printf("# %s frontier (tps,qps)\n", run.label.c_str());
    for (const OperatingPoint& p : run.grid.frontier) {
      std::printf("%.1f,%.2f\n", p.tps, p.qps);
    }
    // Freshness at the 50:50 ratio point (the paper's Figure 12
    // annotation).
    PointRunner runner = MakeRunner(env.driver.get(), DefaultRunConfig());
    const OperatingPoint mid = runner(
        std::max(1, run.grid.tau_max / 2), std::max(1, run.grid.alpha_max / 2));
    run.freshness_5050_p99 = mid.freshness_p99;
    std::printf("f5 (50:50) p99 freshness: %.4f s\n\n",
                run.freshness_5050_p99);
    runs.push_back(std::move(run));
  }

  std::vector<std::string> labels;
  std::vector<const GridGraph*> grids;
  for (const SystemRun& run : runs) {
    labels.push_back(run.label);
    grids.push_back(&run.grid);
  }
  PlotFrontiers(labels, grids);

  std::printf("\n# pairwise envelope matrix (row envelops column?)\n");
  std::printf("%-18s", "");
  for (const SystemRun& run : runs) std::printf("%-18s", run.label.c_str());
  std::printf("\n");
  for (const SystemRun& a : runs) {
    std::printf("%-18s", a.label.c_str());
    for (const SystemRun& b : runs) {
      std::printf("%-18s", Envelops(a.grid, b.grid) ? "yes" : "-");
    }
    std::printf("\n");
  }

  const SystemRun& postgres = runs[0];
  const SystemRun& postgres_sr = runs[1];
  const SystemRun& systemx = runs[2];
  const SystemRun& tidb = runs[3];
  const SystemRun& tidb_dist = runs[4];

  std::printf("\n# shape checks\n");
  std::printf("System-X max-A highest of single nodes: %s (%.2f)\n",
              systemx.grid.xa >= postgres.grid.xa &&
                      systemx.grid.xa >= tidb.grid.xa
                  ? "yes"
                  : "NO",
              systemx.grid.xa);
  std::printf("PostgreSQL max-T >= System-X max-T:     %s (%.0f vs %.0f)\n",
              postgres.grid.xt >= systemx.grid.xt ? "yes" : "NO",
              postgres.grid.xt, systemx.grid.xt);
  std::printf("PostgreSQL-SR stale, PostgreSQL fresh:  %s (%.4f vs %.4f)\n",
              postgres_sr.freshness_5050_p99 >= 0 &&
                      postgres.freshness_5050_p99 == 0
                  ? "yes"
                  : "NO",
              postgres_sr.freshness_5050_p99, postgres.freshness_5050_p99);
  std::printf("TiDB-Dist max-A > TiDB max-A:           %s (%.2f vs %.2f)\n",
              tidb_dist.grid.xa > tidb.grid.xa ? "yes" : "NO",
              tidb_dist.grid.xa, tidb.grid.xa);
  std::printf("TiDB max-T > TiDB-Dist max-T:           %s (%.0f vs %.0f)\n",
              tidb.grid.xt > tidb_dist.grid.xt ? "yes" : "NO",
              tidb.grid.xt, tidb_dist.grid.xt);
  std::printf("PostgreSQL-SR coverage > PostgreSQL:    %s (%.3f vs %.3f)\n",
              FrontierCoverage(postgres_sr.grid) >
                      FrontierCoverage(postgres.grid)
                  ? "yes"
                  : "NO",
              FrontierCoverage(postgres_sr.grid),
              FrontierCoverage(postgres.grid));
  return 0;
}
