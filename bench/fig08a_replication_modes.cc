// Figure 8a reproduction: PostgreSQL-SR at SF10 under replication modes
// ON (synchronous ship, asynchronous replay) and RA (remote apply).
//
// Expected shape (Section 6.3): both frontiers above their proportional
// lines; RA's max-T lower (commits wait for standby replay) with
// freshness identically zero; ON faster on the T side but with stale
// queries — the freshness/performance trade-off.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf(
      "=== Figure 8a: PostgreSQL-SR replication modes (SF10) ===\n");

  BenchEnv on_env =
      MakeEnv(EngineKind::kPostgresSR, 10.0, PhysicalSchema::kAllIndexes);
  const GridGraph on_grid = RunGrid(&on_env, "mode ON");
  PrintFrontierSummary("PostgreSQL-SR ON SF10", on_grid);
  PrintGridCsv("PostgreSQL-SR ON SF10", on_grid);
  const auto on_freshness = MeasureRatioFreshness(
      MakeRunner(on_env.driver.get(), DefaultRunConfig()), on_grid.tau_max,
      on_grid.alpha_max);
  PrintRatioFreshness("PostgreSQL-SR ON SF10", on_freshness);

  BenchEnv ra_env = MakeEnv(EngineKind::kPostgresSRRA, 10.0,
                            PhysicalSchema::kAllIndexes);
  const GridGraph ra_grid = RunGrid(&ra_env, "mode RA");
  PrintFrontierSummary("PostgreSQL-SR RA SF10", ra_grid);
  PrintGridCsv("PostgreSQL-SR RA SF10", ra_grid);
  const auto ra_freshness = MeasureRatioFreshness(
      MakeRunner(ra_env.driver.get(), DefaultRunConfig()), ra_grid.tau_max,
      ra_grid.alpha_max);
  PrintRatioFreshness("PostgreSQL-SR RA SF10", ra_freshness);

  PlotFrontiers({"ON", "RA"}, {&on_grid, &ra_grid});

  std::printf("\n# shape checks\n");
  std::printf("RA max-T below ON max-T:   %s (%.0f vs %.0f)\n",
              ra_grid.xt < on_grid.xt ? "yes" : "NO", ra_grid.xt,
              on_grid.xt);
  bool ra_fresh = true;
  for (const auto& row : ra_freshness) {
    if (row.p99 > 0) ra_fresh = false;
  }
  std::printf("RA freshness always zero:  %s\n", ra_fresh ? "yes" : "NO");
  bool on_stale = false;
  for (const auto& row : on_freshness) {
    if (row.p99 > 0) on_stale = true;
  }
  std::printf("ON shows stale queries:    %s\n", on_stale ? "yes" : "NO");
  std::printf("both above proportional:   %s (%.3f, %.3f)\n",
              FrontierCoverage(on_grid) > 0.5 &&
                      FrontierCoverage(ra_grid) > 0.5
                  ? "yes"
                  : "NO",
              FrontierCoverage(on_grid), FrontierCoverage(ra_grid));
  return 0;
}
