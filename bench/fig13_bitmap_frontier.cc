// Figure 13 (repo extension, not in the paper): System-X with the
// merge-before-read protocol (eager) vs the bitmap-versioned column
// store, same saturation method as Figure 9.
//
// Expected shape: max-T unchanged (the T path appends versions instead
// of queueing delta records — same order of work); at high T-rates the
// bitmap frontier holds more analytical throughput, because analytics
// no longer serialize behind a merge whose size grows with the T-rate
// (folds run in the background and are charged to the A core pool);
// freshness stays ~0 in both modes (both snapshot at the newest
// committed CSN).

#include <algorithm>
#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

namespace {

/// Best analytical throughput the frontier holds while the system keeps
/// at least 70% of its peak T-rate — the paper's "analytics under a
/// heavy transactional load" regime.
double QpsNearMaxT(const GridGraph& grid) {
  double best = 0;
  for (const OperatingPoint& p : grid.frontier) {
    if (p.tps >= 0.7 * grid.xt) best = std::max(best, p.qps);
  }
  return best;
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 13: System-X, eager merge vs bitmap-versioned column "
      "store (SF10) ===\n");
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  double worst_p99 = 0;
  for (const MergeMode mode : {MergeMode::kEager, MergeMode::kBitmap}) {
    const std::string label = mode == MergeMode::kEager
                                  ? "System-X eager SF10"
                                  : "System-X bitmap SF10";
    BenchEnv env = MakeEnv(EngineKind::kSystemX, 10.0,
                           PhysicalSchema::kSemiIndexes, {}, mode);
    const GridGraph grid = RunGrid(&env, label);
    PrintFrontierSummary(label, grid, /*per_point_metrics=*/true);
    PrintGridCsv(label, grid);
    const auto freshness = MeasureRatioFreshness(
        MakeRunner(env.driver.get(), DefaultRunConfig()), grid.tau_max,
        grid.alpha_max);
    PrintRatioFreshness(label, freshness);
    for (const auto& row : freshness) {
      worst_p99 = std::max(worst_p99, row.p99);
    }
    grids.push_back(grid);
    labels.push_back(label);
  }
  PlotFrontiers(labels, {&grids[0], &grids[1]});

  const GridGraph& eager = grids[0];
  const GridGraph& bitmap = grids[1];
  std::printf("\n# shape checks\n");
  std::printf("max-T comparable:        %s (%.0f vs %.0f)\n",
              bitmap.xt > eager.xt * 0.9 ? "yes" : "NO", eager.xt,
              bitmap.xt);
  std::printf("bitmap A at high T-rate: %s (%.2f >= %.2f qps)\n",
              QpsNearMaxT(bitmap) >= QpsNearMaxT(eager) ? "yes" : "NO",
              QpsNearMaxT(bitmap), QpsNearMaxT(eager));
  std::printf("coverage not worse:      %s (%.3f vs %.3f)\n",
              FrontierCoverage(bitmap) >= FrontierCoverage(eager) - 0.02
                  ? "yes"
                  : "NO",
              FrontierCoverage(eager), FrontierCoverage(bitmap));
  std::printf("freshness ~0 both modes: %s (worst p99 %.6f s)\n",
              worst_p99 <= 1e-6 ? "yes" : "NO", worst_p99);
  std::printf("bitmap envelops eager:   %s\n",
              Envelops(bitmap, eager) ? "yes" : "no (report only)");
  return 0;
}
