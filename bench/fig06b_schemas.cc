// Figure 6b reproduction: PostgreSQL at SF10 under three physical
// schemas — no indexes / T-accelerating ("semi") indexes / all indexes.
//
// Expected shape (Section 6.2): all-indexes achieves the best overall
// frontier; semi next; no-indexes worst (transactions degenerate to
// sequential scans). Semi beats all on *maximum T throughput* because
// the extra analytical indexes must be maintained by every insert.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf("=== Figure 6b: PostgreSQL physical schemas (SF10) ===\n");
  const PhysicalSchema schemas[] = {PhysicalSchema::kNoIndexes,
                                    PhysicalSchema::kSemiIndexes,
                                    PhysicalSchema::kAllIndexes};
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  for (const PhysicalSchema physical : schemas) {
    const std::string label =
        std::string("PostgreSQL SF10 ") + PhysicalSchemaName(physical);
    BenchEnv env = MakeEnv(EngineKind::kPostgres, 10.0, physical);
    const GridGraph grid = RunGrid(&env, label);
    PrintFrontierSummary(label, grid);
    PrintGridCsv(label, grid);
    grids.push_back(grid);
    labels.push_back(PhysicalSchemaName(physical));
  }
  PlotFrontiers(labels, {&grids[0], &grids[1], &grids[2]});

  std::printf("\n# shape checks\n");
  std::printf("all envelops none:        %s\n",
              Envelops(grids[2], grids[0]) ? "yes" : "NO");
  std::printf("semi max-T >= all max-T:  %s (%.0f vs %.0f)\n",
              grids[1].xt >= grids[2].xt * 0.98 ? "yes" : "NO",
              grids[1].xt, grids[2].xt);
  std::printf("all max-A > semi max-A:   %s (%.2f vs %.2f)\n",
              grids[2].xa > grids[1].xa ? "yes" : "NO", grids[2].xa,
              grids[1].xa);
  std::printf("none max-T far lowest:    %s (%.0f vs %.0f)\n",
              grids[0].xt < grids[1].xt * 0.25 ? "yes" : "NO", grids[0].xt,
              grids[1].xt);
  return 0;
}
