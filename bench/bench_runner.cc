// bench_runner — perf-regression snapshot generator.
//
// Runs a fixed benchmark recipe on the virtual-time simulator and writes
// a versioned BENCH_<name>.json snapshot: throughput, freshness,
// tail-latency summaries per transaction type and per query, per-query
// EXPLAIN ANALYZE digests (plan shape + metered counters), and a small
// operating-point sweep for the p99-vs-throughput percentile curves.
//
// Everything runs on the simulator with a fixed seed and all floats are
// formatted with %.9g, so two runs of the same binary emit byte-identical
// snapshots; scripts/bench_compare.py diffs two snapshots with tolerance
// bands and exits non-zero on a regression (the CI bench-smoke job gates
// on the checked-in BENCH_smoke.json baseline).
//
// Flags:
//   --name      snapshot name                        (default "smoke")
//   --out       output path                          (default BENCH_<name>.json)
//   --sf        scale factor                         (default 1)
//   --t, --a    profiled operating point             (default 4 / 2)
//   --warmup, --measure  period lengths in virtual s (default 0.25 / 1)
//   --seed      workload seed                        (default 7)
//   --dop       intra-query parallelism              (default 1)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/support.h"
#include "tools/flags.h"

namespace hattrick {
namespace bench {
namespace {

/// Deterministic fixed-format float (same convention as the metrics and
/// profile exports).
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string U64(uint64_t v) { return std::to_string(v); }

std::string SummaryJson(const LatencySummary& s) {
  return "{\"p50\":" + Num(s.p50) + ",\"p95\":" + Num(s.p95) +
         ",\"p99\":" + Num(s.p99) + "}";
}

struct SystemRecipe {
  const char* label;  // key in the snapshot (stable across runs)
  EngineKind kind;
  PhysicalSchema physical;
};

}  // namespace

int Main(int argc, char** argv) {
  const tools::Flags flags(argc, argv);
  const std::string name = flags.GetString("name", "smoke");
  const std::string out_path =
      flags.GetString("out", "BENCH_" + name + ".json");
  const double sf = flags.GetDouble("sf", 1.0);

  WorkloadConfig base;
  base.t_clients = flags.GetInt("t", 4);
  base.a_clients = flags.GetInt("a", 2);
  base.warmup_seconds = flags.GetDouble("warmup", 0.25);
  base.measure_seconds = flags.GetDouble("measure", 1.0);
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  base.dop = flags.GetBoundedInt("dop", 1, 1, 64);

  // One representative per design class (shared / isolated / hybrid).
  const SystemRecipe kSystems[] = {
      {"shared", EngineKind::kPostgres, PhysicalSchema::kAllIndexes},
      {"isolated", EngineKind::kPostgresSR, PhysicalSchema::kAllIndexes},
      {"hybrid", EngineKind::kSystemX, PhysicalSchema::kSemiIndexes},
  };
  // The percentile-curve sweep: load rises left to right.
  const int kSweep[][2] = {{2, 1}, {4, 2}, {8, 4}};

  std::string json = "{\"bench_format\":1,\"name\":\"" + name + "\"";
  json += ",\"config\":{\"sf\":" + Num(sf) +
          ",\"seed\":" + U64(base.seed) +
          ",\"t_clients\":" + std::to_string(base.t_clients) +
          ",\"a_clients\":" + std::to_string(base.a_clients) +
          ",\"warmup_s\":" + Num(base.warmup_seconds) +
          ",\"measure_s\":" + Num(base.measure_seconds) +
          ",\"dop\":" + std::to_string(base.dop) + "}";
  json += ",\"systems\":[";

  for (size_t s = 0; s < sizeof(kSystems) / sizeof(kSystems[0]); ++s) {
    const SystemRecipe& recipe = kSystems[s];
    std::fprintf(stderr, "bench_runner: %s (%s, sf=%g)...\n", recipe.label,
                 EngineKindName(recipe.kind), sf);
    BenchEnv env = MakeEnv(recipe.kind, sf, recipe.physical);

    WorkloadConfig run = base;
    run.profile_queries = true;
    const RunMetrics metrics = env.driver->Run(run);

    if (s > 0) json += ",";
    json += "{\"system\":\"" + std::string(recipe.label) + "\"";
    json += ",\"engine\":\"" + std::string(EngineKindName(recipe.kind)) +
            "\"";
    json += ",\"tps\":" + Num(metrics.t_throughput);
    json += ",\"qps\":" + Num(metrics.a_throughput);
    json += ",\"committed\":" + U64(metrics.committed);
    json += ",\"aborts\":" + U64(metrics.aborts);
    json += ",\"queries\":" + U64(metrics.queries);
    json += ",\"freshness_p50_s\":" +
            Num(metrics.freshness.empty() ? 0.0
                                          : metrics.freshness.Percentile(0.5));
    json += ",\"freshness_p99_s\":" +
            Num(metrics.freshness.empty()
                    ? 0.0
                    : metrics.freshness.Percentile(0.99));

    json += ",\"txn_latency_s\":{\"all\":" +
            SummaryJson(Summarize(metrics.txn_latency));
    for (int t = 0; t < 3; ++t) {
      json += std::string(",\"") + TxnTypeName(static_cast<TxnType>(t)) +
              "\":" + SummaryJson(Summarize(metrics.txn_latency_by_type[t]));
    }
    json += "}";

    json += ",\"query_latency_s\":{\"all\":" +
            SummaryJson(Summarize(metrics.query_latency));
    for (int q = 0; q < kNumQueries; ++q) {
      json += std::string(",\"") + QueryName(q) + "\":" +
              SummaryJson(Summarize(metrics.query_latency_by_id[q]));
    }
    json += "}";

    // Per-query profile digests: plan shape + rows + work per execution.
    // The result checksum is intentionally absent (it folds
    // std::hash<std::string>, which is platform-dependent); rows and the
    // digest are the portable correctness surface.
    json += ",\"query_profiles\":[";
    bool first_profile = true;
    for (int q = 0; q < kNumQueries; ++q) {
      const obs::PlanProfile& profile = metrics.query_profiles[q];
      if (profile.empty()) continue;
      uint64_t root_rows = 0;
      uint64_t root_work = 0;
      for (size_t i = 0; i < profile.size(); ++i) {
        if (profile.node(i).parent < 0) {
          root_rows += profile.node(i).rows_out;
          root_work += profile.node(i).work_units;
        }
      }
      if (!first_profile) json += ",";
      first_profile = false;
      json += std::string("{\"query\":\"") + QueryName(q) + "\"" +
              ",\"executions\":" + U64(profile.executions()) +
              ",\"rows_per_exec\":" + U64(root_rows / profile.executions()) +
              ",\"work_per_exec\":" + U64(root_work / profile.executions()) +
              ",\"digest\":\"" + profile.Digest() + "\"}";
    }
    json += "]";

    // Small operating-point sweep for the p99-vs-throughput curves
    // (plot_figures.py --bench renders them).
    json += ",\"points\":[";
    for (size_t p = 0; p < sizeof(kSweep) / sizeof(kSweep[0]); ++p) {
      WorkloadConfig point = base;
      point.t_clients = kSweep[p][0];
      point.a_clients = kSweep[p][1];
      const RunMetrics pm = env.driver->Run(point);
      if (p > 0) json += ",";
      json += "{\"t\":" + std::to_string(point.t_clients) +
              ",\"a\":" + std::to_string(point.a_clients) +
              ",\"tps\":" + Num(pm.t_throughput) +
              ",\"qps\":" + Num(pm.a_throughput) +
              ",\"txn_p99_s\":" + Num(Summarize(pm.txn_latency).p99) +
              ",\"query_p99_s\":" + Num(Summarize(pm.query_latency).p99) +
              "}";
    }
    json += "]}";
  }
  json += "]}\n";

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_runner: cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  if (!out.good()) return 1;
  std::fprintf(stderr, "bench_runner: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace hattrick

int main(int argc, char** argv) {
  return hattrick::bench::Main(argc, argv);
}
