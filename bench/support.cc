#include "bench/support.h"

#include <cassert>
#include <cstdio>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"

namespace hattrick {
namespace bench {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPostgres:
      return "PostgreSQL";
    case EngineKind::kPostgresRC:
      return "PostgreSQL-RC";
    case EngineKind::kPostgresSR:
      return "PostgreSQL-SR";
    case EngineKind::kPostgresSRRA:
      return "PostgreSQL-SR-RA";
    case EngineKind::kSystemX:
      return "System-X";
    case EngineKind::kTidb:
      return "TiDB";
    case EngineKind::kTidbDist:
      return "TiDB-Dist";
  }
  return "?";
}

BenchEnv MakeEnv(EngineKind kind, double scale_factor,
                 PhysicalSchema physical, const FaultConfig& fault,
                 MergeMode merge_mode) {
  BenchEnv env;
  DatagenConfig datagen;
  datagen.scale_factor = scale_factor;
  datagen.lineorders_per_sf = kLineordersPerSf;
  datagen.seed = kDatagenSeed;
  datagen.num_freshness_tables = kFreshnessTables;
  env.dataset = GenerateDataset(datagen);

  SimSetup setup;
  switch (kind) {
    case EngineKind::kPostgres: {
      SharedEngineConfig config;
      config.name = "PostgreSQL";
      config.isolation = IsolationLevel::kSerializable;
      env.engine = std::make_unique<SharedEngine>(config);
      setup = SharedSimSetup();
      break;
    }
    case EngineKind::kPostgresRC: {
      SharedEngineConfig config;
      config.name = "PostgreSQL-RC";
      config.isolation = IsolationLevel::kReadCommitted;
      env.engine = std::make_unique<SharedEngine>(config);
      setup = SharedSimSetup();
      break;
    }
    case EngineKind::kPostgresSR: {
      IsolatedEngineConfig config;
      config.name = "PostgreSQL-SR";
      config.mode = ReplicationMode::kSyncShip;
      config.fault = fault;
      env.engine = std::make_unique<IsolatedEngine>(config);
      setup = IsolatedSimSetup();
      break;
    }
    case EngineKind::kPostgresSRRA: {
      IsolatedEngineConfig config;
      config.name = "PostgreSQL-SR-RA";
      config.mode = ReplicationMode::kRemoteApply;
      config.fault = fault;
      env.engine = std::make_unique<IsolatedEngine>(config);
      setup = IsolatedSimSetup();
      break;
    }
    case EngineKind::kSystemX: {
      HybridEngineConfig config = SystemXConfig();
      config.merge_mode = merge_mode;
      env.engine = std::make_unique<HybridEngine>(config);
      setup = HybridSimSetup();
      break;
    }
    case EngineKind::kTidb: {
      HybridEngineConfig config = TidbConfig();
      config.merge_mode = merge_mode;
      env.engine = std::make_unique<HybridEngine>(config);
      setup = HybridSimSetup();
      break;
    }
    case EngineKind::kTidbDist: {
      HybridEngineConfig config = TidbConfig();
      config.name = "TiDB-Dist";
      config.merge_mode = merge_mode;
      env.engine = std::make_unique<HybridEngine>(config);
      setup = TidbDistSimSetup();
      break;
    }
  }

  const Status status = LoadDataset(env.dataset, physical, env.engine.get());
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  env.context = std::make_unique<WorkloadContext>(env.dataset);
  env.driver = std::make_unique<SimDriver>(env.engine.get(),
                                           env.context.get(), setup);
  return env;
}

WorkloadConfig DefaultRunConfig() {
  WorkloadConfig config;
  config.warmup_seconds = 0.25;
  config.measure_seconds = 1.0;
  config.seed = 7;
  return config;
}

FrontierOptions DefaultFrontierOptions() {
  FrontierOptions options;
  options.lines = 5;
  options.points_per_line = 5;
  options.max_clients = 32;
  return options;
}

GridGraph RunGrid(BenchEnv* env, const std::string& label) {
  std::printf("# building grid graph for %s\n", label.c_str());
  std::fflush(stdout);
  const GridGraph grid = BuildGridGraph(
      MakeRunner(env->driver.get(), DefaultRunConfig()),
      DefaultFrontierOptions(), [](const std::string&) {
        std::fputc('.', stdout);
        std::fflush(stdout);
      });
  std::printf("\n");
  return grid;
}

void ReportSystem(BenchEnv* env, const std::string& label,
                  const GridGraph& grid) {
  PrintFrontierSummary(label, grid);
  PrintGridCsv(label, grid);
  const auto freshness = MeasureRatioFreshness(
      MakeRunner(env->driver.get(), DefaultRunConfig()), grid.tau_max,
      grid.alpha_max);
  PrintRatioFreshness(label, freshness);
}

}  // namespace bench
}  // namespace hattrick
