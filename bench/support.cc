#include "bench/support.h"

#include <cassert>
#include <cstdio>

#include <cstdlib>

#include "engine/engine_factory.h"
#include "shard/shard_router.h"
#include "shard/sharded_engine.h"

namespace hattrick {
namespace bench {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPostgres:
      return "PostgreSQL";
    case EngineKind::kPostgresRC:
      return "PostgreSQL-RC";
    case EngineKind::kPostgresSR:
      return "PostgreSQL-SR";
    case EngineKind::kPostgresSRRA:
      return "PostgreSQL-SR-RA";
    case EngineKind::kSystemX:
      return "System-X";
    case EngineKind::kTidb:
      return "TiDB";
    case EngineKind::kTidbDist:
      return "TiDB-Dist";
  }
  return "?";
}

bool ParseEngineKind(const std::string& name, EngineKind* kind) {
  if (name == "postgres" || name == "shared") {
    *kind = EngineKind::kPostgres;
  } else if (name == "postgres-rc") {
    *kind = EngineKind::kPostgresRC;
  } else if (name == "postgres-sr" || name == "isolated") {
    *kind = EngineKind::kPostgresSR;
  } else if (name == "postgres-sr-ra") {
    *kind = EngineKind::kPostgresSRRA;
  } else if (name == "system-x" || name == "hybrid") {
    *kind = EngineKind::kSystemX;
  } else if (name == "tidb") {
    *kind = EngineKind::kTidb;
  } else if (name == "tidb-dist") {
    *kind = EngineKind::kTidbDist;
  } else {
    return false;
  }
  return true;
}

bool ParseDistModel(const std::string& name, DistModel* model) {
  if (name == "surcharge") {
    *model = DistModel::kSurcharge;
  } else if (name == "sharded") {
    *model = DistModel::kSharded;
  } else {
    return false;
  }
  return true;
}

DistModel DefaultDistModel() {
  const char* env = std::getenv("HATTRICK_DIST_MODEL");
  if (env == nullptr || *env == '\0') return DistModel::kSharded;
  DistModel model;
  if (!ParseDistModel(env, &model)) {
    std::fprintf(stderr,
                 "unknown HATTRICK_DIST_MODEL '%s' (expected surcharge or "
                 "sharded)\n",
                 env);
    std::abort();
  }
  return model;
}

uint32_t DefaultShards() {
  const char* env = std::getenv("HATTRICK_SHARDS");
  if (env == nullptr || *env == '\0') return 3;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 1) {
    std::fprintf(stderr,
                 "invalid HATTRICK_SHARDS '%s' (expected a positive "
                 "integer)\n",
                 env);
    std::abort();
  }
  return static_cast<uint32_t>(value);
}

EngineKind EngineKindFromNameOrDie(const std::string& name) {
  EngineKind kind;
  if (!ParseEngineKind(name, &kind)) {
    std::fprintf(stderr,
                 "unknown setup name '%s' (expected postgres, postgres-rc, "
                 "postgres-sr, postgres-sr-ra, system-x, tidb, or "
                 "tidb-dist)\n",
                 name.c_str());
    std::abort();
  }
  return kind;
}

BenchEnv MakeEnv(EngineKind kind, double scale_factor,
                 PhysicalSchema physical, const FaultConfig& fault,
                 MergeMode merge_mode, DistModel dist_model,
                 uint32_t shards) {
  BenchEnv env;
  DatagenConfig datagen;
  datagen.scale_factor = scale_factor;
  datagen.lineorders_per_sf = kLineordersPerSf;
  datagen.seed = kDatagenSeed;
  datagen.num_freshness_tables = kFreshnessTables;
  env.dataset = GenerateDataset(datagen);

  SimSetup setup;
  switch (kind) {
    case EngineKind::kPostgres: {
      SharedEngineConfig config;
      config.name = "PostgreSQL";
      config.isolation = IsolationLevel::kSerializable;
      env.engine = MakeSharedEngine(config);
      setup = SharedSimSetup();
      break;
    }
    case EngineKind::kPostgresRC: {
      SharedEngineConfig config;
      config.name = "PostgreSQL-RC";
      config.isolation = IsolationLevel::kReadCommitted;
      env.engine = MakeSharedEngine(config);
      setup = SharedSimSetup();
      break;
    }
    case EngineKind::kPostgresSR: {
      IsolatedEngineConfig config;
      config.name = "PostgreSQL-SR";
      config.mode = ReplicationMode::kSyncShip;
      config.fault = fault;
      env.engine = MakeIsolatedEngine(config);
      setup = IsolatedSimSetup();
      break;
    }
    case EngineKind::kPostgresSRRA: {
      IsolatedEngineConfig config;
      config.name = "PostgreSQL-SR-RA";
      config.mode = ReplicationMode::kRemoteApply;
      config.fault = fault;
      env.engine = MakeIsolatedEngine(config);
      setup = IsolatedSimSetup();
      break;
    }
    case EngineKind::kSystemX: {
      HybridEngineConfig config = SystemXConfig();
      config.merge_mode = merge_mode;
      env.engine = MakeHybridEngine(config);
      setup = HybridSimSetup();
      break;
    }
    case EngineKind::kTidb: {
      HybridEngineConfig config = TidbConfig();
      config.merge_mode = merge_mode;
      env.engine = MakeHybridEngine(config);
      setup = HybridSimSetup();
      break;
    }
    case EngineKind::kTidbDist: {
      if (dist_model == DistModel::kSharded) {
        ShardedEngineConfig config;
        config.name = "TiDB-Dist";
        config.shards = shards;
        config.seed = kDatagenSeed;
        config.plan = MakeSsbShardPlan(kFreshnessTables);
        config.node = TidbConfig();
        config.node.merge_mode = merge_mode;
        config.fault = fault;
        env.engine = std::make_unique<ShardedEngine>(config);
        setup = ShardedSimSetup(shards);
      } else {
        HybridEngineConfig config = TidbConfig();
        config.name = "TiDB-Dist";
        config.merge_mode = merge_mode;
        env.engine = MakeHybridEngine(config);
        setup = TidbDistSimSetup();
      }
      break;
    }
  }

  const Status status = LoadDataset(env.dataset, physical, env.engine.get());
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  env.context = std::make_unique<WorkloadContext>(env.dataset);
  env.driver = std::make_unique<SimDriver>(env.engine.get(),
                                           env.context.get(), setup);
  return env;
}

WorkloadConfig DefaultRunConfig() {
  WorkloadConfig config;
  config.warmup_seconds = 0.25;
  config.measure_seconds = 1.0;
  config.seed = 7;
  return config;
}

FrontierOptions DefaultFrontierOptions() {
  FrontierOptions options;
  options.lines = 5;
  options.points_per_line = 5;
  options.max_clients = 32;
  return options;
}

GridGraph RunGrid(BenchEnv* env, const std::string& label) {
  std::printf("# building grid graph for %s\n", label.c_str());
  std::fflush(stdout);
  const GridGraph grid = BuildGridGraph(
      MakeRunner(env->driver.get(), DefaultRunConfig()),
      DefaultFrontierOptions(), [](const std::string&) {
        std::fputc('.', stdout);
        std::fflush(stdout);
      });
  std::printf("\n");
  return grid;
}

void ReportSystem(BenchEnv* env, const std::string& label,
                  const GridGraph& grid) {
  PrintFrontierSummary(label, grid);
  PrintGridCsv(label, grid);
  const auto freshness = MeasureRatioFreshness(
      MakeRunner(env->driver.get(), DefaultRunConfig()), grid.tau_max,
      grid.alpha_max);
  PrintRatioFreshness(label, freshness);
}

}  // namespace bench
}  // namespace hattrick
