// Ablation: standby replay speed vs freshness. Sweeps the replay-cost
// multiplier of the isolated engine (mode ON) at a T-heavy mix and
// reports throughput and freshness — isolating the mechanism behind the
// paper's Figure 7/8 staleness: once the single-threaded applier's
// capacity falls below the primary's commit rate, the analytical
// snapshot ages.

#include <cstdio>

#include "bench/support.h"
#include "engine/engine_factory.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf("=== Ablation: standby replay speed vs freshness ===\n");
  DatagenConfig datagen;
  datagen.scale_factor = 10.0;
  datagen.lineorders_per_sf = kLineordersPerSf;
  datagen.seed = kDatagenSeed;
  datagen.num_freshness_tables = kFreshnessTables;
  const Dataset dataset = GenerateDataset(datagen);

  std::printf(
      "replay_multiplier,tps,qps,fresh_fraction,freshness_p99_s\n");
  for (const double multiplier : {0.5, 1.0, 1.3, 2.0, 4.0, 8.0}) {
    IsolatedEngineConfig config;
    config.mode = ReplicationMode::kSyncShip;
    const std::unique_ptr<HtapEngine> engine = MakeIsolatedEngine(config);
    const Status status =
        LoadDataset(dataset, PhysicalSchema::kAllIndexes, engine.get());
    if (!status.ok()) std::abort();
    WorkloadContext context(dataset);
    SimSetup setup = IsolatedSimSetup();
    setup.cost.replay_multiplier = multiplier;
    SimDriver driver(engine.get(), &context, setup);
    WorkloadConfig run = DefaultRunConfig();
    run.t_clients = 12;
    run.a_clients = 3;
    run.measure_seconds = 1.5;
    const RunMetrics metrics = driver.Run(run);
    std::printf("%.1f,%.1f,%.2f,%.3f,%.4f\n", multiplier,
                metrics.t_throughput, metrics.a_throughput,
                metrics.freshness.empty() ? 1.0
                                          : metrics.freshness.CdfAt(1e-3),
                metrics.freshness.empty()
                    ? 0.0
                    : metrics.freshness.Percentile(0.99));
    std::fflush(stdout);
  }
  std::printf(
      "\n# expectation: freshness degrades monotonically once replay\n"
      "# capacity < commit rate; T throughput is unaffected (mode ON\n"
      "# ships synchronously but never waits for replay)\n");
  return 0;
}
