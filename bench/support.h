#ifndef HATTRICK_BENCH_SUPPORT_H_
#define HATTRICK_BENCH_SUPPORT_H_

#include <memory>
#include <string>

#include "engine/engine_config.h"
#include "engine/htap_engine.h"
#include "fault/fault_injector.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"
#include "hattrick/frontier.h"
#include "hattrick/report.h"

namespace hattrick {
namespace bench {

/// The systems the paper evaluates (Section 6), mapped to this repo's
/// engines and simulated deployments (see DESIGN.md):
///  - kPostgres:     SharedEngine, serializable, one node.
///  - kPostgresRC:   SharedEngine, read committed (Figure 6a).
///  - kPostgresSR:   IsolatedEngine, synchronous_commit=ON, two nodes.
///  - kPostgresSRRA: IsolatedEngine, remote_apply (Figure 8a).
///  - kSystemX:      HybridEngine, OCC serializable, one node.
///  - kTidb:         HybridEngine, snapshot isolation, one node.
///  - kTidbDist:     distributed deployment — a real ShardedEngine by
///                   default, or the legacy flat-surcharge HybridEngine
///                   (see DistModel).
enum class EngineKind {
  kPostgres,
  kPostgresRC,
  kPostgresSR,
  kPostgresSRRA,
  kSystemX,
  kTidb,
  kTidbDist,
};

/// How kTidbDist models distribution:
///  - kSharded (default): N-shard ShardedEngine (hash routing, 2PC,
///    per-shard replication chains) on ShardedSimSetup(N) — coordination
///    latency is charged per participant via TxnOutcome::shards_touched.
///  - kSurcharge: the pre-sharding model — one HybridEngine with
///    TidbDistSimSetup()'s flat per-transaction latency surcharge. Kept
///    as a fallback and as the baseline fig11 compares against.
enum class DistModel {
  kSurcharge,
  kSharded,
};

/// Parses "surcharge" / "sharded". Returns false on an unknown name.
bool ParseDistModel(const std::string& name, DistModel* model);

/// HATTRICK_DIST_MODEL environment override, else kSharded. Aborts with
/// a one-line error on an unknown value.
DistModel DefaultDistModel();

/// HATTRICK_SHARDS environment override (strict positive integer; aborts
/// loudly on junk), else 3 — the paper testbed's TiKV node count.
uint32_t DefaultShards();

/// Returns the display name used in the output ("PostgreSQL", ...).
const char* EngineKindName(EngineKind kind);

/// Parses a setup name ("postgres", "postgres-rc", "postgres-sr",
/// "postgres-sr-ra", "system-x", "tidb", "tidb-dist", plus the aliases
/// "shared", "isolated", "hybrid"). Returns false on an unknown name —
/// callers must report the error, never fall back to a default setup.
bool ParseEngineKind(const std::string& name, EngineKind* kind);

/// ParseEngineKind, or a one-line error on stderr and abort. Benches use
/// this so a typoed setup name fails loudly instead of silently
/// benchmarking the wrong system.
EngineKind EngineKindFromNameOrDie(const std::string& name);

/// A loaded engine + workload context + virtual-time driver.
struct BenchEnv {
  Dataset dataset;
  std::unique_ptr<HtapEngine> engine;
  std::unique_ptr<WorkloadContext> context;
  std::unique_ptr<SimDriver> driver;
};

/// Benchmark-wide scaling: the paper's SF ladder scaled ~2000x down
/// (DESIGN.md). SF1/SF10/SF100 give 2k/20k/200k lineorders.
inline constexpr size_t kLineordersPerSf = 2000;
inline constexpr uint32_t kFreshnessTables = 48;
inline constexpr uint64_t kDatagenSeed = 42;

/// Builds, loads, and wires up a system at `scale_factor`. `fault`
/// (default: disabled) attaches replication-layer fault injection to the
/// isolated engines (kPostgresSR / kPostgresSRRA); other kinds have no
/// replication channel and ignore it. `merge_mode` (default: the
/// HATTRICK_MERGE_MODE environment override, else eager) selects the
/// hybrid engines' delta-visibility protocol; the shared and isolated
/// kinds have no column copy and ignore it. `dist_model` and `shards`
/// apply only to kTidbDist (other kinds are single-node and ignore
/// both); with kSharded, `fault` attaches to the per-shard replication
/// chains instead.
BenchEnv MakeEnv(EngineKind kind, double scale_factor,
                 PhysicalSchema physical, const FaultConfig& fault = {},
                 MergeMode merge_mode = DefaultMergeMode(),
                 DistModel dist_model = DefaultDistModel(),
                 uint32_t shards = DefaultShards());

/// Default measurement procedure for the figure benches. Execution mode
/// follows the WorkloadConfig defaults: vectorized, with the batch width
/// taken from HATTRICK_BATCH_ROWS when set (else 1024) — metered work is
/// mode-independent, so figures are identical either way.
WorkloadConfig DefaultRunConfig();

/// Default saturation-method options.
FrontierOptions DefaultFrontierOptions();

/// Runs the full saturation method on `env` and prints progress dots.
GridGraph RunGrid(BenchEnv* env, const std::string& label);

/// Prints everything the paper's per-system figures contain: fixed-T /
/// fixed-A lines, the frontier, summary metrics, and the freshness scores
/// at the 20:80 / 50:50 / 80:20 ratio points.
void ReportSystem(BenchEnv* env, const std::string& label,
                  const GridGraph& grid);

}  // namespace bench
}  // namespace hattrick

#endif  // HATTRICK_BENCH_SUPPORT_H_
