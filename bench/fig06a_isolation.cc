// Figure 6a reproduction: PostgreSQL at SF10 under serializable vs read
// committed isolation.
//
// Expected shape (Section 6.2): read committed achieves higher T and A
// throughput over almost the whole frontier (no OCC read validation, no
// snapshot write-write aborts, cheaper reads); both frontiers sit close
// to their proportional lines.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf(
      "=== Figure 6a: PostgreSQL isolation levels (SF10) ===\n");
  BenchEnv serializable =
      MakeEnv(EngineKind::kPostgres, 10.0, PhysicalSchema::kAllIndexes);
  const GridGraph ser_grid = RunGrid(&serializable, "serializable");
  ReportSystem(&serializable, "PostgreSQL serializable SF10", ser_grid);

  BenchEnv read_committed =
      MakeEnv(EngineKind::kPostgresRC, 10.0, PhysicalSchema::kAllIndexes);
  const GridGraph rc_grid = RunGrid(&read_committed, "read committed");
  ReportSystem(&read_committed, "PostgreSQL read-committed SF10", rc_grid);

  PlotFrontiers({"serializable", "read committed"}, {&ser_grid, &rc_grid});

  std::printf("\n# shape checks\n");
  std::printf("read-committed max-T >= serializable: %s (%.0f vs %.0f)\n",
              rc_grid.xt >= ser_grid.xt * 0.98 ? "yes" : "NO", rc_grid.xt,
              ser_grid.xt);
  std::printf("both near proportional line:          %s (%.3f, %.3f)\n",
              FrontierCoverage(ser_grid) > 0.35 &&
                      FrontierCoverage(rc_grid) > 0.35
                  ? "yes"
                  : "NO",
              FrontierCoverage(ser_grid), FrontierCoverage(rc_grid));
  return 0;
}
