// Micro-benchmarks of the storage and transaction substrates
// (google-benchmark): B+-tree operations, MVCC row store, columnar
// scans, key encoding, WAL encode/decode, and data generation.

#include <benchmark/benchmark.h>

#include "common/key_encoding.h"
#include "common/rng.h"
#include "hattrick/datagen.h"
#include "storage/btree.h"
#include "storage/column_table.h"
#include "storage/row_table.h"
#include "txn/wal.h"

namespace hattrick {
namespace {

std::string IntKey(int64_t v) {
  std::string out;
  key::EncodeInt64(v, &out);
  return out;
}

void BM_BTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    BTree tree;
    Rng rng(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(IntKey(static_cast<int64_t>(rng.Next() % 1000000)), i,
                  nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  BTree tree;
  for (int64_t i = 0; i < n; ++i) tree.Insert(IntKey(i), i, nullptr);
  Rng rng(2);
  uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(IntKey(rng.Uniform(0, n - 1)), &value, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  BTree tree;
  for (int64_t i = 0; i < 100000; ++i) tree.Insert(IntKey(i), i, nullptr);
  const int64_t width = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    const int64_t lo = rng.Uniform(0, 100000 - width);
    size_t count = 0;
    tree.ScanRange(IntKey(lo), IntKey(lo + width),
                   [&](const std::string&, uint64_t) {
                     ++count;
                     return true;
                   },
                   nullptr);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

void BM_RowTableRead(benchmark::State& state) {
  RowTable table(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}}));
  for (int64_t i = 0; i < 100000; ++i) {
    table.Insert(Row{i, static_cast<double>(i)}, 1, nullptr);
  }
  Rng rng(4);
  Row out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Read(static_cast<Rid>(rng.Uniform(0, 99999)), 1, &out,
                   nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowTableRead);

void BM_RowTableScan(benchmark::State& state) {
  RowTable table(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}}));
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    table.Insert(Row{i, static_cast<double>(i)}, 1, nullptr);
  }
  for (auto _ : state) {
    double sum = 0;
    table.Scan(1,
               [&](Rid, const Row& row) {
                 sum += row[1].AsDouble();
                 return true;
               },
               nullptr);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowTableScan)->Arg(10000)->Arg(100000);

void BM_VersionChainTraversal(benchmark::State& state) {
  // Reading an old snapshot must walk past `depth` newer versions.
  const int64_t depth = state.range(0);
  RowTable table(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  const Rid rid = table.Insert(Row{int64_t{0}, int64_t{0}}, 1, nullptr);
  for (int64_t i = 0; i < depth; ++i) {
    (void)table.AddVersion(rid, Row{int64_t{0}, i}, 10 + i, nullptr);
  }
  Row out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Read(rid, 1, &out, nullptr));
  }
}
BENCHMARK(BM_VersionChainTraversal)->Arg(1)->Arg(16)->Arg(256);

void BM_ColumnScanInts(benchmark::State& state) {
  ColumnTable table(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}}));
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)table.Append(Row{i, static_cast<double>(i)}, nullptr);
  }
  for (auto _ : state) {
    int64_t sum = 0;
    for (int64_t i = 0; i < n; ++i) sum += table.GetInt(0, i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColumnScanInts)->Arg(10000)->Arg(100000);

void BM_KeyEncodeComposite(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key::EncodeKey(
        {Value(static_cast<int64_t>(rng.Next())), Value("Customer#0042")}));
  }
}
BENCHMARK(BM_KeyEncodeComposite);

void BM_WalEncodeDecode(benchmark::State& state) {
  WalRecord record;
  record.lsn = 1;
  record.commit_ts = 2;
  for (int i = 0; i < 4; ++i) {
    record.ops.push_back(WalOp{
        WalOp::Kind::kInsert, 0, static_cast<Rid>(i), 0,
        Row{int64_t{1}, int64_t{2}, 3.5, std::string("REG AIR"),
            std::string("1-URGENT")}});
  }
  for (auto _ : state) {
    const std::string bytes = record.Encode();
    auto decoded = WalRecord::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WalEncodeDecode);

void BM_DatasetGeneration(benchmark::State& state) {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = state.range(0);
  for (auto _ : state) {
    const Dataset ds = GenerateDataset(config);
    benchmark::DoNotOptimize(ds.lineorder.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DatasetGeneration)->Arg(2000)->Arg(20000);

}  // namespace
}  // namespace hattrick

BENCHMARK_MAIN();
