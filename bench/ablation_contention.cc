// Ablation: the row-lock contention model and the commutative-delta
// escape hatch. Sweeps the lock-hold fraction (1.0 = pessimistic
// 2PL-style holds, 0.25 = optimistic validation-window holds, 0 =
// contention model off) on the shared engine at SF1 — the regime where
// the paper attributes poor frontiers to data contention (Sections 6.2,
// 6.4) — and runs each point twice: with Payment expressed as
// commutative deltas (BufferDelta, the lock-free MVCC hot path) and as
// legacy read-modify-write full updates.
//
// Expected: with full updates, pure-T throughput at SF1 falls sharply as
// the hold window grows (the hot SUPPLIER rows serialize payments) and
// validation aborts climb; with deltas the hold window shrinks to the
// install/publish instants (SimSetup::delta_hold_fraction) and deltas
// never write-write conflict, so throughput stays near the uncontended
// ceiling and aborts stay at zero. SF100 is insensitive either way (no
// hot rows).

#include <cstdio>

#include "bench/support.h"
#include "engine/engine_factory.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

namespace {

struct Point {
  double tps = 0;
  uint64_t aborts = 0;
  uint64_t committed = 0;
};

Point PureTThroughput(const Dataset& dataset, double hold_fraction,
                      bool payment_deltas, int t_clients) {
  const std::unique_ptr<HtapEngine> engine = MakeSharedEngine();
  const Status status =
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, engine.get());
  if (!status.ok()) std::abort();
  WorkloadContext context(dataset);
  context.payment_deltas = payment_deltas;
  SimSetup setup = SharedSimSetup();
  setup.lock_hold_fraction = hold_fraction;
  SimDriver driver(engine.get(), &context, setup);
  WorkloadConfig run = DefaultRunConfig();
  run.t_clients = t_clients;
  run.a_clients = 0;
  const RunMetrics metrics = driver.Run(run);
  return Point{metrics.t_throughput, metrics.aborts, metrics.committed};
}

}  // namespace

int main() {
  std::printf("=== Ablation: row-lock contention model ===\n");
  std::printf("sf,hold_fraction,writes,pure_t_tps,aborts\n");
  for (const double sf : {1.0, 100.0}) {
    DatagenConfig datagen;
    datagen.scale_factor = sf;
    datagen.lineorders_per_sf = kLineordersPerSf;
    datagen.seed = kDatagenSeed;
    datagen.num_freshness_tables = kFreshnessTables;
    const Dataset dataset = GenerateDataset(datagen);
    for (const bool deltas : {false, true}) {
      double first = 0;
      double last = 0;
      for (const double hold : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        const Point p =
            PureTThroughput(dataset, hold, deltas, /*t_clients=*/12);
        if (hold == 0.0) first = p.tps;
        last = p.tps;
        std::printf("%.0f,%.2f,%s,%.1f,%llu\n", sf, hold,
                    deltas ? "delta" : "full", p.tps,
                    static_cast<unsigned long long>(p.aborts));
        std::fflush(stdout);
      }
      std::printf(
          "# SF%.0f (%s) throughput loss from contention: %.1f%%\n", sf,
          deltas ? "delta" : "full", 100.0 * (1.0 - last / first));
    }
  }
  std::printf(
      "\n# expectation: with full updates, large loss at SF1 (2 suppliers, "
      "30 customers) and small at SF100; with commutative deltas the SF1 "
      "knee disappears\n");
  return 0;
}
