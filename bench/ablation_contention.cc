// Ablation: the row-lock contention model. Sweeps the lock-hold fraction
// (1.0 = pessimistic 2PL-style holds, 0.25 = optimistic validation-window
// holds, 0 = contention model off) on the shared engine at SF1 — the
// regime where the paper attributes poor frontiers to data contention
// (Sections 6.2, 6.4).
//
// Expected: pure-T throughput at SF1 falls sharply as the hold window
// grows (the hot SUPPLIER rows serialize payments), and is insensitive
// at SF100 (no hot rows).

#include <cstdio>

#include "bench/support.h"
#include "engine/shared_engine.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

namespace {

double PureTThroughput(const Dataset& dataset, double hold_fraction,
                       int t_clients) {
  SharedEngine engine;
  const Status status =
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine);
  if (!status.ok()) std::abort();
  WorkloadContext context(dataset);
  SimSetup setup = SharedSimSetup();
  setup.lock_hold_fraction = hold_fraction;
  SimDriver driver(&engine, &context, setup);
  WorkloadConfig run = DefaultRunConfig();
  run.t_clients = t_clients;
  run.a_clients = 0;
  return driver.Run(run).t_throughput;
}

}  // namespace

int main() {
  std::printf("=== Ablation: row-lock contention model ===\n");
  std::printf("sf,hold_fraction,pure_t_tps\n");
  for (const double sf : {1.0, 100.0}) {
    DatagenConfig datagen;
    datagen.scale_factor = sf;
    datagen.lineorders_per_sf = kLineordersPerSf;
    datagen.seed = kDatagenSeed;
    datagen.num_freshness_tables = kFreshnessTables;
    const Dataset dataset = GenerateDataset(datagen);
    double first = 0;
    double last = 0;
    for (const double hold : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      const double tps = PureTThroughput(dataset, hold, /*t_clients=*/12);
      if (hold == 0.0) first = tps;
      last = tps;
      std::printf("%.0f,%.2f,%.1f\n", sf, hold, tps);
      std::fflush(stdout);
    }
    std::printf("# SF%.0f throughput loss from contention: %.1f%%\n", sf,
                100.0 * (1.0 - last / first));
  }
  std::printf(
      "\n# expectation: large loss at SF1 (2 suppliers, 30 customers), "
      "small at SF100\n");
  return 0;
}
