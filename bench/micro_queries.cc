// Micro-benchmarks of the analytical path (google-benchmark): each SSB
// query executed against the row store and against the column store at
// SF10 — the ablation behind the hybrid designs' analytical advantage —
// plus the HATtrick transactions against the shared engine and the
// morsel-parallel plans at dop 1/2/4 (BM_QueryColumnStoreDop /
// BM_QueryRowStoreDop, on a 10x larger fact table where the scan
// dominates thread startup).
//
// BM_QueryRowStore / BM_QueryColumnStore run the row-at-a-time oracle;
// the *Batch variants run the vectorized executor at the default vector
// width, and the *BatchSweep variants sweep the width over
// 64/256/1024/4096 on the scan-dominated Q1.1 where batching matters
// most. Both modes return bit-identical checksums, so the pairs isolate
// pure interpretation overhead.

#include <benchmark/benchmark.h>

#include "engine/engine_factory.h"
#include "hattrick/datagen.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"

namespace hattrick {
namespace {

struct Fixture {
  Fixture() {
    DatagenConfig config;
    config.scale_factor = 10.0;
    config.lineorders_per_sf = 2000;
    config.seed = 42;
    config.num_freshness_tables = 4;
    dataset = GenerateDataset(config);
    shared = MakeSharedEngine();
    (void)LoadDataset(dataset, PhysicalSchema::kAllIndexes, shared.get());
    hybrid = MakeHybridEngine(SystemXConfig());
    (void)LoadDataset(dataset, PhysicalSchema::kSemiIndexes, hybrid.get());
    context = std::make_unique<WorkloadContext>(dataset);
    handles = EngineHandles::Resolve(*shared->primary_catalog(), 4);
  }

  Dataset dataset;
  std::unique_ptr<HtapEngine> shared;
  std::unique_ptr<HtapEngine> hybrid;
  std::unique_ptr<WorkloadContext> context;
  EngineHandles handles;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void RunQuerySerial(benchmark::State& state, HtapEngine* engine,
                    bool vectorized, size_t batch_rows) {
  const int qid = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorkMeter meter;
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    ctx.vectorized = vectorized;
    if (batch_rows > 0) ctx.batch_rows = batch_rows;
    const QueryResult result = RunQuery(qid, *session.source, 4, &ctx);
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetLabel(QueryName(qid));
}

void BM_QueryRowStore(benchmark::State& state) {
  RunQuerySerial(state, GetFixture().shared.get(), /*vectorized=*/false, 0);
}
BENCHMARK(BM_QueryRowStore)->DenseRange(0, kNumQueries - 1);

void BM_QueryColumnStore(benchmark::State& state) {
  RunQuerySerial(state, GetFixture().hybrid.get(), /*vectorized=*/false, 0);
}
BENCHMARK(BM_QueryColumnStore)->DenseRange(0, kNumQueries - 1);

void BM_QueryRowStoreBatch(benchmark::State& state) {
  RunQuerySerial(state, GetFixture().shared.get(), /*vectorized=*/true, 0);
}
BENCHMARK(BM_QueryRowStoreBatch)->DenseRange(0, kNumQueries - 1);

void BM_QueryColumnStoreBatch(benchmark::State& state) {
  RunQuerySerial(state, GetFixture().hybrid.get(), /*vectorized=*/true, 0);
}
BENCHMARK(BM_QueryColumnStoreBatch)->DenseRange(0, kNumQueries - 1);

/// Vector-width sweep on Q1.1 (scan + filter + global aggregate): the
/// range argument is the batch size, so one run charts interpretation
/// overhead against batch granularity on both stores.
void RunBatchSweep(benchmark::State& state, HtapEngine* engine) {
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    WorkMeter meter;
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    ctx.batch_rows = batch_rows;
    const QueryResult result = RunQuery(0, *session.source, 4, &ctx);
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetLabel("Q1.1/batch=" + std::to_string(batch_rows));
}

void BM_QueryRowStoreBatchSweep(benchmark::State& state) {
  RunBatchSweep(state, GetFixture().shared.get());
}
BENCHMARK(BM_QueryRowStoreBatchSweep)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_QueryColumnStoreBatchSweep(benchmark::State& state) {
  RunBatchSweep(state, GetFixture().hybrid.get());
}
BENCHMARK(BM_QueryColumnStoreBatchSweep)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

/// Larger fact table (~200k lineorders) for the intra-query parallelism
/// ablation: at the default micro size the whole scan fits in a couple of
/// morsels and thread startup dominates.
struct ParallelFixture {
  ParallelFixture() {
    DatagenConfig config;
    config.scale_factor = 10.0;
    config.lineorders_per_sf = 20000;
    config.seed = 42;
    config.num_freshness_tables = 4;
    dataset = GenerateDataset(config);
    shared = MakeSharedEngine();
    (void)LoadDataset(dataset, PhysicalSchema::kAllIndexes, shared.get());
    hybrid = MakeHybridEngine(SystemXConfig());
    (void)LoadDataset(dataset, PhysicalSchema::kSemiIndexes, hybrid.get());
  }

  Dataset dataset;
  std::unique_ptr<HtapEngine> shared;
  std::unique_ptr<HtapEngine> hybrid;
};

ParallelFixture& GetParallelFixture() {
  static ParallelFixture* fixture = new ParallelFixture();
  return *fixture;
}

void RunQueryAtDop(benchmark::State& state, HtapEngine* engine) {
  const int qid = static_cast<int>(state.range(0));
  const int dop = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorkMeter meter;
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    ctx.dop = dop;
    ctx.dynamic_morsels = true;
    ctx.session_pin = session.guard;
    const QueryResult result = RunQuery(qid, *session.source, 4, &ctx);
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetLabel(std::string(QueryName(qid)) + "/dop=" +
                 std::to_string(dop));
}

void BM_QueryColumnStoreDop(benchmark::State& state) {
  RunQueryAtDop(state, GetParallelFixture().hybrid.get());
}
BENCHMARK(BM_QueryColumnStoreDop)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kNumQueries - 1, 1),
                   {1, 2, 4}});

void BM_QueryRowStoreDop(benchmark::State& state) {
  RunQueryAtDop(state, GetParallelFixture().shared.get());
}
BENCHMARK(BM_QueryRowStoreDop)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kNumQueries - 1, 1),
                   {1, 2, 4}});

void BM_Transaction(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(9);
  uint64_t txn_num = 0;
  for (auto _ : state) {
    const TxnParams params = GenerateTxnParams(f.context.get(), &rng);
    ++txn_num;
    WorkMeter meter;
    const TxnOutcome outcome = f.shared->ExecuteTransaction(
        MakeTxnBody(params, f.handles, 1, txn_num), 1, txn_num, &meter);
    benchmark::DoNotOptimize(outcome.status.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Transaction);

}  // namespace
}  // namespace hattrick

BENCHMARK_MAIN();
