// Figure 2 reproduction: the three worked examples of the
// performance-centric definition —
//   (a,b) PostgreSQL-SR grid graph and frontier at the largest SF
//         (isolation: frontier above the proportional line),
//   (c)   TiDB at SF10 (close to the proportional line),
//   (d)   System-X at SF1 (below the proportional line: contention).

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf("=== Figure 2: throughput-frontier examples ===\n");

  // (a, b) PostgreSQL-SR, SF100: grid graph + frontier.
  {
    BenchEnv env = MakeEnv(EngineKind::kPostgresSR, 100.0,
                           PhysicalSchema::kAllIndexes);
    const GridGraph grid = RunGrid(&env, "PostgreSQL-SR SF100");
    PrintFrontierSummary("Fig2a/b PostgreSQL-SR SF100", grid);
    PrintGridCsv("Fig2a/b PostgreSQL-SR SF100", grid);
    std::printf("expected pattern: isolation -> got %s\n\n",
                FrontierPatternName(ClassifyFrontier(grid)));
  }

  // (c) TiDB, SF10.
  {
    BenchEnv env =
        MakeEnv(EngineKind::kTidb, 10.0, PhysicalSchema::kSemiIndexes);
    const GridGraph grid = RunGrid(&env, "TiDB SF10");
    PrintFrontierSummary("Fig2c TiDB SF10", grid);
    std::printf("# Fig2c frontier (tps,qps)\n");
    for (const OperatingPoint& p : grid.frontier) {
      std::printf("%.1f,%.2f\n", p.tps, p.qps);
    }
    std::printf("expected pattern: proportional -> got %s\n\n",
                FrontierPatternName(ClassifyFrontier(grid)));
  }

  // (d) System-X, SF1.
  {
    BenchEnv env =
        MakeEnv(EngineKind::kSystemX, 1.0, PhysicalSchema::kSemiIndexes);
    const GridGraph grid = RunGrid(&env, "System-X SF1");
    PrintFrontierSummary("Fig2d System-X SF1", grid);
    std::printf("# Fig2d frontier (tps,qps)\n");
    for (const OperatingPoint& p : grid.frontier) {
      std::printf("%.1f,%.2f\n", p.tps, p.qps);
    }
    std::printf(
        "expected pattern: below proportional (small-SF contention) -> "
        "got %s\n",
        FrontierPatternName(ClassifyFrontier(grid)));
  }
  return 0;
}
