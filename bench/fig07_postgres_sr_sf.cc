// Figure 7 reproduction: PostgreSQL-SR (isolated design, replication
// mode ON) across scale factors SF1 / SF10 / SF100, with freshness
// scores at the 20:80 / 50:50 / 80:20 ratio points.
//
// Expected shape (Section 6.3): fixed-T/fixed-A lines far less slanted
// than plain PostgreSQL (dedicated node per workload); frontier moves
// above the proportional line as SF grows, near the bounding box at
// SF100; non-zero freshness scores that worsen as the T share grows.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf(
      "=== Figure 7: PostgreSQL-SR (mode ON) for different scaling "
      "factors ===\n");
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  std::vector<std::vector<RatioFreshness>> freshness;
  for (const double sf : {1.0, 10.0, 100.0}) {
    const std::string label =
        "PostgreSQL-SR SF" + std::to_string(static_cast<int>(sf));
    BenchEnv env =
        MakeEnv(EngineKind::kPostgresSR, sf, PhysicalSchema::kAllIndexes);
    const GridGraph grid = RunGrid(&env, label);
    PrintFrontierSummary(label, grid);
    PrintGridCsv(label, grid);
    const auto rows = MeasureRatioFreshness(
        MakeRunner(env.driver.get(), DefaultRunConfig()), grid.tau_max,
        grid.alpha_max);
    PrintRatioFreshness(label, rows);
    grids.push_back(grid);
    labels.push_back(label);
    freshness.push_back(rows);
  }
  PlotFrontiers(labels, {&grids[0], &grids[1], &grids[2]});

  std::printf("\n# shape checks\n");
  std::printf(
      "coverage grows with SF:     %s (%.3f, %.3f, %.3f)\n",
      FrontierCoverage(grids[0]) <= FrontierCoverage(grids[2]) ? "yes"
                                                               : "NO",
      FrontierCoverage(grids[0]), FrontierCoverage(grids[1]),
      FrontierCoverage(grids[2]));
  std::printf("SF100 pattern isolation:    %s (%s)\n",
              ClassifyFrontier(grids[2]) == FrontierPattern::kIsolation
                  ? "yes"
                  : "NO",
              FrontierPatternName(ClassifyFrontier(grids[2])));
  bool stale_somewhere = false;
  for (const auto& rows : freshness) {
    for (const auto& row : rows) {
      if (row.p99 > 0) stale_somewhere = true;
    }
  }
  std::printf("stale queries observed:     %s\n",
              stale_somewhere ? "yes" : "NO");
  for (size_t i = 0; i < freshness.size(); ++i) {
    std::printf("freshness grows with T share (%s): %s "
                "(f2=%.4f f5=%.4f f8=%.4f)\n",
                labels[i].c_str(),
                freshness[i][0].p99 <= freshness[i][2].p99 ? "yes" : "NO",
                freshness[i][0].p99, freshness[i][1].p99,
                freshness[i][2].p99);
  }
  return 0;
}
