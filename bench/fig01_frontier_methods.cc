// Figure 1 reproduction: two ways of constructing the throughput
// frontier — (a) random sampling of workload mixes, (b) the saturation
// method — on the shared engine at SF4.
//
// Expected shape: the saturation method's frontier envelops (or matches)
// the cloud of sampled hybrid throughputs with far fewer runs.

#include <cstdio>

#include "bench/support.h"
#include "common/rng.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf(
      "=== Figure 1: sampling vs saturation construction of the frontier "
      "===\n");
  BenchEnv env =
      MakeEnv(EngineKind::kPostgres, 4.0, PhysicalSchema::kAllIndexes);
  PointRunner runner = MakeRunner(env.driver.get(), DefaultRunConfig());

  // (a) Sampling method: random (tau, alpha) pairs.
  std::printf("# sampling method (t_clients,a_clients,tps,qps)\n");
  const std::vector<OperatingPoint> samples =
      SampleOperatingPoints(runner, 24, /*max_t=*/16, /*max_a=*/12,
                            /*seed=*/123);
  for (const OperatingPoint& p : samples) {
    std::printf("%d,%d,%.1f,%.2f\n", p.t_clients, p.a_clients, p.tps,
                p.qps);
  }
  const std::vector<OperatingPoint> sampled_frontier =
      ParetoFrontier(samples);
  std::printf("# sampling-derived frontier (tps,qps)\n");
  for (const OperatingPoint& p : sampled_frontier) {
    std::printf("%.1f,%.2f\n", p.tps, p.qps);
  }

  // (b) Saturation method.
  const GridGraph grid = RunGrid(&env, "saturation method");
  PrintFrontierSummary("saturation method", grid);
  std::printf("# saturation frontier (tps,qps)\n");
  for (const OperatingPoint& p : grid.frontier) {
    std::printf("%.1f,%.2f\n", p.tps, p.qps);
  }

  // The saturation frontier should cover the sampled points.
  size_t covered = 0;
  GridGraph sampled_grid = grid;
  sampled_grid.frontier = sampled_frontier;
  for (const OperatingPoint& p : samples) {
    GridGraph single = grid;
    OperatingPoint probe = p;
    single.frontier = {probe};
    if (Envelops(grid, single)) ++covered;
  }
  std::printf("\n# saturation frontier covers %zu/%zu sampled mixes\n",
              covered, samples.size());
  return 0;
}
