// Figure 11 reproduction: distributed TiDB across scale factors, served
// by the real sharded engine (src/shard/) — N hybrid shard nodes behind
// the single-node facade, hash routing, cross-shard 2PC, and per-shard
// replication chains — instead of the retired flat-surcharge model.
//
// Expected shape (Section 6.5.2): compared to single-node TiDB the
// distributed deployment has a *lower* maximum T throughput (the
// distributed transaction path burns CPU on marshalling/TCP-IP and waits
// on per-participant round trips) and a *higher* maximum A throughput
// (more TiFlash resources); the frontier moves above the proportional
// line as SF grows (separate storage/compute per workload); freshness
// stays zero.
//
// On top of the paper's figure this bench adds what only a real sharded
// engine can measure:
//  - an N=1..16 shard-count sweep at SF10: max-T throughput must scale
//    at least 3x from N=1 to N=8 (real scale-out, not a cost constant);
//  - a surcharge-vs-sharded comparison at the paper's N=3 deployment
//    (the legacy --dist-model=surcharge is kept exactly for this A/B);
//  - a failover leg: chaos faults on every shard's replication chain
//    must leave primaries untouched and standbys fully converged.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support.h"
#include "common/rng.h"
#include "fault/fault_injector.h"
#include "hattrick/transactions.h"
#include "shard/sharded_engine.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

namespace {

BenchEnv MakeDistEnv(double sf, DistModel model, uint32_t shards,
                     const FaultConfig& fault = {}) {
  return MakeEnv(EngineKind::kTidbDist, sf, PhysicalSchema::kSemiIndexes,
                 fault, DefaultMergeMode(), model, shards);
}

/// Pure-T saturation throughput (the grid graph's XT) without building
/// the whole grid: sweeps T-clients alone to saturation.
double MaxTThroughput(BenchEnv* env, int max_clients) {
  const PointRunner runner =
      MakeRunner(env->driver.get(), DefaultRunConfig());
  double best = 0;
  FindSaturation(
      [&](int t) {
        const double tps = runner(t, 0).tps;
        best = std::max(best, tps);
        return tps;
      },
      max_clients, 0.03);
  return best;
}

/// Pure-A saturation throughput (XA), same shortcut.
double MaxAThroughput(BenchEnv* env, int max_clients) {
  const PointRunner runner =
      MakeRunner(env->driver.get(), DefaultRunConfig());
  double best = 0;
  FindSaturation(
      [&](int a) {
        const double qps = runner(0, a).qps;
        best = std::max(best, qps);
        return qps;
      },
      max_clients, 0.03);
  return best;
}

/// Applies a deterministic batch of HATtrick transactions directly to
/// the engine (no driver), interleaving maintenance pumps the way the
/// fault chaos tests do.
void ApplyTxnBatch(BenchEnv* env, uint64_t seed, int txns) {
  const EngineHandles handles = EngineHandles::Resolve(
      *env->engine->primary_catalog(), env->context->num_freshness_tables);
  Rng rng(seed);
  for (int i = 0; i < txns; ++i) {
    const TxnParams params = GenerateTxnParams(env->context.get(), &rng);
    const uint32_t client =
        1 + static_cast<uint32_t>(i) % env->context->num_freshness_tables;
    WorkMeter meter;
    env->engine->ExecuteTransaction(
        MakeTxnBody(params, handles, client, static_cast<uint64_t>(i + 1)),
        client, static_cast<uint64_t>(i + 1), &meter);
    if (i % 3 == 0) {
      WorkMeter pump;
      env->engine->MaintenanceStep(&pump);
    }
  }
}

/// Sum of the 13 SSB query checksums on the engine's current contents.
double QueryChecksumSum(BenchEnv* env) {
  double sum = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    WorkMeter meter;
    AnalyticsSession session = env->engine->BeginAnalytics(&meter);
    ExecContext ctx;
    ctx.meter = &meter;
    ctx.session_pin = session.guard;
    sum += RunQuery(q, *session.source,
                    env->context->num_freshness_tables, &ctx)
               .checksum;
  }
  return sum;
}

}  // namespace

int main() {
  std::printf("=== Figure 11: distributed TiDB for different scaling "
              "factors ===\n");
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  bool all_fresh = true;
  for (const double sf : {1.0, 10.0, 100.0}) {
    const std::string label =
        "TiDB-Dist SF" + std::to_string(static_cast<int>(sf));
    BenchEnv env = MakeDistEnv(sf, DistModel::kSharded, 3);
    const GridGraph grid = RunGrid(&env, label);
    PrintFrontierSummary(label, grid);
    PrintGridCsv(label, grid);
    const auto freshness = MeasureRatioFreshness(
        MakeRunner(env.driver.get(), DefaultRunConfig()), grid.tau_max,
        grid.alpha_max);
    PrintRatioFreshness(label, freshness);
    for (const auto& row : freshness) {
      if (row.p99 > 0) all_fresh = false;
    }
    grids.push_back(grid);
    labels.push_back(label);
  }
  PlotFrontiers(labels, {&grids[0], &grids[1], &grids[2]});

  // Single-node TiDB at SF10 for the cross-deployment comparison.
  BenchEnv single =
      MakeEnv(EngineKind::kTidb, 10.0, PhysicalSchema::kSemiIndexes);
  const GridGraph single_grid = RunGrid(&single, "TiDB SF10 (single)");

  std::printf("\n# shape checks\n");
  std::printf("freshness always zero:        %s\n",
              all_fresh ? "yes" : "NO");
  std::printf("dist max-T < single max-T:    %s (%.0f vs %.0f)\n",
              grids[1].xt < single_grid.xt ? "yes" : "NO", grids[1].xt,
              single_grid.xt);
  std::printf("dist max-A > single max-A:    %s (%.2f vs %.2f)\n",
              grids[1].xa > single_grid.xa ? "yes" : "NO", grids[1].xa,
              single_grid.xa);
  std::printf("coverage grows with SF:       %s (%.3f, %.3f, %.3f)\n",
              FrontierCoverage(grids[0]) <= FrontierCoverage(grids[2])
                  ? "yes"
                  : "NO",
              FrontierCoverage(grids[0]), FrontierCoverage(grids[1]),
              FrontierCoverage(grids[2]));

  // ------------------------------------------------------------------
  // Shard-count sweep at SF10: does the sharded engine actually scale
  // out? Every N runs the same workload on the same per-node cost model,
  // so the curve isolates added nodes (and the 2PC/routing tax).
  std::printf("\n=== shard-count sweep @ SF10 ===\n");
  std::printf("shards,max_t_tps\n");
  double xt_n1 = 0, xt_n8 = 0;
  for (const uint32_t n : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    BenchEnv env = MakeDistEnv(10.0, DistModel::kSharded, n);
    // Each simulated T-client claims one of the dataset's
    // kFreshnessTables FRESHNESS_j tables, so the sweep cannot exceed
    // that; past N~6 the curve is client-bound, not resource-bound.
    const int max_clients =
        std::min(static_cast<int>(kFreshnessTables),
                 16 * static_cast<int>(n) + 16);
    const double xt = MaxTThroughput(&env, max_clients);
    std::printf("%u,%.0f\n", n, xt);
    std::fflush(stdout);
    if (n == 1) xt_n1 = xt;
    if (n == 8) xt_n8 = xt;
  }
  std::printf("max-T scales >= 3x (1 -> 8):  %s (%.0f -> %.0f, %.2fx)\n",
              xt_n8 >= 3.0 * xt_n1 ? "yes" : "NO", xt_n1, xt_n8,
              xt_n1 > 0 ? xt_n8 / xt_n1 : 0.0);

  // ------------------------------------------------------------------
  // Surcharge vs sharded at the paper's 3-node deployment: the legacy
  // model charges a flat 800us/4x on every transaction; the sharded
  // engine pays per coordinated participant. Both should land in the
  // same regime (that is what validated the surcharge constants), with
  // the sharded engine slightly ahead on single-shard-heavy mixes.
  std::printf("\n=== dist-model comparison @ SF10, N=3 ===\n");
  {
    BenchEnv surcharge = MakeDistEnv(10.0, DistModel::kSurcharge, 3);
    BenchEnv sharded = MakeDistEnv(10.0, DistModel::kSharded, 3);
    const double sur_xt =
        MaxTThroughput(&surcharge, static_cast<int>(kFreshnessTables));
    const double sha_xt =
        MaxTThroughput(&sharded, static_cast<int>(kFreshnessTables));
    const double sur_xa = MaxAThroughput(&surcharge, 16);
    const double sha_xa = MaxAThroughput(&sharded, 16);
    std::printf("model,max_t_tps,max_a_qps\n");
    std::printf("surcharge,%.0f,%.2f\n", sur_xt, sur_xa);
    std::printf("sharded,%.0f,%.2f\n", sha_xt, sha_xa);
    const double ratio = sur_xt > 0 ? sha_xt / sur_xt : 0.0;
    std::printf("same regime (0.5x..2x):       %s (%.2fx)\n",
                ratio >= 0.5 && ratio <= 2.0 ? "yes" : "NO", ratio);
  }

  // ------------------------------------------------------------------
  // Failover: chaos faults on every shard's replication chain. The
  // primaries never see faults (identical query answers), and after the
  // drain every standby has converged (zero lag, no sticky error).
  std::printf("\n=== failover convergence @ SF1, N=3 ===\n");
  {
    StatusOr<FaultConfig> fault = MakeFaultProfile("chaos", 17);
    if (!fault.ok()) {
      std::printf("fault profile unavailable: %s\n",
                  fault.status().ToString().c_str());
      return 1;
    }
    BenchEnv clean = MakeDistEnv(1.0, DistModel::kSharded, 3);
    BenchEnv faulted = MakeDistEnv(1.0, DistModel::kSharded, 3,
                                   fault.value());
    ApplyTxnBatch(&clean, /*seed=*/123, /*txns=*/400);
    ApplyTxnBatch(&faulted, /*seed=*/123, /*txns=*/400);

    auto* clean_engine = static_cast<ShardedEngine*>(clean.engine.get());
    auto* faulted_engine =
        static_cast<ShardedEngine*>(faulted.engine.get());
    bool converged = true;
    for (uint32_t s = 0; s < faulted_engine->num_shards(); ++s) {
      // Drain through every remaining fault (resends, crash recovery).
      clean_engine->shard_replica(s)->CatchUp(nullptr);
      faulted_engine->shard_replica(s)->CatchUp(nullptr);
      const Replica* replica = faulted_engine->shard_replica(s);
      if (replica->Lag() != 0 || !replica->last_error().ok() ||
          replica->applied_lsn() !=
              clean_engine->shard_replica(s)->applied_lsn()) {
        converged = false;
      }
    }
    const double clean_sum = QueryChecksumSum(&clean);
    const double faulted_sum = QueryChecksumSum(&faulted);
    std::printf("faulted == fault-free answers: %s (%.6f vs %.6f)\n",
                clean_sum == faulted_sum ? "yes" : "NO", clean_sum,
                faulted_sum);
    std::printf("all standbys converged:        %s\n",
                converged ? "yes" : "NO");
  }
  return 0;
}
