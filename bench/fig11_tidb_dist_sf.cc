// Figure 11 reproduction: distributed TiDB (3 TiKV + 2 TiFlash nodes)
// across scale factors.
//
// Expected shape (Section 6.5.2): compared to single-node TiDB the
// distributed deployment has a *lower* maximum T throughput (TCP/IP CPU
// overhead and network round trips on the distributed transaction path)
// and a *higher* maximum A throughput (more TiFlash resources); the
// frontier moves above the proportional line as SF grows (separate
// storage/compute per workload); freshness stays zero.

#include <cstdio>

#include "bench/support.h"

using namespace hattrick;         // NOLINT
using namespace hattrick::bench;  // NOLINT

int main() {
  std::printf("=== Figure 11: distributed TiDB for different scaling "
              "factors ===\n");
  std::vector<GridGraph> grids;
  std::vector<std::string> labels;
  bool all_fresh = true;
  for (const double sf : {1.0, 10.0, 100.0}) {
    const std::string label =
        "TiDB-Dist SF" + std::to_string(static_cast<int>(sf));
    BenchEnv env =
        MakeEnv(EngineKind::kTidbDist, sf, PhysicalSchema::kSemiIndexes);
    const GridGraph grid = RunGrid(&env, label);
    PrintFrontierSummary(label, grid);
    PrintGridCsv(label, grid);
    const auto freshness = MeasureRatioFreshness(
        MakeRunner(env.driver.get(), DefaultRunConfig()), grid.tau_max,
        grid.alpha_max);
    PrintRatioFreshness(label, freshness);
    for (const auto& row : freshness) {
      if (row.p99 > 0) all_fresh = false;
    }
    grids.push_back(grid);
    labels.push_back(label);
  }
  PlotFrontiers(labels, {&grids[0], &grids[1], &grids[2]});

  // Single-node TiDB at SF10 for the cross-deployment comparison.
  BenchEnv single =
      MakeEnv(EngineKind::kTidb, 10.0, PhysicalSchema::kSemiIndexes);
  const GridGraph single_grid = RunGrid(&single, "TiDB SF10 (single)");

  std::printf("\n# shape checks\n");
  std::printf("freshness always zero:        %s\n",
              all_fresh ? "yes" : "NO");
  std::printf("dist max-T < single max-T:    %s (%.0f vs %.0f)\n",
              grids[1].xt < single_grid.xt ? "yes" : "NO", grids[1].xt,
              single_grid.xt);
  std::printf("dist max-A > single max-A:    %s (%.2f vs %.2f)\n",
              grids[1].xa > single_grid.xa ? "yes" : "NO", grids[1].xa,
              single_grid.xa);
  std::printf("coverage grows with SF:       %s (%.3f, %.3f, %.3f)\n",
              FrontierCoverage(grids[0]) <= FrontierCoverage(grids[2])
                  ? "yes"
                  : "NO",
              FrontierCoverage(grids[0]), FrontierCoverage(grids[1]),
              FrontierCoverage(grids[2]));
  return 0;
}
