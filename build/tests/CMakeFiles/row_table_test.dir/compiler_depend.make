# Empty compiler generated dependencies file for row_table_test.
# This may be replaced when dependencies are built.
