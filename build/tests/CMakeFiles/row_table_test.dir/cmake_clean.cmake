file(REMOVE_RECURSE
  "CMakeFiles/row_table_test.dir/row_table_test.cc.o"
  "CMakeFiles/row_table_test.dir/row_table_test.cc.o.d"
  "row_table_test"
  "row_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
