file(REMOVE_RECURSE
  "CMakeFiles/column_table_test.dir/column_table_test.cc.o"
  "CMakeFiles/column_table_test.dir/column_table_test.cc.o.d"
  "column_table_test"
  "column_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
