file(REMOVE_RECURSE
  "libhattrick_replication.a"
)
