file(REMOVE_RECURSE
  "CMakeFiles/hattrick_replication.dir/replica.cc.o"
  "CMakeFiles/hattrick_replication.dir/replica.cc.o.d"
  "CMakeFiles/hattrick_replication.dir/wal_stream.cc.o"
  "CMakeFiles/hattrick_replication.dir/wal_stream.cc.o.d"
  "libhattrick_replication.a"
  "libhattrick_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
