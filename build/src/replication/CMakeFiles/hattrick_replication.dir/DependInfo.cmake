
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/replica.cc" "src/replication/CMakeFiles/hattrick_replication.dir/replica.cc.o" "gcc" "src/replication/CMakeFiles/hattrick_replication.dir/replica.cc.o.d"
  "/root/repo/src/replication/wal_stream.cc" "src/replication/CMakeFiles/hattrick_replication.dir/wal_stream.cc.o" "gcc" "src/replication/CMakeFiles/hattrick_replication.dir/wal_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/hattrick_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hattrick_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hattrick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
