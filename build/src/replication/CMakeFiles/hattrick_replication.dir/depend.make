# Empty dependencies file for hattrick_replication.
# This may be replaced when dependencies are built.
