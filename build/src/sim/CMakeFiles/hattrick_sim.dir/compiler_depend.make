# Empty compiler generated dependencies file for hattrick_sim.
# This may be replaced when dependencies are built.
