file(REMOVE_RECURSE
  "CMakeFiles/hattrick_sim.dir/core_pool.cc.o"
  "CMakeFiles/hattrick_sim.dir/core_pool.cc.o.d"
  "CMakeFiles/hattrick_sim.dir/simulation.cc.o"
  "CMakeFiles/hattrick_sim.dir/simulation.cc.o.d"
  "libhattrick_sim.a"
  "libhattrick_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
