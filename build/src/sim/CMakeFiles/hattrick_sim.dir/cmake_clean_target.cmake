file(REMOVE_RECURSE
  "libhattrick_sim.a"
)
