# Empty compiler generated dependencies file for hattrick_common.
# This may be replaced when dependencies are built.
