# Empty dependencies file for hattrick_common.
# This may be replaced when dependencies are built.
