file(REMOVE_RECURSE
  "libhattrick_common.a"
)
