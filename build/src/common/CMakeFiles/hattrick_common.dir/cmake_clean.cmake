file(REMOVE_RECURSE
  "CMakeFiles/hattrick_common.dir/histogram.cc.o"
  "CMakeFiles/hattrick_common.dir/histogram.cc.o.d"
  "CMakeFiles/hattrick_common.dir/key_encoding.cc.o"
  "CMakeFiles/hattrick_common.dir/key_encoding.cc.o.d"
  "CMakeFiles/hattrick_common.dir/schema.cc.o"
  "CMakeFiles/hattrick_common.dir/schema.cc.o.d"
  "CMakeFiles/hattrick_common.dir/status.cc.o"
  "CMakeFiles/hattrick_common.dir/status.cc.o.d"
  "CMakeFiles/hattrick_common.dir/value.cc.o"
  "CMakeFiles/hattrick_common.dir/value.cc.o.d"
  "CMakeFiles/hattrick_common.dir/work_meter.cc.o"
  "CMakeFiles/hattrick_common.dir/work_meter.cc.o.d"
  "libhattrick_common.a"
  "libhattrick_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
