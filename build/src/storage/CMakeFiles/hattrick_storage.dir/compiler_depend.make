# Empty compiler generated dependencies file for hattrick_storage.
# This may be replaced when dependencies are built.
