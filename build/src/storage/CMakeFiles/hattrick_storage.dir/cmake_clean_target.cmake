file(REMOVE_RECURSE
  "libhattrick_storage.a"
)
