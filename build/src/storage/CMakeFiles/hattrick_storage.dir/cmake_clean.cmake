file(REMOVE_RECURSE
  "CMakeFiles/hattrick_storage.dir/btree.cc.o"
  "CMakeFiles/hattrick_storage.dir/btree.cc.o.d"
  "CMakeFiles/hattrick_storage.dir/catalog.cc.o"
  "CMakeFiles/hattrick_storage.dir/catalog.cc.o.d"
  "CMakeFiles/hattrick_storage.dir/column_table.cc.o"
  "CMakeFiles/hattrick_storage.dir/column_table.cc.o.d"
  "CMakeFiles/hattrick_storage.dir/row_table.cc.o"
  "CMakeFiles/hattrick_storage.dir/row_table.cc.o.d"
  "libhattrick_storage.a"
  "libhattrick_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
