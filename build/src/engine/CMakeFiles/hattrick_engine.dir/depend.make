# Empty dependencies file for hattrick_engine.
# This may be replaced when dependencies are built.
