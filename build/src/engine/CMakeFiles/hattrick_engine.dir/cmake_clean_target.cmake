file(REMOVE_RECURSE
  "libhattrick_engine.a"
)
