file(REMOVE_RECURSE
  "CMakeFiles/hattrick_engine.dir/hybrid_engine.cc.o"
  "CMakeFiles/hattrick_engine.dir/hybrid_engine.cc.o.d"
  "CMakeFiles/hattrick_engine.dir/isolated_engine.cc.o"
  "CMakeFiles/hattrick_engine.dir/isolated_engine.cc.o.d"
  "CMakeFiles/hattrick_engine.dir/shared_engine.cc.o"
  "CMakeFiles/hattrick_engine.dir/shared_engine.cc.o.d"
  "libhattrick_engine.a"
  "libhattrick_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
