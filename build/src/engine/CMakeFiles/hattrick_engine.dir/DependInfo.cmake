
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/hybrid_engine.cc" "src/engine/CMakeFiles/hattrick_engine.dir/hybrid_engine.cc.o" "gcc" "src/engine/CMakeFiles/hattrick_engine.dir/hybrid_engine.cc.o.d"
  "/root/repo/src/engine/isolated_engine.cc" "src/engine/CMakeFiles/hattrick_engine.dir/isolated_engine.cc.o" "gcc" "src/engine/CMakeFiles/hattrick_engine.dir/isolated_engine.cc.o.d"
  "/root/repo/src/engine/shared_engine.cc" "src/engine/CMakeFiles/hattrick_engine.dir/shared_engine.cc.o" "gcc" "src/engine/CMakeFiles/hattrick_engine.dir/shared_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/hattrick_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/hattrick_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hattrick_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hattrick_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hattrick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
