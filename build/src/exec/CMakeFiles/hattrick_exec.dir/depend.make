# Empty dependencies file for hattrick_exec.
# This may be replaced when dependencies are built.
