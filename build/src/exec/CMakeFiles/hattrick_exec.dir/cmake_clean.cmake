file(REMOVE_RECURSE
  "CMakeFiles/hattrick_exec.dir/expression.cc.o"
  "CMakeFiles/hattrick_exec.dir/expression.cc.o.d"
  "CMakeFiles/hattrick_exec.dir/operator.cc.o"
  "CMakeFiles/hattrick_exec.dir/operator.cc.o.d"
  "CMakeFiles/hattrick_exec.dir/scan.cc.o"
  "CMakeFiles/hattrick_exec.dir/scan.cc.o.d"
  "libhattrick_exec.a"
  "libhattrick_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
