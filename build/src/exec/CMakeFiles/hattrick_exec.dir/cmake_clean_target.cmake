file(REMOVE_RECURSE
  "libhattrick_exec.a"
)
