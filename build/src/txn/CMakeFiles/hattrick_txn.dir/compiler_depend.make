# Empty compiler generated dependencies file for hattrick_txn.
# This may be replaced when dependencies are built.
