file(REMOVE_RECURSE
  "CMakeFiles/hattrick_txn.dir/txn_manager.cc.o"
  "CMakeFiles/hattrick_txn.dir/txn_manager.cc.o.d"
  "CMakeFiles/hattrick_txn.dir/wal.cc.o"
  "CMakeFiles/hattrick_txn.dir/wal.cc.o.d"
  "libhattrick_txn.a"
  "libhattrick_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
