# Empty dependencies file for hattrick_txn.
# This may be replaced when dependencies are built.
