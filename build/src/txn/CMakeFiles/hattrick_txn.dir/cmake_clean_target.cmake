file(REMOVE_RECURSE
  "libhattrick_txn.a"
)
