file(REMOVE_RECURSE
  "libhattrick_bench.a"
)
