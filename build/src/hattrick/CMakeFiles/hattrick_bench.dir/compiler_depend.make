# Empty compiler generated dependencies file for hattrick_bench.
# This may be replaced when dependencies are built.
