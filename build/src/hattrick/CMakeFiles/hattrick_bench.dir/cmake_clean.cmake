file(REMOVE_RECURSE
  "CMakeFiles/hattrick_bench.dir/datagen.cc.o"
  "CMakeFiles/hattrick_bench.dir/datagen.cc.o.d"
  "CMakeFiles/hattrick_bench.dir/driver.cc.o"
  "CMakeFiles/hattrick_bench.dir/driver.cc.o.d"
  "CMakeFiles/hattrick_bench.dir/frontier.cc.o"
  "CMakeFiles/hattrick_bench.dir/frontier.cc.o.d"
  "CMakeFiles/hattrick_bench.dir/hattrick_schema.cc.o"
  "CMakeFiles/hattrick_bench.dir/hattrick_schema.cc.o.d"
  "CMakeFiles/hattrick_bench.dir/queries.cc.o"
  "CMakeFiles/hattrick_bench.dir/queries.cc.o.d"
  "CMakeFiles/hattrick_bench.dir/report.cc.o"
  "CMakeFiles/hattrick_bench.dir/report.cc.o.d"
  "CMakeFiles/hattrick_bench.dir/transactions.cc.o"
  "CMakeFiles/hattrick_bench.dir/transactions.cc.o.d"
  "libhattrick_bench.a"
  "libhattrick_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
