# Empty compiler generated dependencies file for response_times.
# This may be replaced when dependencies are built.
