file(REMOVE_RECURSE
  "CMakeFiles/response_times.dir/response_times.cc.o"
  "CMakeFiles/response_times.dir/response_times.cc.o.d"
  "response_times"
  "response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
