file(REMOVE_RECURSE
  "CMakeFiles/fig12_cross_system.dir/fig12_cross_system.cc.o"
  "CMakeFiles/fig12_cross_system.dir/fig12_cross_system.cc.o.d"
  "fig12_cross_system"
  "fig12_cross_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cross_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
