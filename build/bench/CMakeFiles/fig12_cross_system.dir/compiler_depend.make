# Empty compiler generated dependencies file for fig12_cross_system.
# This may be replaced when dependencies are built.
