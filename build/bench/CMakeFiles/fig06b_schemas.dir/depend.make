# Empty dependencies file for fig06b_schemas.
# This may be replaced when dependencies are built.
