file(REMOVE_RECURSE
  "CMakeFiles/fig06b_schemas.dir/fig06b_schemas.cc.o"
  "CMakeFiles/fig06b_schemas.dir/fig06b_schemas.cc.o.d"
  "fig06b_schemas"
  "fig06b_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
