# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_tidb_dist_sf.
