file(REMOVE_RECURSE
  "CMakeFiles/fig11_tidb_dist_sf.dir/fig11_tidb_dist_sf.cc.o"
  "CMakeFiles/fig11_tidb_dist_sf.dir/fig11_tidb_dist_sf.cc.o.d"
  "fig11_tidb_dist_sf"
  "fig11_tidb_dist_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tidb_dist_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
