# Empty compiler generated dependencies file for fig11_tidb_dist_sf.
# This may be replaced when dependencies are built.
