# Empty compiler generated dependencies file for fig08a_replication_modes.
# This may be replaced when dependencies are built.
