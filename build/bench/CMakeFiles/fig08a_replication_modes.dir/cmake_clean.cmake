file(REMOVE_RECURSE
  "CMakeFiles/fig08a_replication_modes.dir/fig08a_replication_modes.cc.o"
  "CMakeFiles/fig08a_replication_modes.dir/fig08a_replication_modes.cc.o.d"
  "fig08a_replication_modes"
  "fig08a_replication_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_replication_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
