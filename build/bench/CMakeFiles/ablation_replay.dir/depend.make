# Empty dependencies file for ablation_replay.
# This may be replaced when dependencies are built.
