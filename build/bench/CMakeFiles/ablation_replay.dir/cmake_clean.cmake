file(REMOVE_RECURSE
  "CMakeFiles/ablation_replay.dir/ablation_replay.cc.o"
  "CMakeFiles/ablation_replay.dir/ablation_replay.cc.o.d"
  "ablation_replay"
  "ablation_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
