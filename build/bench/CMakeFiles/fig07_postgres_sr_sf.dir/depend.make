# Empty dependencies file for fig07_postgres_sr_sf.
# This may be replaced when dependencies are built.
