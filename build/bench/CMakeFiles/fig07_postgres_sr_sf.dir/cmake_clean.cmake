file(REMOVE_RECURSE
  "CMakeFiles/fig07_postgres_sr_sf.dir/fig07_postgres_sr_sf.cc.o"
  "CMakeFiles/fig07_postgres_sr_sf.dir/fig07_postgres_sr_sf.cc.o.d"
  "fig07_postgres_sr_sf"
  "fig07_postgres_sr_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_postgres_sr_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
