file(REMOVE_RECURSE
  "CMakeFiles/fig09_systemx_sf.dir/fig09_systemx_sf.cc.o"
  "CMakeFiles/fig09_systemx_sf.dir/fig09_systemx_sf.cc.o.d"
  "fig09_systemx_sf"
  "fig09_systemx_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_systemx_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
