# Empty compiler generated dependencies file for fig09_systemx_sf.
# This may be replaced when dependencies are built.
