file(REMOVE_RECURSE
  "CMakeFiles/fig10_tidb_sf.dir/fig10_tidb_sf.cc.o"
  "CMakeFiles/fig10_tidb_sf.dir/fig10_tidb_sf.cc.o.d"
  "fig10_tidb_sf"
  "fig10_tidb_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tidb_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
