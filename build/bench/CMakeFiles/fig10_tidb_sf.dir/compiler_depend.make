# Empty compiler generated dependencies file for fig10_tidb_sf.
# This may be replaced when dependencies are built.
