file(REMOVE_RECURSE
  "CMakeFiles/fig02_examples.dir/fig02_examples.cc.o"
  "CMakeFiles/fig02_examples.dir/fig02_examples.cc.o.d"
  "fig02_examples"
  "fig02_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
