# Empty dependencies file for fig02_examples.
# This may be replaced when dependencies are built.
