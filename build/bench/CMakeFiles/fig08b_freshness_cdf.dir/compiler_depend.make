# Empty compiler generated dependencies file for fig08b_freshness_cdf.
# This may be replaced when dependencies are built.
