file(REMOVE_RECURSE
  "CMakeFiles/fig08b_freshness_cdf.dir/fig08b_freshness_cdf.cc.o"
  "CMakeFiles/fig08b_freshness_cdf.dir/fig08b_freshness_cdf.cc.o.d"
  "fig08b_freshness_cdf"
  "fig08b_freshness_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_freshness_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
