# Empty dependencies file for fig06a_isolation.
# This may be replaced when dependencies are built.
