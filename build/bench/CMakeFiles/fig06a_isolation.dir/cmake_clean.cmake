file(REMOVE_RECURSE
  "CMakeFiles/fig06a_isolation.dir/fig06a_isolation.cc.o"
  "CMakeFiles/fig06a_isolation.dir/fig06a_isolation.cc.o.d"
  "fig06a_isolation"
  "fig06a_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06a_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
