file(REMOVE_RECURSE
  "CMakeFiles/fig05_postgres_sf.dir/fig05_postgres_sf.cc.o"
  "CMakeFiles/fig05_postgres_sf.dir/fig05_postgres_sf.cc.o.d"
  "fig05_postgres_sf"
  "fig05_postgres_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_postgres_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
