# Empty compiler generated dependencies file for fig05_postgres_sf.
# This may be replaced when dependencies are built.
