file(REMOVE_RECURSE
  "CMakeFiles/fig01_frontier_methods.dir/fig01_frontier_methods.cc.o"
  "CMakeFiles/fig01_frontier_methods.dir/fig01_frontier_methods.cc.o.d"
  "fig01_frontier_methods"
  "fig01_frontier_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_frontier_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
