# Empty dependencies file for fig01_frontier_methods.
# This may be replaced when dependencies are built.
