# Empty dependencies file for micro_queries.
# This may be replaced when dependencies are built.
