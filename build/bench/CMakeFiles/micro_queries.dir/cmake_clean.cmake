file(REMOVE_RECURSE
  "CMakeFiles/micro_queries.dir/micro_queries.cc.o"
  "CMakeFiles/micro_queries.dir/micro_queries.cc.o.d"
  "micro_queries"
  "micro_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
