# Empty dependencies file for hattrick_cli.
# This may be replaced when dependencies are built.
