file(REMOVE_RECURSE
  "CMakeFiles/hattrick_cli.dir/hattrick_cli.cc.o"
  "CMakeFiles/hattrick_cli.dir/hattrick_cli.cc.o.d"
  "hattrick_cli"
  "hattrick_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hattrick_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
