file(REMOVE_RECURSE
  "CMakeFiles/live_htap.dir/live_htap.cpp.o"
  "CMakeFiles/live_htap.dir/live_htap.cpp.o.d"
  "live_htap"
  "live_htap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_htap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
