# Empty dependencies file for live_htap.
# This may be replaced when dependencies are built.
