file(REMOVE_RECURSE
  "CMakeFiles/freshness_tradeoff.dir/freshness_tradeoff.cpp.o"
  "CMakeFiles/freshness_tradeoff.dir/freshness_tradeoff.cpp.o.d"
  "freshness_tradeoff"
  "freshness_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freshness_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
