# Empty dependencies file for freshness_tradeoff.
# This may be replaced when dependencies are built.
