#!/usr/bin/env bash
# Full local check: regular build + all tests, then a ThreadSanitizer
# build running the thread-heavy test binaries (ctest label `tsan`:
# morsel-parallel exec, engine merge/pin interplay, threaded driver,
# the randomized concurrency stress).
#
# Usage: scripts/check.sh [--tsan-only | --no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_PLAIN=1
RUN_TSAN=1
case "${1:-}" in
  --tsan-only) RUN_PLAIN=0 ;;
  --no-tsan) RUN_TSAN=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --no-tsan]" >&2; exit 2 ;;
esac

if [[ "$RUN_PLAIN" == 1 ]]; then
  echo "== build (RelWithDebInfo) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== ctest (all) =="
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== build (ThreadSanitizer) =="
  cmake -B build-tsan -S . -DHATTRICK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== ctest -L tsan =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ctest -L tsan --output-on-failure -j 2)
fi

echo "OK"
