#!/usr/bin/env bash
# Single local entry point for every check CI runs.
#
# Legs (default: build, lint, tsan — the pre-push basics):
#   build    regular RelWithDebInfo build + full ctest suite
#   lint     hattrick-lint determinism/locking-hygiene checks (tools/lint)
#   tsan     ThreadSanitizer build, thread-heavy tests (ctest -L tsan)
#   merge-bitmap  full ctest suite + tsan-labeled tests with
#            HATTRICK_MERGE_MODE=bitmap (the versioned-column-store
#            protocol; reuses the build/build-tsan trees)
#   asan     AddressSanitizer (+LSan) build, full ctest suite
#   ubsan    UndefinedBehaviorSanitizer build, full ctest suite
#   analyze  Clang -Wthread-safety -Werror build (HATTRICK_ANALYZE=ON);
#            skipped with a notice when clang++ is not installed
#   analyze-ast  hattrick-analyzer semantic passes (tools/analyzer):
#            whole-program lock-order cycle detection, pin/epoch
#            protocol, determinism-by-type, exhaustive protocol
#            switches. Needs only the compile database (configure, no
#            build); uses libclang when installed and the built-in
#            frontend otherwise, so it never skips
#   tidy     clang-tidy over src/ using the compile database; skipped
#            with a notice when clang-tidy is not installed
#   bench-smoke  bench_runner at smoke scale diffed against the
#            checked-in bench/BENCH_smoke.json via
#            scripts/bench_compare.py (perf-regression gate)
#   contention-smoke  randomized commit-storm suite (commit_storm_test)
#            under ThreadSanitizer in both merge modes (default and
#            HATTRICK_MERGE_MODE=bitmap), plus a latch-protocol replay
#            (HATTRICK_TXN_PROTOCOL=latch) so the lock-free MVCC path
#            and its fallback stay in agreement under load
#   shard-smoke  full ctest suite with HATTRICK_SHARDS=4 (every
#            tidb-dist construction goes through the 4-shard engine),
#            plus the cross-shard 2PC storm (shard_test) under
#            ThreadSanitizer
#
# Usage:
#   scripts/check.sh                  # build + lint + tsan
#   scripts/check.sh --all            # every leg (CI parity)
#   scripts/check.sh --asan --ubsan   # just the named legs
#   scripts/check.sh --merge-bitmap   # bitmap merge-mode leg only
#   scripts/check.sh --shard-smoke    # sharded scale-out leg only
#   scripts/check.sh --tidy           # just clang-tidy
#   scripts/check.sh --tsan-only      # compat: tsan leg only
#   scripts/check.sh --no-tsan        # compat: build + lint, no tsan
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
SUPP_DIR="$PWD/scripts/sanitizers"

RUN_BUILD=0 RUN_LINT=0 RUN_TSAN=0 RUN_ASAN=0 RUN_UBSAN=0
RUN_ANALYZE=0 RUN_ANALYZE_AST=0 RUN_TIDY=0 RUN_MERGE_BITMAP=0
RUN_BENCH_SMOKE=0 RUN_CONTENTION_SMOKE=0 RUN_SHARD_SMOKE=0
if [[ $# -eq 0 ]]; then
  RUN_BUILD=1 RUN_LINT=1 RUN_TSAN=1
fi
for arg in "$@"; do
  case "$arg" in
    --all) RUN_BUILD=1 RUN_LINT=1 RUN_TSAN=1 RUN_ASAN=1 RUN_UBSAN=1
           RUN_ANALYZE=1 RUN_ANALYZE_AST=1 RUN_TIDY=1 RUN_MERGE_BITMAP=1
           RUN_BENCH_SMOKE=1 RUN_CONTENTION_SMOKE=1 RUN_SHARD_SMOKE=1 ;;
    --build) RUN_BUILD=1 ;;
    --lint) RUN_LINT=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --asan) RUN_ASAN=1 ;;
    --ubsan) RUN_UBSAN=1 ;;
    --merge-bitmap) RUN_MERGE_BITMAP=1 ;;
    --analyze) RUN_ANALYZE=1 ;;
    --analyze-ast) RUN_ANALYZE_AST=1 ;;
    --tidy) RUN_TIDY=1 ;;
    --bench-smoke) RUN_BENCH_SMOKE=1 ;;
    --contention-smoke) RUN_CONTENTION_SMOKE=1 ;;
    --shard-smoke) RUN_SHARD_SMOKE=1 ;;
    # Back-compat spellings used by older CI jobs and muscle memory.
    --tsan-only) RUN_TSAN=1 ;;
    --no-tsan) RUN_BUILD=1 RUN_LINT=1 ;;
    *) echo "usage: $0 [--all] [--build] [--lint] [--tsan] [--asan]" \
            "[--ubsan] [--merge-bitmap] [--analyze] [--analyze-ast]" \
            "[--tidy] [--bench-smoke] [--contention-smoke]" \
            "[--shard-smoke] [--tsan-only] [--no-tsan]" >&2
       exit 2 ;;
  esac
done

# sanitizer_leg <name> <HATTRICK_SANITIZE value> <env assignments...>
# Configures build-<name>, builds, and runs ctest (full suite) with the
# given sanitizer runtime options exported.
sanitizer_leg() {
  local name="$1" value="$2"; shift 2
  echo "== build (${name}) =="
  cmake -B "build-${name}" -S . -DHATTRICK_SANITIZE="${value}" >/dev/null
  cmake --build "build-${name}" -j "$JOBS"
  echo "== ctest (${name}) =="
  (cd "build-${name}" && env "$@" ctest --output-on-failure -j "$JOBS")
}

if [[ "$RUN_BUILD" == 1 ]]; then
  echo "== build (RelWithDebInfo) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== ctest (all) =="
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$RUN_LINT" == 1 ]]; then
  echo "== hattrick-lint =="
  python3 tools/lint/hattrick_lint.py
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== build (ThreadSanitizer) =="
  cmake -B build-tsan -S . -DHATTRICK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== ctest -L tsan =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ctest -L tsan --output-on-failure -j 2)
fi

if [[ "$RUN_MERGE_BITMAP" == 1 ]]; then
  echo "== build (merge-mode=bitmap leg) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== ctest (all, HATTRICK_MERGE_MODE=bitmap) =="
  (cd build && HATTRICK_MERGE_MODE=bitmap ctest --output-on-failure -j "$JOBS")
  echo "== build (ThreadSanitizer, merge-mode=bitmap) =="
  cmake -B build-tsan -S . -DHATTRICK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== ctest -L tsan (HATTRICK_MERGE_MODE=bitmap) =="
  (cd build-tsan && HATTRICK_MERGE_MODE=bitmap \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ctest -L tsan --output-on-failure -j 2)
fi

if [[ "$RUN_CONTENTION_SMOKE" == 1 ]]; then
  echo "== build (ThreadSanitizer, contention-smoke) =="
  cmake -B build-tsan -S . -DHATTRICK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target commit_storm_test
  # The storm suite hammers a hot key set from many threads; run it under
  # TSan in both hybrid-merge modes (the bitmap path appends delta
  # versions from the commit tail) and once with the latch fallback
  # protocol so both commit paths stay race-free and in agreement.
  for mode in merge-eager merge-bitmap latch-protocol; do
    echo "== commit_storm_test (tsan, ${mode}) =="
    case "$mode" in
      merge-eager) ENV_VARS=() ;;
      merge-bitmap) ENV_VARS=(HATTRICK_MERGE_MODE=bitmap) ;;
      latch-protocol) ENV_VARS=(HATTRICK_TXN_PROTOCOL=latch) ;;
    esac
    (cd build-tsan && \
        env "${ENV_VARS[@]}" \
            TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
            ctest -R '^commit_storm_test$' --output-on-failure)
  done
fi

if [[ "$RUN_SHARD_SMOKE" == 1 ]]; then
  echo "== build (shard-smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  # Re-run the whole suite with a 4-shard default so every tidb-dist
  # construction routes through ShardRouter + 2PC instead of the
  # single-node engine, then hammer the cross-shard commit path
  # (2PC storm + crash matrix in shard_test) under TSan.
  echo "== ctest (all, HATTRICK_SHARDS=4) =="
  (cd build && HATTRICK_SHARDS=4 ctest --output-on-failure -j "$JOBS")
  echo "== build (ThreadSanitizer, shard-smoke) =="
  cmake -B build-tsan -S . -DHATTRICK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target shard_test
  echo "== shard_test (tsan, HATTRICK_SHARDS=4) =="
  (cd build-tsan && HATTRICK_SHARDS=4 \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ctest -R '^shard_test$' --output-on-failure)
fi

if [[ "$RUN_BENCH_SMOKE" == 1 ]]; then
  echo "== bench-smoke =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_runner
  ./build/bench/bench_runner --name=smoke --out=build/BENCH_smoke.json
  python3 scripts/bench_compare.py bench/BENCH_smoke.json \
      build/BENCH_smoke.json
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  sanitizer_leg asan address \
    ASAN_OPTIONS="detect_leaks=1 halt_on_error=1" \
    LSAN_OPTIONS="suppressions=${SUPP_DIR}/lsan.supp"
fi

if [[ "$RUN_UBSAN" == 1 ]]; then
  sanitizer_leg ubsan undefined \
    UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 suppressions=${SUPP_DIR}/ubsan.supp"
fi

if [[ "$RUN_ANALYZE" == 1 ]]; then
  if command -v clang++ >/dev/null; then
    echo "== build (clang -Wthread-safety -Werror) =="
    cmake -B build-analyze -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DHATTRICK_ANALYZE=ON >/dev/null
    cmake --build build-analyze -j "$JOBS"
  else
    echo "== analyze: clang++ not found, skipping (CI runs this leg) =="
  fi
fi

if [[ "$RUN_ANALYZE_AST" == 1 ]]; then
  echo "== hattrick-analyzer (semantic passes) =="
  # Only the compile database is needed, not a compiled tree: configure
  # refreshes build/compile_commands.json and the analyzer reads sources.
  cmake -B build -S . >/dev/null
  python3 tools/analyzer/hattrick_analyzer.py --verbose
fi

if [[ "$RUN_TIDY" == 1 ]]; then
  if command -v clang-tidy >/dev/null; then
    echo "== clang-tidy =="
    cmake -B build -S . >/dev/null  # refresh compile_commands.json
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null; then
      run-clang-tidy -p build -quiet -j "$JOBS" "${TIDY_SOURCES[@]}"
    else
      clang-tidy -p build --quiet "${TIDY_SOURCES[@]}"
    fi
  else
    echo "== tidy: clang-tidy not found, skipping (CI runs this leg) =="
  fi
fi

echo "OK"
