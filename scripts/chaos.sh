#!/usr/bin/env bash
# Chaos sweep for the replication fault-injection subsystem.
#
# 1. Runs the fault_test chaos harness (20-seed sweep across every fault
#    profile: convergence, no replica errors, no asserts).
# 2. Runs the CLI twice with the same fault seed and diffs the exported
#    metrics + trace byte-for-byte: the end-to-end determinism contract.
# 3. Sweeps hattrick_cli across fault seeds to prove no schedule can
#    crash a full benchmark run.
#
# Usage: scripts/chaos.sh [seeds]   (default 20)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-20}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target fault_test hattrick_cli

echo "== fault_test: chaos sweep =="
./build/tests/fault_test

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_cli() {  # run_cli <seed> <suffix>
  ./build/tools/hattrick_cli point --system=postgres-sr --sf=0.5 \
      --t=2 --a=1 --warmup=0.05 --measure=0.2 \
      --fault-profile=chaos --fault-seed="$1" \
      --metrics-out="$TMP/m$2.json" --trace-out="$TMP/t$2.json" \
      > "$TMP/stdout$2.txt"
}

echo "== CLI same-seed determinism =="
run_cli 7 a
run_cli 7 b
diff "$TMP/ma.json" "$TMP/mb.json" \
  || { echo "FAIL: same-seed metrics diverged" >&2; exit 1; }
diff "$TMP/ta.json" "$TMP/tb.json" \
  || { echo "FAIL: same-seed traces diverged" >&2; exit 1; }
# The report prints the output paths in '#' comment lines; compare the
# measured values only.
diff <(grep -v '^#' "$TMP/stdouta.txt") <(grep -v '^#' "$TMP/stdoutb.txt") \
  || { echo "FAIL: same-seed reports diverged" >&2; exit 1; }

echo "== CLI fault-seed sweep (1..$SEEDS) =="
for seed in $(seq 1 "$SEEDS"); do
  for profile in drop crash chaos; do
    ./build/tools/hattrick_cli point --system=postgres-sr --sf=0.25 \
        --t=2 --a=1 --warmup=0.05 --measure=0.1 \
        --fault-profile="$profile" --fault-seed="$seed" >/dev/null \
      || { echo "FAIL: profile=$profile seed=$seed" >&2; exit 1; }
  done
  echo -n "."
done
echo
echo "OK"
