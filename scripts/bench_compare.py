#!/usr/bin/env python3
"""Diff two bench_runner snapshots (BENCH_<name>.json) with tolerance bands.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [options]

Checks, per system matched by its "system" key:
  - throughput (tps, qps): current may not fall more than --throughput-tol
    below the baseline;
  - tail latencies (txn/query p99, freshness p99): current may not exceed
    the baseline by more than --latency-tol, with --latency-floor-ms of
    absolute slack so microsecond-scale jitter never trips the gate;
  - query profiles: rows_per_exec must match exactly (a row-count change
    is a correctness bug, not a perf regression); work_per_exec may not
    grow more than --work-tol; a digest change alone is reported as a
    warning (plan shape changed — expected when operators are added).

Exit codes: 0 ok, 1 regression detected, 2 usage/format error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("bench_format") != 1:
        print(f"bench_compare: {path}: unsupported bench_format "
              f"{doc.get('bench_format')!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_<name>.json snapshots")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--throughput-tol", type=float, default=0.15,
                        help="allowed fractional tps/qps drop (default 0.15)")
    parser.add_argument("--latency-tol", type=float, default=0.30,
                        help="allowed fractional p99 growth (default 0.30)")
    parser.add_argument("--latency-floor-ms", type=float, default=0.05,
                        help="absolute p99 slack in ms (default 0.05)")
    parser.add_argument("--work-tol", type=float, default=0.02,
                        help="allowed fractional per-query work growth "
                             "(default 0.02)")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    regressions = []
    warnings = []

    def check_throughput(label, base_v, curr_v):
        if base_v <= 0:
            return
        drop = (base_v - curr_v) / base_v
        if drop > args.throughput_tol:
            regressions.append(
                f"{label}: {curr_v:.6g} vs baseline {base_v:.6g} "
                f"({drop:+.1%} drop, tol {args.throughput_tol:.0%})")

    def check_latency(label, base_v, curr_v):
        slack = base_v * args.latency_tol + args.latency_floor_ms * 1e-3
        if curr_v > base_v + slack:
            growth = (curr_v - base_v) / base_v if base_v > 0 else float("inf")
            regressions.append(
                f"{label}: {curr_v * 1e3:.4g} ms vs baseline "
                f"{base_v * 1e3:.4g} ms ({growth:+.1%}, tol "
                f"{args.latency_tol:.0%} + {args.latency_floor_ms} ms)")

    curr_systems = {s["system"]: s for s in curr.get("systems", [])}
    for base_sys in base.get("systems", []):
        name = base_sys["system"]
        curr_sys = curr_systems.get(name)
        if curr_sys is None:
            regressions.append(f"{name}: missing from current snapshot")
            continue

        check_throughput(f"{name}.tps", base_sys["tps"], curr_sys["tps"])
        check_throughput(f"{name}.qps", base_sys["qps"], curr_sys["qps"])
        check_latency(f"{name}.txn_p99",
                      base_sys["txn_latency_s"]["all"]["p99"],
                      curr_sys["txn_latency_s"]["all"]["p99"])
        check_latency(f"{name}.query_p99",
                      base_sys["query_latency_s"]["all"]["p99"],
                      curr_sys["query_latency_s"]["all"]["p99"])
        check_latency(f"{name}.freshness_p99",
                      base_sys.get("freshness_p99_s", 0),
                      curr_sys.get("freshness_p99_s", 0))

        curr_profiles = {p["query"]: p
                         for p in curr_sys.get("query_profiles", [])}
        for base_prof in base_sys.get("query_profiles", []):
            query = base_prof["query"]
            curr_prof = curr_profiles.get(query)
            if curr_prof is None:
                regressions.append(f"{name}.{query}: profile missing")
                continue
            if curr_prof["rows_per_exec"] != base_prof["rows_per_exec"]:
                regressions.append(
                    f"{name}.{query}: rows_per_exec "
                    f"{curr_prof['rows_per_exec']} vs baseline "
                    f"{base_prof['rows_per_exec']} (correctness)")
            base_work = base_prof["work_per_exec"]
            curr_work = curr_prof["work_per_exec"]
            if base_work > 0 and curr_work > base_work * (1 + args.work_tol):
                growth = (curr_work - base_work) / base_work
                regressions.append(
                    f"{name}.{query}: work_per_exec {curr_work} vs "
                    f"baseline {base_work} ({growth:+.1%}, tol "
                    f"{args.work_tol:.0%})")
            if curr_prof["digest"] != base_prof["digest"]:
                warnings.append(
                    f"{name}.{query}: profile digest changed "
                    f"({base_prof['digest']} -> {curr_prof['digest']})")

    for note in warnings:
        print(f"WARNING  {note}")
    for note in regressions:
        print(f"REGRESSION  {note}")
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s), "
              f"{len(warnings)} warning(s)")
        return 1
    print(f"bench_compare: ok ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
