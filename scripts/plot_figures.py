#!/usr/bin/env python3
"""Plot the CSV blocks emitted by the figure benchmarks.

Usage:
    ./build/bench/fig05_postgres_sf | tee fig05.txt
    python3 scripts/plot_figures.py fig05.txt --out fig05.png

Each bench prints blocks of the form

    # <label> fixed-T lines (t_clients,a_clients,tps,qps)
    <csv rows, blank line between lines>
    # <label> fixed-A lines (...)
    ...
    # <label> frontier (tps,qps)
    <csv rows>

This script renders every frontier found in the file on one axes pair,
plus per-label grid graphs, using matplotlib if available.

It can also render the tail-latency percentile curves from a
bench_runner snapshot (p99 vs throughput per system, one line each for
transactions and queries):

    ./build/bench/bench_runner --name=smoke
    python3 scripts/plot_figures.py --bench BENCH_smoke.json --out tails.png
"""

import argparse
import json
import re
import sys
from collections import defaultdict


def parse_blocks(lines):
    """Returns {label: {"frontier": [(tps,qps)...],
                        "fixed_t": [[(t,a,tps,qps)...], ...],
                        "fixed_a": [...]}}"""
    systems = defaultdict(lambda: {"frontier": [], "fixed_t": [], "fixed_a": []})
    mode = None
    label = None
    current_line = []

    def flush_line():
        nonlocal current_line
        if mode in ("fixed_t", "fixed_a") and current_line:
            systems[label][mode].append(current_line)
        current_line = []

    frontier_re = re.compile(r"^# (.*) frontier \(tps,qps\)")
    fixed_t_re = re.compile(r"^# (.*) fixed-T lines")
    fixed_a_re = re.compile(r"^# (.*) fixed-A lines")

    for raw in lines:
        line = raw.rstrip("\n")
        m = fixed_t_re.match(line)
        if m:
            flush_line()
            mode, label = "fixed_t", m.group(1)
            continue
        m = fixed_a_re.match(line)
        if m:
            flush_line()
            mode, label = "fixed_a", m.group(1)
            continue
        m = frontier_re.match(line)
        if m:
            flush_line()
            mode, label = "frontier", m.group(1)
            continue
        if not line.strip():
            flush_line()
            continue
        if line.startswith("#") or mode is None:
            continue
        parts = line.split(",")
        try:
            values = [float(p) for p in parts]
        except ValueError:
            flush_line()
            mode = None
            continue
        if mode == "frontier" and len(values) == 2:
            systems[label]["frontier"].append(tuple(values))
        elif mode in ("fixed_t", "fixed_a") and len(values) == 4:
            current_line.append(tuple(values))
    flush_line()
    return systems


def import_pyplot():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
        return plt
    except ImportError:
        sys.exit("error: matplotlib is not installed; the raw data is "
                 "already plottable with any tool")


def plot_bench(path, out):
    """Percentile curves from a BENCH_<name>.json snapshot: p99 latency
    against achieved throughput per system, one panel for transactions
    and one for queries (the operating-point sweep in "points")."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("bench_format") != 1:
        sys.exit(f"error: {path}: unsupported bench_format "
                 f"{doc.get('bench_format')!r}")

    plt = import_pyplot()
    fig, (txn_ax, query_ax) = plt.subplots(1, 2, figsize=(10, 4))
    for system in doc.get("systems", []):
        points = system.get("points", [])
        if not points:
            continue
        label = system["system"]
        txn_ax.plot([p["tps"] for p in points],
                    [p["txn_p99_s"] * 1e3 for p in points],
                    "o-", label=label)
        query_ax.plot([p["qps"] for p in points],
                      [p["query_p99_s"] * 1e3 for p in points],
                      "s-", label=label)
    txn_ax.set_title(f"{doc.get('name', '?')}: txn tail latency")
    txn_ax.set_xlabel("T throughput (tps)")
    txn_ax.set_ylabel("txn p99 (ms)")
    txn_ax.legend(fontsize=7)
    query_ax.set_title(f"{doc.get('name', '?')}: query tail latency")
    query_ax.set_xlabel("A throughput (qps)")
    query_ax.set_ylabel("query p99 (ms)")
    query_ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("input", nargs="?", help="bench output file")
    parser.add_argument("--bench", metavar="BENCH_JSON",
                        help="plot percentile curves from a bench_runner "
                             "snapshot instead of CSV frontier blocks")
    parser.add_argument("--out", default="figure.png")
    args = parser.parse_args()

    if args.bench:
        plot_bench(args.bench, args.out)
        return
    if not args.input:
        parser.error("give a bench output file or --bench BENCH_JSON")

    try:
        with open(args.input) as f:
            systems = parse_blocks(f.readlines())
    except OSError as e:
        sys.exit(f"error: cannot read {args.input}: {e.strerror}")
    if not systems:
        sys.exit(f"error: {args.input} has no '# <label> ...' CSV blocks -- "
                 "pipe a figure bench's stdout (e.g. ./build/bench/"
                 "fig05_postgres_sf) into a file and pass that file")

    plt = import_pyplot()

    n = len(systems)
    fig, axes = plt.subplots(1, n + 1, figsize=(5 * (n + 1), 4))
    if n == 0:
        sys.exit("nothing to plot")

    # Per-system grid graphs.
    for ax, (label, data) in zip(axes, systems.items()):
        for line in data["fixed_t"]:
            xs = [p[2] for p in line]
            ys = [p[3] for p in line]
            ax.plot(xs, ys, "o-", color="tab:blue", alpha=0.5, ms=3)
        for line in data["fixed_a"]:
            xs = [p[2] for p in line]
            ys = [p[3] for p in line]
            ax.plot(xs, ys, "s-", color="tab:orange", alpha=0.5, ms=3)
        ax.set_title(label)
        ax.set_xlabel("T throughput (tps)")
        ax.set_ylabel("A throughput (qps)")

    # All frontiers on the last axes, with proportional lines.
    ax = axes[-1]
    for label, data in systems.items():
        if not data["frontier"]:
            continue
        xs = [p[0] for p in data["frontier"]]
        ys = [p[1] for p in data["frontier"]]
        ax.plot(xs, ys, "o-", label=label)
        ax.plot([max(xs), 0], [0, max(ys)], "--", alpha=0.3)
    ax.set_title("throughput frontiers")
    ax.set_xlabel("T throughput (tps)")
    ax.set_ylabel("A throughput (qps)")
    ax.legend(fontsize=7)

    fig.tight_layout()
    fig.savefig(args.out, dpi=150)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
