// Tests for the freshness score (Section 4): the paper's Figure 3
// example, clamping, multi-client aggregation, failed-transaction gaps,
// and randomized property tests (full-visibility snapshots score ~0;
// the score is monotone in the query start and antitone in visibility).

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hattrick/freshness.h"

namespace hattrick {
namespace {

TEST(FreshnessTest, PaperFigure3Example) {
  // Transactions T1, T2, T3 commit at tc1 < tc2 < tc3; query A1 starts at
  // ts1 and sees only T1. First-not-seen is T2, so f = ts1 - tc2.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, /*tc1=*/1.0);
  tracker.RecordCommit(1, 2, /*tc2=*/2.0);
  tracker.RecordCommit(1, 3, /*tc3=*/3.0);

  FreshnessTracker::Observation obs;
  obs.query_start = 3.5;  // after tc3
  obs.seen = {1};         // saw only T1
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 3.5 - 2.0);
}

TEST(FreshnessTest, UpToDateSnapshotScoresZero) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 2.0;
  obs.seen = {1};  // saw everything committed before it
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, FutureCommitsClampToZero) {
  // The first unseen transaction committed *after* the query started:
  // the snapshot was up to date, f = max(0, negative) = 0.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  tracker.RecordCommit(1, 2, 5.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 2.0;
  obs.seen = {1};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, NegativeSeenScoresAsSawNothing) {
  // A malformed read-back (-1 sentinel) must not wrap to a huge size_t
  // (which silently scored 0); it means the query saw no transactions,
  // so the first unseen is the very first commit.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, /*tc1=*/1.0);
  tracker.RecordCommit(1, 2, /*tc2=*/2.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 3.0;
  obs.seen = {-1};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 3.0 - 1.0);
}

TEST(FreshnessTest, EarliestUnseenAcrossClientsWins) {
  // Client 1's first unseen committed at 4.0; client 2's at 1.0. The
  // first-not-seen transaction overall is client 2's -> f = ts - 1.0.
  FreshnessTracker tracker;
  tracker.SetNumClients(2);
  tracker.RecordCommit(1, 1, 3.0);
  tracker.RecordCommit(1, 2, 4.0);
  tracker.RecordCommit(2, 1, 1.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 6.0;
  obs.seen = {1, 0};  // saw client 1's txn 1, nothing from client 2
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 5.0);
}

TEST(FreshnessTest, FailedTransactionGapsAreSkipped) {
  // Client 1 committed txns 1 and 3; txn 2 failed (never recorded). A
  // query that saw txn 1 has first unseen *committed* txn 3.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  tracker.RecordCommit(1, 3, 2.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 10.0;
  obs.seen = {1};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 8.0);
}

TEST(FreshnessTest, NoUnseenTransactionsScoresZero) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  FreshnessTracker::Observation obs;
  obs.query_start = 5.0;
  obs.seen = {0};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, ObservationWithFewerClientsThanTracker) {
  FreshnessTracker tracker;
  tracker.SetNumClients(4);
  tracker.RecordCommit(1, 1, 1.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 3.0;
  obs.seen = {0};  // only client 1 reported
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 2.0);
}

TEST(FreshnessTest, ResetClearsHistory) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  tracker.Reset();
  FreshnessTracker::Observation obs;
  obs.query_start = 5.0;
  obs.seen = {0};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, OutOfOrderRecordingAcrossClients) {
  FreshnessTracker tracker;
  tracker.SetNumClients(2);
  tracker.RecordCommit(2, 1, 0.5);
  tracker.RecordCommit(1, 1, 0.7);
  tracker.RecordCommit(2, 2, 0.9);
  FreshnessTracker::Observation obs;
  obs.query_start = 2.0;
  obs.seen = {0, 1};
  // Unseen: client 1 txn 1 (tc 0.7), client 2 txn 2 (tc 0.9); earliest
  // unseen commit is 0.7.
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 2.0 - 0.7);
}

TEST(FreshnessTest, MonotoneInQueryStart) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  FreshnessTracker::Observation early;
  early.query_start = 2.0;
  early.seen = {0};
  FreshnessTracker::Observation late;
  late.query_start = 4.0;
  late.seen = {0};
  EXPECT_LT(tracker.Score(early), tracker.Score(late));
}

// --------------------------------------------------------------------------
// Randomized property tests (ISSUE satellite): the invariants a
// zero-freshness snapshot protocol (eager merge or bitmap snapshots at
// the newest committed CSN) must uphold, checked over random histories.
// --------------------------------------------------------------------------

/// A random multi-client commit history; returns per-client commit
/// counts and feeds the tracker with increasing commit times.
std::vector<int64_t> RandomHistory(FreshnessTracker* tracker, Rng* rng,
                                   uint32_t clients, double* end_time) {
  tracker->SetNumClients(clients);
  std::vector<int64_t> issued(clients, 0);
  double t = 0;
  const int commits = static_cast<int>(rng->Uniform(5, 60));
  for (int i = 0; i < commits; ++i) {
    t += rng->NextDouble();
    const uint32_t client =
        static_cast<uint32_t>(rng->Uniform(1, clients));
    // Occasionally skip a txn_num: failed transactions leave gaps.
    issued[client - 1] += rng->Bernoulli(0.15) ? 2 : 1;
    tracker->RecordCommit(client, static_cast<uint64_t>(issued[client - 1]),
                          t);
  }
  *end_time = t;
  return issued;
}

TEST(FreshnessPropertyTest, FullVisibilitySnapshotsScoreZero) {
  // A session that sees every transaction committed before it starts —
  // what BeginAnalytics guarantees in both merge modes, since the
  // snapshot CSN is the newest committed timestamp — must score exactly
  // 0 no matter the history.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 7919);
    FreshnessTracker tracker;
    double end_time = 0;
    const std::vector<int64_t> issued =
        RandomHistory(&tracker, &rng, 4, &end_time);
    FreshnessTracker::Observation obs;
    obs.query_start = end_time + rng.NextDouble();
    obs.seen.assign(issued.begin(), issued.end());
    EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0) << "seed " << seed;
  }
}

TEST(FreshnessPropertyTest, ScoreMonotoneInQueryStart) {
  // Fixing what a session saw, a later query start can only be staler:
  // f(ts) is non-decreasing in ts. (This is the monotonicity a frozen
  // bitmap snapshot exhibits as wall time advances past its CSN.)
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 104729);
    FreshnessTracker tracker;
    double end_time = 0;
    const std::vector<int64_t> issued =
        RandomHistory(&tracker, &rng, 3, &end_time);
    FreshnessTracker::Observation obs;
    obs.seen.resize(issued.size());
    for (size_t c = 0; c < issued.size(); ++c) {
      obs.seen[c] = rng.Uniform(0, issued[c]);
    }
    double prev = -1.0;
    for (double ts = 0.0; ts <= end_time + 1.0; ts += 0.25) {
      obs.query_start = ts;
      const double score = tracker.Score(obs);
      EXPECT_GE(score, prev) << "seed " << seed << " ts " << ts;
      EXPECT_GE(score, 0.0);
      prev = score;
    }
  }
}

TEST(FreshnessPropertyTest, SeeingMoreNeverIncreasesScore) {
  // Componentwise-larger visibility vectors can only lower (or keep)
  // the score: folding versions into the base or advancing the snapshot
  // CSN never makes a session appear staler.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 1299709);
    FreshnessTracker tracker;
    double end_time = 0;
    const std::vector<int64_t> issued =
        RandomHistory(&tracker, &rng, 3, &end_time);
    FreshnessTracker::Observation less;
    less.query_start = end_time + 0.5;
    less.seen.resize(issued.size());
    FreshnessTracker::Observation more = less;
    for (size_t c = 0; c < issued.size(); ++c) {
      less.seen[c] = rng.Uniform(0, issued[c]);
      more.seen[c] = rng.Uniform(less.seen[c], issued[c]);
    }
    EXPECT_LE(tracker.Score(more), tracker.Score(less)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hattrick
