// Tests for the freshness score (Section 4): the paper's Figure 3
// example, clamping, multi-client aggregation, and failed-transaction
// gaps.

#include <gtest/gtest.h>

#include "hattrick/freshness.h"

namespace hattrick {
namespace {

TEST(FreshnessTest, PaperFigure3Example) {
  // Transactions T1, T2, T3 commit at tc1 < tc2 < tc3; query A1 starts at
  // ts1 and sees only T1. First-not-seen is T2, so f = ts1 - tc2.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, /*tc1=*/1.0);
  tracker.RecordCommit(1, 2, /*tc2=*/2.0);
  tracker.RecordCommit(1, 3, /*tc3=*/3.0);

  FreshnessTracker::Observation obs;
  obs.query_start = 3.5;  // after tc3
  obs.seen = {1};         // saw only T1
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 3.5 - 2.0);
}

TEST(FreshnessTest, UpToDateSnapshotScoresZero) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 2.0;
  obs.seen = {1};  // saw everything committed before it
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, FutureCommitsClampToZero) {
  // The first unseen transaction committed *after* the query started:
  // the snapshot was up to date, f = max(0, negative) = 0.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  tracker.RecordCommit(1, 2, 5.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 2.0;
  obs.seen = {1};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, NegativeSeenScoresAsSawNothing) {
  // A malformed read-back (-1 sentinel) must not wrap to a huge size_t
  // (which silently scored 0); it means the query saw no transactions,
  // so the first unseen is the very first commit.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, /*tc1=*/1.0);
  tracker.RecordCommit(1, 2, /*tc2=*/2.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 3.0;
  obs.seen = {-1};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 3.0 - 1.0);
}

TEST(FreshnessTest, EarliestUnseenAcrossClientsWins) {
  // Client 1's first unseen committed at 4.0; client 2's at 1.0. The
  // first-not-seen transaction overall is client 2's -> f = ts - 1.0.
  FreshnessTracker tracker;
  tracker.SetNumClients(2);
  tracker.RecordCommit(1, 1, 3.0);
  tracker.RecordCommit(1, 2, 4.0);
  tracker.RecordCommit(2, 1, 1.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 6.0;
  obs.seen = {1, 0};  // saw client 1's txn 1, nothing from client 2
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 5.0);
}

TEST(FreshnessTest, FailedTransactionGapsAreSkipped) {
  // Client 1 committed txns 1 and 3; txn 2 failed (never recorded). A
  // query that saw txn 1 has first unseen *committed* txn 3.
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  tracker.RecordCommit(1, 3, 2.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 10.0;
  obs.seen = {1};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 8.0);
}

TEST(FreshnessTest, NoUnseenTransactionsScoresZero) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  FreshnessTracker::Observation obs;
  obs.query_start = 5.0;
  obs.seen = {0};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, ObservationWithFewerClientsThanTracker) {
  FreshnessTracker tracker;
  tracker.SetNumClients(4);
  tracker.RecordCommit(1, 1, 1.0);
  FreshnessTracker::Observation obs;
  obs.query_start = 3.0;
  obs.seen = {0};  // only client 1 reported
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 2.0);
}

TEST(FreshnessTest, ResetClearsHistory) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  tracker.Reset();
  FreshnessTracker::Observation obs;
  obs.query_start = 5.0;
  obs.seen = {0};
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 0.0);
}

TEST(FreshnessTest, OutOfOrderRecordingAcrossClients) {
  FreshnessTracker tracker;
  tracker.SetNumClients(2);
  tracker.RecordCommit(2, 1, 0.5);
  tracker.RecordCommit(1, 1, 0.7);
  tracker.RecordCommit(2, 2, 0.9);
  FreshnessTracker::Observation obs;
  obs.query_start = 2.0;
  obs.seen = {0, 1};
  // Unseen: client 1 txn 1 (tc 0.7), client 2 txn 2 (tc 0.9); earliest
  // unseen commit is 0.7.
  EXPECT_DOUBLE_EQ(tracker.Score(obs), 2.0 - 0.7);
}

TEST(FreshnessTest, MonotoneInQueryStart) {
  FreshnessTracker tracker;
  tracker.SetNumClients(1);
  tracker.RecordCommit(1, 1, 1.0);
  FreshnessTracker::Observation early;
  early.query_start = 2.0;
  early.seen = {0};
  FreshnessTracker::Observation late;
  late.query_start = 4.0;
  late.seen = {0};
  EXPECT_LT(tracker.Score(early), tracker.Score(late));
}

}  // namespace
}  // namespace hattrick
