// Tests for streaming replication: WAL shipping, replica replay and
// convergence with the primary, lag accounting, reset.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fault/fault_injector.h"
#include "replication/replica.h"
#include "replication/wal_stream.h"
#include "storage/catalog.h"
#include "txn/timestamp.h"
#include "txn/txn_manager.h"

namespace hattrick {
namespace {

Schema KvSchema() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
}

struct Node {
  Catalog catalog;
  TimestampOracle oracle;
};

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    primary_.catalog.CreateTable("kv", KvSchema());
    primary_.catalog.CreateIndex("kv_pk", "kv", {0}, true);
    standby_.catalog.CreateTable("kv", KvSchema());
    standby_.catalog.CreateIndex("kv_pk", "kv", {0}, true);
    tm_ = std::make_unique<TxnManager>(&primary_.catalog, &primary_.oracle,
                                       &stream_);
    replica_ = std::make_unique<Replica>(&standby_.catalog, &stream_);
  }

  void CommitInsert(int64_t k, const std::string& v) {
    Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
    tm_->BufferInsert(&txn, 0, Row{k, v});
    ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  }

  void CommitUpdate(Rid rid, int64_t k, const std::string& v) {
    Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
    Row row;
    ASSERT_TRUE(tm_->Read(&txn, 0, rid, &row, nullptr).ok());
    tm_->BufferUpdate(&txn, 0, rid, row, Row{k, v});
    ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  }

  Node primary_;
  Node standby_;
  WalStream stream_;
  std::unique_ptr<TxnManager> tm_;
  std::unique_ptr<Replica> replica_;
};

TEST_F(ReplicationTest, StreamShipsRecordsInOrder) {
  CommitInsert(1, "a");
  CommitInsert(2, "b");
  EXPECT_EQ(stream_.head_lsn(), 2u);
  EXPECT_EQ(stream_.PendingAfter(0), 2u);
  EXPECT_GT(stream_.shipped_bytes(), 0u);

  StatusOr<ShippedRecord> first = stream_.Peek(0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->record.lsn, 1u);
  EXPECT_GT(first->encoded_size, 0u);
  ASSERT_TRUE(stream_.Consume(1).ok());
  StatusOr<ShippedRecord> second = stream_.Peek(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->record.lsn, 2u);
}

TEST_F(ReplicationTest, PeekReportsDrainedVsGap) {
  // Nothing ever shipped: drained, not a gap.
  EXPECT_EQ(stream_.Peek(0).status().code(), StatusCode::kNotFound);
  CommitInsert(1, "a");
  // Shipped but already consumed without a matching applied_lsn bump:
  // Peek(0) with an empty delivery queue but head_lsn=1 is a gap.
  ASSERT_TRUE(stream_.Consume(1).ok());
  EXPECT_EQ(stream_.Peek(0).status().code(), StatusCode::kOutOfRange);
  // From the applied point of view of lsn 1, the stream is drained.
  EXPECT_EQ(stream_.Peek(1).status().code(), StatusCode::kNotFound);
}

TEST_F(ReplicationTest, ConsumeValidatesFrontLsn) {
  EXPECT_EQ(stream_.Consume(1).code(), StatusCode::kInvalidArgument);
  CommitInsert(1, "a");
  EXPECT_EQ(stream_.Consume(2).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(stream_.Consume(1).ok());
}

TEST_F(ReplicationTest, AcknowledgeTrimsRetentionBuffer) {
  CommitInsert(1, "a");
  CommitInsert(2, "b");
  CommitInsert(3, "c");
  EXPECT_EQ(stream_.RetainedRecords(), 3u);
  stream_.Acknowledge(2);
  EXPECT_EQ(stream_.RetainedRecords(), 1u);
  // Acked records can no longer be re-requested.
  EXPECT_EQ(stream_.RequestResend(1, 1).code(), StatusCode::kNotFound);
  // Retained ones can: the record lands at the delivery-queue front.
  ASSERT_TRUE(stream_.RequestResend(3, 1).ok());
  StatusOr<ShippedRecord> front = stream_.Peek(2);
  ASSERT_TRUE(front.ok());
  EXPECT_EQ(front->record.lsn, 3u);
}

TEST_F(ReplicationTest, DroppedShipIsRecoveredViaResend) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 7;
  config.drop_rate = 1.0;  // every initial ship is lost
  FaultInjector injector(config);
  stream_.SetFaultInjector(&injector);

  CommitInsert(1, "a");
  EXPECT_EQ(stream_.injected_drops(), 1u);
  EXPECT_EQ(stream_.Peek(0).status().code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(stream_.RequestResend(1, 1).ok());
  StatusOr<ShippedRecord> recovered = stream_.Peek(0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->record.lsn, 1u);
  stream_.SetFaultInjector(nullptr);
}

TEST_F(ReplicationTest, DuplicateDeliveryIsSkippedIdempotently) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 7;
  config.duplicate_rate = 1.0;  // every record is delivered twice
  FaultInjector injector(config);
  stream_.SetFaultInjector(&injector);

  CommitInsert(1, "a");
  CommitInsert(2, "b");
  EXPECT_EQ(stream_.injected_duplicates(), 2u);
  WorkMeter meter;
  EXPECT_EQ(replica_->CatchUp(&meter), 2u);  // applied once each
  EXPECT_EQ(replica_->duplicate_skips(), 2u);
  EXPECT_EQ(replica_->applied_lsn(), 2u);
  // Exactly one copy of each row on the standby.
  EXPECT_EQ(standby_.catalog.GetTable("kv")->NumSlots(),
            primary_.catalog.GetTable("kv")->NumSlots());
  stream_.SetFaultInjector(nullptr);
}

TEST_F(ReplicationTest, ResyncRedeliversUnappliedTail) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 7;
  config.drop_rate = 1.0;
  config.resend_drop_rate = 1.0;  // resends are lost too
  FaultInjector injector(config);
  stream_.SetFaultInjector(&injector);

  CommitInsert(1, "a");
  CommitInsert(2, "b");
  // Even with every ship and resend dropped, the replica escalates to a
  // resync (which bypasses the fault model) and converges.
  EXPECT_EQ(replica_->CatchUp(nullptr), 2u);
  EXPECT_GE(replica_->crash_recoveries(), 1u);
  EXPECT_EQ(replica_->Lag(), 0u);
  EXPECT_TRUE(replica_->last_error().ok());
  stream_.SetFaultInjector(nullptr);
}

// Regression: a key-changing update must remove the old index entry on
// the replica. Before the fix the old key stayed behind, so a standby
// index scan saw a phantom entry for a key that no row carries anymore.
TEST_F(ReplicationTest, KeyChangingUpdateRemovesOldIndexEntry) {
  CommitInsert(1, "a");
  CommitUpdate(/*rid=*/0, /*k=*/2, "a2");  // key 1 -> 2
  replica_->CatchUp(nullptr);

  IndexInfo* index = standby_.catalog.GetIndex("kv_pk");
  EXPECT_EQ(index->tree->size(), 1u)
      << "stale entry for the old key left in the standby index";
  uint64_t rid = 0;
  EXPECT_FALSE(index->tree->Lookup(index->KeyFor(Row{int64_t{1}, ""}, 0),
                                   &rid, nullptr))
      << "old key still resolves on the standby";
  EXPECT_TRUE(index->tree->Lookup(index->KeyFor(Row{int64_t{2}, ""}, 0),
                                  &rid, nullptr));
}

TEST_F(ReplicationTest, ApplyNextReplaysOneRecord) {
  CommitInsert(1, "a");
  CommitInsert(2, "b");
  WorkMeter meter;
  EXPECT_TRUE(replica_->ApplyNext(&meter));
  EXPECT_EQ(replica_->applied_lsn(), 1u);
  EXPECT_EQ(replica_->Lag(), 1u);
  EXPECT_GT(meter.wal_records, 0u);
  EXPECT_GT(meter.rows_written, 0u);

  Row row;
  ASSERT_TRUE(standby_.catalog.GetTable("kv")->Read(
      0, replica_->Snapshot(), &row, nullptr));
  EXPECT_EQ(row[1].AsString(), "a");
}

TEST_F(ReplicationTest, CatchUpConverges) {
  for (int i = 0; i < 20; ++i) CommitInsert(i, "v" + std::to_string(i));
  CommitUpdate(3, 3, "updated");
  EXPECT_EQ(replica_->CatchUp(nullptr), 21u);
  EXPECT_EQ(replica_->Lag(), 0u);

  // Replica state equals primary state (same slots, same latest values).
  RowTable* p = primary_.catalog.GetTable("kv");
  RowTable* s = standby_.catalog.GetTable("kv");
  ASSERT_EQ(p->NumSlots(), s->NumSlots());
  for (Rid rid = 0; rid < p->NumSlots(); ++rid) {
    Row pr;
    Row sr;
    ASSERT_TRUE(p->ReadLatest(rid, &pr, nullptr));
    ASSERT_TRUE(s->ReadLatest(rid, &sr, nullptr));
    EXPECT_EQ(pr, sr) << "rid=" << rid;
  }
}

TEST_F(ReplicationTest, ReplicaMaintainsIndexes) {
  CommitInsert(41, "x");
  replica_->CatchUp(nullptr);
  IndexInfo* index = standby_.catalog.GetIndex("kv_pk");
  EXPECT_EQ(index->tree->size(), 1u);
}

TEST_F(ReplicationTest, ApplyNextFalseWhenDrained) {
  EXPECT_FALSE(replica_->ApplyNext(nullptr));
  CommitInsert(1, "a");
  EXPECT_TRUE(replica_->ApplyNext(nullptr));
  EXPECT_FALSE(replica_->ApplyNext(nullptr));
}

TEST_F(ReplicationTest, SnapshotAdvancesOnlyOnApply) {
  const Ts before = replica_->Snapshot();
  CommitInsert(1, "a");
  EXPECT_EQ(replica_->Snapshot(), before);  // shipped but not applied
  replica_->ApplyNext(nullptr);
  EXPECT_GT(replica_->Snapshot(), before);
}

TEST_F(ReplicationTest, StreamReset) {
  CommitInsert(1, "a");
  stream_.Reset();
  EXPECT_EQ(stream_.head_lsn(), 0u);
  EXPECT_EQ(stream_.PendingAfter(0), 0u);
  EXPECT_EQ(stream_.Peek(0).status().code(), StatusCode::kNotFound);
}

TEST_F(ReplicationTest, ModeNames) {
  EXPECT_STREQ(ReplicationModeName(ReplicationMode::kAsync), "ASYNC");
  EXPECT_STREQ(ReplicationModeName(ReplicationMode::kSyncShip), "ON");
  EXPECT_STREQ(ReplicationModeName(ReplicationMode::kRemoteApply),
               "REMOTE_APPLY");
}

// Property: a random committed history replayed on the standby leaves
// both nodes with identical visible contents.
class ReplicationConvergenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationConvergenceTest, RandomHistoriesConverge) {
  Node primary;
  Node standby;
  primary.catalog.CreateTable("kv", KvSchema());
  standby.catalog.CreateTable("kv", KvSchema());
  WalStream stream;
  TxnManager tm(&primary.catalog, &primary.oracle, &stream);
  Replica replica(&standby.catalog, &stream);

  Rng rng(GetParam());
  size_t committed_rows = 0;  // rows visible to new transactions
  for (int step = 0; step < 300; ++step) {
    Transaction txn = tm.Begin(IsolationLevel::kSnapshot);
    size_t pending_inserts = 0;
    const int ops = static_cast<int>(rng.Uniform(1, 4));
    for (int i = 0; i < ops; ++i) {
      if (committed_rows == 0 || rng.Bernoulli(0.5)) {
        tm.BufferInsert(&txn, 0,
                        Row{static_cast<int64_t>(step),
                            "s" + std::to_string(step * 10 + i)});
        ++pending_inserts;
      } else {
        const Rid rid = static_cast<Rid>(
            rng.Uniform(0, static_cast<int64_t>(committed_rows) - 1));
        Row row;
        ASSERT_TRUE(tm.Read(&txn, 0, rid, &row, nullptr).ok());
        tm.BufferUpdate(&txn, 0, rid, row,
                        Row{row[0].AsInt(),
                            "u" + std::to_string(step * 10 + i)});
      }
    }
    ASSERT_TRUE(tm.Commit(&txn, nullptr).ok());
    committed_rows += pending_inserts;
    // Interleave partial replay.
    if (rng.Bernoulli(0.5)) replica.ApplyNext(nullptr);
  }
  replica.CatchUp(nullptr);

  RowTable* p = primary.catalog.GetTable("kv");
  RowTable* s = standby.catalog.GetTable("kv");
  ASSERT_EQ(p->NumSlots(), s->NumSlots());
  for (Rid rid = 0; rid < p->NumSlots(); ++rid) {
    Row pr;
    Row sr;
    ASSERT_TRUE(p->ReadLatest(rid, &pr, nullptr));
    ASSERT_TRUE(s->ReadLatest(rid, &sr, nullptr));
    EXPECT_EQ(pr, sr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationConvergenceTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace hattrick
