// Tests for src/obs: the metrics registry (sharded counters, probe
// gauges, deterministic reservoir histograms, sorted snapshots), the
// span tracer (clock injection, ring bounds, Chrome trace-event export),
// and the end-to-end observability contract of the drivers — two
// same-seed simulated runs must export byte-identical metrics and trace
// files.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace hattrick {
namespace {

// --------------------------------------------------------------------------
// Counter / Gauge / Histogram
// --------------------------------------------------------------------------

TEST(CounterTest, StartsAtZeroAndSums) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndProbe) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  double backing = 7.0;
  g.SetProbe([&backing] { return backing; });
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);  // probe wins over pushed value
  backing = 9.0;
  EXPECT_DOUBLE_EQ(g.Value(), 9.0);  // evaluated at read time
}

TEST(HistogramTest, EmptyIsAllZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, ExactBelowCapacity) {
  obs::Histogram h(128);
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, ReservoirIsDeterministic) {
  // Same additions -> identical reservoir (fixed-seed algorithm R), so
  // two same-seed runs report identical percentiles even past capacity.
  obs::Histogram a(64);
  obs::Histogram b(64);
  for (int i = 0; i < 5000; ++i) {
    a.Add(i % 997);
    b.Add(i % 997);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), b.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, ReservoirPercentilesTrackExactSampler) {
  // Past capacity the reservoir is a 512-sample estimate; its percentiles
  // must stay close to the exact (full-sample) values. splitmix64-style
  // generator so the input stream is identical on every platform.
  obs::Histogram reservoir;  // default capacity (512)
  Sampler exact;
  uint64_t state = 42;
  for (int i = 0; i < 20000; ++i) {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double sample = static_cast<double>(z % 100000) / 100000.0;
    reservoir.Add(sample);
    exact.Add(sample);
  }
  EXPECT_EQ(reservoir.count(), 20000u);  // count is exact, only values sample
  const double range = exact.Max() - exact.Min();
  for (double p : {0.5, 0.95, 0.99}) {
    EXPECT_NEAR(reservoir.Percentile(p), exact.Percentile(p), 0.05 * range)
        << "p=" << p;
  }
}

// --------------------------------------------------------------------------
// Sampler (common/histogram.h) — the exact series behind LatencySummary
// --------------------------------------------------------------------------

TEST(SamplerTest, MergeMatchesSingleSamplerExactly) {
  // Percentiles are computed on the sorted union, so merging per-thread
  // samplers (the threaded driver's shutdown path) must give bit-identical
  // results to one sampler that saw every value.
  Sampler combined;
  Sampler shards[4];
  uint64_t state = 7;
  for (int i = 0; i < 4000; ++i) {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    const double sample = static_cast<double>(z % 9973);
    combined.Add(sample);
    shards[i % 4].Add(sample);
  }
  Sampler merged;
  for (const Sampler& shard : shards) merged.Merge(shard);
  ASSERT_EQ(merged.count(), combined.count());
  EXPECT_DOUBLE_EQ(merged.Sum(), combined.Sum());
  for (double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), combined.Percentile(p))
        << "p=" << p;
  }
  const LatencySummary a = Summarize(merged);
  const LatencySummary b = Summarize(combined);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

TEST(SamplerTest, SummarizeEmptyIsAllZero) {
  const LatencySummary summary = Summarize(Sampler{});
  EXPECT_DOUBLE_EQ(summary.p50, 0.0);
  EXPECT_DOUBLE_EQ(summary.p95, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99, 0.0);
}

// --------------------------------------------------------------------------
// MetricsRegistry / MetricsSnapshot
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, LookupCreatesAndReusesHandles) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x.count");
  obs::Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(registry.Snapshot().CountOf("x.count"), 3u);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("middle");
  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[1].name, "middle");
  EXPECT_EQ(snap.entries[2].name, "zebra");
}

TEST(MetricsRegistryTest, JsonAndCsvAreDeterministic) {
  auto populate = [](obs::MetricsRegistry* r) {
    r->GetCounter("b.count")->Inc(7);
    r->GetGauge("a.gauge")->Set(1.5);
    obs::Histogram* h = r->GetHistogram("c.hist");
    for (int i = 0; i < 50; ++i) h->Add(i * 0.1);
  };
  obs::MetricsRegistry r1;
  obs::MetricsRegistry r2;
  // Registration order must not matter: touch names in reverse in r2.
  populate(&r1);
  r2.GetHistogram("c.hist");
  r2.GetGauge("a.gauge");
  r2.GetCounter("b.count");
  populate(&r2);
  EXPECT_EQ(r1.Snapshot().ToJson(), r2.Snapshot().ToJson());
  EXPECT_EQ(r1.Snapshot().ToCsv(), r2.Snapshot().ToCsv());
  // And the export is stable across repeated snapshots.
  EXPECT_EQ(r1.Snapshot().ToJson(), r1.Snapshot().ToJson());
}

TEST(MetricsRegistryTest, PreRegisterCreatesDomainGroups) {
  obs::MetricsRegistry registry;
  obs::PreRegisterDomainMetrics(&registry);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  for (const char* name :
       {obs::kTxnCommits, obs::kTxnAbortsWriteConflict, obs::kTxnWalBytes,
        obs::kReplShippedBytes, obs::kReplAppliedRecords,
        obs::kReplBacklogRecords, obs::kStoreDeltaPending,
        obs::kStoreMergeRows, obs::kStoreBtreeSplits,
        obs::kStoreVacuumedVersions}) {
    EXPECT_NE(snap.Find(name), nullptr) << name;
  }
  EXPECT_EQ(snap.CountOf(obs::kTxnCommits), 0u);
}

TEST(MetricsSnapshotTest, FindAbsentReturnsDefaults) {
  obs::MetricsSnapshot snap;
  EXPECT_EQ(snap.Find("nope"), nullptr);
  EXPECT_EQ(snap.CountOf("nope"), 0u);
  EXPECT_DOUBLE_EQ(snap.ValueOf("nope"), 0.0);
}

TEST(MetricsSnapshotTest, CsvQuotesNamesWithCommasAndQuotes) {
  // RFC-4180: a name containing a comma or quote is quoted with internal
  // quotes doubled; plain names stay bare so existing exports are
  // byte-identical.
  obs::MetricsRegistry registry;
  registry.GetCounter("plain.name")->Inc(1);
  registry.GetCounter("weird,\"name\"")->Inc(2);
  const std::string csv = registry.Snapshot().ToCsv();
  EXPECT_NE(csv.find("\nplain.name,counter,"), std::string::npos);
  EXPECT_NE(csv.find("\n\"weird,\"\"name\"\"\",counter,"),
            std::string::npos);
  // The quoted field must not leak a bare (unescaped) spelling.
  EXPECT_EQ(csv.find("\nweird,"), std::string::npos);
}

// --------------------------------------------------------------------------
// Tracer / ScopedSpan
// --------------------------------------------------------------------------

TEST(TracerTest, ScopedSpanReadsVirtualClock) {
  obs::Tracer tracer;
  VirtualClock clock;
  clock.AdvanceTo(1.0);
  {
    obs::ScopedSpan span(&tracer, &clock, "outer", "test", 3);
    clock.AdvanceTo(2.5);
  }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].tid, 3u);
  EXPECT_DOUBLE_EQ(spans[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 2.5);
}

TEST(TracerTest, ScopedSpanReadsWallClock) {
  obs::Tracer tracer;
  WallClock clock;
  { obs::ScopedSpan span(&tracer, &clock, "work", "test", 1); }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].end, spans[0].begin);
}

TEST(TracerTest, ScopedSpanIsNullSafe) {
  VirtualClock clock;
  obs::Tracer tracer;
  { obs::ScopedSpan span(nullptr, &clock, "a", "test", 0); }
  { obs::ScopedSpan span(&tracer, nullptr, "b", "test", 0); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, NestedSpansExportParentFirst) {
  obs::Tracer tracer;
  // Recorded inner-first (RAII order), but the export sorts by
  // (tid, begin, id) so the enclosing span precedes its child.
  tracer.RecordSpan("inner", "test", 5, 2.0, 3.0);
  tracer.RecordSpan("outer", "test", 5, 1.0, 4.0);
  const std::string json = tracer.ToChromeJson();
  const size_t outer_pos = json.find("\"outer\"");
  const size_t inner_pos = json.find("\"inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
}

TEST(TracerTest, ChromeJsonShape) {
  obs::Tracer tracer;
  tracer.SetTrackName(1, "t-client 1");
  tracer.RecordSpan("np", "txn", 1, 0.001, 0.002, "\"txn_num\":4");
  tracer.Instant("wal-ship", "repl", 2, 0.0015);
  const std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);  // prefix
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Metadata first, then the events.
  const size_t meta = json.find("\"ph\":\"M\"");
  const size_t dur = json.find("\"ph\":\"X\"");
  const size_t instant = json.find("\"ph\":\"i\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(dur, std::string::npos);
  ASSERT_NE(instant, std::string::npos);
  EXPECT_LT(meta, dur);
  EXPECT_NE(json.find("\"name\":\"t-client 1\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);  // 1 ms
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"txn_num\":4"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
}

// Pulls every "ts" value of duration events on `tid`, in export order.
std::vector<double> TimestampsForTrack(const std::string& json,
                                       uint32_t tid) {
  std::vector<double> out;
  const std::string tid_field = "\"tid\":" + std::to_string(tid) + ",";
  size_t pos = 0;
  while ((pos = json.find(tid_field, pos)) != std::string::npos) {
    const size_t ts = json.find("\"ts\":", pos);
    if (ts == std::string::npos) break;
    out.push_back(std::stod(json.substr(ts + 5)));
    pos = ts;
  }
  return out;
}

TEST(TracerTest, TimestampsMonotonePerTrack) {
  obs::Tracer tracer;
  // Record out of order on two tracks.
  tracer.RecordSpan("c", "test", 7, 3.0, 3.5);
  tracer.RecordSpan("a", "test", 7, 1.0, 1.5);
  tracer.RecordSpan("b", "test", 7, 2.0, 2.5);
  tracer.RecordSpan("z", "test", 9, 0.5, 0.6);
  const std::string json = tracer.ToChromeJson();
  for (uint32_t tid : {7u, 9u}) {
    const std::vector<double> ts = TimestampsForTrack(json, tid);
    ASSERT_FALSE(ts.empty());
    for (size_t i = 1; i < ts.size(); ++i) {
      EXPECT_LE(ts[i - 1], ts[i]) << "tid=" << tid;
    }
  }
}

TEST(TracerTest, RingDropsOldestWithoutCorruptingExport) {
  obs::Tracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.RecordSpan("span" + std::to_string(i), "test", 1, i, i + 0.5);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.find("\"span0\""), std::string::npos);
  EXPECT_EQ(json.find("\"span1\""), std::string::npos);
  EXPECT_NE(json.find("\"span2\""), std::string::npos);
  EXPECT_NE(json.find("\"span5\""), std::string::npos);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(TracerTest, ClearResetsIdsForByteIdenticalReruns) {
  obs::Tracer tracer;
  auto record = [&tracer] {
    tracer.RecordSpan("x", "test", 1, 0.0, 1.0);
    tracer.RecordSpan("y", "test", 2, 0.5, 0.7);
    tracer.SetTrackName(1, "one");
  };
  record();
  const std::string first = tracer.ToChromeJson();
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  record();
  EXPECT_EQ(tracer.ToChromeJson(), first);
}

TEST(TracerTest, CsvHasHeaderAndRows) {
  obs::Tracer tracer;
  tracer.RecordSpan("q1", "query", 3, 0.001, 0.004);
  const std::string csv = tracer.ToCsv();
  EXPECT_EQ(csv.rfind("name,cat,tid,begin_us,end_us,dur_us", 0), 0u);
  EXPECT_NE(csv.find("q1,query,3,"), std::string::npos);
}

// --------------------------------------------------------------------------
// End-to-end: drivers populate metrics and traces deterministically.
// --------------------------------------------------------------------------

DatagenConfig TinyConfig() {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = 1200;
  config.seed = 3;
  config.num_freshness_tables = 32;
  return config;
}

WorkloadConfig QuickRun(int t, int a) {
  WorkloadConfig config;
  config.t_clients = t;
  config.a_clients = a;
  config.warmup_seconds = 0.1;
  config.measure_seconds = 0.4;
  config.seed = 5;
  return config;
}

class ObsDriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(GenerateDataset(TinyConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
};

Dataset* ObsDriverTest::dataset_ = nullptr;

TEST_F(ObsDriverTest, SameSeedRunsExportByteIdenticalObservability) {
  SharedEngine engine{SharedEngineConfig{}};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, SharedSimSetup());
  obs::Tracer tracer;
  driver.SetTracer(&tracer);

  const RunMetrics a = driver.Run(QuickRun(3, 2));
  const std::string trace_a = tracer.ToChromeJson();
  const RunMetrics b = driver.Run(QuickRun(3, 2));
  const std::string trace_b = tracer.ToChromeJson();

  EXPECT_GT(a.observed.entries.size(), 0u);
  EXPECT_EQ(a.observed.ToJson(), b.observed.ToJson());
  EXPECT_EQ(a.observed.ToCsv(), b.observed.ToCsv());
  EXPECT_GT(tracer.size(), 0u);
  EXPECT_EQ(trace_a, trace_b);
}

TEST_F(ObsDriverTest, MetricsCoverDomainGroupsAndCountCommits) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, IsolatedSimSetup());
  const RunMetrics metrics = driver.Run(QuickRun(4, 2));

  // txn group counts real commits (only measured-window commits make it
  // into metrics.committed, so the registry count is at least as large).
  EXPECT_GE(metrics.observed.CountOf(obs::kTxnCommits), metrics.committed);
  EXPECT_GT(metrics.observed.CountOf(obs::kTxnWalRecords), 0u);
  // Replication group is live on the isolated design.
  EXPECT_GT(metrics.observed.CountOf(obs::kReplAppliedRecords), 0u);
  EXPECT_GT(metrics.observed.ValueOf(obs::kReplShippedBytes), 0.0);
  // Merge group exists (zero on a row-store design) and pools report.
  EXPECT_NE(metrics.observed.Find(obs::kStoreMergeRows), nullptr);
  EXPECT_NE(metrics.observed.Find("sim.pool.t-pool.utilization"), nullptr);
  EXPECT_GT(metrics.observed.ValueOf("sim.pool.t-pool.jobs_submitted"),
            0.0);
}

TEST_F(ObsDriverTest, HybridRunCountsMergesInMetrics) {
  HybridEngineConfig config = SystemXConfig();
  config.merge_mode = MergeMode::kEager;  // merge counters under test
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, HybridSimSetup());
  const RunMetrics metrics = driver.Run(QuickRun(6, 2));
  EXPECT_GT(metrics.observed.CountOf(obs::kStoreMergeRows), 0u);
  EXPECT_GT(metrics.observed.CountOf(obs::kStoreMergePasses), 0u);
}

TEST_F(ObsDriverTest, HybridBitmapRunCountsFoldsNotMerges) {
  HybridEngineConfig config = SystemXConfig();
  config.merge_mode = MergeMode::kBitmap;
  config.fold_watermark = 16;  // cross the watermark within a quick run
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, HybridSimSetup());
  const RunMetrics metrics = driver.Run(QuickRun(6, 2));
  EXPECT_GT(metrics.observed.CountOf(obs::kStoreFoldRows), 0u);
  EXPECT_GT(metrics.observed.CountOf(obs::kStoreFoldPasses), 0u);
  // No eager merges happen in bitmap mode.
  EXPECT_EQ(metrics.observed.CountOf(obs::kStoreMergePasses), 0u);
}

TEST_F(ObsDriverTest, ParallelQueriesEmitPerWayMorselSpans) {
  SharedEngine engine{SharedEngineConfig{}};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, SharedSimSetup());
  obs::Tracer tracer;
  driver.SetTracer(&tracer);
  WorkloadConfig config = QuickRun(2, 2);
  config.dop = 4;
  driver.Run(config);

  int query_spans = 0;
  int morsel_spans = 0;
  for (const obs::Span& span : tracer.Spans()) {
    if (span.cat == "query") ++query_spans;
    if (span.cat == "morsel") {
      ++morsel_spans;
      EXPECT_GE(span.tid, obs::kTrackMorselBase);
    }
  }
  ASSERT_GT(query_spans, 0);
  EXPECT_EQ(morsel_spans, query_spans * 4);  // one child span per way
}

TEST_F(ObsDriverTest, TracesLabelTransactionsAndQueries) {
  SharedEngine engine{SharedEngineConfig{}};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, SharedSimSetup());
  obs::Tracer tracer;
  driver.SetTracer(&tracer);
  driver.Run(QuickRun(3, 2));

  bool saw_txn = false;
  bool saw_query = false;
  for (const obs::Span& span : tracer.Spans()) {
    if (span.cat == "txn") {
      saw_txn = true;
      EXPECT_GE(span.tid, obs::kTrackTClientBase);
      EXPECT_LE(span.end - span.begin, 1.0);  // bounded virtual duration
    }
    if (span.cat == "query") saw_query = true;
  }
  EXPECT_TRUE(saw_txn);
  EXPECT_TRUE(saw_query);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"t-client 1\""), std::string::npos);
  EXPECT_NE(json.find("\"a-client 1\""), std::string::npos);
}

TEST_F(ObsDriverTest, TinyTraceRingSurfacesDroppedSpansGauge) {
  // With a deliberately undersized ring, the run overflows it; the
  // driver must publish the eviction count as obs.trace.dropped_spans so
  // a truncated trace is visible in the metrics export.
  SharedEngine engine{SharedEngineConfig{}};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, SharedSimSetup());
  obs::Tracer tracer(16);
  driver.SetTracer(&tracer);
  const RunMetrics metrics = driver.Run(QuickRun(3, 2));

  ASSERT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.size(), 16u);
  EXPECT_DOUBLE_EQ(metrics.observed.ValueOf(obs::kTraceDroppedSpans),
                   static_cast<double>(tracer.dropped()));
}

TEST_F(ObsDriverTest, SameSeedRunsExportByteIdenticalQueryProfiles) {
  // profile_queries folds every execution's EXPLAIN ANALYZE counters into
  // RunMetrics; two same-seed simulated runs must export byte-identical
  // profile JSON and identical tail-latency summaries.
  SharedEngine engine{SharedEngineConfig{}};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, SharedSimSetup());
  WorkloadConfig config = QuickRun(3, 2);
  config.profile_queries = true;

  const RunMetrics a = driver.Run(config);
  const RunMetrics b = driver.Run(config);

  bool any_profiled = false;
  for (int q = 0; q < kNumQueries; ++q) {
    EXPECT_EQ(a.query_profiles[q].ToJson(), b.query_profiles[q].ToJson())
        << QueryName(q);
    EXPECT_EQ(a.query_profiles[q].Digest(), b.query_profiles[q].Digest())
        << QueryName(q);
    if (!a.query_profiles[q].empty()) {
      any_profiled = true;
      EXPECT_EQ(a.query_profiles[q].executions(),
                b.query_profiles[q].executions())
          << QueryName(q);
    }
  }
  EXPECT_TRUE(any_profiled);

  const LatencySummary ta = Summarize(a.query_latency);
  const LatencySummary tb = Summarize(b.query_latency);
  EXPECT_DOUBLE_EQ(ta.p50, tb.p50);
  EXPECT_DOUBLE_EQ(ta.p95, tb.p95);
  EXPECT_DOUBLE_EQ(ta.p99, tb.p99);
}

TEST_F(ObsDriverTest, ProfilesOffByDefaultAndRunStaysIdentical) {
  // profile_queries=false (the default) leaves every profile empty, and
  // turning it on must not change the run's results or metered totals.
  SharedEngine engine{SharedEngineConfig{}};
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(*dataset_);
  SimDriver driver(&engine, &context, SharedSimSetup());

  const RunMetrics off = driver.Run(QuickRun(3, 2));
  WorkloadConfig config = QuickRun(3, 2);
  config.profile_queries = true;
  const RunMetrics on = driver.Run(config);

  for (int q = 0; q < kNumQueries; ++q) {
    EXPECT_TRUE(off.query_profiles[q].empty()) << QueryName(q);
  }
  EXPECT_EQ(off.committed, on.committed);
  EXPECT_EQ(off.queries, on.queries);
  EXPECT_EQ(off.aborts, on.aborts);
  EXPECT_DOUBLE_EQ(off.t_throughput, on.t_throughput);
  EXPECT_DOUBLE_EQ(off.a_throughput, on.a_throughput);
}

}  // namespace
}  // namespace hattrick
