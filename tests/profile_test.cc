// Differential tests for the EXPLAIN ANALYZE plan-profiling layer
// (obs/plan_profile.h + exec/op_profiler.h): across all 13 queries, all
// three engine designs, row vs batch execution, and serial vs parallel
// plans, the profile's root rows_out must equal the query's result rows,
// and turning profiling on must not change results or metered work.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/queries.h"
#include "obs/plan_profile.h"

namespace hattrick {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatagenConfig config;
    config.scale_factor = 1.0;
    config.lineorders_per_sf = 2000;
    config.seed = 11;
    config.num_freshness_tables = 4;
    dataset_ = new Dataset(GenerateDataset(config));

    shared_ = new SharedEngine();
    ASSERT_TRUE(
        LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, shared_).ok());
    hybrid_ = new HybridEngine();
    ASSERT_TRUE(
        LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, hybrid_).ok());
    isolated_ = new IsolatedEngine();
    ASSERT_TRUE(
        LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, isolated_)
            .ok());
  }

  static void TearDownTestSuite() {
    delete shared_;
    delete hybrid_;
    delete isolated_;
    delete dataset_;
    shared_ = nullptr;
    hybrid_ = nullptr;
    isolated_ = nullptr;
    dataset_ = nullptr;
  }

  struct ProfiledRun {
    QueryResult result;
    obs::PlanProfile profile;
    uint64_t work = 0;
  };

  static ProfiledRun Run(HtapEngine* engine, int qid, bool vectorized,
                         int dop, bool profiled = true) {
    ProfiledRun out;
    WorkMeter meter;
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx;
    ctx.meter = &meter;
    ctx.dop = dop;
    ctx.vectorized = vectorized;
    ctx.session_pin = session.guard;
    if (profiled) ctx.profile = &out.profile;
    out.result = RunQuery(qid, *session.source, 4, &ctx);
    out.work = meter.Total();
    return out;
  }

  static size_t CountRoots(const obs::PlanProfile& profile) {
    size_t roots = 0;
    for (size_t i = 0; i < profile.size(); ++i) {
      if (profile.node(i).parent < 0) ++roots;
    }
    return roots;
  }

  static uint64_t RootRows(const obs::PlanProfile& profile) {
    uint64_t rows = 0;
    for (size_t i = 0; i < profile.size(); ++i) {
      if (profile.node(i).parent < 0) rows += profile.node(i).rows_out;
    }
    return rows;
  }

  static Dataset* dataset_;
  static SharedEngine* shared_;
  static HybridEngine* hybrid_;
  static IsolatedEngine* isolated_;
};

Dataset* ProfileTest::dataset_ = nullptr;
SharedEngine* ProfileTest::shared_ = nullptr;
HybridEngine* ProfileTest::hybrid_ = nullptr;
IsolatedEngine* ProfileTest::isolated_ = nullptr;

// The tentpole acceptance matrix: 13 queries x 3 engines x {row,batch}
// x dop {1,4}. The profile must record exactly one root (the freshness
// read-back is deliberately excluded) whose rows_out equals the result's
// row count, for exactly one execution.
TEST_F(ProfileTest, RootRowsMatchResultRowsAcrossTheFullMatrix) {
  struct { const char* label; HtapEngine* engine; } engines[] = {
      {"shared", shared_}, {"hybrid", hybrid_}, {"isolated", isolated_}};
  for (const auto& e : engines) {
    for (int qid = 0; qid < kNumQueries; ++qid) {
      for (bool vectorized : {false, true}) {
        for (int dop : {1, 4}) {
          const ProfiledRun run = Run(e.engine, qid, vectorized, dop);
          const std::string where =
              std::string(e.label) + "/" + QueryName(qid) +
              (vectorized ? "/batch" : "/row") + "/dop=" +
              std::to_string(dop);
          ASSERT_FALSE(run.profile.empty()) << where;
          EXPECT_EQ(run.profile.executions(), 1u) << where;
          EXPECT_EQ(CountRoots(run.profile), 1u) << where;
          EXPECT_EQ(RootRows(run.profile), run.result.rows) << where;
        }
      }
    }
  }
}

// Row and batch mode execute the same plan shape at the same dop; the
// per-node logical row counts (and the metered work) must agree, only
// calls/batches differ.
TEST_F(ProfileTest, RowAndBatchModesAgreePerNodeRowsAndWork) {
  for (int qid = 0; qid < kNumQueries; ++qid) {
    const ProfiledRun row = Run(shared_, qid, /*vectorized=*/false, 1);
    const ProfiledRun batch = Run(shared_, qid, /*vectorized=*/true, 1);
    EXPECT_EQ(row.result.rows, batch.result.rows) << QueryName(qid);
    EXPECT_EQ(row.work, batch.work) << QueryName(qid);
    ASSERT_EQ(row.profile.size(), batch.profile.size()) << QueryName(qid);
    for (size_t i = 0; i < row.profile.size(); ++i) {
      const obs::PlanProfileNode& r = row.profile.node(i);
      const obs::PlanProfileNode& b = batch.profile.node(i);
      EXPECT_EQ(r.name, b.name) << QueryName(qid) << " node " << i;
      EXPECT_EQ(r.parent, b.parent) << QueryName(qid) << " node " << i;
      EXPECT_EQ(r.rows_out, b.rows_out)
          << QueryName(qid) << " node " << i << " (" << r.name << ")";
    }
  }
}

// Profiling must be a pure observer: same results (rows, checksum,
// freshness vector) and the same work-meter total with it on or off.
TEST_F(ProfileTest, ProfilingOnOffIsBitIdentical) {
  struct { const char* label; HtapEngine* engine; } engines[] = {
      {"shared", shared_}, {"hybrid", hybrid_}, {"isolated", isolated_}};
  for (const auto& e : engines) {
    for (int qid = 0; qid < kNumQueries; ++qid) {
      for (int dop : {1, 4}) {
        const ProfiledRun off =
            Run(e.engine, qid, /*vectorized=*/true, dop, /*profiled=*/false);
        const ProfiledRun on =
            Run(e.engine, qid, /*vectorized=*/true, dop, /*profiled=*/true);
        const std::string where = std::string(e.label) + "/" +
                                  QueryName(qid) + "/dop=" +
                                  std::to_string(dop);
        EXPECT_TRUE(off.profile.empty()) << where;
        EXPECT_EQ(off.result.rows, on.result.rows) << where;
        EXPECT_DOUBLE_EQ(off.result.checksum, on.result.checksum) << where;
        EXPECT_EQ(off.result.freshness, on.result.freshness) << where;
        EXPECT_EQ(off.work, on.work) << where;
      }
    }
  }
}

// A parallel plan routes shard work through the gather-merge exchange;
// the shard profiles are summed element-wise and grafted under it, so
// the tree still has one root and the exchange node reports its shards.
TEST_F(ProfileTest, ParallelPlanGraftsShardProfilesUnderGatherMerge) {
  const ProfiledRun serial = Run(shared_, /*qid=*/3, /*vectorized=*/true, 1);
  const ProfiledRun parallel =
      Run(shared_, /*qid=*/3, /*vectorized=*/true, 4);

  EXPECT_EQ(serial.result.rows, parallel.result.rows);
  EXPECT_EQ(CountRoots(parallel.profile), 1u);
  bool found_exchange = false;
  for (size_t i = 0; i < parallel.profile.size(); ++i) {
    const obs::PlanProfileNode& node = parallel.profile.node(i);
    if (node.name == "GatherMerge") {
      found_exchange = true;
      EXPECT_NE(node.detail.find("shards=4"), std::string::npos);
      EXPECT_FALSE(node.children.empty());
      EXPECT_EQ(node.rows_out, parallel.result.rows);
    }
  }
  EXPECT_TRUE(found_exchange);
  // The serial plan has no exchange node.
  for (size_t i = 0; i < serial.profile.size(); ++i) {
    EXPECT_NE(serial.profile.node(i).name, "GatherMerge");
  }
}

// Column scans on the hybrid engine fill the zone-map and
// bitmap-snapshot lane counters; every evaluated row is attributed to
// exactly one lane.
TEST_F(ProfileTest, ColumnScanReportsBlocksAndSnapshotLanes) {
  const ProfiledRun run = Run(hybrid_, /*qid=*/0, /*vectorized=*/true, 1);
  bool found_scan = false;
  for (size_t i = 0; i < run.profile.size(); ++i) {
    const obs::PlanProfileNode& node = run.profile.node(i);
    if (node.name != "ColumnScan") continue;
    found_scan = true;
    EXPECT_GT(node.blocks_scanned + node.blocks_pruned, 0u) << node.detail;
    EXPECT_GT(node.rows_clean + node.rows_override + node.rows_insert, 0u)
        << node.detail;
  }
  EXPECT_TRUE(found_scan);
}

// Two identical executions export byte-identical text/JSON and the same
// digest; the digest is 16 lowercase hex digits.
TEST_F(ProfileTest, RenderingsAreDeterministicAcrossRuns) {
  const ProfiledRun a = Run(shared_, /*qid=*/0, /*vectorized=*/true, 1);
  const ProfiledRun b = Run(shared_, /*qid=*/0, /*vectorized=*/true, 1);
  EXPECT_EQ(a.profile.ToText(), b.profile.ToText());
  EXPECT_EQ(a.profile.ToJson(), b.profile.ToJson());
  EXPECT_EQ(a.profile.Digest(), b.profile.Digest());
  const std::string digest = a.profile.Digest();
  ASSERT_EQ(digest.size(), 16u);
  for (char c : digest) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << digest;
  }
  EXPECT_EQ(a.profile.ToJson().rfind("{\"profile_version\":1", 0), 0u);
  EXPECT_NE(a.profile.ToText().find("rows="), std::string::npos);
}

// Accumulate folds same-shaped executions (summing counters) and
// rejects mismatched shapes without modifying the accumulator.
TEST_F(ProfileTest, AccumulateSumsSameShapeAndRejectsMismatch) {
  const ProfiledRun a = Run(shared_, /*qid=*/0, /*vectorized=*/true, 1);
  obs::PlanProfile folded;
  EXPECT_TRUE(folded.Accumulate(a.profile));
  EXPECT_TRUE(folded.Accumulate(a.profile));
  EXPECT_EQ(folded.executions(), 2u);
  EXPECT_EQ(RootRows(folded), 2 * RootRows(a.profile));

  const ProfiledRun other = Run(shared_, /*qid=*/3, /*vectorized=*/true, 1);
  const std::string before = folded.ToJson();
  EXPECT_FALSE(folded.Accumulate(other.profile));
  EXPECT_EQ(folded.ToJson(), before);  // rejected fold left it unchanged
}

}  // namespace
}  // namespace hattrick
