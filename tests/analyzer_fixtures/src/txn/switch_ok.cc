// Fixture: exhaustive switch over a protocol enum with no default:
// (switch-exhaustive, negative).
#include <cstdint>

namespace hattrick {

struct WalOp {
  enum class Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelta = 2 };
  Kind kind = Kind::kInsert;
};

int Dispatch(const WalOp& op) {
  switch (op.kind) {
    case WalOp::Kind::kInsert:
      return 1;
    case WalOp::Kind::kUpdate:
      return 2;
    case WalOp::Kind::kDelta:
      return 3;
  }
  return 0;
}

}  // namespace hattrick
