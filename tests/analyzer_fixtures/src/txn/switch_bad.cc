// Fixture: non-exhaustive and default-swallowing switches over a
// protocol enum (switch-exhaustive, positive).
#include <cstdint>

namespace hattrick {

struct WalOp {
  enum class Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelta = 2 };
  Kind kind = Kind::kInsert;
};

// Missing kDelta: a delta op falls off the switch silently.
int DispatchMissing(const WalOp& op) {
  switch (op.kind) {
    case WalOp::Kind::kInsert:
      return 1;
    case WalOp::Kind::kUpdate:
      return 2;
  }
  return 0;
}

// Covers everything but adds a default:, which would swallow any newly
// added kind instead of forcing this site to decide.
int DispatchDefault(const WalOp& op) {
  switch (op.kind) {
    case WalOp::Kind::kInsert:
      return 1;
    case WalOp::Kind::kUpdate:
      return 2;
    case WalOp::Kind::kDelta:
      return 3;
    default:
      return 0;
  }
}

}  // namespace hattrick
