// Fixture: iteration over std::unordered_* members in an export TU
// (unordered-iteration, positive) — hash order varies run-to-run.
#include <string>
#include <unordered_map>

namespace hattrick {

class Exporter {
 public:
  int EmitAll() {
    int sum = 0;
    for (const auto& kv : counters_) {
      sum += kv.second;
    }
    return sum;
  }

  int EmitFirst() {
    auto it = gauges_.begin();
    return it == gauges_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<std::string, int> counters_;
  std::unordered_map<std::string, int> gauges_;
};

}  // namespace hattrick
