// Fixture: ordered-container iteration in an export TU is fine
// (unordered-iteration, negative).
#include <map>
#include <string>

namespace hattrick {

class OrderedExporter {
 public:
  int EmitAll() {
    int sum = 0;
    for (const auto& kv : counters_) {
      sum += kv.second;
    }
    return sum;
  }

  int EmitFirst() {
    auto it = gauges_.begin();
    return it == gauges_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, int> counters_;
  std::map<std::string, int> gauges_;
};

}  // namespace hattrick
