// Fixture: the same version-chain reads dominated by an epoch guard or
// a session pin must be silent (unpinned-snapshot, negative).
#include "engine/session_pin.h"
#include "storage/column_table.h"
#include "txn/mvcc.h"

namespace hattrick {

class PinnedScanner {
 public:
  int ScanUnderGuard(ColumnTable* column) {
    mvcc::EpochManager::Guard guard;
    auto snap = column->SnapshotVersions();
    return static_cast<int>(snap.size());
  }

  int ScanUnderPin(ColumnTable* column) {
    auto pin = latch_.AcquirePin();
    auto snap = column->SnapshotVersions();
    return static_cast<int>(snap.size());
  }

 private:
  SessionPinLatch latch_;
};

}  // namespace hattrick
