// Fixture: version-chain reads with no dominating pin or epoch guard in
// the same function (unpinned-snapshot, positive). A concurrent fold or
// vacuum could reclaim the versions mid-read.
#include "storage/column_table.h"

namespace hattrick {

class Scanner {
 public:
  int ScanWithoutPin(ColumnTable* column) {
    // Protected read, nothing pinning the version chain first.
    auto snap = column->SnapshotVersions();
    return static_cast<int>(snap.size());
  }

 private:
  int scans_ = 0;
};

}  // namespace hattrick
