// Fixture: inconsistent two-lock acquisition order across functions
// forms a cycle in the static lock graph (lock-order-cycle, positive).
#include "common/mutex.h"

namespace hattrick {

class PairState {
 public:
  void FrontFirst() {
    MutexLock a(&front_mu_);
    MutexLock b(&back_mu_);
    ++front_;
    ++back_;
  }

  // Opposite nesting order: front_mu_ -> back_mu_ above, back_mu_ ->
  // front_mu_ here. Two threads, one in each function, deadlock.
  void BackFirst() {
    MutexLock b(&back_mu_);
    MutexLock a(&front_mu_);
    ++front_;
    ++back_;
  }

 private:
  Mutex front_mu_;
  Mutex back_mu_;
  int front_ GUARDED_BY(front_mu_) = 0;
  int back_ GUARDED_BY(back_mu_) = 0;
};

}  // namespace hattrick
