// Fixture: consistent nesting order plus the address-ordered peer-pair
// idiom must produce no lock-order finding (lock-order-cycle, negative).
#include "common/mutex.h"

namespace hattrick {

class OrderedState {
 public:
  void FrontFirst() {
    MutexLock a(&front_mu_);
    MutexLock b(&back_mu_);
    ++front_;
    ++back_;
  }

  // Same nesting order as FrontFirst: the graph stays acyclic.
  void AlsoFrontFirst() {
    MutexLock a(&front_mu_);
    MutexLock b(&back_mu_);
    front_ += 2;
    back_ += 2;
  }

  // Address-ordered acquisition of the same lock field on two objects
  // (the BTree::CopyFrom idiom): the self-pair is exempt because both
  // acquisitions sit inside the ordering conditional.
  void CopyFrom(const OrderedState& other) {
    if (this < &other) {
      latch_.Lock();
      other.latch_.LockShared();
    } else {
      other.latch_.LockShared();
      latch_.Lock();
    }
    front_ = other.front_;
    other.latch_.UnlockShared();
    latch_.Unlock();
  }

 private:
  mutable SharedMutex latch_;
  Mutex front_mu_;
  Mutex back_mu_;
  int front_ GUARDED_BY(front_mu_) = 0;
  int back_ GUARDED_BY(back_mu_) = 0;
};

}  // namespace hattrick
