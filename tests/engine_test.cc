// Engine conformance suite: the same behavioural contract exercised
// against all three HTAP designs (shared, isolated, hybrid) via a
// parameterized factory, plus design-specific tests (replication modes,
// delta merge).

#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"

namespace hattrick {
namespace {

DatabaseSpec SmallSpec() {
  DatabaseSpec spec;
  spec.tables.push_back(
      {"items", Schema({{"id", DataType::kInt64},
                        {"name", DataType::kString},
                        {"qty", DataType::kInt64}})});
  spec.indexes.push_back({"items_pk", "items", {0}, true});
  return spec;
}

std::vector<Row> SeedRows() {
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(Row{int64_t{i}, "item" + std::to_string(i),
                       int64_t{10}});
  }
  return rows;
}

using EngineFactory = std::function<std::unique_ptr<HtapEngine>()>;

struct EngineCase {
  std::string name;
  EngineFactory factory;
};

class EngineConformanceTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    engine_ = GetParam().factory();
    ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
    ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
    ASSERT_TRUE(engine_->FinishLoad().ok());
  }

  /// Commits qty+1 on row `rid`; returns the outcome.
  TxnOutcome IncrementQty(Rid rid, uint32_t client = 1,
                          uint64_t txn_num = 1) {
    WorkMeter meter;
    return engine_->ExecuteTransaction(
        [rid](TxnContext* txn, WorkMeter* m) -> Status {
          Row row;
          HATTRICK_RETURN_IF_ERROR(txn->Read(0, rid, &row, m));
          Row updated = row;
          updated[2] = Value(row[2].AsInt() + 1);
          txn->BufferUpdate(0, rid, row, std::move(updated));
          return Status::OK();
        },
        client, txn_num, &meter);
  }

  /// Sums the qty column through the engine's analytical path, draining
  /// any maintenance backlog first so the result is up to date.
  int64_t AnalyticalQtySum() {
    WorkMeter meter;
    while (engine_->MaintenanceStep(&meter)) {
    }
    AnalyticsSession session = engine_->BeginAnalytics(&meter);
    ScanSpec spec;
    spec.table = "items";
    spec.projection = {2};
    OperatorPtr scan = session.source->Scan(spec);
    ExecContext ctx{&meter};
    scan->Open(&ctx);
    Row row;
    int64_t sum = 0;
    while (scan->Next(&ctx, &row)) sum += row[0].AsInt();
    return sum;
  }

  std::unique_ptr<HtapEngine> engine_;
};

TEST_P(EngineConformanceTest, LoadedDataVisibleToAnalytics) {
  EXPECT_EQ(AnalyticalQtySum(), 500);
}

TEST_P(EngineConformanceTest, CommittedTransactionVisibleToAnalytics) {
  ASSERT_TRUE(IncrementQty(0).status.ok());
  EXPECT_EQ(AnalyticalQtySum(), 501);
}

TEST_P(EngineConformanceTest, InsertsReachAnalytics) {
  WorkMeter meter;
  TxnOutcome outcome = engine_->ExecuteTransaction(
      [](TxnContext* txn, WorkMeter*) {
        txn->BufferInsert(0,
                         Row{int64_t{1000}, std::string("new"),
                             int64_t{7}});
        return Status::OK();
      },
      1, 1, &meter);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(AnalyticalQtySum(), 507);
}

TEST_P(EngineConformanceTest, TxnOutcomeCarriesWriteKeys) {
  TxnOutcome outcome = IncrementQty(3);
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_EQ(outcome.write_keys.size(), 1u);
  EXPECT_EQ(outcome.write_keys[0], PackRowKey(0, 3));
}

TEST_P(EngineConformanceTest, FailingBodyChangesNothing) {
  WorkMeter meter;
  TxnOutcome outcome = engine_->ExecuteTransaction(
      [](TxnContext* txn, WorkMeter*) {
        txn->BufferInsert(0,
                         Row{int64_t{1}, std::string("x"), int64_t{1}});
        return Status::NotFound("simulated failure");
      },
      1, 1, &meter);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(AnalyticalQtySum(), 500);
}

TEST_P(EngineConformanceTest, ResetRestoresInitialState) {
  ASSERT_TRUE(IncrementQty(0).status.ok());
  ASSERT_TRUE(IncrementQty(1).status.ok());
  ASSERT_TRUE(engine_->Reset().ok());
  EXPECT_EQ(AnalyticalQtySum(), 500);
  // Indexes were rebuilt: transactional point access still works.
  ASSERT_TRUE(IncrementQty(5).status.ok());
  EXPECT_EQ(AnalyticalQtySum(), 501);
}

TEST_P(EngineConformanceTest, ResetIsRepeatable) {
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(IncrementQty(0).status.ok());
    ASSERT_TRUE(engine_->Reset().ok());
    EXPECT_EQ(AnalyticalQtySum(), 500) << "round " << round;
  }
}

TEST_P(EngineConformanceTest, AnalyticsSnapshotIsStable) {
  // A session opened before a commit must not observe that commit.
  WorkMeter meter;
  while (engine_->MaintenanceStep(&meter)) {
  }
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  ASSERT_TRUE(IncrementQty(0).status.ok());
  ScanSpec spec;
  spec.table = "items";
  spec.projection = {2};
  OperatorPtr scan = session.source->Scan(spec);
  ExecContext ctx{&meter};
  scan->Open(&ctx);
  Row row;
  int64_t sum = 0;
  while (scan->Next(&ctx, &row)) sum += row[0].AsInt();
  session.guard.reset();
  EXPECT_EQ(sum, 500);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformanceTest,
    ::testing::Values(
        EngineCase{"shared",
                   [] {
                     return std::unique_ptr<HtapEngine>(
                         std::make_unique<SharedEngine>());
                   }},
        EngineCase{"isolated",
                   [] {
                     IsolatedEngineConfig config;
                     config.mode = ReplicationMode::kSyncShip;
                     return std::unique_ptr<HtapEngine>(
                         std::make_unique<IsolatedEngine>(config));
                   }},
        EngineCase{"hybrid",
                   [] {
                     return std::unique_ptr<HtapEngine>(
                         std::make_unique<HybridEngine>());
                   }},
        EngineCase{"hybrid_bitmap",
                   [] {
                     // Versioned column store with a tiny watermark so
                     // the conformance suite also exercises background
                     // folds (the default case inherits the env mode).
                     HybridEngineConfig config;
                     config.merge_mode = MergeMode::kBitmap;
                     config.fold_watermark = 4;
                     return std::unique_ptr<HtapEngine>(
                         std::make_unique<HybridEngine>(config));
                   }}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

// --------------------------------------------------------------------------
// Design-specific behaviour.
// --------------------------------------------------------------------------

class IsolatedEngineTest : public ::testing::Test {
 protected:
  void Load(ReplicationMode mode) {
    IsolatedEngineConfig config;
    config.mode = mode;
    engine_ = std::make_unique<IsolatedEngine>(config);
    ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
    ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
    ASSERT_TRUE(engine_->FinishLoad().ok());
  }

  TxnOutcome Insert(int64_t id) {
    WorkMeter meter;
    return engine_->ExecuteTransaction(
        [id](TxnContext* txn, WorkMeter*) {
          txn->BufferInsert(0,
                           Row{id, std::string("n"), int64_t{1}});
          return Status::OK();
        },
        1, 1, &meter);
  }

  std::unique_ptr<IsolatedEngine> engine_;
};

TEST_F(IsolatedEngineTest, OnModeRequestsShipWait) {
  Load(ReplicationMode::kSyncShip);
  TxnOutcome outcome = Insert(100);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.wait.kind, CommitWait::Kind::kShipDelay);
  EXPECT_GT(outcome.wait.bytes, 0u);
}

TEST_F(IsolatedEngineTest, RemoteApplyModeRequestsApplyWait) {
  Load(ReplicationMode::kRemoteApply);
  TxnOutcome outcome = Insert(100);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.wait.kind, CommitWait::Kind::kReplicaApplied);
  EXPECT_EQ(outcome.wait.lsn, outcome.lsn);
  EXPECT_FALSE(engine_->IsApplied(outcome.lsn));
  WorkMeter meter;
  ASSERT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_TRUE(engine_->IsApplied(outcome.lsn));
}

TEST_F(IsolatedEngineTest, AsyncModeNoWait) {
  Load(ReplicationMode::kAsync);
  TxnOutcome outcome = Insert(100);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.wait.kind, CommitWait::Kind::kNone);
}

TEST_F(IsolatedEngineTest, StandbyAnalyticsLagUntilReplay) {
  Load(ReplicationMode::kSyncShip);
  ASSERT_TRUE(Insert(100).status.ok());
  EXPECT_EQ(engine_->ReplicationLag(), 1u);

  // Before replay: standby analytics do not see the insert.
  WorkMeter meter;
  AnalyticsSession stale = engine_->BeginAnalytics(&meter);
  ScanSpec spec;
  spec.table = "items";
  spec.projection = {0};
  {
    OperatorPtr scan = stale.source->Scan(spec);
    ExecContext ctx{&meter};
    scan->Open(&ctx);
    Row row;
    size_t rows = 0;
    while (scan->Next(&ctx, &row)) ++rows;
    EXPECT_EQ(rows, 50u);
  }

  ASSERT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_EQ(engine_->ReplicationLag(), 0u);
  AnalyticsSession fresh = engine_->BeginAnalytics(&meter);
  OperatorPtr scan = fresh.source->Scan(spec);
  ExecContext ctx{&meter};
  scan->Open(&ctx);
  Row row;
  size_t rows = 0;
  while (scan->Next(&ctx, &row)) ++rows;
  EXPECT_EQ(rows, 51u);
}

TEST_F(IsolatedEngineTest, ReadOnlyTxnHasNoReplicationWait) {
  Load(ReplicationMode::kRemoteApply);
  WorkMeter meter;
  TxnOutcome outcome = engine_->ExecuteTransaction(
      [](TxnContext* txn, WorkMeter* m) {
        Row row;
        return txn->Read(0, 0, &row, m);
      },
      1, 1, &meter);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.wait.kind, CommitWait::Kind::kNone);
}

TEST_F(IsolatedEngineTest, MultiReplicaRoundRobinAndConvergence) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  config.num_replicas = 3;
  engine_ = std::make_unique<IsolatedEngine>(config);
  ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
  ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
  ASSERT_TRUE(engine_->FinishLoad().ok());
  ASSERT_TRUE(Insert(100).status.ok());

  // One record shipped to each standby; lag reported as the max.
  EXPECT_EQ(engine_->ReplicationLag(), 1u);
  WorkMeter meter;
  // Draining requires one apply per standby.
  EXPECT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_EQ(engine_->ReplicationLag(), 1u);  // one standby still behind
  EXPECT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_EQ(engine_->ReplicationLag(), 0u);
  EXPECT_FALSE(engine_->MaintenanceStep(&meter));

  // All standbys converged: three consecutive sessions (round-robin hits
  // each standby once) all see the insert.
  for (int i = 0; i < 3; ++i) {
    AnalyticsSession session = engine_->BeginAnalytics(&meter);
    ScanSpec spec;
    spec.table = "items";
    spec.projection = {0};
    OperatorPtr scan = session.source->Scan(spec);
    ExecContext ctx{&meter};
    scan->Open(&ctx);
    Row row;
    size_t rows = 0;
    while (scan->Next(&ctx, &row)) ++rows;
    EXPECT_EQ(rows, 51u) << "standby " << i;
  }
}

TEST_F(IsolatedEngineTest, MultiReplicaRemoteApplyWaitsForAll) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kRemoteApply;
  config.num_replicas = 2;
  engine_ = std::make_unique<IsolatedEngine>(config);
  ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
  ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
  ASSERT_TRUE(engine_->FinishLoad().ok());
  const TxnOutcome outcome = Insert(200);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.wait.kind, CommitWait::Kind::kReplicaApplied);
  WorkMeter meter;
  ASSERT_TRUE(engine_->MaintenanceStep(&meter));  // first standby only
  EXPECT_FALSE(engine_->IsApplied(outcome.lsn));
  ASSERT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_TRUE(engine_->IsApplied(outcome.lsn));
}

TEST_F(IsolatedEngineTest, MultiReplicaReset) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  config.num_replicas = 2;
  engine_ = std::make_unique<IsolatedEngine>(config);
  ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
  ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
  ASSERT_TRUE(engine_->FinishLoad().ok());
  ASSERT_TRUE(Insert(300).status.ok());
  ASSERT_TRUE(engine_->Reset().ok());
  EXPECT_EQ(engine_->ReplicationLag(), 0u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(engine_->replica(i)->catalog()->GetTable("items")->NumSlots(),
              50u);
  }
  // Works again after reset.
  EXPECT_TRUE(Insert(301).status.ok());
}

class HybridEngineTest : public ::testing::Test {
 protected:
  // These tests assert the eager merge-before-read protocol itself, so
  // the mode is pinned rather than inherited from HATTRICK_MERGE_MODE.
  void SetUp() override {
    HybridEngineConfig config;
    config.merge_mode = MergeMode::kEager;
    engine_ = std::make_unique<HybridEngine>(config);
    ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
    ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
    ASSERT_TRUE(engine_->FinishLoad().ok());
  }

  std::unique_ptr<HybridEngine> engine_;
};

TEST_F(HybridEngineTest, CommitsQueueAsDelta) {
  WorkMeter meter;
  ASSERT_TRUE(engine_
                  ->ExecuteTransaction(
                      [](TxnContext* txn, WorkMeter*) {
                        txn->BufferInsert(0,
                                         Row{int64_t{99},
                                             std::string("d"),
                                             int64_t{1}});
                        return Status::OK();
                      },
                      1, 1, &meter)
                  .status.ok());
  EXPECT_EQ(engine_->PendingDelta(), 1u);
  // Opening analytics merges the delta ("merge the tail before query").
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  EXPECT_EQ(engine_->PendingDelta(), 0u);
  EXPECT_GT(meter.merged_rows, 0u);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 51u);
}

TEST_F(HybridEngineTest, MergeAppliesUpdatesInPlace) {
  WorkMeter meter;
  ASSERT_TRUE(engine_
                  ->ExecuteTransaction(
                      [](TxnContext* txn, WorkMeter* m) {
                        Row row;
                        HATTRICK_RETURN_IF_ERROR(
                            txn->Read(0, 7, &row, m));
                        Row updated = row;
                        updated[2] = Value(int64_t{777});
                        txn->BufferUpdate(0, 7, row,
                                         std::move(updated));
                        return Status::OK();
                      },
                      1, 1, &meter)
                  .status.ok());
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  EXPECT_EQ(engine_->column_table("items")->GetInt(2, 7), 777);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 50u);
}

TEST_F(HybridEngineTest, SystemXAndTidbConfigs) {
  EXPECT_EQ(SystemXConfig().isolation, IsolationLevel::kSerializable);
  EXPECT_EQ(TidbConfig().isolation, IsolationLevel::kSnapshot);
  EXPECT_EQ(SystemXConfig().name, "System-X");
  EXPECT_EQ(TidbConfig().name, "TiDB");
}

TEST_F(HybridEngineTest, ResetClearsDeltaAndColumnGrowth) {
  WorkMeter meter;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine_
                    ->ExecuteTransaction(
                        [i](TxnContext* txn, WorkMeter*) {
                          txn->BufferInsert(0,
                              Row{int64_t{100 + i}, std::string("d"),
                                  int64_t{1}});
                          return Status::OK();
                        },
                        1, 1, &meter)
                    .status.ok());
  }
  AnalyticsSession session = engine_->BeginAnalytics(&meter);  // merge
  session.guard.reset();
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 55u);
  ASSERT_TRUE(engine_->Reset().ok());
  EXPECT_EQ(engine_->PendingDelta(), 0u);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 50u);
}

// --------------------------------------------------------------------------
// Bitmap merge mode: CSN-stamped versions instead of merge-before-read.
// --------------------------------------------------------------------------

class HybridBitmapEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HybridEngineConfig config;
    config.merge_mode = MergeMode::kBitmap;
    config.fold_watermark = 4;
    engine_ = std::make_unique<HybridEngine>(config);
    ASSERT_TRUE(engine_->Create(SmallSpec()).ok());
    ASSERT_TRUE(engine_->BulkLoad("items", SeedRows()).ok());
    ASSERT_TRUE(engine_->FinishLoad().ok());
  }

  TxnOutcome InsertItem(int64_t id) {
    WorkMeter meter;
    return engine_->ExecuteTransaction(
        [id](TxnContext* txn, WorkMeter*) {
          txn->BufferInsert(0,
                           Row{id, std::string("new"), int64_t{1}});
          return Status::OK();
        },
        1, 1, &meter);
  }

  TxnOutcome SetQty(Rid rid, int64_t qty) {
    WorkMeter meter;
    return engine_->ExecuteTransaction(
        [rid, qty](TxnContext* txn, WorkMeter* m) -> Status {
          Row row;
          HATTRICK_RETURN_IF_ERROR(txn->Read(0, rid, &row, m));
          Row updated = row;
          updated[2] = Value(qty);
          txn->BufferUpdate(0, rid, row, std::move(updated));
          return Status::OK();
        },
        1, 1, &meter);
  }

  /// Scans qty over an open session; rows seen and the qty sum.
  std::pair<size_t, int64_t> ScanQty(const AnalyticsSession& session,
                                     WorkMeter* meter) {
    ScanSpec spec;
    spec.table = "items";
    spec.projection = {2};
    OperatorPtr scan = session.source->Scan(spec);
    ExecContext ctx{meter};
    scan->Open(&ctx);
    Row row;
    size_t rows = 0;
    int64_t sum = 0;
    while (scan->Next(&ctx, &row)) {
      ++rows;
      sum += row[0].AsInt();
    }
    return {rows, sum};
  }

  std::unique_ptr<HybridEngine> engine_;
};

TEST_F(HybridBitmapEngineTest, CommitVisibleWithoutFold) {
  ASSERT_TRUE(InsertItem(99).status.ok());
  EXPECT_EQ(engine_->PendingDelta(), 1u);
  WorkMeter meter;
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  // No merge happened — the base is untouched and the version pending —
  // yet the scan reads the committed insert through the snapshot.
  EXPECT_EQ(engine_->PendingDelta(), 1u);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 50u);
  const auto [rows, sum] = ScanQty(session, &meter);
  EXPECT_EQ(rows, 51u);
  EXPECT_EQ(sum, 501);
  EXPECT_GT(meter.version_hops, 0u);
  EXPECT_EQ(meter.merged_rows, 0u);
}

TEST_F(HybridBitmapEngineTest, UpdateVisibleThroughOverride) {
  ASSERT_TRUE(SetQty(7, 777).status.ok());
  WorkMeter meter;
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  // The base cell still holds the stale value; the session reads the
  // override.
  EXPECT_EQ(engine_->column_table("items")->GetInt(2, 7), 10);
  const auto [rows, sum] = ScanQty(session, &meter);
  EXPECT_EQ(rows, 50u);
  EXPECT_EQ(sum, 500 - 10 + 777);
}

TEST_F(HybridBitmapEngineTest, WatermarkTriggersBackgroundFold) {
  WorkMeter meter;
  ASSERT_TRUE(InsertItem(100).status.ok());
  // Below the watermark: nothing for the maintenance pump to do.
  EXPECT_EQ(engine_->MaintenancePending(), 0u);
  EXPECT_FALSE(engine_->MaintenanceStep(&meter));
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(InsertItem(100 + i).status.ok());
  }
  EXPECT_GE(engine_->MaintenancePending(), 4u);
  EXPECT_TRUE(engine_->MaintenanceStep(&meter));
  EXPECT_GT(meter.merged_rows, 0u);
  EXPECT_EQ(engine_->PendingDelta(), 0u);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 54u);
}

TEST_F(HybridBitmapEngineTest, FoldAllAppliesVersionsToBase) {
  ASSERT_TRUE(SetQty(3, 42).status.ok());
  ASSERT_TRUE(InsertItem(200).status.ok());
  WorkMeter meter;
  engine_->FoldAll(&meter);
  EXPECT_EQ(engine_->PendingDelta(), 0u);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 51u);
  EXPECT_EQ(engine_->column_table("items")->GetInt(2, 3), 42);
}

TEST_F(HybridBitmapEngineTest, SessionSnapshotIgnoresLaterCommits) {
  ASSERT_TRUE(InsertItem(300).status.ok());
  WorkMeter meter;
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  // Commits after the snapshot CSN — including updates to a row the
  // snapshot already overrides — must not change what the session sees,
  // even on repeated scans.
  ASSERT_TRUE(InsertItem(301).status.ok());
  ASSERT_TRUE(SetQty(5, 999).status.ok());
  const auto first = ScanQty(session, &meter);
  EXPECT_EQ(first.first, 51u);
  EXPECT_EQ(first.second, 501);
  const auto again = ScanQty(session, &meter);
  EXPECT_EQ(again.first, first.first);
  EXPECT_EQ(again.second, first.second);
}

TEST_F(HybridBitmapEngineTest, ResetClearsVersions) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(InsertItem(400 + i).status.ok());
  }
  EXPECT_EQ(engine_->PendingDelta(), 3u);
  ASSERT_TRUE(engine_->Reset().ok());
  EXPECT_EQ(engine_->PendingDelta(), 0u);
  EXPECT_EQ(engine_->column_table("items")->num_rows(), 50u);
  WorkMeter meter;
  AnalyticsSession session = engine_->BeginAnalytics(&meter);
  const auto [rows, sum] = ScanQty(session, &meter);
  EXPECT_EQ(rows, 50u);
  EXPECT_EQ(sum, 500);
}

}  // namespace
}  // namespace hattrick
