// Tests for the reporting layer: CSV emission, frontier summaries, ASCII
// plots, and ratio-freshness measurement, using gtest's stdout capture.

#include <string>

#include <gtest/gtest.h>

#include "hattrick/report.h"

namespace hattrick {
namespace {

GridGraph SyntheticGrid() {
  GridGraph grid;
  grid.tau_max = 4;
  grid.alpha_max = 4;
  grid.xt = 1000;
  grid.xa = 10;
  GridLine t_line;
  t_line.fixed_t = true;
  t_line.fixed_clients = 2;
  OperatingPoint p;
  p.t_clients = 2;
  p.a_clients = 2;
  p.tps = 600;
  p.qps = 6;
  t_line.points.push_back(p);
  grid.fixed_t_lines.push_back(t_line);
  GridLine a_line;
  a_line.fixed_t = false;
  a_line.fixed_clients = 2;
  a_line.points.push_back(p);
  grid.fixed_a_lines.push_back(a_line);
  OperatingPoint corner_t;
  corner_t.tps = 1000;
  corner_t.qps = 0;
  OperatingPoint corner_a;
  corner_a.tps = 0;
  corner_a.qps = 10;
  grid.frontier = {corner_a, p, corner_t};
  return grid;
}

TEST(ReportTest, PrintGridCsvEmitsAllBlocks) {
  ::testing::internal::CaptureStdout();
  PrintGridCsv("sys", SyntheticGrid());
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("# sys fixed-T lines"), std::string::npos);
  EXPECT_NE(out.find("# sys fixed-A lines"), std::string::npos);
  EXPECT_NE(out.find("# sys frontier"), std::string::npos);
  EXPECT_NE(out.find("2,2,600.0,6.00"), std::string::npos);
  EXPECT_NE(out.find("1000.0,0.00"), std::string::npos);
}

TEST(ReportTest, PrintFrontierSummaryIncludesMetrics) {
  ::testing::internal::CaptureStdout();
  PrintFrontierSummary("sys", SyntheticGrid());
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("tau_max=4"), std::string::npos);
  EXPECT_NE(out.find("XT=1000.0"), std::string::npos);
  EXPECT_NE(out.find("coverage"), std::string::npos);
  EXPECT_NE(out.find("pattern:"), std::string::npos);
}

TEST(ReportTest, PlotFrontiersRendersCanvasAndLegend) {
  const GridGraph grid = SyntheticGrid();
  ::testing::internal::CaptureStdout();
  PlotFrontiers({"alpha", "beta"}, {&grid, &grid});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("qps (max"), std::string::npos);
  EXPECT_NE(out.find("tps (max"), std::string::npos);
  EXPECT_NE(out.find("'*' = alpha"), std::string::npos);
  EXPECT_NE(out.find("'o' = beta"), std::string::npos);
  // Frontier glyphs actually plotted.
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(ReportTest, PlotFrontiersEmptyGridIsSilent) {
  GridGraph empty;
  ::testing::internal::CaptureStdout();
  PlotFrontiers({"none"}, {&empty});
  EXPECT_TRUE(::testing::internal::GetCapturedStdout().empty());
}

TEST(ReportTest, MeasureRatioFreshnessUsesScaledClients) {
  std::vector<std::pair<int, int>> seen;
  PointRunner runner = [&](int t, int a) {
    seen.emplace_back(t, a);
    OperatingPoint p;
    p.t_clients = t;
    p.a_clients = a;
    p.freshness_p99 = t * 0.1;
    p.freshness_mean = t * 0.05;
    return p;
  };
  const auto rows = MeasureRatioFreshness(runner, /*tau_max=*/10,
                                          /*alpha_max=*/10);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].ratio, "20:80");
  EXPECT_EQ(rows[0].t_clients, 2);
  EXPECT_EQ(rows[0].a_clients, 8);
  EXPECT_EQ(rows[1].t_clients, 5);
  EXPECT_EQ(rows[2].t_clients, 8);
  EXPECT_EQ(rows[2].a_clients, 2);
  EXPECT_DOUBLE_EQ(rows[2].p99, 0.8);
}

TEST(ReportTest, MeasureRatioFreshnessClampsToOneClient) {
  PointRunner runner = [](int t, int a) {
    OperatingPoint p;
    p.t_clients = t;
    p.a_clients = a;
    return p;
  };
  const auto rows = MeasureRatioFreshness(runner, 1, 1);
  for (const auto& row : rows) {
    EXPECT_GE(row.t_clients, 1);
    EXPECT_GE(row.a_clients, 1);
  }
}

TEST(ReportTest, PrintRatioFreshnessFormat) {
  std::vector<RatioFreshness> rows(1);
  rows[0].ratio = "50:50";
  rows[0].t_clients = 5;
  rows[0].a_clients = 5;
  rows[0].p99 = 1.25;
  rows[0].mean = 0.5;
  ::testing::internal::CaptureStdout();
  PrintRatioFreshness("sys", rows);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("50:50,5,5,1.2500,0.5000"), std::string::npos);
}

}  // namespace
}  // namespace hattrick
