// Sharded scale-out suite (src/shard/): router determinism and balance,
// rid encoding, 2PC record round-trips, sharded-vs-unsharded result
// equality, the shards=1 bit-identity differential, a multi-threaded
// cross-shard 2PC storm (money conservation), and the coordinator
// crash/recovery matrix.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/support.h"
#include "common/rng.h"
#include "engine/engine_factory.h"
#include "obs/metrics.h"
#include "shard/shard_router.h"
#include "shard/sharded_engine.h"
#include "shard/two_pc.h"

namespace hattrick {
namespace {

using bench::kDatagenSeed;

// ---------------------------------------------------------------------
// Router: pure function of (seed, key), reasonable balance.

ShardPlan KvPlan() {
  ShardPlan plan;
  plan["acct"] = TablePlacement{Placement::kHashed, 0};
  return plan;
}

TEST(ShardRouterTest, RoutingIsDeterministicAcrossInstances) {
  const ShardPlan plan = MakeSsbShardPlan(8);
  ShardRouter a(5, 42, plan);
  ShardRouter b(5, 42, plan);
  for (int64_t k = 0; k < 2000; ++k) {
    EXPECT_EQ(a.ShardForValue(Value(k)), b.ShardForValue(Value(k)));
    EXPECT_EQ(a.ShardForValue(Value("Customer#" + std::to_string(k))),
              b.ShardForValue(Value("Customer#" + std::to_string(k))));
  }
  for (uint32_t j = 1; j <= 8; ++j) {
    const std::string name = "FRESHNESS_" + std::to_string(j);
    EXPECT_EQ(a.ShardForName(name), b.ShardForName(name));
  }
}

TEST(ShardRouterTest, DifferentSeedsRouteDifferently) {
  const ShardPlan plan = MakeSsbShardPlan(8);
  ShardRouter a(8, 1, plan);
  ShardRouter b(8, 2, plan);
  int differs = 0;
  for (int64_t k = 0; k < 1000; ++k) {
    if (a.ShardForValue(Value(k)) != b.ShardForValue(Value(k))) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(ShardRouterTest, HashPartitioningIsBalanced) {
  const uint32_t shards = 4;
  ShardRouter router(shards, 42, MakeSsbShardPlan(8));
  std::vector<int> counts(shards, 0);
  const int keys = 8000;
  for (int64_t k = 0; k < keys; ++k) {
    const uint32_t shard = router.ShardForValue(Value(k));
    ASSERT_LT(shard, shards);
    ++counts[shard];
  }
  // Every shard within +/-40% of the fair share — hash-uniform, not a
  // statistical nicety: a degenerate router would defeat scale-out.
  for (uint32_t s = 0; s < shards; ++s) {
    EXPECT_GT(counts[s], keys / shards * 6 / 10) << "shard " << s;
    EXPECT_LT(counts[s], keys / shards * 14 / 10) << "shard " << s;
  }
}

TEST(ShardRidTest, EncodingRoundTripsAndShard0PassesThrough) {
  EXPECT_EQ(GlobalRid(0, 1234), Rid{1234});  // unsharded bit-identity
  EXPECT_EQ(RidShard(1234), 0u);
  EXPECT_EQ(LocalRid(1234), Rid{1234});
  for (uint32_t shard : {0u, 1u, 3u, 15u}) {
    for (Rid local : {Rid{0}, Rid{7}, Rid{1} << 36, kShardLocalRidMask}) {
      const Rid global = GlobalRid(shard, local);
      EXPECT_EQ(RidShard(global), shard);
      EXPECT_EQ(LocalRid(global), local);
    }
  }
  EXPECT_EQ(ShardLockKey(0, 42), 42u);  // shard-0 lock keys pass through
  EXPECT_NE(ShardLockKey(1, 42), ShardLockKey(2, 42));
}

TEST(TwoPcLogTest, RecordsRoundTripThroughEncoding) {
  TwoPcRecord record;
  record.kind = TwoPcRecord::Kind::kDecide;
  record.gtid = 77;
  record.commit = true;
  record.participants = {0, 2, 5};
  TwoPcRecord decoded;
  ASSERT_TRUE(TwoPcRecord::Decode(record.Encode(), &decoded));
  EXPECT_EQ(decoded.kind, record.kind);
  EXPECT_EQ(decoded.gtid, record.gtid);
  EXPECT_EQ(decoded.commit, record.commit);
  EXPECT_EQ(decoded.participants, record.participants);
  // Truncated / trailing-garbage buffers are rejected, not misread.
  std::string bytes = record.Encode();
  EXPECT_FALSE(TwoPcRecord::Decode(bytes.substr(0, bytes.size() - 1),
                                   &decoded));
  EXPECT_FALSE(TwoPcRecord::Decode(bytes + "x", &decoded));
}

// ---------------------------------------------------------------------
// Workload helpers: load the SSB dataset into an engine and replay a
// pre-generated parameter batch (identical across engines by design).

Dataset SmallDataset(double sf, uint32_t freshness_tables) {
  DatagenConfig config;
  config.scale_factor = sf;
  config.lineorders_per_sf = bench::kLineordersPerSf;
  config.seed = kDatagenSeed;
  config.num_freshness_tables = freshness_tables;
  return GenerateDataset(config);
}

std::vector<TxnParams> GenerateBatch(const Dataset& dataset, uint64_t seed,
                                     int txns) {
  WorkloadContext context(dataset);
  Rng rng(seed);
  std::vector<TxnParams> batch;
  batch.reserve(txns);
  for (int i = 0; i < txns; ++i) {
    batch.push_back(GenerateTxnParams(&context, &rng));
  }
  return batch;
}

std::vector<TxnOutcome> ReplayBatch(HtapEngine* engine,
                                    const Dataset& dataset,
                                    const std::vector<TxnParams>& batch) {
  const EngineHandles handles = EngineHandles::Resolve(
      *engine->primary_catalog(), dataset.config.num_freshness_tables);
  std::vector<TxnOutcome> outcomes;
  outcomes.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const uint32_t client = 1 + static_cast<uint32_t>(i) %
                                    dataset.config.num_freshness_tables;
    WorkMeter meter;
    outcomes.push_back(engine->ExecuteTransaction(
        MakeTxnBody(batch[i], handles, client,
                    static_cast<uint64_t>(i + 1)),
        client, static_cast<uint64_t>(i + 1), &meter));
  }
  return outcomes;
}

QueryResult RunOneQuery(HtapEngine* engine, int query_id,
                        uint32_t freshness_tables) {
  WorkMeter meter;
  while (engine->MaintenanceStep(&meter)) {
  }
  AnalyticsSession session = engine->BeginAnalytics(&meter);
  ExecContext ctx;
  ctx.meter = &meter;
  ctx.session_pin = session.guard;
  return RunQuery(query_id, *session.source, freshness_tables, &ctx);
}

// ---------------------------------------------------------------------
// Sharded N=3 computes the same answers as the unsharded hybrid engine
// on the same history: scatter/gather plans, routed transactions and
// single-shard freshness tables all included.

TEST(ShardedEqualityTest, ThreeShardsMatchUnshardedAnswers) {
  const uint32_t kFreshness = 6;
  const Dataset dataset = SmallDataset(0.5, kFreshness);

  auto unsharded = MakeHybridEngine(TidbConfig());
  ASSERT_TRUE(LoadDataset(dataset, PhysicalSchema::kSemiIndexes,
                          unsharded.get())
                  .ok());

  ShardedEngineConfig config;
  config.shards = 3;
  config.seed = kDatagenSeed;
  config.plan = MakeSsbShardPlan(kFreshness);
  config.node = TidbConfig();
  auto sharded = std::make_unique<ShardedEngine>(config);
  ASSERT_TRUE(LoadDataset(dataset, PhysicalSchema::kSemiIndexes,
                          sharded.get())
                  .ok());

  const std::vector<TxnParams> batch = GenerateBatch(dataset, 9, 120);
  const std::vector<TxnOutcome> a = ReplayBatch(unsharded.get(), dataset,
                                                batch);
  const std::vector<TxnOutcome> b = ReplayBatch(sharded.get(), dataset,
                                                batch);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.ok(), b[i].status.ok()) << "txn " << i;
  }

  for (int q = 0; q < kNumQueries; ++q) {
    const QueryResult expected =
        RunOneQuery(unsharded.get(), q, kFreshness);
    const QueryResult actual = RunOneQuery(sharded.get(), q, kFreshness);
    EXPECT_EQ(expected.rows, actual.rows) << QueryName(q);
    EXPECT_DOUBLE_EQ(expected.checksum, actual.checksum) << QueryName(q);
    EXPECT_EQ(expected.freshness, actual.freshness) << QueryName(q);
  }
}

// ---------------------------------------------------------------------
// shards=1 is bit-identical to the inner engine: same outcomes (status,
// commit timestamps, write keys, rids) and same answers, across 21
// workload seeds. replicate=false for the strict leg — the replication
// tee is the one deliberate difference — then a replicate=true checksum
// leg proves the tee never changes results either.

TEST(ShardsOneDifferentialTest, BitIdenticalToUnshardedAcross21Seeds) {
  const uint32_t kFreshness = 4;
  const Dataset dataset = SmallDataset(0.25, kFreshness);

  auto unsharded = MakeHybridEngine(TidbConfig());
  ASSERT_TRUE(LoadDataset(dataset, PhysicalSchema::kSemiIndexes,
                          unsharded.get())
                  .ok());

  ShardedEngineConfig config;
  config.shards = 1;
  config.seed = kDatagenSeed;
  config.plan = MakeSsbShardPlan(kFreshness);
  config.node = TidbConfig();
  config.replicate = false;
  auto sharded = std::make_unique<ShardedEngine>(config);
  ASSERT_TRUE(LoadDataset(dataset, PhysicalSchema::kSemiIndexes,
                          sharded.get())
                  .ok());

  for (uint64_t seed = 1; seed <= 21; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::vector<TxnParams> batch = GenerateBatch(dataset, seed, 30);
    const std::vector<TxnOutcome> a = ReplayBatch(unsharded.get(), dataset,
                                                  batch);
    const std::vector<TxnOutcome> b = ReplayBatch(sharded.get(), dataset,
                                                  batch);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].status.code(), b[i].status.code()) << "txn " << i;
      EXPECT_EQ(a[i].commit_ts, b[i].commit_ts) << "txn " << i;
      EXPECT_EQ(a[i].attempts, b[i].attempts) << "txn " << i;
      EXPECT_EQ(a[i].write_keys, b[i].write_keys) << "txn " << i;
      EXPECT_EQ(a[i].delta_keys, b[i].delta_keys) << "txn " << i;
    }
    for (int q = 0; q < kNumQueries; ++q) {
      const QueryResult expected =
          RunOneQuery(unsharded.get(), q, kFreshness);
      const QueryResult actual = RunOneQuery(sharded.get(), q, kFreshness);
      EXPECT_EQ(expected.rows, actual.rows) << QueryName(q);
      EXPECT_DOUBLE_EQ(expected.checksum, actual.checksum) << QueryName(q);
      EXPECT_EQ(expected.freshness, actual.freshness) << QueryName(q);
    }
    ASSERT_TRUE(unsharded->Reset().ok());
    ASSERT_TRUE(sharded->Reset().ok());
  }
}

TEST(ShardsOneDifferentialTest, ReplicationTeeDoesNotChangeAnswers) {
  const uint32_t kFreshness = 4;
  const Dataset dataset = SmallDataset(0.25, kFreshness);

  auto unsharded = MakeHybridEngine(TidbConfig());
  ASSERT_TRUE(LoadDataset(dataset, PhysicalSchema::kSemiIndexes,
                          unsharded.get())
                  .ok());

  ShardedEngineConfig config;
  config.shards = 1;
  config.seed = kDatagenSeed;
  config.plan = MakeSsbShardPlan(kFreshness);
  config.node = TidbConfig();
  config.replicate = true;
  auto sharded = std::make_unique<ShardedEngine>(config);
  ASSERT_TRUE(LoadDataset(dataset, PhysicalSchema::kSemiIndexes,
                          sharded.get())
                  .ok());

  const std::vector<TxnParams> batch = GenerateBatch(dataset, 3, 60);
  ReplayBatch(unsharded.get(), dataset, batch);
  ReplayBatch(sharded.get(), dataset, batch);
  for (int q = 0; q < kNumQueries; ++q) {
    const QueryResult expected =
        RunOneQuery(unsharded.get(), q, kFreshness);
    const QueryResult actual = RunOneQuery(sharded.get(), q, kFreshness);
    EXPECT_DOUBLE_EQ(expected.checksum, actual.checksum) << QueryName(q);
  }
  // And the per-shard standby drains to zero lag.
  auto* engine = sharded.get();
  engine->shard_replica(0)->CatchUp(nullptr);
  EXPECT_EQ(engine->shard_replica(0)->Lag(), 0u);
}

// ---------------------------------------------------------------------
// Cross-shard 2PC: a concurrent transfer storm over a hash-partitioned
// account table must conserve the total balance, and the crash matrix
// must recover to a consistent decision on every shard.

DatabaseSpec AcctSpec() {
  DatabaseSpec spec;
  spec.tables.push_back(
      {"acct", Schema({{"id", DataType::kInt64},
                       {"bal", DataType::kInt64}})});
  spec.indexes.push_back({"acct_pk", "acct", {0}, true});
  return spec;
}

std::unique_ptr<ShardedEngine> MakeAcctEngine(uint32_t shards,
                                              int accounts) {
  ShardedEngineConfig config;
  config.shards = shards;
  config.seed = 42;
  config.plan = KvPlan();
  config.fact_table = "acct";
  config.replicate = false;
  auto engine = std::make_unique<ShardedEngine>(config);
  EXPECT_TRUE(engine->Create(AcctSpec()).ok());
  std::vector<Row> rows;
  for (int i = 0; i < accounts; ++i) {
    rows.push_back(Row{int64_t{i}, int64_t{1000}});
  }
  EXPECT_TRUE(engine->BulkLoad("acct", rows).ok());
  EXPECT_TRUE(engine->FinishLoad().ok());
  return engine;
}

/// Transfers `amount` from account `from` to account `to` by primary-key
/// lookup (cross-shard whenever the two keys hash to different shards).
TxnBody TransferBody(const IndexInfo* pk, int64_t from, int64_t to,
                     int64_t amount) {
  return [pk, from, to, amount](TxnContext* txn, WorkMeter* meter) {
    for (const auto& [key, delta] :
         {std::pair<int64_t, int64_t>{from, -amount}, {to, amount}}) {
      Rid rid = 0;
      Row row;
      const size_t hits = txn->IndexLookup(
          *pk, {Value(key)},
          [&](Rid r, const Row& visited) {
            rid = r;
            row = visited;
            return false;
          },
          meter);
      if (hits == 0) return Status::NotFound("missing account");
      Row updated = row;
      updated[1] = Value(row[1].AsInt() + delta);
      txn->BufferUpdate(0, rid, row, std::move(updated));
    }
    return Status::OK();
  };
}

int64_t TotalBalance(ShardedEngine* engine, const IndexInfo* pk,
                     int accounts) {
  int64_t total = 0;
  WorkMeter meter;
  const TxnOutcome outcome = engine->ExecuteTransaction(
      [&](TxnContext* txn, WorkMeter* m) {
        for (int64_t key = 0; key < accounts; ++key) {
          const size_t hits = txn->IndexLookup(
              *pk, {Value(key)},
              [&](Rid, const Row& row) {
                total += row[1].AsInt();
                return false;
              },
              m);
          if (hits != 1) return Status::Internal("bad lookup");
        }
        return Status::OK();
      },
      1, 1, &meter);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  return total;
}

TEST(TwoPcStormTest, ConcurrentTransfersConserveTotalBalance) {
  const int kAccounts = 64;
  const uint32_t kShards = 4;
  auto engine = MakeAcctEngine(kShards, kAccounts);
  obs::MetricsRegistry metrics;
  obs::Observability obs;
  obs.metrics = &metrics;
  engine->SetObservability(obs);
  const IndexInfo* pk = engine->primary_catalog()->GetIndex("acct_pk");
  ASSERT_NE(pk, nullptr);

  // Write-write conflicts under the storm are legitimate aborts; the
  // invariant is that every decision is atomic across shards, i.e. the
  // total balance is conserved no matter how the commit/abort mix lands.
  const int kThreads = 8;
  const int kTxnsPerThread = 40;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const int64_t from = rng.Uniform(0, kAccounts - 1);
        int64_t to = rng.Uniform(0, kAccounts - 1);
        if (to == from) to = (to + 1) % kAccounts;
        WorkMeter meter;
        const TxnOutcome outcome = engine->ExecuteTransaction(
            TransferBody(pk, from, to, 1),
            static_cast<uint32_t>(t + 1),
            static_cast<uint64_t>(i + 1), &meter);
        if (outcome.status.ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(committed.load(), 0);
  EXPECT_EQ(TotalBalance(engine.get(), pk, kAccounts),
            int64_t{1000} * kAccounts);
  // The storm actually exercised cross-shard 2PC.
  const obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_GT(snapshot.CountOf(obs::kShard2pcCommits), 0u);
  EXPECT_EQ(engine->PendingGlobalTxns(), 0u);
}

/// Finds a (from, to) pair living on two different shards.
std::pair<int64_t, int64_t> CrossShardPair(const ShardRouter& router,
                                           int accounts) {
  for (int64_t a = 0; a < accounts; ++a) {
    for (int64_t b = a + 1; b < accounts; ++b) {
      if (router.ShardForValue(Value(a)) != router.ShardForValue(Value(b))) {
        return {a, b};
      }
    }
  }
  ADD_FAILURE() << "no cross-shard pair found";
  return {0, 1};
}

int64_t BalanceOf(ShardedEngine* engine, const IndexInfo* pk, int64_t key) {
  int64_t balance = -1;
  WorkMeter meter;
  const TxnOutcome outcome = engine->ExecuteTransaction(
      [&](TxnContext* txn, WorkMeter* m) {
        txn->IndexLookup(
            *pk, {Value(key)},
            [&](Rid, const Row& row) {
              balance = row[1].AsInt();
              return false;
            },
            m);
        return Status::OK();
      },
      1, 999, &meter);
  EXPECT_TRUE(outcome.status.ok());
  return balance;
}

TEST(TwoPcCrashMatrixTest, EveryCrashPointRecoversConsistently) {
  struct Case {
    TwoPcCrash crash;
    bool commits;  // decision the recovery must reach
  };
  const Case cases[] = {
      {{TwoPcCrash::Point::kMidPrepare, 1}, false},
      {{TwoPcCrash::Point::kAfterPrepareLog, 0}, false},
      {{TwoPcCrash::Point::kAfterDecideLog, 0}, true},
      {{TwoPcCrash::Point::kMidCommit, 1}, true},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(static_cast<int>(c.crash.point));
    auto engine = MakeAcctEngine(3, 32);
    const IndexInfo* pk = engine->primary_catalog()->GetIndex("acct_pk");
    ASSERT_NE(pk, nullptr);
    const auto [from, to] = CrossShardPair(engine->router(), 32);

    engine->SetTwoPcCrash(c.crash);
    WorkMeter meter;
    const TxnOutcome outcome = engine->ExecuteTransaction(
        TransferBody(pk, from, to, 5), 1, 1, &meter);
    EXPECT_FALSE(outcome.status.ok());
    EXPECT_EQ(engine->PendingGlobalTxns(), 1u);

    EXPECT_EQ(engine->RecoverCoordinator(), 1u);
    EXPECT_EQ(engine->PendingGlobalTxns(), 0u);

    const int64_t from_bal = BalanceOf(engine.get(), pk, from);
    const int64_t to_bal = BalanceOf(engine.get(), pk, to);
    if (c.commits) {
      EXPECT_EQ(from_bal, 995);
      EXPECT_EQ(to_bal, 1005);
    } else {
      EXPECT_EQ(from_bal, 1000);
      EXPECT_EQ(to_bal, 1000);
    }
    // Atomic either way: no half-applied transfer survives recovery.
    EXPECT_EQ(from_bal + to_bal, 2000);

    // The engine keeps working after recovery.
    WorkMeter after_meter;
    EXPECT_TRUE(engine
                    ->ExecuteTransaction(TransferBody(pk, from, to, 1), 1,
                                         2, &after_meter)
                    .status.ok());
  }
}

}  // namespace
}  // namespace hattrick
