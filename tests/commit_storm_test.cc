// Randomized multi-threaded commit storms against the lock-free MVCC
// transaction layer: many writer threads hammer a small Zipf-hot key set
// and the final state must equal the sum of the increments the committed
// transactions claim (no lost updates, no double application), at every
// isolation level. A latch-vs-lock-free differential replays identical
// single-threaded histories under both protocols and demands identical
// final tables, and a delta-vs-full oracle proves both write shapes
// converge to the same balances. The binary carries the `tsan` label so
// the contention-smoke CI leg re-runs it under ThreadSanitizer.

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/catalog.h"
#include "txn/timestamp.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace hattrick {
namespace {

constexpr size_t kAccounts = 8;
constexpr int kThreads = 4;
constexpr uint64_t kTxnsPerThread = 150;

Schema AccountSchema() {
  return Schema({{"id", DataType::kInt64}, {"balance", DataType::kInt64}});
}

/// Zipf-ish hot-key pick: half the draws hit account 0, the rest spread.
Rid HotRid(Rng* rng) {
  if (rng->NextDouble() < 0.5) return 0;
  return static_cast<Rid>(rng->Uniform(1, kAccounts - 1));
}

struct Fixture {
  Catalog catalog;
  RowTable* table = nullptr;
  TimestampOracle oracle;
  std::unique_ptr<TxnManager> tm;

  Fixture() {
    table = catalog.CreateTable("accounts", AccountSchema());
    for (size_t i = 0; i < kAccounts; ++i) {
      table->Insert(Row{static_cast<int64_t>(i), int64_t{0}}, 1, nullptr);
    }
    tm = std::make_unique<TxnManager>(&catalog, &oracle, nullptr);
    oracle.ResetTo(1);
  }

  int64_t Balance(Rid rid) {
    Row row;
    EXPECT_TRUE(table->ReadLatest(rid, &row, nullptr));
    return row[1].AsInt();
  }
};

/// Runs the storm: each thread issues kTxnsPerThread increments of 1-3
/// hot rows (as deltas or read-modify-write full updates) and records
/// what its COMMITTED transactions added per row. Returns false if any
/// transaction failed outright (retries exhausted).
bool RunStorm(Fixture* f, IsolationLevel isolation, bool use_deltas,
              uint64_t seed,
              std::vector<std::atomic<int64_t>>* committed_sums) {
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 977 + static_cast<uint64_t>(t));
      for (uint64_t n = 1; n <= kTxnsPerThread && ok.load(); ++n) {
        const int rows = static_cast<int>(rng.Uniform(1, 3));
        std::vector<Rid> rids;
        std::vector<int64_t> amounts;
        for (int r = 0; r < rows; ++r) {
          const Rid rid = HotRid(&rng);
          bool dup = false;
          for (const Rid seen : rids) dup = dup || seen == rid;
          if (dup) continue;
          rids.push_back(rid);
          amounts.push_back(rng.Uniform(1, 9));
        }
        const auto body = [&](Transaction* txn) -> Status {
          for (size_t i = 0; i < rids.size(); ++i) {
            if (use_deltas) {
              f->tm->BufferDelta(txn, 0, rids[i], 1, Value(amounts[i]));
            } else {
              Row row;
              HATTRICK_RETURN_IF_ERROR(
                  f->tm->Read(txn, 0, rids[i], &row, nullptr));
              Row updated = row;
              updated[1] = Value(row[1].AsInt() + amounts[i]);
              f->tm->BufferUpdate(txn, 0, rids[i], row,
                                  std::move(updated));
            }
          }
          return Status::OK();
        };
        const StatusOr<CommitResult> result = f->tm->RunWithRetries(
            isolation, static_cast<uint32_t>(t) + 1, n, body, nullptr,
            /*max_retries=*/100, nullptr);
        if (!result.ok()) {
          ok.store(false);
          return;
        }
        for (size_t i = 0; i < rids.size(); ++i) {
          (*committed_sums)[rids[i]].fetch_add(amounts[i],
                                               std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return ok.load();
}

class CommitStormTest
    : public ::testing::TestWithParam<std::tuple<IsolationLevel, bool>> {};

TEST_P(CommitStormTest, FinalBalancesMatchCommittedIncrements) {
  const auto [isolation, use_deltas] = GetParam();
  Fixture f;
  std::vector<std::atomic<int64_t>> sums(kAccounts);
  ASSERT_TRUE(RunStorm(&f, isolation, use_deltas, 42, &sums))
      << "a transaction exhausted its retries";
  for (size_t i = 0; i < kAccounts; ++i) {
    EXPECT_EQ(f.Balance(static_cast<Rid>(i)), sums[i].load())
        << "account " << i << ": lost or doubled update";
  }
  // Vacuuming the storm's version chains must not change any balance.
  f.table->Vacuum(f.oracle.last_committed());
  for (size_t i = 0; i < kAccounts; ++i) {
    EXPECT_EQ(f.Balance(static_cast<Rid>(i)), sums[i].load());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, CommitStormTest,
    ::testing::Combine(::testing::Values(IsolationLevel::kReadCommitted,
                                         IsolationLevel::kSnapshot,
                                         IsolationLevel::kSerializable),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<IsolationLevel, bool>>&
           info) {
      const IsolationLevel iso = std::get<0>(info.param);
      const bool deltas = std::get<1>(info.param);
      const std::string name =
          iso == IsolationLevel::kReadCommitted ? "RC"
          : iso == IsolationLevel::kSnapshot    ? "SI"
                                                : "SER";
      return name + (deltas ? "_delta" : "_full");
    });

/// Delta-vs-full equivalence oracle: the same concurrent increment
/// workload, expressed as deltas in one run and read-modify-write full
/// updates in another, must converge to identical balances.
TEST(CommitStormOracle, DeltaAndFullConvergeIdentically) {
  for (const uint64_t seed : {7u, 21u, 63u}) {
    Fixture with_deltas;
    Fixture with_fulls;
    std::vector<std::atomic<int64_t>> sums_d(kAccounts);
    std::vector<std::atomic<int64_t>> sums_f(kAccounts);
    ASSERT_TRUE(RunStorm(&with_deltas, IsolationLevel::kSnapshot,
                         /*use_deltas=*/true, seed, &sums_d));
    ASSERT_TRUE(RunStorm(&with_fulls, IsolationLevel::kSnapshot,
                         /*use_deltas=*/false, seed, &sums_f));
    for (size_t i = 0; i < kAccounts; ++i) {
      // Same seed -> same per-thread increment schedule -> same sums.
      EXPECT_EQ(sums_d[i].load(), sums_f[i].load());
      EXPECT_EQ(with_deltas.Balance(static_cast<Rid>(i)),
                with_fulls.Balance(static_cast<Rid>(i)))
          << "delta and full-update runs diverged on account " << i;
    }
  }
}

/// Latch-vs-lock-free differential: a deterministic single-threaded
/// history of interleaved transactions (including overlapping begins,
/// aborts, deltas, updates and inserts) must leave byte-identical final
/// tables under both protocols, across 21 seeds.
TEST(CommitStormDifferential, LatchAndLockFreeAgreeOn21Seeds) {
  for (uint64_t seed = 1; seed <= 21; ++seed) {
    std::vector<std::vector<int64_t>> finals;
    for (const TxnProtocol protocol :
         {TxnProtocol::kLockFree, TxnProtocol::kLatch}) {
      Fixture f;
      f.tm->SetProtocol(protocol);
      Rng rng(seed);
      // Keep a second transaction open across others to exercise
      // overlap; commit or abort it at random points.
      std::unique_ptr<Transaction> overlap;
      for (int step = 0; step < 200; ++step) {
        const double p = rng.NextDouble();
        if (overlap == nullptr && p < 0.2) {
          overlap = std::make_unique<Transaction>(
              f.tm->Begin(IsolationLevel::kSnapshot));
          f.tm->BufferDelta(overlap.get(), 0, HotRid(&rng), 1,
                            Value(rng.Uniform(1, 5)));
          continue;
        }
        if (overlap != nullptr && p > 0.8) {
          if (p > 0.9) {
            (void)f.tm->Commit(overlap.get(), nullptr);
          } else {
            f.tm->Abort(overlap.get());
          }
          overlap.reset();
          continue;
        }
        Transaction txn = f.tm->Begin(IsolationLevel::kSnapshot);
        const Rid rid = HotRid(&rng);
        if (p < 0.5) {
          f.tm->BufferDelta(&txn, 0, rid, 1, Value(rng.Uniform(1, 9)));
        } else if (p < 0.75) {
          Row row;
          if (!f.tm->Read(&txn, 0, rid, &row, nullptr).ok()) continue;
          Row updated = row;
          updated[1] = Value(row[1].AsInt() * 2 + 1);
          f.tm->BufferUpdate(&txn, 0, rid, row, std::move(updated));
        } else {
          f.tm->BufferInsert(
              &txn, 0,
              Row{static_cast<int64_t>(kAccounts) + step, rng.Uniform(0, 50)});
        }
        (void)f.tm->Commit(&txn, nullptr);
      }
      if (overlap != nullptr) f.tm->Abort(overlap.get());
      std::vector<int64_t> contents;
      for (Rid rid = 0; rid < f.table->NumSlots(); ++rid) {
        Row row;
        if (f.table->ReadLatest(rid, &row, nullptr)) {
          contents.push_back(row[0].AsInt());
          contents.push_back(row[1].AsInt());
        }
      }
      finals.push_back(std::move(contents));
    }
    ASSERT_EQ(finals.size(), 2u);
    EXPECT_EQ(finals[0], finals[1])
        << "protocols diverged at seed " << seed;
  }
}

}  // namespace
}  // namespace hattrick
