// Tests for the simulation kernel: event ordering, processor-sharing
// timing math (exact expectations), LSN wait queue, row-lock model, and
// the cost model.

#include <vector>

#include <gtest/gtest.h>

#include "sim/core_pool.h"
#include "sim/cost_model.h"
#include "sim/lock_model.h"
#include "sim/simulation.h"
#include "sim/wait_queue.h"

namespace hattrick {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, std::vector<int>({1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulationTest, EqualTimesFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, std::vector<int>({0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  double fired_at = -1;
  sim.Schedule(1.0, [&] {
    sim.Schedule(0.5, [&] { fired_at = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CountsEvents) {
  Simulation sim;
  sim.Schedule(0, [] {});
  sim.Schedule(0, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_executed(), 2u);
}

// --------------------------------------------------------------------------
// CorePool: exact processor-sharing math.
// --------------------------------------------------------------------------

TEST(CorePoolTest, SingleJobRunsAtFullRate) {
  Simulation sim;
  CorePool pool(&sim, "p", 2.0);
  double done_at = -1;
  pool.Submit(3.0, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_NEAR(done_at, 3.0, 1e-9);  // one job never exceeds rate 1
}

TEST(CorePoolTest, JobsWithinCapacityDoNotInterfere) {
  Simulation sim;
  CorePool pool(&sim, "p", 4.0);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    pool.Submit(2.0, [&] { done.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 4u);
  for (double t : done) EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(CorePoolTest, OverloadSharesProportionally) {
  // 2 cores, 4 equal jobs of 1s: each runs at rate 0.5 -> all done at 2s.
  Simulation sim;
  CorePool pool(&sim, "p", 2.0);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    pool.Submit(1.0, [&] { done.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 4u);
  for (double t : done) EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(CorePoolTest, LateArrivalSlowsExistingJob) {
  // 1 core. Job A (2s) starts at 0; job B (1s) arrives at 1.
  // From t=1 both share: rate 1/2. A has 1s left -> needs 2s -> ends at 3.
  // B needs 1s at rate 1/2 -> ends at 3.
  Simulation sim;
  CorePool pool(&sim, "p", 1.0);
  double a_done = -1;
  double b_done = -1;
  pool.Submit(2.0, [&] { a_done = sim.Now(); });
  sim.Schedule(1.0, [&] { pool.Submit(1.0, [&] { b_done = sim.Now(); }); });
  sim.RunToCompletion();
  EXPECT_NEAR(a_done, 3.0, 1e-9);
  EXPECT_NEAR(b_done, 3.0, 1e-9);
}

TEST(CorePoolTest, ShortJobFinishesFirstUnderPs) {
  // 1 core, jobs of 0.5s and 2s arriving together: short one completes at
  // 1.0 (rate 1/2), long one then speeds up: remaining 1.5 at rate 1 ->
  // completes at 2.5.
  Simulation sim;
  CorePool pool(&sim, "p", 1.0);
  double short_done = -1;
  double long_done = -1;
  pool.Submit(0.5, [&] { short_done = sim.Now(); });
  pool.Submit(2.0, [&] { long_done = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_NEAR(short_done, 1.0, 1e-9);
  EXPECT_NEAR(long_done, 2.5, 1e-9);
}

TEST(CorePoolTest, ZeroDemandCompletesImmediately) {
  Simulation sim;
  CorePool pool(&sim, "p", 1.0);
  double done_at = -1;
  pool.Submit(0.0, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(CorePoolTest, BusySecondsAccumulate) {
  Simulation sim;
  CorePool pool(&sim, "p", 2.0);
  for (int i = 0; i < 3; ++i) pool.Submit(1.0, [] {});
  sim.RunToCompletion();
  EXPECT_NEAR(pool.busy_seconds(), 3.0, 1e-9);
}

TEST(CorePoolTest, CompletionCallbackCanResubmit) {
  Simulation sim;
  CorePool pool(&sim, "p", 1.0);
  int completed = 0;
  std::function<void()> loop = [&] {
    ++completed;
    if (completed < 5) pool.Submit(1.0, loop);
  };
  pool.Submit(1.0, loop);
  sim.RunToCompletion();
  EXPECT_EQ(completed, 5);
  EXPECT_NEAR(sim.Now(), 5.0, 1e-9);
}

// --------------------------------------------------------------------------
// LsnWaitQueue
// --------------------------------------------------------------------------

TEST(LsnWaitQueueTest, ImmediateWhenAlreadyPublished) {
  LsnWaitQueue q;
  q.Publish(5);
  bool fired = false;
  q.WaitFor(3, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(LsnWaitQueueTest, WakesInLsnOrder) {
  LsnWaitQueue q;
  std::vector<int> order;
  q.WaitFor(2, [&] { order.push_back(2); });
  q.WaitFor(1, [&] { order.push_back(1); });
  q.WaitFor(4, [&] { order.push_back(4); });
  q.Publish(2);
  EXPECT_EQ(order, std::vector<int>({1, 2}));
  EXPECT_EQ(q.waiting(), 1u);
  q.Publish(10);
  EXPECT_EQ(order, std::vector<int>({1, 2, 4}));
}

TEST(LsnWaitQueueTest, PublishIsMonotone) {
  LsnWaitQueue q;
  q.Publish(5);
  q.Publish(3);  // ignored
  EXPECT_EQ(q.published(), 5u);
}

TEST(LsnWaitQueueTest, ResetClears) {
  LsnWaitQueue q;
  q.WaitFor(9, [] {});
  q.Publish(1);
  q.Reset();
  EXPECT_EQ(q.published(), 0u);
  EXPECT_EQ(q.waiting(), 0u);
}

// --------------------------------------------------------------------------
// RowLockModel
// --------------------------------------------------------------------------

TEST(RowLockModelTest, UncontendedHasNoWait) {
  RowLockModel locks(1.0);
  const std::vector<uint64_t> keys = {1, 2};
  EXPECT_DOUBLE_EQ(locks.AcquireAll(keys, 0.0, 0.1), 0.0);
}

TEST(RowLockModelTest, SecondWriterWaitsForRelease) {
  RowLockModel locks(1.0);
  const std::vector<uint64_t> keys = {42};
  EXPECT_DOUBLE_EQ(locks.AcquireAll(keys, 0.0, 0.5), 0.0);
  // Issued at 0.2 while the row is held until 0.5: waits 0.3.
  EXPECT_NEAR(locks.AcquireAll(keys, 0.2, 0.5), 0.3, 1e-12);
}

TEST(RowLockModelTest, ChainsExtendHolds) {
  RowLockModel locks(1.0);
  const std::vector<uint64_t> keys = {7};
  locks.AcquireAll(keys, 0.0, 1.0);             // held to 1.0
  EXPECT_NEAR(locks.AcquireAll(keys, 0.0, 1.0), 1.0, 1e-12);  // to 2.0
  EXPECT_NEAR(locks.AcquireAll(keys, 0.0, 1.0), 2.0, 1e-12);  // to 3.0
}

TEST(RowLockModelTest, HoldFractionScalesWindow) {
  RowLockModel locks(0.25);
  const std::vector<uint64_t> keys = {7};
  locks.AcquireAll(keys, 0.0, 1.0);  // held only until 0.25
  EXPECT_NEAR(locks.AcquireAll(keys, 0.1, 1.0), 0.15, 1e-12);
}

TEST(RowLockModelTest, DisjointKeysDoNotInteract) {
  RowLockModel locks(1.0);
  locks.AcquireAll(std::vector<uint64_t>{1}, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(
      locks.AcquireAll(std::vector<uint64_t>{2}, 0.0, 1.0), 0.0);
}

TEST(RowLockModelTest, TrimDropsExpired) {
  RowLockModel locks(1.0);
  locks.AcquireAll(std::vector<uint64_t>{1}, 0.0, 0.5);
  locks.AcquireAll(std::vector<uint64_t>{2}, 0.0, 5.0);
  locks.Trim(1.0);
  EXPECT_EQ(locks.size(), 1u);
}

// --------------------------------------------------------------------------
// CostModel
// --------------------------------------------------------------------------

TEST(CostModelTest, FixedCostsApply) {
  CostModel cost;
  WorkMeter empty;
  EXPECT_NEAR(cost.TxnCpuSeconds(empty), cost.txn_fixed_us * 1e-6, 1e-12);
  EXPECT_NEAR(cost.QueryCpuSeconds(empty), cost.query_fixed_us * 1e-6,
              1e-12);
  EXPECT_DOUBLE_EQ(cost.ReplayCpuSeconds(empty), 0.0);
}

TEST(CostModelTest, WorkScalesLinearly) {
  CostModel cost;
  WorkMeter one;
  one.rows_read = 1;
  WorkMeter ten;
  ten.rows_read = 10;
  EXPECT_NEAR(cost.WorkUs(ten), 10 * cost.WorkUs(one), 1e-12);
}

TEST(CostModelTest, MultipliersApply) {
  CostModel cost;
  cost.t_work_multiplier = 2.0;
  WorkMeter m;
  m.rows_read = 100;
  CostModel base;
  EXPECT_NEAR(cost.TxnCpuSeconds(m), 2.0 * base.TxnCpuSeconds(m), 1e-15);
}

TEST(CostModelTest, ShipDelayGrowsWithBytes) {
  CostModel cost;
  EXPECT_GT(cost.ShipDelaySeconds(10000), cost.ShipDelaySeconds(100));
  EXPECT_NEAR(cost.ShipDelaySeconds(0), cost.ship_fixed_us * 1e-6, 1e-12);
}

}  // namespace
}  // namespace hattrick
