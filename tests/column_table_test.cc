// Tests for the columnar table: typed storage, dictionary encoding, zone
// maps (correctness of pruning bounds), in-place updates and copies.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/column_table.h"

namespace hattrick {
namespace {

Schema Mixed() {
  return Schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}});
}

TEST(ColumnTableTest, AppendAndAccess) {
  ColumnTable table(Mixed());
  ASSERT_TRUE(table.Append(Row{int64_t{1}, 1.5, std::string("a")},
                           nullptr).ok());
  ASSERT_TRUE(table.Append(Row{int64_t{2}, 2.5, std::string("b")},
                           nullptr).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.GetInt(0, 0), 1);
  EXPECT_DOUBLE_EQ(table.GetDouble(1, 1), 2.5);
  EXPECT_EQ(table.GetString(2, 1), "b");
}

TEST(ColumnTableTest, AppendValidatesSchema) {
  ColumnTable table(Mixed());
  EXPECT_EQ(table.Append(Row{int64_t{1}}, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      table.Append(Row{1.0, 1.5, std::string("a")}, nullptr).code(),
      StatusCode::kInvalidArgument);
}

TEST(ColumnTableTest, DictionaryEncodesStrings) {
  ColumnTable table(Mixed());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table
                    .Append(Row{int64_t{i}, 0.0,
                                std::string(i % 2 == 0 ? "even" : "odd")},
                            nullptr)
                    .ok());
  }
  EXPECT_EQ(table.DictionarySize(2), 2u);
  EXPECT_EQ(table.GetStringCode(2, 0), table.GetStringCode(2, 2));
  EXPECT_NE(table.GetStringCode(2, 0), table.GetStringCode(2, 1));
  EXPECT_EQ(table.FindStringCode(2, "even"),
            static_cast<int64_t>(table.GetStringCode(2, 0)));
  EXPECT_EQ(table.FindStringCode(2, "absent"), -1);
}

TEST(ColumnTableTest, GetRowMaterializes) {
  ColumnTable table(Mixed());
  ASSERT_TRUE(table.Append(Row{int64_t{7}, 3.5, std::string("x")},
                           nullptr).ok());
  const Row row = table.GetRow(0);
  EXPECT_EQ(row[0].AsInt(), 7);
  EXPECT_DOUBLE_EQ(row[1].AsDouble(), 3.5);
  EXPECT_EQ(row[2].AsString(), "x");
}

TEST(ColumnTableTest, ZoneMapsBoundValues) {
  ColumnTable table(Mixed());
  Rng rng(5);
  std::vector<int64_t> values;
  const size_t n = ColumnTable::kBlockRows * 3 + 17;
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = rng.Uniform(-1000, 1000);
    values.push_back(v);
    ASSERT_TRUE(
        table.Append(Row{v, static_cast<double>(v), std::string("s")},
                     nullptr).ok());
  }
  const size_t blocks = ColumnTable::NumBlocks(n);
  EXPECT_EQ(blocks, 4u);
  for (size_t b = 0; b < blocks; ++b) {
    double mn;
    double mx;
    ASSERT_TRUE(table.BlockMinMax(0, b, &mn, &mx));
    const size_t lo = b * ColumnTable::kBlockRows;
    const size_t hi = std::min(n, lo + ColumnTable::kBlockRows);
    for (size_t r = lo; r < hi; ++r) {
      EXPECT_GE(static_cast<double>(values[r]), mn);
      EXPECT_LE(static_cast<double>(values[r]), mx);
    }
  }
  // String columns have no zone maps.
  double mn;
  double mx;
  EXPECT_FALSE(table.BlockMinMax(2, 0, &mn, &mx));
}

TEST(ColumnTableTest, UpdateRowOverwritesAndWidensZoneMap) {
  ColumnTable table(Mixed());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .Append(Row{int64_t{i}, static_cast<double>(i),
                                std::string("a")},
                            nullptr)
                    .ok());
  }
  ASSERT_TRUE(
      table.UpdateRow(3, Row{int64_t{500}, -7.0, std::string("new")},
                      nullptr).ok());
  EXPECT_EQ(table.GetInt(0, 3), 500);
  EXPECT_DOUBLE_EQ(table.GetDouble(1, 3), -7.0);
  EXPECT_EQ(table.GetString(2, 3), "new");
  double mn;
  double mx;
  ASSERT_TRUE(table.BlockMinMax(0, 0, &mn, &mx));
  EXPECT_LE(mn, 0.0);
  EXPECT_GE(mx, 500.0);  // widened to cover the update
  ASSERT_TRUE(table.BlockMinMax(1, 0, &mn, &mx));
  EXPECT_LE(mn, -7.0);
}

TEST(ColumnTableTest, UpdateRowOutOfRange) {
  ColumnTable table(Mixed());
  EXPECT_EQ(table.UpdateRow(0, Row{int64_t{1}, 0.0, std::string("x")},
                            nullptr)
                .code(),
            StatusCode::kOutOfRange);
}

TEST(ColumnTableTest, CopyFromIsDeep) {
  ColumnTable a(Mixed());
  ASSERT_TRUE(a.Append(Row{int64_t{1}, 1.0, std::string("x")},
                       nullptr).ok());
  ColumnTable b(Mixed());
  b.CopyFrom(a);
  ASSERT_TRUE(b.Append(Row{int64_t{2}, 2.0, std::string("y")},
                       nullptr).ok());
  ASSERT_TRUE(
      b.UpdateRow(0, Row{int64_t{9}, 9.0, std::string("z")}, nullptr).ok());
  EXPECT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.GetInt(0, 0), 1);  // original untouched
  EXPECT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.GetInt(0, 0), 9);
}

TEST(ColumnTableTest, TruncateToDropsTail) {
  ColumnTable table(Mixed());
  const size_t n = ColumnTable::kBlockRows + 100;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(table
                    .Append(Row{static_cast<int64_t>(i),
                                static_cast<double>(i), std::string("s")},
                            nullptr)
                    .ok());
  }
  table.TruncateTo(ColumnTable::kBlockRows / 2);
  EXPECT_EQ(table.num_rows(), ColumnTable::kBlockRows / 2);
  double mn;
  double mx;
  ASSERT_TRUE(table.BlockMinMax(0, 0, &mn, &mx));
  EXPECT_DOUBLE_EQ(mn, 0.0);
  EXPECT_DOUBLE_EQ(mx, static_cast<double>(ColumnTable::kBlockRows / 2 - 1));
  // Truncating to a larger bound is a no-op.
  table.TruncateTo(10000);
  EXPECT_EQ(table.num_rows(), ColumnTable::kBlockRows / 2);
}

TEST(ColumnTableTest, MeterCountsCells) {
  ColumnTable table(Mixed());
  WorkMeter meter;
  ASSERT_TRUE(table.Append(Row{int64_t{1}, 1.0, std::string("x")},
                           &meter).ok());
  EXPECT_EQ(meter.rows_written, 1u);
  EXPECT_EQ(meter.column_values, 3u);
}

}  // namespace
}  // namespace hattrick
