// Chaos harness for the replication fault-injection subsystem:
//  (a) same-seed fault schedules are byte-identical, down to the
//      simulator's metrics/trace exports;
//  (b) faulted runs converge to the same replica contents (and, once
//      drained, the same zero-staleness state) as fault-free runs;
//  (c) no injected schedule can reach an assert/abort or leave the
//      replica in an error state — swept across many seeds and every
//      canned profile.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/support.h"
#include "common/rng.h"
#include "engine/isolated_engine.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "shard/shard_router.h"
#include "shard/sharded_engine.h"

namespace hattrick {
namespace {

// ---------------------------------------------------------------------
// FaultInjector determinism.

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  StatusOr<FaultConfig> config = MakeFaultProfile("chaos", 42);
  ASSERT_TRUE(config.ok());
  FaultInjector a(config.value());
  FaultInjector b(config.value());
  for (uint64_t lsn = 1; lsn <= 1000; ++lsn) {
    EXPECT_EQ(a.DropShip(lsn), b.DropShip(lsn));
    EXPECT_EQ(a.DuplicateShip(lsn), b.DuplicateShip(lsn));
    EXPECT_EQ(a.ReorderShip(lsn), b.ReorderShip(lsn));
    EXPECT_EQ(a.DropResend(lsn, 1), b.DropResend(lsn, 1));
    EXPECT_EQ(a.CrashBeforeApply(lsn), b.CrashBeforeApply(lsn));
    EXPECT_EQ(a.ShipDelaySeconds(lsn), b.ShipDelaySeconds(lsn));
    EXPECT_EQ(a.SlowApplyMultiplier(lsn), b.SlowApplyMultiplier(lsn));
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  StatusOr<FaultConfig> c1 = MakeFaultProfile("drop", 1);
  StatusOr<FaultConfig> c2 = MakeFaultProfile("drop", 2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  FaultInjector a(c1.value());
  FaultInjector b(c2.value());
  int differs = 0;
  for (uint64_t lsn = 1; lsn <= 1000; ++lsn) {
    if (a.DropShip(lsn) != b.DropShip(lsn)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, ResendAttemptsAreIndependentDraws) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 3;
  config.resend_drop_rate = 0.5;
  FaultInjector injector(config);
  // Across many attempts for one LSN, both outcomes must appear —
  // otherwise a 100%-first-try-drop schedule could retry forever.
  bool dropped = false;
  bool delivered = false;
  for (uint64_t attempt = 1; attempt <= 64; ++attempt) {
    (injector.DropResend(7, attempt) ? dropped : delivered) = true;
  }
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(delivered);
}

TEST(FaultProfileTest, KnownProfilesParse) {
  for (const char* name :
       {"none", "drop", "duplicate", "reorder", "crash", "delay", "chaos"}) {
    StatusOr<FaultConfig> config = MakeFaultProfile(name, 1);
    ASSERT_TRUE(config.ok()) << name;
    EXPECT_EQ(config->profile, name);
    EXPECT_EQ(config->enabled, std::string(name) != "none");
  }
  EXPECT_EQ(MakeFaultProfile("bogus", 1).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Engine-level convergence under injected faults.

DatabaseSpec KvSpec() {
  DatabaseSpec spec;
  spec.tables.push_back(
      {"kv", Schema({{"k", DataType::kInt64}, {"v", DataType::kString}})});
  spec.indexes.push_back({"kv_pk", "kv", {0}, true});
  return spec;
}

std::unique_ptr<IsolatedEngine> MakeKvEngine(const FaultConfig& fault) {
  IsolatedEngineConfig config;
  config.name = "faulted";
  config.mode = ReplicationMode::kSyncShip;
  config.fault = fault;
  auto engine = std::make_unique<IsolatedEngine>(config);
  EXPECT_TRUE(engine->Create(KvSpec()).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(Row{int64_t{i}, "seed" + std::to_string(i)});
  }
  EXPECT_TRUE(engine->BulkLoad("kv", rows).ok());
  EXPECT_TRUE(engine->FinishLoad().ok());
  return engine;
}

/// Runs a deterministic history of inserts and key-changing updates,
/// interleaving applier steps, then drains the replica completely.
void RunHistory(IsolatedEngine* engine, uint64_t seed, int txns) {
  Rng rng(seed);
  int64_t next_key = 1000;
  size_t committed_rows = 20;  // the bulk-loaded seed rows
  for (int i = 0; i < txns; ++i) {
    WorkMeter meter;
    TxnOutcome outcome;
    if (rng.Bernoulli(0.5)) {
      const int64_t key = next_key++;
      outcome = engine->ExecuteTransaction(
          [key, i](TxnContext* txn, WorkMeter*) {
            txn->BufferInsert(0,
                             Row{key, "ins" + std::to_string(i)});
            return Status::OK();
          },
          1, static_cast<uint64_t>(i + 1), &meter);
      if (outcome.status.ok()) ++committed_rows;
    } else {
      const Rid rid = static_cast<Rid>(
          rng.Uniform(0, static_cast<int64_t>(committed_rows) - 1));
      const int64_t key = next_key++;  // key-changing update
      outcome = engine->ExecuteTransaction(
          [rid, key, i](TxnContext* txn, WorkMeter* m) -> Status {
            Row row;
            HATTRICK_RETURN_IF_ERROR(txn->Read(0, rid, &row, m));
            txn->BufferUpdate(0, rid, row,
                             Row{key, "upd" + std::to_string(i)});
            return Status::OK();
          },
          1, static_cast<uint64_t>(i + 1), &meter);
    }
    ASSERT_TRUE(outcome.status.ok());
    // Interleaved applier work, including its recovery steps.
    const int pumps = static_cast<int>(rng.Uniform(0, 2));
    for (int p = 0; p < pumps; ++p) {
      WorkMeter applier_meter;
      engine->MaintenanceStep(&applier_meter);
    }
  }
  // Drain through every remaining fault (CatchUp drives resends,
  // backoff, crash recovery and resync internally).
  engine->replica(0)->CatchUp(nullptr);
}

std::vector<Row> LatestContents(Catalog* catalog) {
  std::vector<Row> out;
  RowTable* table = catalog->GetTable("kv");
  for (Rid rid = 0; rid < table->NumSlots(); ++rid) {
    Row row;
    EXPECT_TRUE(table->ReadLatest(rid, &row, nullptr));
    out.push_back(std::move(row));
  }
  return out;
}

constexpr const char* kConvergenceProfiles[] = {"drop", "duplicate",
                                                "reorder", "crash", "chaos"};

TEST(FaultConvergenceTest, FaultedRunMatchesFaultFreeRun) {
  for (const char* profile : kConvergenceProfiles) {
    SCOPED_TRACE(profile);
    StatusOr<FaultConfig> fault = MakeFaultProfile(profile, 11);
    ASSERT_TRUE(fault.ok());

    auto clean = MakeKvEngine(FaultConfig{});
    auto faulted = MakeKvEngine(fault.value());
    RunHistory(clean.get(), /*seed=*/5, /*txns=*/200);
    RunHistory(faulted.get(), /*seed=*/5, /*txns=*/200);

    // The primary never sees faults: identical committed history.
    EXPECT_EQ(LatestContents(clean->primary_catalog()),
              LatestContents(faulted->primary_catalog()));
    // The faulted standby recovered everything: same contents as its
    // own primary and as the fault-free standby, nothing left pending
    // (zero staleness for any query started now).
    EXPECT_EQ(LatestContents(faulted->replica(0)->catalog()),
              LatestContents(faulted->primary_catalog()));
    EXPECT_EQ(LatestContents(faulted->replica(0)->catalog()),
              LatestContents(clean->replica(0)->catalog()));
    EXPECT_EQ(faulted->replica(0)->Lag(), 0u);
    EXPECT_EQ(faulted->replica(0)->applied_lsn(),
              clean->replica(0)->applied_lsn());
    EXPECT_TRUE(faulted->replica(0)->last_error().ok())
        << faulted->replica(0)->last_error().ToString();
    // The standby index carries no stale keys: one entry per live row.
    EXPECT_EQ(faulted->replica(0)->catalog()->GetIndex("kv_pk")->tree->size(),
              LatestContents(faulted->replica(0)->catalog()).size());
  }
}

TEST(FaultConvergenceTest, SameSeedSameRecoveryTrace) {
  StatusOr<FaultConfig> fault = MakeFaultProfile("chaos", 99);
  ASSERT_TRUE(fault.ok());
  auto a = MakeKvEngine(fault.value());
  auto b = MakeKvEngine(fault.value());
  RunHistory(a.get(), /*seed=*/21, /*txns=*/200);
  RunHistory(b.get(), /*seed=*/21, /*txns=*/200);

  EXPECT_EQ(a->stream(0)->injected_drops(), b->stream(0)->injected_drops());
  EXPECT_EQ(a->stream(0)->injected_duplicates(),
            b->stream(0)->injected_duplicates());
  EXPECT_EQ(a->stream(0)->injected_reorders(),
            b->stream(0)->injected_reorders());
  EXPECT_EQ(a->stream(0)->resends_requested(),
            b->stream(0)->resends_requested());
  EXPECT_EQ(a->stream(0)->resends_delivered(),
            b->stream(0)->resends_delivered());
  EXPECT_EQ(a->stream(0)->resends_lost(), b->stream(0)->resends_lost());
  EXPECT_EQ(a->replica(0)->duplicate_skips(),
            b->replica(0)->duplicate_skips());
  EXPECT_EQ(a->replica(0)->resend_requests(),
            b->replica(0)->resend_requests());
  EXPECT_EQ(a->replica(0)->crash_recoveries(),
            b->replica(0)->crash_recoveries());
  EXPECT_EQ(a->replica(0)->applied_lsn(), b->replica(0)->applied_lsn());
  // The schedule actually did something, or this test proves nothing.
  EXPECT_GT(a->stream(0)->injected_drops() +
                a->stream(0)->injected_duplicates() +
                a->stream(0)->injected_reorders() +
                a->replica(0)->crash_recoveries(),
            0u);
}

// Criterion (c): sweep many seeds across every profile; every schedule
// must converge without reaching an error (asserts would abort the
// process outright).
class ChaosSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweepTest, AllProfilesConvergeWithoutAborting) {
  for (const char* profile :
       {"drop", "duplicate", "reorder", "crash", "delay", "chaos"}) {
    SCOPED_TRACE(profile);
    StatusOr<FaultConfig> fault = MakeFaultProfile(profile, GetParam());
    ASSERT_TRUE(fault.ok());
    auto engine = MakeKvEngine(fault.value());
    RunHistory(engine.get(), /*seed=*/GetParam() * 31 + 7, /*txns=*/120);
    EXPECT_TRUE(engine->replica(0)->last_error().ok())
        << engine->replica(0)->last_error().ToString();
    EXPECT_EQ(engine->replica(0)->Lag(), 0u);
    EXPECT_EQ(LatestContents(engine->replica(0)->catalog()),
              LatestContents(engine->primary_catalog()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepTest,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------
// 2PC chaos: coordinator crashes at every phase boundary of a
// cross-shard commit, swept across seeds. Recovery must land every
// shard on the same decision, leave no partial transfer behind, and
// keep the engine usable.

DatabaseSpec TransferSpec() {
  DatabaseSpec spec;
  spec.tables.push_back(
      {"acct", Schema({{"id", DataType::kInt64},
                       {"bal", DataType::kInt64}})});
  spec.indexes.push_back({"acct_pk", "acct", {0}, true});
  return spec;
}

std::unique_ptr<ShardedEngine> MakeTransferEngine(uint32_t shards) {
  ShardedEngineConfig config;
  config.shards = shards;
  config.seed = 42;
  config.plan = {{"acct", TablePlacement{Placement::kHashed, 0}}};
  config.fact_table = "acct";
  config.replicate = false;
  auto engine = std::make_unique<ShardedEngine>(config);
  EXPECT_TRUE(engine->Create(TransferSpec()).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 32; ++i) {
    rows.push_back(Row{int64_t{i}, int64_t{100}});
  }
  EXPECT_TRUE(engine->BulkLoad("acct", rows).ok());
  EXPECT_TRUE(engine->FinishLoad().ok());
  return engine;
}

class TwoPcChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoPcChaosTest, CoordinatorCrashRecoversToOneDecision) {
  const uint64_t seed = GetParam();
  const TwoPcCrash::Point kPoints[] = {
      TwoPcCrash::Point::kMidPrepare,
      TwoPcCrash::Point::kAfterPrepareLog,
      TwoPcCrash::Point::kAfterDecideLog,
      TwoPcCrash::Point::kMidCommit,
  };
  auto engine = MakeTransferEngine(3);
  const IndexInfo* pk = engine->primary_catalog()->GetIndex("acct_pk");
  ASSERT_NE(pk, nullptr);
  Rng rng(seed);

  auto transfer = [pk](int64_t from, int64_t to) {
    return [pk, from, to](TxnContext* txn, WorkMeter* meter) {
      for (const auto& [key, delta] :
           {std::pair<int64_t, int64_t>{from, -1}, {to, 1}}) {
        Rid rid = 0;
        Row row;
        if (txn->IndexLookup(
                *pk, {Value(key)},
                [&](Rid r, const Row& visited) {
                  rid = r;
                  row = visited;
                  return false;
                },
                meter) == 0) {
          return Status::NotFound("missing account");
        }
        Row updated = row;
        updated[1] = Value(row[1].AsInt() + delta);
        txn->BufferUpdate(0, rid, row, std::move(updated));
      }
      return Status::OK();
    };
  };

  auto total_balance = [&]() {
    int64_t total = 0;
    WorkMeter meter;
    const TxnOutcome outcome = engine->ExecuteTransaction(
        [&](TxnContext* txn, WorkMeter* m) {
          for (int64_t key = 0; key < 32; ++key) {
            txn->IndexLookup(
                *pk, {Value(key)},
                [&](Rid, const Row& row) {
                  total += row[1].AsInt();
                  return false;
                },
                m);
          }
          return Status::OK();
        },
        1, 1000000, &meter);
    EXPECT_TRUE(outcome.status.ok());
    return total;
  };

  uint64_t txn_num = 0;
  for (int round = 0; round < 5; ++round) {
    for (const TwoPcCrash::Point point : kPoints) {
      const int64_t from = rng.Uniform(0, 31);
      int64_t to = rng.Uniform(0, 31);
      if (to == from) to = (to + 1) % 32;
      // Interleave healthy traffic so crashed state must coexist with
      // live commits, not just a quiescent engine.
      WorkMeter healthy_meter;
      EXPECT_TRUE(engine
                      ->ExecuteTransaction(transfer(from, to), 1,
                                           ++txn_num, &healthy_meter)
                      .status.ok());

      engine->SetTwoPcCrash(
          {point, static_cast<uint32_t>(rng.Uniform(0, 1))});
      WorkMeter meter;
      const TxnOutcome crashed = engine->ExecuteTransaction(
          transfer(from, to), 1, ++txn_num, &meter);
      if (crashed.status.ok()) {
        // The routed pair happened to land on one shard: no 2PC, no
        // crash point reached. The armed crash must not leak into the
        // next multi-shard commit of *this* round; disarm by recovery.
        engine->SetTwoPcCrash({});
        continue;
      }
      EXPECT_EQ(engine->PendingGlobalTxns(), 1u);
      EXPECT_EQ(engine->RecoverCoordinator(), 1u);
      EXPECT_EQ(engine->PendingGlobalTxns(), 0u);
      // Conservation: whatever the decision, no partial transfer.
      EXPECT_EQ(total_balance(), int64_t{100} * 32);
    }
  }
  // Terminal sanity: the engine still commits cross-shard transfers.
  WorkMeter meter;
  EXPECT_TRUE(engine
                  ->ExecuteTransaction(transfer(0, 17), 1, ++txn_num,
                                       &meter)
                  .status.ok());
  EXPECT_EQ(total_balance(), int64_t{100} * 32);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoPcChaosTest,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Criterion (a): whole-simulation determinism. Two same-seed faulted
// benchmark runs export byte-identical metrics and traces.

TEST(FaultSimDeterminismTest, SameSeedByteIdenticalExports) {
  StatusOr<FaultConfig> fault = MakeFaultProfile("chaos", 13);
  ASSERT_TRUE(fault.ok());

  WorkloadConfig config;
  config.t_clients = 2;
  config.a_clients = 1;
  config.warmup_seconds = 0.05;
  config.measure_seconds = 0.2;
  config.seed = 7;

  auto run_once = [&](std::string* metrics_json, std::string* trace_json) {
    bench::BenchEnv env = bench::MakeEnv(
        bench::EngineKind::kPostgresSR, /*scale_factor=*/0.25,
        PhysicalSchema::kAllIndexes, fault.value());
    obs::Tracer tracer;
    env.driver->SetTracer(&tracer);
    const RunMetrics metrics = env.driver->Run(config);
    env.driver->SetTracer(nullptr);
    *metrics_json = metrics.observed.ToJson();
    *trace_json = tracer.ToChromeJson();
  };

  std::string metrics1, trace1, metrics2, trace2;
  run_once(&metrics1, &trace1);
  run_once(&metrics2, &trace2);
  EXPECT_EQ(metrics1, metrics2);
  EXPECT_EQ(trace1, trace2);
  // The faulted run actually exercised the fault machinery.
  EXPECT_NE(metrics1.find("fault.injected"), std::string::npos);
}

}  // namespace
}  // namespace hattrick
