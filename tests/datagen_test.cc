// Tests for the HATtrick schema and data generator: cardinalities and
// ratios, determinism, value domains required by the SSB queries, and
// calendar correctness.

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "hattrick/datagen.h"
#include "hattrick/hattrick_schema.h"

namespace hattrick {
namespace {

TEST(SchemaSpecTest, TableArities) {
  EXPECT_EQ(LineorderSchema().num_columns(), lo::kNumColumns);
  EXPECT_EQ(CustomerSchema().num_columns(), cust::kNumColumns);
  EXPECT_EQ(SupplierSchema().num_columns(), supp::kNumColumns);
  EXPECT_EQ(PartSchema().num_columns(), part::kNumColumns);
  EXPECT_EQ(DateSchema().num_columns(), date::kNumColumns);
  EXPECT_EQ(HistorySchema().num_columns(), hist::kNumColumns);
  EXPECT_EQ(FreshnessSchema().num_columns(), fresh::kNumColumns);
}

TEST(SchemaSpecTest, HattrickAdditionsPresent) {
  // Paper Figure 4: new attributes and tables added to SSB.
  EXPECT_EQ(CustomerSchema().ColumnIndex("C_PAYMENTCNT"), cust::kPaymentCnt);
  EXPECT_EQ(SupplierSchema().ColumnIndex("S_YTD"), supp::kYtd);
  EXPECT_EQ(PartSchema().ColumnIndex("P_PRICE"), part::kPrice);
  EXPECT_EQ(FreshnessSchema().ColumnIndex("TXNNUM"), fresh::kTxnNum);
}

TEST(SchemaSpecTest, DatabaseSpecTableCountIncludesFreshness) {
  const DatabaseSpec spec =
      MakeDatabaseSpec(PhysicalSchema::kAllIndexes, /*freshness=*/8);
  EXPECT_EQ(spec.tables.size(), 6u + 8u);
  EXPECT_EQ(spec.tables[0].name, kLineorder);
}

TEST(SchemaSpecTest, PhysicalSchemasDifferInIndexes) {
  const auto none = MakeDatabaseSpec(PhysicalSchema::kNoIndexes, 1);
  const auto semi = MakeDatabaseSpec(PhysicalSchema::kSemiIndexes, 1);
  const auto all = MakeDatabaseSpec(PhysicalSchema::kAllIndexes, 1);
  EXPECT_TRUE(none.indexes.empty());
  EXPECT_GT(semi.indexes.size(), 0u);
  EXPECT_GT(all.indexes.size(), semi.indexes.size());
}

TEST(SchemaSpecTest, FreshnessTableNames) {
  EXPECT_EQ(FreshnessTableName(1), "FRESHNESS_1");
  EXPECT_EQ(FreshnessTableName(64), "FRESHNESS_64");
}

TEST(SchemaSpecTest, PhysicalSchemaNames) {
  EXPECT_STREQ(PhysicalSchemaName(PhysicalSchema::kNoIndexes), "none");
  EXPECT_STREQ(PhysicalSchemaName(PhysicalSchema::kSemiIndexes), "semi");
  EXPECT_STREQ(PhysicalSchemaName(PhysicalSchema::kAllIndexes), "all");
}

class DatagenTest : public ::testing::Test {
 protected:
  static DatagenConfig SmallConfig() {
    DatagenConfig config;
    config.scale_factor = 1.0;
    config.lineorders_per_sf = 3000;
    config.seed = 99;
    config.num_freshness_tables = 4;
    return config;
  }
};

TEST_F(DatagenTest, CardinalitiesFollowSsbRatios) {
  DatagenConfig config = SmallConfig();
  const Dataset ds = GenerateDataset(config);
  EXPECT_GE(ds.lineorder.size(), config.NumLineorders());
  EXPECT_LE(ds.lineorder.size(), config.NumLineorders() + 7);
  EXPECT_EQ(ds.customer.size(), config.NumCustomers());
  EXPECT_EQ(ds.supplier.size(), config.NumSuppliers());
  EXPECT_EQ(ds.part.size(), config.NumParts());
  EXPECT_EQ(ds.date.size(), DatagenConfig::NumDates());
}

TEST_F(DatagenTest, ScaleFactorScalesLinearly) {
  DatagenConfig sf1 = SmallConfig();
  DatagenConfig sf10 = SmallConfig();
  sf10.scale_factor = 10.0;
  EXPECT_NEAR(static_cast<double>(sf10.NumLineorders()),
              10.0 * static_cast<double>(sf1.NumLineorders()),
              static_cast<double>(sf1.NumLineorders()) * 0.01);
  EXPECT_GT(sf10.NumCustomers(), sf1.NumCustomers());
  EXPECT_GT(sf10.NumParts(), sf1.NumParts());
}

TEST_F(DatagenTest, DeterministicForSeed) {
  const Dataset a = GenerateDataset(SmallConfig());
  const Dataset b = GenerateDataset(SmallConfig());
  ASSERT_EQ(a.lineorder.size(), b.lineorder.size());
  for (size_t i = 0; i < a.lineorder.size(); i += 97) {
    EXPECT_EQ(a.lineorder[i], b.lineorder[i]) << i;
  }
  DatagenConfig other = SmallConfig();
  other.seed = 100;
  const Dataset c = GenerateDataset(other);
  EXPECT_NE(a.lineorder[0], c.lineorder[0]);
}

TEST_F(DatagenTest, HistoryHasOneRowPerOrder) {
  const Dataset ds = GenerateDataset(SmallConfig());
  std::set<int64_t> orders;
  for (const Row& row : ds.lineorder) {
    orders.insert(row[lo::kOrderKey].AsInt());
  }
  EXPECT_EQ(ds.history.size(), orders.size());
  EXPECT_EQ(ds.max_orderkey, static_cast<int64_t>(orders.size()));
  // History is roughly 25% of lineorder (1-7 lines per order, mean 4).
  const double ratio = static_cast<double>(ds.history.size()) /
                       static_cast<double>(ds.lineorder.size());
  EXPECT_GT(ratio, 0.18);
  EXPECT_LT(ratio, 0.35);
}

TEST_F(DatagenTest, LineorderValueDomains) {
  const Dataset ds = GenerateDataset(SmallConfig());
  for (size_t i = 0; i < ds.lineorder.size(); i += 13) {
    const Row& row = ds.lineorder[i];
    EXPECT_GE(row[lo::kQuantity].AsInt(), 1);
    EXPECT_LE(row[lo::kQuantity].AsInt(), 50);
    EXPECT_GE(row[lo::kDiscount].AsInt(), 0);
    EXPECT_LE(row[lo::kDiscount].AsInt(), 10);
    EXPECT_GE(row[lo::kTax].AsInt(), 0);
    EXPECT_LE(row[lo::kTax].AsInt(), 8);
    EXPECT_GE(row[lo::kOrderDate].AsInt(), 19920101);
    EXPECT_LE(row[lo::kOrderDate].AsInt(), 19981231);
    EXPECT_GE(row[lo::kCustKey].AsInt(), 1);
    EXPECT_LE(row[lo::kCustKey].AsInt(),
              static_cast<int64_t>(ds.customer.size()));
    EXPECT_GE(row[lo::kPartKey].AsInt(), 1);
    EXPECT_LE(row[lo::kPartKey].AsInt(),
              static_cast<int64_t>(ds.part.size()));
    // Revenue = extendedprice * (100 - discount) / 100.
    EXPECT_NEAR(row[lo::kRevenue].AsDouble(),
                row[lo::kExtendedPrice].AsDouble() *
                    (100.0 -
                     static_cast<double>(row[lo::kDiscount].AsInt())) /
                    100.0,
                1e-6);
  }
}

TEST_F(DatagenTest, OrderTotalsConsistent) {
  const Dataset ds = GenerateDataset(SmallConfig());
  std::map<int64_t, double> sums;
  for (const Row& row : ds.lineorder) {
    sums[row[lo::kOrderKey].AsInt()] += row[lo::kExtendedPrice].AsDouble();
  }
  for (const Row& row : ds.lineorder) {
    EXPECT_NEAR(row[lo::kOrdTotalPrice].AsDouble(),
                sums[row[lo::kOrderKey].AsInt()], 1e-6);
  }
}

TEST_F(DatagenTest, CustomerLocalesConsistent) {
  DatagenConfig config = SmallConfig();
  config.scale_factor = 20;  // enough rows to cover nations
  const Dataset ds = GenerateDataset(config);
  std::set<std::string> regions;
  for (const Row& row : ds.customer) {
    regions.insert(row[cust::kRegion].AsString());
    // City = 9-char nation prefix (space padded) + digit.
    const std::string& city = row[cust::kCity].AsString();
    const std::string& nation = row[cust::kNation].AsString();
    ASSERT_EQ(city.size(), 10u);
    std::string prefix = nation.substr(0, 9);
    prefix.resize(9, ' ');
    EXPECT_EQ(city.substr(0, 9), prefix);
  }
  // All five regions appear (required by the Q2/Q3/Q4 filters).
  EXPECT_EQ(regions.size(), 5u);
}

TEST_F(DatagenTest, PartHierarchyFormats) {
  const Dataset ds = GenerateDataset(SmallConfig());
  for (size_t i = 0; i < ds.part.size(); i += 7) {
    const Row& row = ds.part[i];
    const std::string& mfgr = row[part::kMfgr].AsString();
    const std::string& category = row[part::kCategory].AsString();
    const std::string& brand = row[part::kBrand1].AsString();
    EXPECT_EQ(mfgr.substr(0, 5), "MFGR#");
    EXPECT_EQ(category.substr(0, mfgr.size()), mfgr);
    EXPECT_EQ(brand.substr(0, category.size()), category);
    EXPECT_GT(row[part::kPrice].AsDouble(), 0);
  }
}

TEST_F(DatagenTest, NamesMatchKeyDerivation) {
  const Dataset ds = GenerateDataset(SmallConfig());
  EXPECT_EQ(ds.customer[0][cust::kName].AsString(), CustomerName(1));
  EXPECT_EQ(ds.supplier[0][supp::kName].AsString(), SupplierName(1));
  EXPECT_EQ(CustomerName(42), "Customer#000000042");
}

TEST_F(DatagenTest, CalendarIsCorrect) {
  const Dataset ds = GenerateDataset(SmallConfig());
  // 1992-01-01 was a Wednesday.
  EXPECT_EQ(ds.date[0][date::kDateKey].AsInt(), 19920101);
  EXPECT_EQ(ds.date[0][date::kDayOfWeek].AsString(), "Wednesday");
  EXPECT_EQ(ds.date[0][date::kYear].AsInt(), 1992);
  EXPECT_EQ(ds.date[0][date::kYearMonthNum].AsInt(), 199201);
  EXPECT_EQ(ds.date[0][date::kYearMonth].AsString(), "Jan1992");
  // 1992 is a leap year: day index 59 is Feb 29.
  EXPECT_EQ(DateKeyAt(59), 19920229);
  EXPECT_EQ(DateKeyAt(60), 19920301);
  // Datekeys strictly increase.
  for (size_t i = 1; i < ds.date.size(); ++i) {
    EXPECT_LT(ds.date[i - 1][date::kDateKey].AsInt(),
              ds.date[i][date::kDateKey].AsInt());
  }
  // 'Dec1997' exists (needed by Q3.4).
  bool dec1997 = false;
  for (const Row& row : ds.date) {
    if (row[date::kYearMonth].AsString() == "Dec1997") dec1997 = true;
  }
  EXPECT_TRUE(dec1997);
}

TEST_F(DatagenTest, MinimumsEnforcedAtTinyScale) {
  DatagenConfig config;
  config.scale_factor = 0.001;
  config.lineorders_per_sf = 1000;
  EXPECT_GE(config.NumCustomers(), 10u);
  EXPECT_GE(config.NumSuppliers(), 2u);
  EXPECT_GE(config.NumParts(), 20u);
  EXPECT_GE(config.NumLineorders(), 200u);
  const Dataset ds = GenerateDataset(config);
  EXPECT_GE(ds.lineorder.size(), 200u);
}

TEST_F(DatagenTest, RowsValidateAgainstSchemas) {
  const Dataset ds = GenerateDataset(SmallConfig());
  const Schema lo_schema = LineorderSchema();
  for (size_t i = 0; i < ds.lineorder.size(); i += 101) {
    EXPECT_TRUE(lo_schema.ValidateRow(ds.lineorder[i]).ok());
  }
  EXPECT_TRUE(CustomerSchema().ValidateRow(ds.customer[0]).ok());
  EXPECT_TRUE(SupplierSchema().ValidateRow(ds.supplier[0]).ok());
  EXPECT_TRUE(PartSchema().ValidateRow(ds.part[0]).ok());
  EXPECT_TRUE(DateSchema().ValidateRow(ds.date[0]).ok());
  EXPECT_TRUE(HistorySchema().ValidateRow(ds.history[0]).ok());
}

}  // namespace
}  // namespace hattrick
