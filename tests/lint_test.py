#!/usr/bin/env python3
"""Tests for tools/lint/hattrick_lint.py.

Each fixture under tests/lint_fixtures/ mirrors a repo path (the linter's
path-scoped rules resolve against --repo-root, which these tests point at
the fixture directory) and exercises one behavior: every rule fires on
its bad fixture, lint:allow() suppresses per-line, comments and string
literals never fire, allowlisted files stay silent, and the real tree
lints clean.
"""

import os
import subprocess
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.normpath(os.path.join(TESTS_DIR, ".."))
FIXTURES = os.path.join(TESTS_DIR, "lint_fixtures")
LINT = os.path.join(REPO_ROOT, "tools", "lint", "hattrick_lint.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "lint"))
import hattrick_lint  # noqa: E402


def lint_fixture(rel):
    """Lints one fixture file with repo-root remapped to the fixture tree;
    returns the list of (path, line, rule, message) findings."""
    return hattrick_lint.lint_file(
        os.path.join(FIXTURES, rel), repo_root=FIXTURES
    )


def rules_fired(findings):
    return {rule for _, _, rule, _ in findings}


def lines_fired(findings, rule):
    return sorted(line for _, line, r, _ in findings if r == rule)


class RuleFiringTest(unittest.TestCase):
    def test_nondeterministic_time_fires(self):
        findings = lint_fixture("src/engine/time_bad.cc")
        self.assertEqual(rules_fired(findings), {"nondeterministic-time"})
        self.assertEqual(lines_fired(findings, "nondeterministic-time"),
                         [6, 8, 10, 12])

    def test_nondeterministic_random_fires(self):
        findings = lint_fixture("src/engine/random_bad.cc")
        self.assertEqual(rules_fired(findings), {"nondeterministic-random"})
        self.assertEqual(lines_fired(findings, "nondeterministic-random"),
                         [6, 7, 9])

    def test_raw_lock_fires(self):
        findings = lint_fixture("src/engine/raw_lock_bad.cc")
        self.assertEqual(rules_fired(findings), {"raw-lock"})
        self.assertEqual(lines_fired(findings, "raw-lock"),
                         [2, 3, 5, 6, 9, 10, 11])

    def test_unordered_export_fires_on_export_path(self):
        findings = lint_fixture("src/obs/metrics.cc")
        self.assertEqual(rules_fired(findings), {"unordered-export"})
        # The declaration line; the include of <unordered_map> is not an
        # unordered-export finding (the rule targets usage, and headers
        # outside export paths may legitimately include it).
        self.assertIn(7, lines_fired(findings, "unordered-export"))

    def test_unordered_ok_outside_export_path(self):
        # Identical content at a non-export path must be silent.
        findings = hattrick_lint.lint_file(
            os.path.join(FIXTURES, "src/obs/metrics.cc"),
            repo_root=os.path.dirname(FIXTURES),  # breaks the path match
        )
        self.assertNotIn("unordered-export", rules_fired(findings))

    def test_assert_in_replication_fires(self):
        findings = lint_fixture("src/replication/apply_bad.cc")
        self.assertEqual(rules_fired(findings), {"assert-in-replication"})
        self.assertEqual(lines_fired(findings, "assert-in-replication"), [6])

    def test_raw_cas_fires_outside_mvcc(self):
        findings = lint_fixture("src/engine/raw_cas_bad.cc")
        self.assertEqual(rules_fired(findings), {"raw-cas"})
        self.assertEqual(lines_fired(findings, "raw-cas"), [4, 6])

    def test_concrete_engine_include_fires(self):
        findings = lint_fixture("src/hattrick/engine_include_bad.cc")
        self.assertEqual(rules_fired(findings), {"concrete-engine-include"})
        # The factory include (line 3) and the comment mentions (lines 7
        # and 10, both quote and angle form) stay silent; the lint:allow
        # line (line 8) is suppressed; the angle-bracket include (line 9)
        # fires like the quote form.
        self.assertEqual(lines_fired(findings, "concrete-engine-include"),
                         [4, 5, 6, 9])

    def test_concrete_engine_include_silent_in_engine_and_shard(self):
        src = os.path.join(FIXTURES, "src/hattrick/engine_include_bad.cc")
        for rel_dir, name in (("src/engine", "factory_fixture.cc"),
                              ("src/shard", "sharded_fixture.cc")):
            dst_dir = os.path.join(FIXTURES, rel_dir)
            os.makedirs(dst_dir, exist_ok=True)
            dst = os.path.join(dst_dir, name)
            try:
                with open(src) as f:
                    content = f.read()
                with open(dst, "w") as f:
                    f.write(content)
                findings = lint_fixture(os.path.join(rel_dir, name))
                self.assertNotIn("concrete-engine-include",
                                 rules_fired(findings))
            finally:
                os.remove(dst)

    def test_raw_cas_silent_inside_mvcc(self):
        # Identical CAS content under src/txn/mvcc* is the audited home
        # of the lock-free helpers and must stay silent.
        src = os.path.join(FIXTURES, "src/engine/raw_cas_bad.cc")
        dst_dir = os.path.join(FIXTURES, "src/txn")
        os.makedirs(dst_dir, exist_ok=True)
        dst = os.path.join(dst_dir, "mvcc.h")
        try:
            with open(src) as f:
                content = f.read()
            with open(dst, "w") as f:
                f.write(content)
            findings = lint_fixture("src/txn/mvcc.h")
            self.assertNotIn("raw-cas", rules_fired(findings))
        finally:
            os.remove(dst)


class SuppressionTest(unittest.TestCase):
    def test_lint_allow_suppresses_per_line(self):
        findings = lint_fixture("src/engine/allow_escape.cc")
        # Only the un-allowed line fires.
        self.assertEqual(
            [(line, rule) for _, line, rule, _ in findings],
            [(8, "nondeterministic-random")],
        )

    def test_allow_without_reason_fires(self):
        findings = lint_fixture("src/engine/allow_no_reason.cc")
        # Line 7 has a justification and stays silent; line 8 has none;
        # line 9 tries to allow the rule itself, which is not
        # suppressible — write the reason instead.
        self.assertEqual(
            [(line, rule) for _, line, rule, _ in findings],
            [(8, "allow-without-reason"), (9, "allow-without-reason")],
        )

    def test_comments_and_strings_never_fire(self):
        self.assertEqual(lint_fixture("src/engine/comments_ok.cc"), [])

    def test_allowlisted_file_is_silent(self):
        self.assertEqual(lint_fixture("src/common/clock.h"), [])


class CliTest(unittest.TestCase):
    def run_lint(self, args):
        return subprocess.run(
            [sys.executable, LINT] + args,
            capture_output=True, text=True, check=False,
        )

    def test_tree_is_clean(self):
        proc = self.run_lint([])
        self.assertEqual(proc.returncode, 0,
                         f"tree has lint findings:\n{proc.stdout}")
        self.assertEqual(proc.stdout, "")

    def test_bad_fixture_exits_nonzero(self):
        proc = self.run_lint([
            "--repo-root", FIXTURES,
            os.path.join(FIXTURES, "src/engine/raw_lock_bad.cc"),
        ])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[raw-lock]", proc.stdout)

    def test_list_rules(self):
        proc = self.run_lint(["--list-rules"])
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(
            proc.stdout.split(),
            ["nondeterministic-time", "nondeterministic-random", "raw-lock",
             "unordered-export", "assert-in-replication", "raw-cas",
             "concrete-engine-include", "allow-without-reason"],
        )


if __name__ == "__main__":
    unittest.main()
