// End-to-end integration tests: a miniature HATtrick benchmark run per
// engine through the full stack (datagen -> load -> saturation method ->
// grid graph -> frontier -> freshness), plus a wall-clock ThreadedDriver
// run exercising the engines under real concurrency.

#include <memory>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"
#include "hattrick/frontier.h"

namespace hattrick {
namespace {

DatagenConfig MiniConfig() {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = 1200;
  config.seed = 21;
  config.num_freshness_tables = 16;
  return config;
}

FrontierOptions MiniOptions() {
  FrontierOptions options;
  options.lines = 3;
  options.points_per_line = 3;
  options.max_clients = 16;
  return options;
}

WorkloadConfig MiniBase() {
  WorkloadConfig config;
  config.warmup_seconds = 0.05;
  config.measure_seconds = 0.3;
  config.seed = 17;
  return config;
}

TEST(IntegrationTest, SharedEngineFullPipeline) {
  const Dataset dataset = GenerateDataset(MiniConfig());
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  SimDriver driver(&engine, &context, SharedSimSetup());
  const GridGraph grid =
      BuildGridGraph(MakeRunner(&driver, MiniBase()), MiniOptions());

  EXPECT_GT(grid.xt, 0);
  EXPECT_GT(grid.xa, 0);
  EXPECT_GE(grid.tau_max, 1);
  EXPECT_GE(grid.alpha_max, 1);
  EXPECT_FALSE(grid.frontier.empty());
  // Shared design: never classified as isolation.
  EXPECT_NE(ClassifyFrontier(grid), FrontierPattern::kIsolation);
}

TEST(IntegrationTest, IsolatedEngineFrontierAboveShared) {
  const Dataset dataset = GenerateDataset(MiniConfig());

  SharedEngine shared;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &shared).ok());
  WorkloadContext shared_context(dataset);
  SimDriver shared_driver(&shared, &shared_context, SharedSimSetup());
  const GridGraph shared_grid =
      BuildGridGraph(MakeRunner(&shared_driver, MiniBase()), MiniOptions());

  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine isolated(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &isolated).ok());
  WorkloadContext isolated_context(dataset);
  SimDriver isolated_driver(&isolated, &isolated_context,
                            IsolatedSimSetup());
  const GridGraph isolated_grid = BuildGridGraph(
      MakeRunner(&isolated_driver, MiniBase()), MiniOptions());

  // The isolated design achieves better coverage of its bounding box
  // (performance isolation, Section 6.3).
  EXPECT_GT(FrontierCoverage(isolated_grid),
            FrontierCoverage(shared_grid));
}

TEST(IntegrationTest, HybridEngineMiniRun) {
  const Dataset dataset = GenerateDataset(MiniConfig());
  HybridEngine engine(SystemXConfig());
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  SimDriver driver(&engine, &context, HybridSimSetup());
  WorkloadConfig config = MiniBase();
  config.t_clients = 4;
  config.a_clients = 2;
  const RunMetrics metrics = driver.Run(config);
  EXPECT_GT(metrics.committed, 0u);
  EXPECT_GT(metrics.queries, 0u);
  EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
}

TEST(IntegrationTest, ThreadedDriverSharedEngine) {
  const Dataset dataset = GenerateDataset(MiniConfig());
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  ThreadedDriver driver(&engine, &context);
  WorkloadConfig config;
  config.t_clients = 2;
  config.a_clients = 1;
  config.warmup_seconds = 0.05;
  config.measure_seconds = 0.4;
  const RunMetrics metrics = driver.Run(config);
  EXPECT_GT(metrics.committed, 0u);
  EXPECT_GT(metrics.queries, 0u);
  EXPECT_EQ(metrics.failed, 0u);
  // Single up-to-date copy: wall-clock freshness is identically zero.
  if (!metrics.freshness.empty()) {
    EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
  }
}

TEST(IntegrationTest, ThreadedDriverIsolatedEngineRemoteApply) {
  const Dataset dataset = GenerateDataset(MiniConfig());
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kRemoteApply;
  IsolatedEngine engine(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  ThreadedDriver driver(&engine, &context);
  WorkloadConfig run;
  run.t_clients = 2;
  run.a_clients = 1;
  run.warmup_seconds = 0.05;
  run.measure_seconds = 0.4;
  const RunMetrics metrics = driver.Run(run);
  EXPECT_GT(metrics.committed, 0u);
  // Remote-apply commits wait for replay: analytics always fresh.
  if (!metrics.freshness.empty()) {
    EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
  }
}

TEST(IntegrationTest, ThreadedDriverHybridEngine) {
  const Dataset dataset = GenerateDataset(MiniConfig());
  HybridEngine engine(TidbConfig());
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  ThreadedDriver driver(&engine, &context);
  WorkloadConfig run;
  // Two A-threads: concurrent BeginAnalytics exercises merge ordering
  // (regression coverage for out-of-order delta application).
  run.t_clients = 2;
  run.a_clients = 2;
  run.warmup_seconds = 0.05;
  run.measure_seconds = 0.4;
  const RunMetrics metrics = driver.Run(run);
  EXPECT_GT(metrics.committed, 0u);
  EXPECT_GT(metrics.queries, 0u);
  if (!metrics.freshness.empty()) {
    EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
  }
}

TEST(IntegrationTest, RatioFreshnessMeasurement) {
  const Dataset dataset = GenerateDataset(MiniConfig());
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine engine(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  SimDriver driver(&engine, &context, IsolatedSimSetup());
  PointRunner runner = MakeRunner(&driver, MiniBase());
  // Minimal sanity of the three ratio points the paper annotates.
  const OperatingPoint heavy_t = runner(8, 2);
  const OperatingPoint heavy_a = runner(2, 8);
  EXPECT_GT(heavy_t.tps, heavy_a.tps);
  EXPECT_GE(heavy_t.freshness_p99, 0.0);
}

}  // namespace
}  // namespace hattrick
