#!/usr/bin/env python3
"""Self-test for scripts/bench_compare.py (the CI perf-regression gate).

Builds small synthetic BENCH snapshots and checks the exit-code contract:
0 when current is within tolerance of the baseline, 1 on an injected
throughput / latency / row-count / work regression, 2 on a malformed
snapshot. A digest-only change must warn, not fail.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMPARE = os.path.join(REPO_ROOT, "scripts", "bench_compare.py")


def baseline_doc():
    return {
        "bench_format": 1,
        "name": "selftest",
        "config": {"sf": 1, "seed": 7},
        "systems": [
            {
                "system": "shared",
                "engine": "postgres",
                "tps": 1000.0,
                "qps": 20.0,
                "freshness_p99_s": 0.010,
                "txn_latency_s": {
                    "all": {"p50": 0.001, "p95": 0.002, "p99": 0.004},
                },
                "query_latency_s": {
                    "all": {"p50": 0.030, "p95": 0.060, "p99": 0.080},
                },
                "query_profiles": [
                    {
                        "query": "Q1.1",
                        "executions": 8,
                        "rows_per_exec": 1,
                        "work_per_exec": 6208,
                        "digest": "00000000deadbeef",
                    },
                ],
                "points": [
                    {"t": 2, "a": 1, "tps": 600.0, "qps": 10.0,
                     "txn_p99_s": 0.003, "query_p99_s": 0.050},
                ],
            },
        ],
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, base_doc, curr_doc, *extra):
        base = self.write("base.json", base_doc)
        curr = self.write("curr.json", curr_doc)
        return subprocess.run(
            [sys.executable, COMPARE, base, curr, *extra],
            capture_output=True, text=True)

    def test_identical_snapshots_pass(self):
        result = self.run_compare(baseline_doc(), baseline_doc())
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("ok", result.stdout)

    def test_small_drift_within_tolerance_passes(self):
        curr = baseline_doc()
        curr["systems"][0]["tps"] = 950.0    # -5%, tol is 15%
        curr["systems"][0]["query_latency_s"]["all"]["p99"] = 0.090  # +12.5%
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_throughput_regression_fails(self):
        curr = baseline_doc()
        curr["systems"][0]["tps"] = 500.0  # -50% drop
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("shared.tps", result.stdout)

    def test_latency_regression_fails(self):
        curr = baseline_doc()
        curr["systems"][0]["query_latency_s"]["all"]["p99"] = 0.200  # +150%
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("shared.query_p99", result.stdout)

    def test_row_count_change_is_a_correctness_failure(self):
        curr = baseline_doc()
        curr["systems"][0]["query_profiles"][0]["rows_per_exec"] = 2
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("correctness", result.stdout)

    def test_work_growth_fails_but_digest_change_only_warns(self):
        curr = copy.deepcopy(baseline_doc())
        curr["systems"][0]["query_profiles"][0]["work_per_exec"] = 7000
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("work_per_exec", result.stdout)

        curr = copy.deepcopy(baseline_doc())
        curr["systems"][0]["query_profiles"][0]["digest"] = "1111111111111111"
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("WARNING", result.stdout)
        self.assertIn("digest", result.stdout)

    def test_missing_system_and_missing_profile_fail(self):
        curr = baseline_doc()
        curr["systems"] = []
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("missing", result.stdout)

        curr = baseline_doc()
        curr["systems"][0]["query_profiles"] = []
        result = self.run_compare(baseline_doc(), curr)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_unsupported_format_is_a_usage_error(self):
        bad = baseline_doc()
        bad["bench_format"] = 99
        result = self.run_compare(bad, baseline_doc())
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)

    def test_committed_smoke_baseline_passes_against_itself(self):
        # The checked-in baseline must be valid input for the gate.
        path = os.path.join(REPO_ROOT, "bench", "BENCH_smoke.json")
        self.assertTrue(os.path.exists(path), path)
        result = subprocess.run(
            [sys.executable, COMPARE, path, path],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
