// Differential + randomized visibility suite for the bitmap-versioned
// column store (ISSUE tentpole proof). An eager-merge hybrid engine and
// a bitmap-mode hybrid engine are fed identical committed transaction
// schedules; every analytical query must return bit-identical rows no
// matter where folds land. Also: snapshot stability (a session opened at
// CSN c never observes later commits), the snapshot-vs-GC regression
// (folds wait out pinned sessions and never perturb their results), and
// work-meter parity (row vs batch vs dop=4 over a live delta; eager vs
// bitmap once both are fully folded).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/work_meter.h"
#include "engine/hybrid_engine.h"
#include "exec/operator.h"
#include "hattrick/datagen.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"

namespace hattrick {
namespace {

/// Small dataset: full SSB shape but quick enough for 21 seeds.
DatagenConfig TinyConfig(uint64_t seed) {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = 1200;
  config.seed = seed;
  config.num_freshness_tables = 4;
  return config;
}

/// Runs `n` random HATtrick transactions; the schedule is a pure
/// function of `seed`, so calling this twice (once per engine) commits
/// identical histories.
void RunSchedule(HtapEngine* engine, WorkloadContext* context, uint64_t seed,
                 int n) {
  const EngineHandles handles =
      EngineHandles::Resolve(*engine->primary_catalog(), 4);
  Rng rng(seed);
  uint64_t txn_num = 0;
  for (int i = 0; i < n; ++i) {
    const TxnParams params = GenerateTxnParams(context, &rng);
    ++txn_num;
    WorkMeter meter;
    const TxnOutcome outcome = engine->ExecuteTransaction(
        MakeTxnBody(params, handles, /*client=*/1 + (i % 4), txn_num),
        1 + (i % 4), txn_num, &meter);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
}

std::vector<Row> QueryRows(int qid, const DataSource& source,
                           WorkMeter* meter = nullptr) {
  WorkMeter local;
  ExecContext ctx{meter != nullptr ? meter : &local};
  OperatorPtr plan = BuildQueryPlan(qid, source);
  return Collect(plan.get(), &ctx);
}

void ExpectSameMeter(const WorkMeter& got, const WorkMeter& want) {
  EXPECT_EQ(got.rows_read, want.rows_read);
  EXPECT_EQ(got.column_values, want.column_values);
  EXPECT_EQ(got.output_rows, want.output_rows);
  EXPECT_EQ(got.hash_probes, want.hash_probes);
  EXPECT_EQ(got.version_hops, want.version_hops);
  EXPECT_EQ(got.merged_rows, want.merged_rows);
  EXPECT_EQ(got.Total(), want.Total());
}

// ---------------------------------------------------------------------------
// The differential suite: eager vs bitmap, 21 seeds x 13 queries.
// ---------------------------------------------------------------------------

class VisibilityDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(VisibilityDifferentialTest, EagerAndBitmapBitIdentical) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31);
  const Dataset dataset = GenerateDataset(TinyConfig(seed));

  HybridEngineConfig eager_config;
  eager_config.merge_mode = MergeMode::kEager;
  HybridEngine eager{eager_config};
  HybridEngineConfig bitmap_config;
  bitmap_config.merge_mode = MergeMode::kBitmap;
  // Randomize the fold trigger so folds land at different delta depths
  // across seeds (including never, for small rounds).
  bitmap_config.fold_watermark =
      static_cast<size_t>(rng.Uniform(8, 512));
  HybridEngine bitmap{bitmap_config};
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &eager).ok());
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &bitmap).ok());
  WorkloadContext eager_context(dataset);
  WorkloadContext bitmap_context(dataset);

  for (int round = 0; round < 3; ++round) {
    // Identical committed schedules on both engines.
    const int n = static_cast<int>(rng.Uniform(20, 80));
    const uint64_t schedule_seed = seed * 7919 + static_cast<uint64_t>(round);
    RunSchedule(&eager, &eager_context, schedule_seed, n);
    RunSchedule(&bitmap, &bitmap_context, schedule_seed, n);

    // A random fold point: sometimes drain via the background-merge
    // entry point, sometimes force a full fold, sometimes leave every
    // version in the delta. Results must not depend on the choice.
    WorkMeter maintenance;
    if (rng.Bernoulli(0.3)) {
      bitmap.FoldAll(&maintenance);
    } else if (rng.Bernoulli(0.5)) {
      while (bitmap.MaintenanceStep(&maintenance)) {
      }
    }

    WorkMeter meter;
    AnalyticsSession eager_session = eager.BeginAnalytics(&meter);
    AnalyticsSession bitmap_session = bitmap.BeginAnalytics(&meter);
    for (int qid = 0; qid < kNumQueries; ++qid) {
      EXPECT_EQ(QueryRows(qid, *eager_session.source),
                QueryRows(qid, *bitmap_session.source))
          << QueryName(qid) << " seed " << seed << " round " << round;
    }
  }

  // Fully folded, the two modes are *the same physical layout*, so the
  // metered scan work must match exactly, not just the results.
  WorkMeter fold_meter;
  eager.FoldAll(&fold_meter);
  bitmap.FoldAll(&fold_meter);
  EXPECT_EQ(bitmap.PendingDelta(), 0u);
  WorkMeter meter;
  AnalyticsSession eager_session = eager.BeginAnalytics(&meter);
  AnalyticsSession bitmap_session = bitmap.BeginAnalytics(&meter);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    WorkMeter eager_q;
    WorkMeter bitmap_q;
    EXPECT_EQ(QueryRows(qid, *eager_session.source, &eager_q),
              QueryRows(qid, *bitmap_session.source, &bitmap_q))
        << QueryName(qid);
    ExpectSameMeter(bitmap_q, eager_q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisibilityDifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{22}));

// ---------------------------------------------------------------------------
// Snapshot stability and the snapshot-vs-GC regression.
// ---------------------------------------------------------------------------

TEST(SnapshotStabilityTest, SessionNeverObservesLaterCommits) {
  // A bitmap-mode session opened at CSN c answers from a frozen
  // ColumnDeltaSnapshot: commits with CSN > c — applied while the
  // session is live — must not change any query's result.
  const Dataset dataset = GenerateDataset(TinyConfig(42));
  HybridEngineConfig config;
  config.merge_mode = MergeMode::kBitmap;
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunSchedule(&engine, &context, 4242, 120);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  std::vector<std::vector<Row>> before;
  before.reserve(kNumQueries);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    before.push_back(QueryRows(qid, *session.source));
  }

  // Commit past the snapshot (no folds: the session pin would block
  // them; version appends never need the latch).
  RunSchedule(&engine, &context, 4343, 130);
  EXPECT_GT(engine.PendingDelta(), 0u);

  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_EQ(QueryRows(qid, *session.source), before[qid])
        << QueryName(qid) << " changed under the snapshot";
  }

  // A fresh session does see the later commits (freshness tables moved).
  session.guard.reset();
  AnalyticsSession fresh = engine.BeginAnalytics(&meter);
  ScanSpec spec;
  spec.table = FreshnessTableName(1);
  spec.projection = {fresh::kTxnNum};
  WorkMeter fresh_meter;
  ExecContext ctx{&fresh_meter};
  OperatorPtr plan = fresh.source->Scan(spec);
  const std::vector<Row> rows = Collect(plan.get(), &ctx);
  ASSERT_EQ(rows.size(), 1u);
  // RunSchedule round-robins clients over a global txn counter: client
  // 1's newest txn_num in the 130-txn tail schedule is 129 (i = 128).
  EXPECT_EQ(rows.at(0).at(0).AsInt(), 129);
}

TEST(SnapshotGcRegressionTest, FoldWaitsForPinnedSessionsAndPreservesResults) {
  // The GC race the pin contract exists to prevent: folding versions
  // into the base reallocates column vectors, so a fold that ran under a
  // live session would tear its scans. The session pin must block the
  // fold until the last reader is gone — and the fold, once through,
  // must not change what any new session observes.
  const Dataset dataset = GenerateDataset(TinyConfig(77));
  HybridEngineConfig config;
  config.merge_mode = MergeMode::kBitmap;
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunSchedule(&engine, &context, 7777, 200);
  ASSERT_GT(engine.PendingDelta(), 0u);

  WorkMeter meter;
  std::vector<std::vector<Row>> before;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    before.push_back(QueryRows(qid, *session.source));
  }

  std::atomic<bool> folded{false};
  std::thread folder([&] {
    WorkMeter m;
    engine.FoldAll(&m);  // blocks on the session pin
    folded.store(true, std::memory_order_release);
  });
  // However long the folder has had, it cannot have drained the delta
  // while our pin is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(engine.PendingDelta(), 0u);
  EXPECT_FALSE(folded.load(std::memory_order_acquire));
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_EQ(QueryRows(qid, *session.source), before[qid])
        << QueryName(qid) << " perturbed by a waiting fold";
  }

  session.guard.reset();  // release the pin; the fold proceeds
  folder.join();
  EXPECT_EQ(engine.PendingDelta(), 0u);

  // Same data, now in the base: every query answers identically.
  AnalyticsSession after = engine.BeginAnalytics(&meter);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_EQ(QueryRows(qid, *after.source), before[qid])
        << QueryName(qid) << " changed across the fold";
  }
}

// ---------------------------------------------------------------------------
// Work-meter parity over a live delta: row oracle vs batch vs dop=4.
// ---------------------------------------------------------------------------

TEST(MeterParityTest, BitmapRowBatchDopAgreeOverLiveDelta) {
  const Dataset dataset = GenerateDataset(TinyConfig(99));
  HybridEngineConfig config;
  config.merge_mode = MergeMode::kBitmap;
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunSchedule(&engine, &context, 9999, 250);
  ASSERT_GT(engine.PendingDelta(), 0u);  // the delta lanes are exercised

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    WorkMeter row_meter;
    ExecContext row_ctx{&row_meter};
    row_ctx.vectorized = false;
    OperatorPtr row_plan = BuildQueryPlan(qid, *session.source);
    const std::vector<Row> row_rows = Collect(row_plan.get(), &row_ctx);

    WorkMeter batch_meter;
    ExecContext batch_ctx{&batch_meter};
    batch_ctx.vectorized = true;
    OperatorPtr batch_plan = BuildQueryPlan(qid, *session.source);
    const std::vector<Row> batch_rows = Collect(batch_plan.get(), &batch_ctx);

    EXPECT_EQ(batch_rows, row_rows) << QueryName(qid);
    ExpectSameMeter(batch_meter, row_meter);

    // dop=4 static morsels: identical rows. Metered totals are only
    // defined per plan shape — parallel plans replicate hash-build
    // sides per worker — so the parity assertion stops at the results.
    WorkMeter par_meter;
    ExecContext par_ctx{&par_meter};
    par_ctx.dop = 4;
    par_ctx.session_pin = session.guard;
    OperatorPtr par_plan = BuildParallelQueryPlan(qid, *session.source,
                                                 /*dop=*/4,
                                                 /*dynamic_morsels=*/false);
    const std::vector<Row> par_rows = Collect(par_plan.get(), &par_ctx);
    EXPECT_EQ(par_rows, row_rows) << QueryName(qid) << " dop=4";
  }
}

}  // namespace
}  // namespace hattrick
