// Tests for the transaction manager: atomic commit, read-your-own-writes,
// isolation-level semantics (including classic anomalies: lost update,
// write skew), index maintenance, WAL emission and encoding.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "txn/timestamp.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace hattrick {
namespace {

Schema AccountSchema() {
  return Schema({{"id", DataType::kInt64}, {"balance", DataType::kInt64}});
}

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = catalog_.CreateTable("accounts", AccountSchema());
    index_ = catalog_.CreateIndex("accounts_pk", "accounts", {0}, true);
    tm_ = std::make_unique<TxnManager>(&catalog_, &oracle_, nullptr);
    // Seed two accounts at load time.
    for (int64_t id : {1, 2}) {
      const Rid rid = table_->Insert(Row{id, int64_t{100}}, 1, nullptr);
      index_->tree->Insert(index_->KeyFor(Row{id, int64_t{100}}, rid), rid,
                           nullptr);
    }
    oracle_.ResetTo(1);
  }

  Row ReadCommitted(Rid rid) {
    Row row;
    EXPECT_TRUE(table_->ReadLatest(rid, &row, nullptr));
    return row;
  }

  Catalog catalog_;
  RowTable* table_ = nullptr;
  IndexInfo* index_ = nullptr;
  TimestampOracle oracle_;
  std::unique_ptr<TxnManager> tm_;
};

TEST_F(TxnTest, ReadOnlyCommitConsumesNoTimestamp) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  const Ts before = oracle_.last_committed();
  StatusOr<CommitResult> result = tm_->Commit(&txn, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lsn, 0u);
  EXPECT_EQ(oracle_.last_committed(), before);
}

// Regression: next_lsn_ used to be a plain uint64_t that Commit advanced
// under the commit latch while freshness probes read it from other
// threads with no synchronization at all — a data race surfaced by the
// thread-safety annotation pass. It is atomic now; this test drives a
// committer and a concurrent probe and checks the probe only ever sees
// monotonically non-decreasing values (TSan flags the race on
// regression).
TEST_F(TxnTest, NextLsnReadableWhileCommitting) {
  constexpr int kCommits = 200;
  std::atomic<bool> done{false};
  std::thread prober([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t lsn = tm_->next_lsn();
      EXPECT_GE(lsn, last);
      last = lsn;
    }
  });
  for (int i = 0; i < kCommits; ++i) {
    Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
    tm_->BufferInsert(&txn, 0, Row{int64_t{100 + i}, int64_t{1}});
    ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  }
  done.store(true, std::memory_order_release);
  prober.join();
  EXPECT_EQ(tm_->next_lsn(), 1u + kCommits);
}

TEST_F(TxnTest, InsertVisibleAfterCommitOnly) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{3}, int64_t{50}});
  EXPECT_EQ(table_->NumSlots(), 2u);  // nothing installed yet
  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  EXPECT_EQ(table_->NumSlots(), 3u);
  EXPECT_EQ(ReadCommitted(2)[1].AsInt(), 50);
}

TEST_F(TxnTest, AbortDiscardsEverything) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{3}, int64_t{50}});
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&txn, 0, 0, row, Row{int64_t{1}, int64_t{0}});
  tm_->Abort(&txn);
  EXPECT_EQ(table_->NumSlots(), 2u);
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 100);
}

TEST_F(TxnTest, ReadYourOwnWrites) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&txn, 0, 0, row, Row{int64_t{1}, int64_t{77}});
  Row reread;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &reread, nullptr).ok());
  EXPECT_EQ(reread[1].AsInt(), 77);
}

TEST_F(TxnTest, SnapshotReadsIgnoreLaterCommits) {
  Transaction reader = tm_->Begin(IsolationLevel::kSnapshot);

  Transaction writer = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&writer, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&writer, 0, 0, row, Row{int64_t{1}, int64_t{55}});
  ASSERT_TRUE(tm_->Commit(&writer, nullptr).ok());

  Row seen;
  ASSERT_TRUE(tm_->Read(&reader, 0, 0, &seen, nullptr).ok());
  EXPECT_EQ(seen[1].AsInt(), 100);  // pre-commit snapshot
}

TEST_F(TxnTest, ReadCommittedSeesLatest) {
  Transaction reader = tm_->Begin(IsolationLevel::kReadCommitted);

  Transaction writer = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&writer, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&writer, 0, 0, row, Row{int64_t{1}, int64_t{55}});
  ASSERT_TRUE(tm_->Commit(&writer, nullptr).ok());

  Row seen;
  ASSERT_TRUE(tm_->Read(&reader, 0, 0, &seen, nullptr).ok());
  EXPECT_EQ(seen[1].AsInt(), 55);
}

TEST_F(TxnTest, LostUpdatePreventedUnderSnapshotIsolation) {
  // Two concurrent increments of the same balance: first-updater-wins
  // forces the second to abort instead of silently losing an update.
  Transaction t1 = tm_->Begin(IsolationLevel::kSnapshot);
  Transaction t2 = tm_->Begin(IsolationLevel::kSnapshot);
  Row r1;
  Row r2;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &r1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &r2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, r1, Row{int64_t{1}, int64_t{110}});
  tm_->BufferUpdate(&t2, 0, 0, r2, Row{int64_t{1}, int64_t{120}});
  ASSERT_TRUE(tm_->Commit(&t1, nullptr).ok());
  WorkMeter meter;
  StatusOr<CommitResult> second = tm_->Commit(&t2, &meter);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
  EXPECT_EQ(meter.conflict_waits, 1u);
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 110);
}

TEST_F(TxnTest, LostUpdatePreventedUnderReadCommitted) {
  // Regression for a real bug: read committed used to skip write-write
  // validation entirely, so two overlapping read-modify-write Payments
  // would both commit and one increment silently vanished (final
  // balance 120 instead of 110+10). First-updater-wins now applies at
  // every isolation level: the second committer aborts and must retry
  // against the new base.
  Transaction t1 = tm_->Begin(IsolationLevel::kReadCommitted);
  Transaction t2 = tm_->Begin(IsolationLevel::kReadCommitted);
  Row r1;
  Row r2;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &r1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &r2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, r1, Row{int64_t{1}, int64_t{110}});
  tm_->BufferUpdate(&t2, 0, 0, r2, Row{int64_t{1}, int64_t{120}});
  ASSERT_TRUE(tm_->Commit(&t1, nullptr).ok());
  StatusOr<CommitResult> second = tm_->Commit(&t2, nullptr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 110);

  // The retry (fresh read of the committed 110) succeeds and keeps both
  // increments, as RunWithRetries would.
  Transaction retry = tm_->Begin(IsolationLevel::kReadCommitted);
  Row r3;
  ASSERT_TRUE(tm_->Read(&retry, 0, 0, &r3, nullptr).ok());
  EXPECT_EQ(r3[1].AsInt(), 110);
  tm_->BufferUpdate(&retry, 0, 0, r3, Row{int64_t{1}, int64_t{130}});
  ASSERT_TRUE(tm_->Commit(&retry, nullptr).ok());
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 130);
}

TEST_F(TxnTest, OverlappingDeltasCommitWithoutConflict) {
  // The same overlap expressed as commutative deltas: both commit, both
  // increments survive — the tentpole behavior that flattens the
  // hot-supplier knee.
  Transaction t1 = tm_->Begin(IsolationLevel::kReadCommitted);
  Transaction t2 = tm_->Begin(IsolationLevel::kReadCommitted);
  Row r1;
  Row r2;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &r1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &r2, nullptr).ok());
  tm_->BufferDelta(&t1, 0, 0, 1, Value(int64_t{10}));
  tm_->BufferDelta(&t2, 0, 0, 1, Value(int64_t{20}));
  ASSERT_TRUE(tm_->Commit(&t1, nullptr).ok());
  ASSERT_TRUE(tm_->Commit(&t2, nullptr).ok());
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 130);
}

TEST_F(TxnTest, DeltaFoldsIntoOwnReads) {
  // RYOW over buffered deltas: a read after BufferDelta sees the
  // incremented value without any version being installed yet.
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferDelta(&txn, 0, 0, 1, Value(int64_t{5}));
  tm_->BufferDelta(&txn, 0, 0, 1, Value(int64_t{7}));
  Row reread;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &reread, nullptr).ok());
  EXPECT_EQ(reread[1].AsInt(), 112);
  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 112);
}

TEST_F(TxnTest, DeltaBelowSnapshotInvisibleAboveVisible) {
  // A delta committed after a snapshot was taken stays invisible to that
  // snapshot but visible to later ones.
  Transaction reader = tm_->Begin(IsolationLevel::kSnapshot);
  Transaction writer = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferDelta(&writer, 0, 0, 1, Value(int64_t{11}));
  ASSERT_TRUE(tm_->Commit(&writer, nullptr).ok());
  Row old_view;
  ASSERT_TRUE(tm_->Read(&reader, 0, 0, &old_view, nullptr).ok());
  EXPECT_EQ(old_view[1].AsInt(), 100);
  Transaction fresh = tm_->Begin(IsolationLevel::kSnapshot);
  Row new_view;
  ASSERT_TRUE(tm_->Read(&fresh, 0, 0, &new_view, nullptr).ok());
  EXPECT_EQ(new_view[1].AsInt(), 111);
}

TEST_F(TxnTest, DeltaConflictsWithPendingFullUpdate) {
  // A full update committing concurrently must still exclude deltas in
  // flight the other way: delta-vs-committed-full is fine (the fold
  // layers the delta on top), but the full writer that committed AFTER
  // the delta's read sees first-updater-wins as usual.
  Transaction full = tm_->Begin(IsolationLevel::kSnapshot);
  Row r;
  ASSERT_TRUE(tm_->Read(&full, 0, 0, &r, nullptr).ok());
  tm_->BufferUpdate(&full, 0, 0, r, Row{int64_t{1}, int64_t{500}});

  Transaction delta = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferDelta(&delta, 0, 0, 1, Value(int64_t{3}));
  ASSERT_TRUE(tm_->Commit(&delta, nullptr).ok());

  // The full update's base is now stale: aborts rather than losing the
  // delta increment.
  StatusOr<CommitResult> second = tm_->Commit(&full, nullptr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 103);
}

TEST_F(TxnTest, ProvisionalInsertVisibleToOwnReads) {
  // RYOW over buffered inserts: BufferInsert returns a provisional rid
  // that Read resolves from the write buffer until commit assigns the
  // real slot.
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  const Rid prid = tm_->BufferInsert(&txn, 0, Row{int64_t{3}, int64_t{42}});
  EXPECT_GE(prid, kProvisionalRidBase);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, prid, &row, nullptr).ok());
  EXPECT_EQ(row[1].AsInt(), 42);

  // Updates and deltas against the provisional rid collapse into the
  // buffered insert.
  tm_->BufferDelta(&txn, 0, prid, 1, Value(int64_t{8}));
  ASSERT_TRUE(tm_->Read(&txn, 0, prid, &row, nullptr).ok());
  EXPECT_EQ(row[1].AsInt(), 50);

  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  EXPECT_EQ(ReadCommitted(2)[1].AsInt(), 50);
}

TEST_F(TxnTest, IndexLookupSeesBufferedInserts) {
  // RYOW through the secondary access path: an IndexLookup inside the
  // inserting transaction visits the provisional row; after commit the
  // real rid takes over; other transactions never see the provisional
  // row.
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{3}, int64_t{42}});
  size_t visits = 0;
  Rid seen_rid = 0;
  tm_->IndexLookup(&txn, *index_, {Value(int64_t{3})},
                   [&](Rid rid, const Row& row) {
                     ++visits;
                     seen_rid = rid;
                     EXPECT_EQ(row[1].AsInt(), 42);
                     return true;
                   },
                   nullptr);
  EXPECT_EQ(visits, 1u);
  EXPECT_GE(seen_rid, kProvisionalRidBase);

  Transaction other = tm_->Begin(IsolationLevel::kSnapshot);
  size_t other_visits = 0;
  tm_->IndexLookup(&other, *index_, {Value(int64_t{3})},
                   [&](Rid, const Row&) {
                     ++other_visits;
                     return true;
                   },
                   nullptr);
  EXPECT_EQ(other_visits, 0u);

  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  Transaction after = tm_->Begin(IsolationLevel::kSnapshot);
  size_t after_visits = 0;
  tm_->IndexLookup(&after, *index_, {Value(int64_t{3})},
                   [&](Rid rid, const Row& row) {
                     ++after_visits;
                     EXPECT_LT(rid, kProvisionalRidBase);
                     EXPECT_EQ(row[1].AsInt(), 42);
                     return true;
                   },
                   nullptr);
  EXPECT_EQ(after_visits, 1u);
}

TEST_F(TxnTest, LatchProtocolMatchesLockFreeSemantics) {
  // The compatibility protocol (single commit latch around the same
  // commit pipeline) preserves behavior: first-updater-wins, deltas
  // commute, final states identical.
  tm_->SetProtocol(TxnProtocol::kLatch);
  Transaction t1 = tm_->Begin(IsolationLevel::kSnapshot);
  Transaction t2 = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferDelta(&t1, 0, 0, 1, Value(int64_t{10}));
  tm_->BufferDelta(&t2, 0, 0, 1, Value(int64_t{20}));
  ASSERT_TRUE(tm_->Commit(&t1, nullptr).ok());
  ASSERT_TRUE(tm_->Commit(&t2, nullptr).ok());
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 130);
  tm_->SetProtocol(TxnProtocol::kLockFree);
}

TEST_F(TxnTest, RetryBackoffIsDeterministicAndCapped) {
  for (int attempt = 0; attempt < 40; ++attempt) {
    const double a = TxnManager::RetryBackoffSeconds(3, 17, attempt);
    const double b = TxnManager::RetryBackoffSeconds(3, 17, attempt);
    EXPECT_EQ(a, b) << "backoff must be a pure function of its inputs";
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, 10e-3);
  }
  // Different (client, txn) pairs jitter apart.
  EXPECT_NE(TxnManager::RetryBackoffSeconds(1, 1, 0),
            TxnManager::RetryBackoffSeconds(2, 1, 0));
}

TEST_F(TxnTest, RunWithRetriesSleepsAndReportsBackoff) {
  // An always-aborting body: the injected sleeper must be invoked once
  // per retry with the deterministic schedule, and the accumulated
  // backoff must be reported to the caller.
  std::vector<double> slept;
  tm_->SetRetrySleeper([&](double s) { slept.push_back(s); });
  int attempts = 0;
  double backoff = 0;
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 7, 9,
      [&](Transaction*) { return Status::Aborted("induced"); }, nullptr,
      /*max_retries=*/4, &attempts, &backoff);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(attempts, 5);
  ASSERT_EQ(slept.size(), 4u);
  double expected = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(slept[i], TxnManager::RetryBackoffSeconds(7, 9, i));
    expected += slept[i];
  }
  EXPECT_DOUBLE_EQ(backoff, expected);
  // Monotone non-decreasing windows (jitter stays within the doubling).
  EXPECT_LT(slept[0], slept[3] * 8.0 + 1e-12);
}

TEST_F(TxnTest, WriteSkewAllowedUnderSnapshotIsolation) {
  // The classic SI anomaly: each txn reads both accounts, writes the
  // other one. Disjoint write sets -> both commit under SI.
  Transaction t1 = tm_->Begin(IsolationLevel::kSnapshot);
  Transaction t2 = tm_->Begin(IsolationLevel::kSnapshot);
  Row a1;
  Row b1;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &a1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t1, 0, 1, &b1, nullptr).ok());
  Row a2;
  Row b2;
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &a2, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 1, &b2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, a1, Row{int64_t{1}, int64_t{0}});
  tm_->BufferUpdate(&t2, 0, 1, b2, Row{int64_t{2}, int64_t{0}});
  EXPECT_TRUE(tm_->Commit(&t1, nullptr).ok());
  EXPECT_TRUE(tm_->Commit(&t2, nullptr).ok());  // anomaly permitted
}

TEST_F(TxnTest, WriteSkewRejectedUnderSerializable) {
  Transaction t1 = tm_->Begin(IsolationLevel::kSerializable);
  Transaction t2 = tm_->Begin(IsolationLevel::kSerializable);
  Row a1;
  Row b1;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &a1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t1, 0, 1, &b1, nullptr).ok());
  Row a2;
  Row b2;
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &a2, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 1, &b2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, a1, Row{int64_t{1}, int64_t{0}});
  tm_->BufferUpdate(&t2, 0, 1, b2, Row{int64_t{2}, int64_t{0}});
  EXPECT_TRUE(tm_->Commit(&t1, nullptr).ok());
  // t2's read of account 1 is stale -> OCC read validation aborts it.
  StatusOr<CommitResult> second = tm_->Commit(&t2, nullptr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
}

TEST_F(TxnTest, IndexMaintainedOnInsert) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{42}, int64_t{1}});
  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());

  Transaction reader = tm_->Begin(IsolationLevel::kSnapshot);
  size_t hits = tm_->IndexLookup(&reader, *index_, {Value(int64_t{42})},
                                 [](Rid, const Row&) { return true; },
                                 nullptr);
  EXPECT_EQ(hits, 1u);
}

TEST_F(TxnTest, IndexLookupFiltersStaleEntries) {
  // Update an indexed column: the old index entry remains but the
  // re-check filters it.
  Catalog catalog;
  RowTable* table = catalog.CreateTable("t", AccountSchema());
  IndexInfo* by_balance = catalog.CreateIndex("bal", "t", {1}, false);
  TimestampOracle oracle;
  TxnManager tm(&catalog, &oracle, nullptr);
  const Rid rid = table->Insert(Row{int64_t{1}, int64_t{100}}, 1, nullptr);
  by_balance->tree->Insert(
      by_balance->KeyFor(Row{int64_t{1}, int64_t{100}}, rid), rid, nullptr);
  oracle.ResetTo(1);

  Transaction writer = tm.Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm.Read(&writer, 0, rid, &row, nullptr).ok());
  tm.BufferUpdate(&writer, 0, rid, row, Row{int64_t{1}, int64_t{200}});
  ASSERT_TRUE(tm.Commit(&writer, nullptr).ok());

  Transaction reader = tm.Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(tm.IndexLookup(&reader, *by_balance, {Value(int64_t{100})},
                           [](Rid, const Row&) { return true; }, nullptr),
            0u);
  EXPECT_EQ(tm.IndexLookup(&reader, *by_balance, {Value(int64_t{200})},
                           [](Rid, const Row&) { return true; }, nullptr),
            1u);
}

TEST_F(TxnTest, WalEmittedToSinkInCommitOrder) {
  struct CapturingSink : WalSink {
    std::vector<WalRecord> records;
    void OnCommit(const WalRecord& record) override {
      records.push_back(record);
    }
  } sink;
  tm_->set_sink(&sink);

  for (int i = 0; i < 3; ++i) {
    Transaction txn = tm_->Begin(IsolationLevel::kSnapshot, /*client_id=*/7,
                                 /*txn_num=*/static_cast<uint64_t>(i + 1));
    tm_->BufferInsert(&txn, 0, Row{int64_t{10 + i}, int64_t{0}});
    ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  }
  ASSERT_EQ(sink.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.records[i].lsn, i + 1);
    EXPECT_EQ(sink.records[i].client_id, 7u);
    EXPECT_EQ(sink.records[i].txn_num, i + 1);
    ASSERT_EQ(sink.records[i].ops.size(), 1u);
    EXPECT_EQ(sink.records[i].ops[0].kind, WalOp::Kind::kInsert);
  }
  EXPECT_LT(sink.records[0].commit_ts, sink.records[2].commit_ts);
}

TEST_F(TxnTest, CommitReportsWriteKeys) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&txn, 0, 0, row, Row{int64_t{1}, int64_t{1}});
  tm_->BufferInsert(&txn, 0, Row{int64_t{5}, int64_t{5}});
  StatusOr<CommitResult> result = tm_->Commit(&txn, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->write_keys.size(), 2u);
  EXPECT_EQ(result->write_keys[0], PackRowKey(0, 0));
  EXPECT_EQ(result->write_keys[1], PackRowKey(0, 2));
}

TEST_F(TxnTest, RunWithRetriesRetriesAbortedBodies) {
  int calls = 0;
  int attempts = 0;
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 1, 1,
      [&](Transaction* txn) -> Status {
        ++calls;
        if (calls < 3) return Status::Aborted("try again");
        tm_->BufferInsert(txn, 0, Row{int64_t{9}, int64_t{9}});
        return Status::OK();
      },
      nullptr, /*max_retries=*/5, &attempts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
}

TEST_F(TxnTest, RunWithRetriesGivesUpAfterMax) {
  int attempts = 0;
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 1, 1,
      [&](Transaction*) { return Status::Aborted("always"); }, nullptr,
      /*max_retries=*/3, &attempts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(attempts, 4);  // 1 + 3 retries
}

TEST_F(TxnTest, RunWithRetriesPropagatesNonAbortErrors) {
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 1, 1,
      [&](Transaction*) { return Status::NotFound("no row"); }, nullptr, 5,
      nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// WAL encoding
// --------------------------------------------------------------------------

TEST(WalTest, EncodeDecodeRoundTrip) {
  WalRecord record;
  record.lsn = 42;
  record.commit_ts = 1234;
  record.client_id = 3;
  record.txn_num = 99;
  record.ops.push_back(WalOp{WalOp::Kind::kInsert, 1, 17, 0,
                             Row{int64_t{-5}, 2.75, std::string("hello")}});
  record.ops.push_back(
      WalOp{WalOp::Kind::kUpdate, 2, 0, 0, Row{std::string("")}});

  StatusOr<WalRecord> decoded = WalRecord::Decode(record.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

TEST(WalTest, DeltaOpRoundTripsWithColumn) {
  // kDelta carries its target column on the wire; insert/update records
  // stay byte-identical to the pre-delta format.
  WalRecord record;
  record.lsn = 7;
  record.commit_ts = 11;
  record.ops.push_back(WalOp{WalOp::Kind::kDelta, 4, 9, 3, Row{2.5}});
  record.ops.push_back(
      WalOp{WalOp::Kind::kDelta, 4, 9, 1, Row{int64_t{1}}});
  StatusOr<WalRecord> decoded = WalRecord::Decode(record.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
  EXPECT_EQ(decoded->ops[0].column, 3u);
  EXPECT_EQ(decoded->ops[1].column, 1u);

  WalRecord legacy;
  legacy.lsn = 7;
  legacy.ops.push_back(
      WalOp{WalOp::Kind::kUpdate, 1, 2, 0, Row{int64_t{5}}});
  WalRecord same = legacy;
  same.ops[0].column = 9;  // non-delta ops never encode the column
  EXPECT_EQ(legacy.Encode(), same.Encode());
}

TEST(WalTest, DecodeRejectsTruncated) {
  WalRecord record;
  record.lsn = 1;
  record.ops.push_back(
      WalOp{WalOp::Kind::kInsert, 0, 0, 0, Row{std::string("payload")}});
  const std::string bytes = record.Encode();
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() - 3}) {
    StatusOr<WalRecord> decoded = WalRecord::Decode(bytes.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(WalTest, DecodeRejectsUnknownOpKind) {
  // Every downstream Kind dispatch (replica apply, delta feed, merge,
  // commit publish) is an exhaustive switch, so an out-of-range kind
  // byte must be rejected at decode time instead of aliasing to one of
  // the known kinds.
  WalRecord record;
  record.lsn = 9;
  record.ops.push_back(
      WalOp{WalOp::Kind::kInsert, 1, 2, 0, Row{int64_t{7}}});
  std::string bytes = record.Encode();
  // The first op's kind byte sits right after the fixed 32-byte header
  // (lsn + commit_ts + client_id + txn_num + op count).
  const size_t kind_pos = 32;
  ASSERT_EQ(static_cast<uint8_t>(bytes[kind_pos]),
            static_cast<uint8_t>(WalOp::Kind::kInsert));
  for (uint8_t bad : {uint8_t{3}, uint8_t{0xff}}) {
    bytes[kind_pos] = static_cast<char>(bad);
    StatusOr<WalRecord> decoded = WalRecord::Decode(bytes);
    ASSERT_FALSE(decoded.ok()) << "kind byte " << int{bad};
    EXPECT_NE(decoded.status().message().find("unknown WAL op kind"),
              std::string::npos)
        << decoded.status().ToString();
  }
}

TEST(WalTest, DecodeRejectsTrailingGarbage) {
  WalRecord record;
  record.lsn = 1;
  EXPECT_FALSE(WalRecord::Decode(record.Encode() + "x").ok());
}

TEST(WalTest, EmptyRecordRoundTrips) {
  WalRecord record;
  record.lsn = 7;
  StatusOr<WalRecord> decoded = WalRecord::Decode(record.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

// --------------------------------------------------------------------------
// Timestamp oracle
// --------------------------------------------------------------------------

TEST(TimestampOracleTest, AllocateMonotone) {
  TimestampOracle oracle;
  const Ts a = oracle.Allocate();
  const Ts b = oracle.Allocate();
  EXPECT_LT(a, b);
}

TEST(TimestampOracleTest, ResetTo) {
  TimestampOracle oracle;
  oracle.Allocate();
  oracle.Allocate();
  oracle.ResetTo(1);
  EXPECT_EQ(oracle.last_committed(), 1u);
  EXPECT_EQ(oracle.Allocate(), 2u);
}

}  // namespace
}  // namespace hattrick
