// Tests for the transaction manager: atomic commit, read-your-own-writes,
// isolation-level semantics (including classic anomalies: lost update,
// write skew), index maintenance, WAL emission and encoding.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "txn/timestamp.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace hattrick {
namespace {

Schema AccountSchema() {
  return Schema({{"id", DataType::kInt64}, {"balance", DataType::kInt64}});
}

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = catalog_.CreateTable("accounts", AccountSchema());
    index_ = catalog_.CreateIndex("accounts_pk", "accounts", {0}, true);
    tm_ = std::make_unique<TxnManager>(&catalog_, &oracle_, nullptr);
    // Seed two accounts at load time.
    for (int64_t id : {1, 2}) {
      const Rid rid = table_->Insert(Row{id, int64_t{100}}, 1, nullptr);
      index_->tree->Insert(index_->KeyFor(Row{id, int64_t{100}}, rid), rid,
                           nullptr);
    }
    oracle_.ResetTo(1);
  }

  Row ReadCommitted(Rid rid) {
    Row row;
    EXPECT_TRUE(table_->ReadLatest(rid, &row, nullptr));
    return row;
  }

  Catalog catalog_;
  RowTable* table_ = nullptr;
  IndexInfo* index_ = nullptr;
  TimestampOracle oracle_;
  std::unique_ptr<TxnManager> tm_;
};

TEST_F(TxnTest, ReadOnlyCommitConsumesNoTimestamp) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  const Ts before = oracle_.last_committed();
  StatusOr<CommitResult> result = tm_->Commit(&txn, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lsn, 0u);
  EXPECT_EQ(oracle_.last_committed(), before);
}

// Regression: next_lsn_ used to be a plain uint64_t that Commit advanced
// under the commit latch while freshness probes read it from other
// threads with no synchronization at all — a data race surfaced by the
// thread-safety annotation pass. It is atomic now; this test drives a
// committer and a concurrent probe and checks the probe only ever sees
// monotonically non-decreasing values (TSan flags the race on
// regression).
TEST_F(TxnTest, NextLsnReadableWhileCommitting) {
  constexpr int kCommits = 200;
  std::atomic<bool> done{false};
  std::thread prober([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t lsn = tm_->next_lsn();
      EXPECT_GE(lsn, last);
      last = lsn;
    }
  });
  for (int i = 0; i < kCommits; ++i) {
    Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
    tm_->BufferInsert(&txn, 0, Row{int64_t{100 + i}, int64_t{1}});
    ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  }
  done.store(true, std::memory_order_release);
  prober.join();
  EXPECT_EQ(tm_->next_lsn(), 1u + kCommits);
}

TEST_F(TxnTest, InsertVisibleAfterCommitOnly) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{3}, int64_t{50}});
  EXPECT_EQ(table_->NumSlots(), 2u);  // nothing installed yet
  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  EXPECT_EQ(table_->NumSlots(), 3u);
  EXPECT_EQ(ReadCommitted(2)[1].AsInt(), 50);
}

TEST_F(TxnTest, AbortDiscardsEverything) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{3}, int64_t{50}});
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&txn, 0, 0, row, Row{int64_t{1}, int64_t{0}});
  tm_->Abort(&txn);
  EXPECT_EQ(table_->NumSlots(), 2u);
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 100);
}

TEST_F(TxnTest, ReadYourOwnWrites) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&txn, 0, 0, row, Row{int64_t{1}, int64_t{77}});
  Row reread;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &reread, nullptr).ok());
  EXPECT_EQ(reread[1].AsInt(), 77);
}

TEST_F(TxnTest, SnapshotReadsIgnoreLaterCommits) {
  Transaction reader = tm_->Begin(IsolationLevel::kSnapshot);

  Transaction writer = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&writer, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&writer, 0, 0, row, Row{int64_t{1}, int64_t{55}});
  ASSERT_TRUE(tm_->Commit(&writer, nullptr).ok());

  Row seen;
  ASSERT_TRUE(tm_->Read(&reader, 0, 0, &seen, nullptr).ok());
  EXPECT_EQ(seen[1].AsInt(), 100);  // pre-commit snapshot
}

TEST_F(TxnTest, ReadCommittedSeesLatest) {
  Transaction reader = tm_->Begin(IsolationLevel::kReadCommitted);

  Transaction writer = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&writer, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&writer, 0, 0, row, Row{int64_t{1}, int64_t{55}});
  ASSERT_TRUE(tm_->Commit(&writer, nullptr).ok());

  Row seen;
  ASSERT_TRUE(tm_->Read(&reader, 0, 0, &seen, nullptr).ok());
  EXPECT_EQ(seen[1].AsInt(), 55);
}

TEST_F(TxnTest, LostUpdatePreventedUnderSnapshotIsolation) {
  // Two concurrent increments of the same balance: first-updater-wins
  // forces the second to abort instead of silently losing an update.
  Transaction t1 = tm_->Begin(IsolationLevel::kSnapshot);
  Transaction t2 = tm_->Begin(IsolationLevel::kSnapshot);
  Row r1;
  Row r2;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &r1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &r2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, r1, Row{int64_t{1}, int64_t{110}});
  tm_->BufferUpdate(&t2, 0, 0, r2, Row{int64_t{1}, int64_t{120}});
  ASSERT_TRUE(tm_->Commit(&t1, nullptr).ok());
  WorkMeter meter;
  StatusOr<CommitResult> second = tm_->Commit(&t2, &meter);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
  EXPECT_EQ(meter.conflict_waits, 1u);
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 110);
}

TEST_F(TxnTest, LostUpdateAllowedUnderReadCommitted) {
  // Read committed performs no write-write validation: the classic lost
  // update proceeds (last writer wins).
  Transaction t1 = tm_->Begin(IsolationLevel::kReadCommitted);
  Transaction t2 = tm_->Begin(IsolationLevel::kReadCommitted);
  Row r1;
  Row r2;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &r1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &r2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, r1, Row{int64_t{1}, int64_t{110}});
  tm_->BufferUpdate(&t2, 0, 0, r2, Row{int64_t{1}, int64_t{120}});
  ASSERT_TRUE(tm_->Commit(&t1, nullptr).ok());
  ASSERT_TRUE(tm_->Commit(&t2, nullptr).ok());
  EXPECT_EQ(ReadCommitted(0)[1].AsInt(), 120);
}

TEST_F(TxnTest, WriteSkewAllowedUnderSnapshotIsolation) {
  // The classic SI anomaly: each txn reads both accounts, writes the
  // other one. Disjoint write sets -> both commit under SI.
  Transaction t1 = tm_->Begin(IsolationLevel::kSnapshot);
  Transaction t2 = tm_->Begin(IsolationLevel::kSnapshot);
  Row a1;
  Row b1;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &a1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t1, 0, 1, &b1, nullptr).ok());
  Row a2;
  Row b2;
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &a2, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 1, &b2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, a1, Row{int64_t{1}, int64_t{0}});
  tm_->BufferUpdate(&t2, 0, 1, b2, Row{int64_t{2}, int64_t{0}});
  EXPECT_TRUE(tm_->Commit(&t1, nullptr).ok());
  EXPECT_TRUE(tm_->Commit(&t2, nullptr).ok());  // anomaly permitted
}

TEST_F(TxnTest, WriteSkewRejectedUnderSerializable) {
  Transaction t1 = tm_->Begin(IsolationLevel::kSerializable);
  Transaction t2 = tm_->Begin(IsolationLevel::kSerializable);
  Row a1;
  Row b1;
  ASSERT_TRUE(tm_->Read(&t1, 0, 0, &a1, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t1, 0, 1, &b1, nullptr).ok());
  Row a2;
  Row b2;
  ASSERT_TRUE(tm_->Read(&t2, 0, 0, &a2, nullptr).ok());
  ASSERT_TRUE(tm_->Read(&t2, 0, 1, &b2, nullptr).ok());
  tm_->BufferUpdate(&t1, 0, 0, a1, Row{int64_t{1}, int64_t{0}});
  tm_->BufferUpdate(&t2, 0, 1, b2, Row{int64_t{2}, int64_t{0}});
  EXPECT_TRUE(tm_->Commit(&t1, nullptr).ok());
  // t2's read of account 1 is stale -> OCC read validation aborts it.
  StatusOr<CommitResult> second = tm_->Commit(&t2, nullptr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
}

TEST_F(TxnTest, IndexMaintainedOnInsert) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  tm_->BufferInsert(&txn, 0, Row{int64_t{42}, int64_t{1}});
  ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());

  Transaction reader = tm_->Begin(IsolationLevel::kSnapshot);
  size_t hits = tm_->IndexLookup(&reader, *index_, {Value(int64_t{42})},
                                 [](Rid, const Row&) { return true; },
                                 nullptr);
  EXPECT_EQ(hits, 1u);
}

TEST_F(TxnTest, IndexLookupFiltersStaleEntries) {
  // Update an indexed column: the old index entry remains but the
  // re-check filters it.
  Catalog catalog;
  RowTable* table = catalog.CreateTable("t", AccountSchema());
  IndexInfo* by_balance = catalog.CreateIndex("bal", "t", {1}, false);
  TimestampOracle oracle;
  TxnManager tm(&catalog, &oracle, nullptr);
  const Rid rid = table->Insert(Row{int64_t{1}, int64_t{100}}, 1, nullptr);
  by_balance->tree->Insert(
      by_balance->KeyFor(Row{int64_t{1}, int64_t{100}}, rid), rid, nullptr);
  oracle.ResetTo(1);

  Transaction writer = tm.Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm.Read(&writer, 0, rid, &row, nullptr).ok());
  tm.BufferUpdate(&writer, 0, rid, row, Row{int64_t{1}, int64_t{200}});
  ASSERT_TRUE(tm.Commit(&writer, nullptr).ok());

  Transaction reader = tm.Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(tm.IndexLookup(&reader, *by_balance, {Value(int64_t{100})},
                           [](Rid, const Row&) { return true; }, nullptr),
            0u);
  EXPECT_EQ(tm.IndexLookup(&reader, *by_balance, {Value(int64_t{200})},
                           [](Rid, const Row&) { return true; }, nullptr),
            1u);
}

TEST_F(TxnTest, WalEmittedToSinkInCommitOrder) {
  struct CapturingSink : WalSink {
    std::vector<WalRecord> records;
    void OnCommit(const WalRecord& record) override {
      records.push_back(record);
    }
  } sink;
  tm_->set_sink(&sink);

  for (int i = 0; i < 3; ++i) {
    Transaction txn = tm_->Begin(IsolationLevel::kSnapshot, /*client_id=*/7,
                                 /*txn_num=*/static_cast<uint64_t>(i + 1));
    tm_->BufferInsert(&txn, 0, Row{int64_t{10 + i}, int64_t{0}});
    ASSERT_TRUE(tm_->Commit(&txn, nullptr).ok());
  }
  ASSERT_EQ(sink.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.records[i].lsn, i + 1);
    EXPECT_EQ(sink.records[i].client_id, 7u);
    EXPECT_EQ(sink.records[i].txn_num, i + 1);
    ASSERT_EQ(sink.records[i].ops.size(), 1u);
    EXPECT_EQ(sink.records[i].ops[0].kind, WalOp::Kind::kInsert);
  }
  EXPECT_LT(sink.records[0].commit_ts, sink.records[2].commit_ts);
}

TEST_F(TxnTest, CommitReportsWriteKeys) {
  Transaction txn = tm_->Begin(IsolationLevel::kSnapshot);
  Row row;
  ASSERT_TRUE(tm_->Read(&txn, 0, 0, &row, nullptr).ok());
  tm_->BufferUpdate(&txn, 0, 0, row, Row{int64_t{1}, int64_t{1}});
  tm_->BufferInsert(&txn, 0, Row{int64_t{5}, int64_t{5}});
  StatusOr<CommitResult> result = tm_->Commit(&txn, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->write_keys.size(), 2u);
  EXPECT_EQ(result->write_keys[0], PackRowKey(0, 0));
  EXPECT_EQ(result->write_keys[1], PackRowKey(0, 2));
}

TEST_F(TxnTest, RunWithRetriesRetriesAbortedBodies) {
  int calls = 0;
  int attempts = 0;
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 1, 1,
      [&](Transaction* txn) -> Status {
        ++calls;
        if (calls < 3) return Status::Aborted("try again");
        tm_->BufferInsert(txn, 0, Row{int64_t{9}, int64_t{9}});
        return Status::OK();
      },
      nullptr, /*max_retries=*/5, &attempts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
}

TEST_F(TxnTest, RunWithRetriesGivesUpAfterMax) {
  int attempts = 0;
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 1, 1,
      [&](Transaction*) { return Status::Aborted("always"); }, nullptr,
      /*max_retries=*/3, &attempts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(attempts, 4);  // 1 + 3 retries
}

TEST_F(TxnTest, RunWithRetriesPropagatesNonAbortErrors) {
  StatusOr<CommitResult> result = tm_->RunWithRetries(
      IsolationLevel::kSnapshot, 1, 1,
      [&](Transaction*) { return Status::NotFound("no row"); }, nullptr, 5,
      nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// WAL encoding
// --------------------------------------------------------------------------

TEST(WalTest, EncodeDecodeRoundTrip) {
  WalRecord record;
  record.lsn = 42;
  record.commit_ts = 1234;
  record.client_id = 3;
  record.txn_num = 99;
  record.ops.push_back(WalOp{WalOp::Kind::kInsert, 1, 17,
                             Row{int64_t{-5}, 2.75, std::string("hello")}});
  record.ops.push_back(
      WalOp{WalOp::Kind::kUpdate, 2, 0, Row{std::string("")}});

  StatusOr<WalRecord> decoded = WalRecord::Decode(record.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

TEST(WalTest, DecodeRejectsTruncated) {
  WalRecord record;
  record.lsn = 1;
  record.ops.push_back(
      WalOp{WalOp::Kind::kInsert, 0, 0, Row{std::string("payload")}});
  const std::string bytes = record.Encode();
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() - 3}) {
    StatusOr<WalRecord> decoded = WalRecord::Decode(bytes.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(WalTest, DecodeRejectsTrailingGarbage) {
  WalRecord record;
  record.lsn = 1;
  EXPECT_FALSE(WalRecord::Decode(record.Encode() + "x").ok());
}

TEST(WalTest, EmptyRecordRoundTrips) {
  WalRecord record;
  record.lsn = 7;
  StatusOr<WalRecord> decoded = WalRecord::Decode(record.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

// --------------------------------------------------------------------------
// Timestamp oracle
// --------------------------------------------------------------------------

TEST(TimestampOracleTest, AllocateMonotone) {
  TimestampOracle oracle;
  const Ts a = oracle.Allocate();
  const Ts b = oracle.Allocate();
  EXPECT_LT(a, b);
}

TEST(TimestampOracleTest, ResetTo) {
  TimestampOracle oracle;
  oracle.Allocate();
  oracle.Allocate();
  oracle.ResetTo(1);
  EXPECT_EQ(oracle.last_committed(), 1u);
  EXPECT_EQ(oracle.Allocate(), 2u);
}

}  // namespace
}  // namespace hattrick
