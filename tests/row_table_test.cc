// Tests for the MVCC row store: version visibility, snapshot isolation of
// reads, deletes, vacuum, and copy semantics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/row_table.h"

namespace hattrick {
namespace {

Schema TwoCol() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
}

Row MakeRow(int64_t k, const std::string& v) { return Row{k, v}; }

TEST(RowTableTest, InsertAssignsSequentialRids) {
  RowTable table(TwoCol());
  EXPECT_EQ(table.Insert(MakeRow(1, "a"), 10, nullptr), 0u);
  EXPECT_EQ(table.Insert(MakeRow(2, "b"), 10, nullptr), 1u);
  EXPECT_EQ(table.NumSlots(), 2u);
}

TEST(RowTableTest, RowInvisibleBeforeItsBeginTs) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "a"), /*begin_ts=*/10, nullptr);
  Row out;
  EXPECT_FALSE(table.Read(rid, /*snapshot=*/9, &out, nullptr));
  EXPECT_TRUE(table.Read(rid, 10, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "a");
}

TEST(RowTableTest, VersionChainSnapshotReads) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "v1"), 10, nullptr);
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "v2"), 20, nullptr).ok());
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "v3"), 30, nullptr).ok());

  Row out;
  ASSERT_TRUE(table.Read(rid, 15, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v1");
  ASSERT_TRUE(table.Read(rid, 20, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v2");
  ASSERT_TRUE(table.Read(rid, 29, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v2");
  ASSERT_TRUE(table.Read(rid, 1000, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v3");
}

TEST(RowTableTest, ReadLatestIgnoresSnapshot) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "v1"), 10, nullptr);
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "v2"), 20, nullptr).ok());
  Row out;
  ASSERT_TRUE(table.ReadLatest(rid, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v2");
}

TEST(RowTableTest, DeleteTerminatesVisibility) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "a"), 10, nullptr);
  ASSERT_TRUE(table.MarkDeleted(rid, 20, nullptr).ok());
  Row out;
  EXPECT_TRUE(table.Read(rid, 19, &out, nullptr));
  EXPECT_FALSE(table.Read(rid, 20, &out, nullptr));
  EXPECT_FALSE(table.ReadLatest(rid, &out, nullptr));
}

TEST(RowTableTest, LatestVersionTs) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "a"), 10, nullptr);
  EXPECT_EQ(table.LatestVersionTs(rid), 10u);
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "b"), 25, nullptr).ok());
  EXPECT_EQ(table.LatestVersionTs(rid), 25u);
  EXPECT_EQ(table.LatestVersionTs(999), 0u);  // out of range
}

TEST(RowTableTest, AddVersionOutOfRangeFails) {
  RowTable table(TwoCol());
  EXPECT_EQ(table.AddVersion(5, MakeRow(1, "x"), 10, nullptr).code(),
            StatusCode::kNotFound);
}

TEST(RowTableTest, ScanSeesConsistentSnapshot) {
  RowTable table(TwoCol());
  const Rid r0 = table.Insert(MakeRow(1, "a"), 10, nullptr);
  table.Insert(MakeRow(2, "b"), 20, nullptr);
  ASSERT_TRUE(table.AddVersion(r0, MakeRow(1, "a2"), 30, nullptr).ok());

  std::vector<std::string> at15;
  table.Scan(15,
             [&](Rid, const Row& row) {
               at15.push_back(row[1].AsString());
               return true;
             },
             nullptr);
  EXPECT_EQ(at15, std::vector<std::string>({"a"}));

  std::vector<std::string> at30;
  table.Scan(30,
             [&](Rid, const Row& row) {
               at30.push_back(row[1].AsString());
               return true;
             },
             nullptr);
  EXPECT_EQ(at30, std::vector<std::string>({"a2", "b"}));
}

TEST(RowTableTest, ScanEarlyStop) {
  RowTable table(TwoCol());
  for (int i = 0; i < 10; ++i) table.Insert(MakeRow(i, "x"), 1, nullptr);
  int count = 0;
  table.Scan(10, [&](Rid, const Row&) { return ++count < 4; }, nullptr);
  EXPECT_EQ(count, 4);
}

TEST(RowTableTest, MeterCountsReadsWritesHops) {
  RowTable table(TwoCol());
  WorkMeter meter;
  const Rid rid = table.Insert(MakeRow(1, "a"), 10, &meter);
  EXPECT_EQ(meter.rows_written, 1u);
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "b"), 20, &meter).ok());
  EXPECT_EQ(meter.rows_written, 2u);
  WorkMeter read_meter;
  Row out;
  // Reading the old snapshot traverses past the newest version.
  ASSERT_TRUE(table.Read(rid, 15, &out, &read_meter));
  EXPECT_EQ(read_meter.rows_read, 1u);
  EXPECT_EQ(read_meter.version_hops, 2u);
}

TEST(RowTableTest, VacuumDropsOnlyDeadVersions) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "v1"), 10, nullptr);
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "v2"), 20, nullptr).ok());
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "v3"), 30, nullptr).ok());
  EXPECT_EQ(table.NumVersions(), 3u);

  // Horizon 15: v1 ended at 20 > 15, nothing to drop.
  EXPECT_EQ(table.Vacuum(15), 0u);
  // Horizon 25: v1 (ended 20) is invisible to any snapshot >= 25.
  EXPECT_EQ(table.Vacuum(25), 1u);
  EXPECT_EQ(table.NumVersions(), 2u);
  Row out;
  ASSERT_TRUE(table.Read(rid, 25, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v2");
  // Newest version always survives.
  EXPECT_EQ(table.Vacuum(kMaxTs - 1), 1u);
  EXPECT_EQ(table.NumVersions(), 1u);
  ASSERT_TRUE(table.ReadLatest(rid, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "v3");
}

TEST(RowTableTest, CopyFromDeepCopies) {
  RowTable table(TwoCol());
  const Rid rid = table.Insert(MakeRow(1, "a"), 10, nullptr);
  ASSERT_TRUE(table.AddVersion(rid, MakeRow(1, "b"), 20, nullptr).ok());

  RowTable copy(TwoCol());
  copy.CopyFrom(table);
  EXPECT_EQ(copy.NumSlots(), 1u);
  EXPECT_EQ(copy.NumVersions(), 2u);

  // Mutating the copy does not affect the original.
  ASSERT_TRUE(copy.AddVersion(0, MakeRow(1, "c"), 30, nullptr).ok());
  Row out;
  ASSERT_TRUE(table.ReadLatest(0, &out, nullptr));
  EXPECT_EQ(out[1].AsString(), "b");
}

// Property: random interleavings of inserts/updates produce version
// chains whose visibility matches a per-snapshot reference model.
class RowTableVisibilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowTableVisibilityTest, SnapshotsMatchReference) {
  Rng rng(GetParam());
  RowTable table(TwoCol());
  // reference[rid] = list of (ts, value) in ts order.
  std::vector<std::vector<std::pair<Ts, std::string>>> reference;

  Ts ts = 1;
  for (int step = 0; step < 500; ++step) {
    ts += 1 + static_cast<Ts>(rng.Uniform(0, 3));
    if (reference.empty() || rng.Bernoulli(0.3)) {
      const std::string v = "v" + std::to_string(step);
      table.Insert(MakeRow(step, v), ts, nullptr);
      reference.push_back({{ts, v}});
    } else {
      const size_t rid = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(reference.size()) - 1));
      const std::string v = "u" + std::to_string(step);
      ASSERT_TRUE(
          table.AddVersion(rid, MakeRow(step, v), ts, nullptr).ok());
      reference[rid].emplace_back(ts, v);
    }
  }

  // Check random snapshots.
  for (int probe = 0; probe < 200; ++probe) {
    const Ts snapshot = static_cast<Ts>(rng.Uniform(0, static_cast<int64_t>(ts)));
    for (size_t rid = 0; rid < reference.size(); ++rid) {
      const auto& versions = reference[rid];
      std::string expected;
      bool visible = false;
      for (const auto& [vts, value] : versions) {
        if (vts <= snapshot) {
          expected = value;
          visible = true;
        }
      }
      Row out;
      const bool got = table.Read(rid, snapshot, &out, nullptr);
      ASSERT_EQ(got, visible) << "rid=" << rid << " snap=" << snapshot;
      if (visible) EXPECT_EQ(out[1].AsString(), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowTableVisibilityTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace hattrick
