// Tests for the 13 SSB query plans: agreement with naive reference
// computations over the raw dataset, cross-engine result equivalence
// (row store vs replica vs column store), index-assisted plan
// equivalence, and the FRESHNESS read-back.

#include <cmath>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"

namespace hattrick {
namespace {

class QueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatagenConfig config;
    config.scale_factor = 2.0;
    config.lineorders_per_sf = 3000;
    config.seed = 11;
    config.num_freshness_tables = 4;
    dataset_ = new Dataset(GenerateDataset(config));

    shared_ = new SharedEngine();
    ASSERT_TRUE(
        LoadDataset(*dataset_, PhysicalSchema::kAllIndexes, shared_).ok());
    hybrid_ = new HybridEngine();
    ASSERT_TRUE(
        LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, hybrid_).ok());
    isolated_ = new IsolatedEngine();
    ASSERT_TRUE(
        LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, isolated_)
            .ok());
  }

  static void TearDownTestSuite() {
    delete shared_;
    delete hybrid_;
    delete isolated_;
    delete dataset_;
    shared_ = nullptr;
    hybrid_ = nullptr;
    isolated_ = nullptr;
    dataset_ = nullptr;
  }

  static QueryResult RunOn(HtapEngine* engine, int qid) {
    WorkMeter meter;
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    return RunQuery(qid, *session.source, 4, &ctx);
  }

  static Dataset* dataset_;
  static SharedEngine* shared_;
  static HybridEngine* hybrid_;
  static IsolatedEngine* isolated_;
};

Dataset* QueriesTest::dataset_ = nullptr;
SharedEngine* QueriesTest::shared_ = nullptr;
HybridEngine* QueriesTest::hybrid_ = nullptr;
IsolatedEngine* QueriesTest::isolated_ = nullptr;

TEST_F(QueriesTest, QueryNames) {
  EXPECT_STREQ(QueryName(0), "Q1.1");
  EXPECT_STREQ(QueryName(3), "Q2.1");
  EXPECT_STREQ(QueryName(6), "Q3.1");
  EXPECT_STREQ(QueryName(12), "Q4.3");
}

TEST_F(QueriesTest, Q11MatchesNaiveReference) {
  // Q1.1: SUM(extendedprice * discount) where d_year=1993,
  // discount in [1,3], quantity < 25.
  double expected = 0;
  for (const Row& row : dataset_->lineorder) {
    const int64_t date = row[lo::kOrderDate].AsInt();
    const int64_t disc = row[lo::kDiscount].AsInt();
    const int64_t qty = row[lo::kQuantity].AsInt();
    if (date >= 19930101 && date <= 19931231 && disc >= 1 && disc <= 3 &&
        qty < 25) {
      expected += row[lo::kExtendedPrice].AsDouble() *
                  static_cast<double>(disc);
    }
  }
  const QueryResult result = RunOn(shared_, 0);
  EXPECT_EQ(result.rows, 1u);
  EXPECT_NEAR(result.checksum, expected, std::abs(expected) * 1e-9 + 1e-6);
}

TEST_F(QueriesTest, Q21MatchesNaiveReference) {
  // Q2.1: SUM(revenue) by (d_year, p_brand1) where p_category='MFGR#12'
  // and s_region='AMERICA'. The checksum also includes group keys, so
  // compute it the same way.
  std::map<std::pair<int64_t, std::string>, double> groups;
  for (const Row& row : dataset_->lineorder) {
    const Row& part = dataset_->part[row[lo::kPartKey].AsInt() - 1];
    const Row& supp = dataset_->supplier[row[lo::kSuppKey].AsInt() - 1];
    if (part[part::kCategory].AsString() != "MFGR#12") continue;
    if (supp[supp::kRegion].AsString() != "AMERICA") continue;
    const int64_t year = row[lo::kOrderDate].AsInt() / 10000;
    groups[{year, part[part::kBrand1].AsString()}] +=
        row[lo::kRevenue].AsDouble();
  }
  double expected_checksum = 0;
  const std::hash<std::string> hasher;
  for (const auto& [key, revenue] : groups) {
    expected_checksum += static_cast<double>(key.first);
    expected_checksum += static_cast<double>(hasher(key.second) % 1000003);
    expected_checksum += revenue;
  }
  const QueryResult result = RunOn(shared_, 3);
  EXPECT_EQ(result.rows, groups.size());
  EXPECT_NEAR(result.checksum, expected_checksum,
              std::abs(expected_checksum) * 1e-9 + 1e-6);
}

TEST_F(QueriesTest, Q41MatchesNaiveReference) {
  // Q4.1: SUM(revenue - supplycost) by (d_year, c_nation),
  // c_region=AMERICA, s_region=AMERICA, p_mfgr in {MFGR#1, MFGR#2}.
  std::map<std::pair<int64_t, std::string>, double> groups;
  for (const Row& row : dataset_->lineorder) {
    const Row& customer = dataset_->customer[row[lo::kCustKey].AsInt() - 1];
    const Row& supp = dataset_->supplier[row[lo::kSuppKey].AsInt() - 1];
    const Row& part_row = dataset_->part[row[lo::kPartKey].AsInt() - 1];
    if (customer[cust::kRegion].AsString() != "AMERICA") continue;
    if (supp[supp::kRegion].AsString() != "AMERICA") continue;
    const std::string& mfgr = part_row[part::kMfgr].AsString();
    if (mfgr != "MFGR#1" && mfgr != "MFGR#2") continue;
    const int64_t year = row[lo::kOrderDate].AsInt() / 10000;
    groups[{year, customer[cust::kNation].AsString()}] +=
        row[lo::kRevenue].AsDouble() - row[lo::kSupplyCost].AsDouble();
  }
  const QueryResult result = RunOn(shared_, 10);
  EXPECT_EQ(result.rows, groups.size());
}

TEST_F(QueriesTest, AllQueriesAgreeAcrossEngines) {
  // Row store (shared), row-store replica (isolated) and column store
  // (hybrid) must compute identical results on the loaded snapshot.
  for (int qid = 0; qid < kNumQueries; ++qid) {
    const QueryResult row_result = RunOn(shared_, qid);
    const QueryResult col_result = RunOn(hybrid_, qid);
    const QueryResult replica_result = RunOn(isolated_, qid);
    EXPECT_EQ(row_result.rows, col_result.rows) << QueryName(qid);
    EXPECT_EQ(row_result.rows, replica_result.rows) << QueryName(qid);
    const double tolerance = std::abs(row_result.checksum) * 1e-9 + 1e-6;
    EXPECT_NEAR(row_result.checksum, col_result.checksum, tolerance)
        << QueryName(qid);
    EXPECT_NEAR(row_result.checksum, replica_result.checksum, tolerance)
        << QueryName(qid);
  }
}

TEST_F(QueriesTest, IndexAssistedQ1MatchesSeqScan) {
  // The shared engine has lineorder_orderdate (all-indexes); the hybrid's
  // semi schema does not. Both must produce the same Q1 answers — already
  // covered above — and the index plan must actually engage.
  WorkMeter idx_meter;
  {
    AnalyticsSession session = shared_->BeginAnalytics(&idx_meter);
    ExecContext ctx{&idx_meter};
    RunQuery(1, *session.source, 0, &ctx);  // Q1.2: one month of dates
  }
  // Q1.2 touches ~1/84th of lineorder via the index: far fewer rows read
  // than the full table.
  EXPECT_LT(idx_meter.rows_read,
            dataset_->lineorder.size() / 4 + dataset_->date.size());
  EXPECT_GT(idx_meter.index_nodes, 0u);
}

TEST_F(QueriesTest, SelectiveQueriesReturnFewRowsButNonTrivialWork) {
  const QueryResult q34 = RunOn(shared_, 9);  // Q3.4: tiny city+month
  const QueryResult q31 = RunOn(shared_, 6);  // Q3.1: broad region query
  EXPECT_LE(q34.rows, q31.rows + 1);
}

TEST_F(QueriesTest, FreshnessReadbackInitiallyZero) {
  const QueryResult result = RunOn(shared_, 0);
  ASSERT_EQ(result.freshness.size(), 4u);
  for (int64_t v : result.freshness) EXPECT_EQ(v, 0);
}

TEST_F(QueriesTest, FreshnessReadbackSeesCommittedTxnNums) {
  // Use a dedicated engine so this test does not disturb the shared one.
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(*dataset_, PhysicalSchema::kSemiIndexes, &engine).ok());
  const EngineHandles handles =
      EngineHandles::Resolve(*engine.primary_catalog(), 4);
  WorkloadContext context(*dataset_);

  TxnParams params;
  params.type = TxnType::kCountOrders;
  params.customer_name = CustomerName(1);
  WorkMeter meter;
  ASSERT_TRUE(engine
                  .ExecuteTransaction(
                      MakeTxnBody(params, handles, /*client=*/2,
                                  /*txn_num=*/41),
                      2, 41, &meter)
                  .status.ok());

  const QueryResult result = RunOn(&engine, 0);
  ASSERT_EQ(result.freshness.size(), 4u);
  EXPECT_EQ(result.freshness[0], 0);
  EXPECT_EQ(result.freshness[1], 41);
}

TEST_F(QueriesTest, PlansBuildForAllIds) {
  WorkMeter meter;
  AnalyticsSession session = shared_->BeginAnalytics(&meter);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_NE(BuildQueryPlan(qid, *session.source), nullptr) << qid;
  }
}

TEST_F(QueriesTest, DeterministicAcrossRuns) {
  for (int qid : {0, 3, 6, 10}) {
    const QueryResult a = RunOn(shared_, qid);
    const QueryResult b = RunOn(shared_, qid);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  }
}

}  // namespace
}  // namespace hattrick
