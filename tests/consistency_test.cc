// Cross-representation consistency properties: after a random committed
// HATtrick workload, every engine's analytical view must agree with its
// transactional row store — the hybrid's column copy, the isolated
// engine's drained standby, and vacuumed stores must all answer queries
// identically. Also covers engine-level Vacuum().

#include <memory>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"

namespace hattrick {
namespace {

DatagenConfig SmallConfig(uint64_t seed) {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = 1500;
  config.seed = seed;
  config.num_freshness_tables = 4;
  return config;
}

/// Runs `n` random HATtrick transactions against `engine`.
void RunRandomWorkload(HtapEngine* engine, WorkloadContext* context,
                       uint64_t seed, int n) {
  const EngineHandles handles =
      EngineHandles::Resolve(*engine->primary_catalog(), 4);
  Rng rng(seed);
  uint64_t txn_num = 0;
  for (int i = 0; i < n; ++i) {
    const TxnParams params = GenerateTxnParams(context, &rng);
    ++txn_num;
    WorkMeter meter;
    const TxnOutcome outcome = engine->ExecuteTransaction(
        MakeTxnBody(params, handles, /*client=*/1 + (i % 4), txn_num),
        1 + (i % 4), txn_num, &meter);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
}

/// Checksums of all 13 queries through the engine's analytical path
/// (maintenance drained first).
std::vector<double> AllQueryChecksums(HtapEngine* engine) {
  WorkMeter meter;
  while (engine->MaintenanceStep(&meter)) {
  }
  std::vector<double> checksums;
  for (int qid = 0; qid < kNumQueries; ++qid) {
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    checksums.push_back(RunQuery(qid, *session.source, 4, &ctx).checksum);
  }
  return checksums;
}

class ConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyTest, HybridColumnCopyMatchesRowStore) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 13, 300);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);  // merge
  session.guard.reset();

  // Every table: the column copy equals the newest row-store contents.
  Catalog* catalog = engine.primary_catalog();
  for (TableId id = 0; id < catalog->num_tables(); ++id) {
    RowTable* rows = catalog->GetTable(id);
    const ColumnTable* columns =
        engine.column_table(catalog->table_name(id));
    ASSERT_EQ(rows->NumSlots(), columns->num_rows())
        << catalog->table_name(id);
    for (Rid rid = 0; rid < rows->NumSlots(); rid += 7) {
      Row row_version;
      ASSERT_TRUE(rows->ReadLatest(rid, &row_version, nullptr));
      EXPECT_EQ(row_version, columns->GetRow(rid))
          << catalog->table_name(id) << " rid " << rid;
    }
  }
}

TEST_P(ConsistencyTest, IsolatedStandbyConvergesToPrimary) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine engine(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 17, 300);

  WorkMeter meter;
  while (engine.MaintenanceStep(&meter)) {
  }
  EXPECT_EQ(engine.ReplicationLag(), 0u);

  Catalog* primary = engine.primary_catalog();
  Catalog* standby = engine.replica()->catalog();
  for (TableId id = 0; id < primary->num_tables(); ++id) {
    RowTable* p = primary->GetTable(id);
    RowTable* s = standby->GetTable(id);
    ASSERT_EQ(p->NumSlots(), s->NumSlots()) << primary->table_name(id);
    for (Rid rid = 0; rid < p->NumSlots(); rid += 5) {
      Row pr;
      Row sr;
      ASSERT_TRUE(p->ReadLatest(rid, &pr, nullptr));
      ASSERT_TRUE(s->ReadLatest(rid, &sr, nullptr));
      EXPECT_EQ(pr, sr) << primary->table_name(id) << " rid " << rid;
    }
  }
}

TEST_P(ConsistencyTest, SharedAndHybridAgreeOnAllQueries) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  SharedEngine shared;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &shared).ok());
  HybridEngine hybrid;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &hybrid).ok());

  // Identical committed histories on both engines.
  WorkloadContext shared_context(dataset);
  WorkloadContext hybrid_context(dataset);
  RunRandomWorkload(&shared, &shared_context, GetParam() * 19, 200);
  RunRandomWorkload(&hybrid, &hybrid_context, GetParam() * 19, 200);

  const std::vector<double> a = AllQueryChecksums(&shared);
  const std::vector<double> b = AllQueryChecksums(&hybrid);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_NEAR(a[qid], b[qid], std::abs(a[qid]) * 1e-9 + 1e-6)
        << QueryName(qid);
  }
}

TEST_P(ConsistencyTest, VacuumPreservesQueryResults) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 23, 400);

  const std::vector<double> before = AllQueryChecksums(&engine);
  // Updates (payments, freshness bumps) must have produced garbage.
  const size_t dropped = engine.Vacuum();
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(engine.Vacuum(), 0u);  // idempotent once clean
  const std::vector<double> after = AllQueryChecksums(&engine);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_DOUBLE_EQ(before[qid], after[qid]) << QueryName(qid);
  }
  // Transactions still work post-vacuum.
  RunRandomWorkload(&engine, &context, GetParam() * 29, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyTest,
                         ::testing::Values(1001, 2002, 3003));

}  // namespace
}  // namespace hattrick
