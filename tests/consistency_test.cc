// Cross-representation consistency properties: after a random committed
// HATtrick workload, every engine's analytical view must agree with its
// transactional row store — the hybrid's column copy, the isolated
// engine's drained standby, and vacuumed stores must all answer queries
// identically. Also covers engine-level Vacuum() and a randomized
// concurrency stress: T-client threads mutate while dop=4 analytics run,
// and every analytical snapshot must be transactionally consistent (no
// torn FRESHNESS reads, exact S_YTD/HISTORY balance).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "exec/expression.h"
#include "exec/operator.h"
#include "hattrick/datagen.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"

namespace hattrick {
namespace {

DatagenConfig SmallConfig(uint64_t seed) {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = 1500;
  config.seed = seed;
  config.num_freshness_tables = 4;
  return config;
}

/// Runs `n` random HATtrick transactions against `engine`.
void RunRandomWorkload(HtapEngine* engine, WorkloadContext* context,
                       uint64_t seed, int n) {
  const EngineHandles handles =
      EngineHandles::Resolve(*engine->primary_catalog(), 4);
  Rng rng(seed);
  uint64_t txn_num = 0;
  for (int i = 0; i < n; ++i) {
    const TxnParams params = GenerateTxnParams(context, &rng);
    ++txn_num;
    WorkMeter meter;
    const TxnOutcome outcome = engine->ExecuteTransaction(
        MakeTxnBody(params, handles, /*client=*/1 + (i % 4), txn_num),
        1 + (i % 4), txn_num, &meter);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
}

/// Checksums of all 13 queries through the engine's analytical path
/// (maintenance drained first).
std::vector<double> AllQueryChecksums(HtapEngine* engine) {
  WorkMeter meter;
  while (engine->MaintenanceStep(&meter)) {
  }
  std::vector<double> checksums;
  for (int qid = 0; qid < kNumQueries; ++qid) {
    AnalyticsSession session = engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    checksums.push_back(RunQuery(qid, *session.source, 4, &ctx).checksum);
  }
  return checksums;
}

class ConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyTest, HybridColumnCopyMatchesRowStore) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 13, 300);

  WorkMeter meter;
  // Force full visibility into the columnar base: merges the delta
  // queue in eager mode, folds every version in bitmap mode.
  engine.FoldAll(&meter);

  // Every table: the column copy equals the newest row-store contents.
  Catalog* catalog = engine.primary_catalog();
  for (TableId id = 0; id < catalog->num_tables(); ++id) {
    RowTable* rows = catalog->GetTable(id);
    const ColumnTable* columns =
        engine.column_table(catalog->table_name(id));
    ASSERT_EQ(rows->NumSlots(), columns->num_rows())
        << catalog->table_name(id);
    for (Rid rid = 0; rid < rows->NumSlots(); rid += 7) {
      Row row_version;
      ASSERT_TRUE(rows->ReadLatest(rid, &row_version, nullptr));
      EXPECT_EQ(row_version, columns->GetRow(rid))
          << catalog->table_name(id) << " rid " << rid;
    }
  }
}

TEST_P(ConsistencyTest, IsolatedStandbyConvergesToPrimary) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine engine(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 17, 300);

  WorkMeter meter;
  while (engine.MaintenanceStep(&meter)) {
  }
  EXPECT_EQ(engine.ReplicationLag(), 0u);

  Catalog* primary = engine.primary_catalog();
  Catalog* standby = engine.replica()->catalog();
  for (TableId id = 0; id < primary->num_tables(); ++id) {
    RowTable* p = primary->GetTable(id);
    RowTable* s = standby->GetTable(id);
    ASSERT_EQ(p->NumSlots(), s->NumSlots()) << primary->table_name(id);
    for (Rid rid = 0; rid < p->NumSlots(); rid += 5) {
      Row pr;
      Row sr;
      ASSERT_TRUE(p->ReadLatest(rid, &pr, nullptr));
      ASSERT_TRUE(s->ReadLatest(rid, &sr, nullptr));
      EXPECT_EQ(pr, sr) << primary->table_name(id) << " rid " << rid;
    }
  }
}

TEST_P(ConsistencyTest, SharedAndHybridAgreeOnAllQueries) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  SharedEngine shared;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &shared).ok());
  HybridEngine hybrid;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &hybrid).ok());

  // Identical committed histories on both engines.
  WorkloadContext shared_context(dataset);
  WorkloadContext hybrid_context(dataset);
  RunRandomWorkload(&shared, &shared_context, GetParam() * 19, 200);
  RunRandomWorkload(&hybrid, &hybrid_context, GetParam() * 19, 200);

  const std::vector<double> a = AllQueryChecksums(&shared);
  const std::vector<double> b = AllQueryChecksums(&hybrid);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_NEAR(a[qid], b[qid], std::abs(a[qid]) * 1e-9 + 1e-6)
        << QueryName(qid);
  }
}

TEST_P(ConsistencyTest, VacuumPreservesQueryResults) {
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 23, 400);

  const std::vector<double> before = AllQueryChecksums(&engine);
  // Updates (payments, freshness bumps) must have produced garbage.
  const size_t dropped = engine.Vacuum();
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(engine.Vacuum(), 0u);  // idempotent once clean
  const std::vector<double> after = AllQueryChecksums(&engine);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    EXPECT_DOUBLE_EQ(before[qid], after[qid]) << QueryName(qid);
  }
  // Transactions still work post-vacuum.
  RunRandomWorkload(&engine, &context, GetParam() * 29, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyTest,
                         ::testing::Values(1001, 2002, 3003));

// ---------------------------------------------------------------------------
// Randomized concurrency stress: writers mutate while dop=4 analytics run.
// ---------------------------------------------------------------------------

/// SUM(column) over `table` through the analytical source, in exact
/// fixed-point units (SUMs accumulate in DECIMAL(.,4) fixed point, so the
/// quantized value is an exact function of the snapshot's row set).
int64_t SumFixed(const DataSource& source, const std::string& table,
                 size_t column) {
  ScanSpec spec;
  spec.table = table;
  spec.projection = {column};
  OperatorPtr plan =
      MakeHashAggregate(source.Scan(spec), {},
                        {AggSpec{AggSpec::Kind::kSum, Col(0)}});
  WorkMeter meter;
  ExecContext ctx{&meter};
  const std::vector<Row> rows = Collect(plan.get(), &ctx);
  EXPECT_EQ(rows.size(), 1u) << table;
  return QuantizeSumValue(rows.at(0).at(0).AsDouble());
}

/// Reads FRESHNESS_client through the analytical source. A torn read
/// would show up as a missing row or a value never written.
int64_t FreshnessValue(const DataSource& source, uint32_t client) {
  ScanSpec spec;
  spec.table = FreshnessTableName(client);
  spec.projection = {fresh::kTxnNum};
  WorkMeter meter;
  ExecContext ctx{&meter};
  OperatorPtr plan = source.Scan(spec);
  const std::vector<Row> rows = Collect(plan.get(), &ctx);
  EXPECT_EQ(rows.size(), 1u) << spec.table;
  return rows.empty() ? -1 : rows.at(0).at(0).AsInt();
}

/// The randomized stress harness (ISSUE satellite): `kClients` writer
/// threads each run `kTxnsPerClient` random HATtrick transactions while
/// the main thread repeatedly opens analytical sessions and, on every
/// snapshot, asserts
///   (a) SUM(S_YTD) - SUM(HISTORY.amount) stays at its initial value —
///       Payment updates both atomically, so any imbalance is a torn
///       snapshot (exact fixed-point arithmetic, no tolerance);
///   (b) each FRESHNESS_j value is monotone across snapshots and never
///       exceeds what client j has issued — a torn or time-travelling
///       freshness read fails the bounds;
///   (c) a dop=4 dynamic-morsel SSB query returns bit-identical rows to
///       the serial plan on the same snapshot, with worker threads racing
///       the writers.
void StressParallelSnapshots(HtapEngine* engine, const Dataset& dataset,
                             uint64_t seed) {
  WorkloadContext context(dataset);
  const EngineHandles handles =
      EngineHandles::Resolve(*engine->primary_catalog(), 4);

  WorkMeter meter;
  int64_t base_balance;
  {
    AnalyticsSession s0 = engine->BeginAnalytics(&meter);
    base_balance = SumFixed(*s0.source, kSupplier, supp::kYtd) -
                   SumFixed(*s0.source, kHistory, hist::kAmount);
  }

  constexpr int kClients = 4;
  constexpr uint64_t kTxnsPerClient = 150;
  std::atomic<int> running{kClients};
  std::atomic<int> failures{0};
  std::array<std::atomic<uint64_t>, kClients> issued{};
  std::vector<std::thread> writers;
  writers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    writers.emplace_back([&, c] {
      Rng rng(seed * 101 + static_cast<uint64_t>(c));
      for (uint64_t txn_num = 1; txn_num <= kTxnsPerClient; ++txn_num) {
        const TxnParams params = GenerateTxnParams(&context, &rng);
        issued[c].store(txn_num, std::memory_order_release);
        WorkMeter m;
        const TxnOutcome outcome = engine->ExecuteTransaction(
            MakeTxnBody(params, handles, static_cast<uint32_t>(c) + 1,
                        txn_num),
            static_cast<uint32_t>(c) + 1, txn_num, &m);
        if (!outcome.status.ok()) failures.fetch_add(1);
      }
      running.fetch_sub(1);
    });
  }

  std::array<int64_t, kClients> last_fresh{};
  int qid = 0;
  int iterations = 0;
  // Keep snapshotting while the writers run, plus a few quiescent rounds.
  while (running.load() > 0 || iterations < 3) {
    AnalyticsSession session = engine->BeginAnalytics(&meter);

    const int64_t ytd = SumFixed(*session.source, kSupplier, supp::kYtd);
    const int64_t hist = SumFixed(*session.source, kHistory, hist::kAmount);
    EXPECT_EQ(ytd - hist, base_balance)
        << "torn snapshot: supplier YTD and payment history disagree";

    for (int c = 0; c < kClients; ++c) {
      const int64_t seen =
          FreshnessValue(*session.source, static_cast<uint32_t>(c) + 1);
      // `issued` is loaded after the snapshot was taken, so it bounds
      // every transaction the snapshot could possibly contain.
      const int64_t hi = static_cast<int64_t>(
          issued[c].load(std::memory_order_acquire));
      EXPECT_GE(seen, last_fresh[c]) << "freshness went backwards";
      EXPECT_LE(seen, hi) << "freshness read a value never committed";
      last_fresh[c] = seen;
    }

    ExecContext serial_ctx{&meter};
    OperatorPtr serial_plan = BuildQueryPlan(qid, *session.source);
    const std::vector<Row> serial = Collect(serial_plan.get(), &serial_ctx);
    ExecContext par_ctx{&meter};
    par_ctx.dop = 4;
    par_ctx.dynamic_morsels = true;
    par_ctx.session_pin = session.guard;
    OperatorPtr par_plan = BuildParallelQueryPlan(qid, *session.source,
                                                 /*dop=*/4,
                                                 /*dynamic_morsels=*/true);
    const std::vector<Row> parallel = Collect(par_plan.get(), &par_ctx);
    EXPECT_EQ(serial, parallel) << QueryName(qid) << " under writers";

    qid = (qid + 1) % kNumQueries;
    ++iterations;
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: all committed work must be visible exactly once.
  AnalyticsSession fin = engine->BeginAnalytics(&meter);
  EXPECT_EQ(SumFixed(*fin.source, kSupplier, supp::kYtd) -
                SumFixed(*fin.source, kHistory, hist::kAmount),
            base_balance);
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(FreshnessValue(*fin.source, static_cast<uint32_t>(c) + 1),
              static_cast<int64_t>(kTxnsPerClient));
  }
}

/// ~15k lineorders: enough extent for several morsels per dop=4 worker.
DatagenConfig StressConfig(uint64_t seed) {
  DatagenConfig config = SmallConfig(seed);
  config.scale_factor = 10.0;
  return config;
}

TEST_P(ConsistencyTest, HybridSnapshotsConsistentUnderConcurrentWriters) {
  const Dataset dataset = GenerateDataset(StressConfig(GetParam()));
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  StressParallelSnapshots(&engine, dataset, GetParam() * 7);
}

TEST_P(ConsistencyTest, HybridBitmapSnapshotsConsistentUnderBackgroundFold) {
  // Bitmap merge mode under maximum contention: writer threads append
  // versions, analytics snapshot and scan through visibility bitmaps,
  // and a background thread (the threaded driver's applier, replicated
  // here) keeps folding versions into the base — the GC whose
  // reallocations the session pins must fence off.
  const Dataset dataset = GenerateDataset(StressConfig(GetParam()));
  HybridEngineConfig config;
  config.merge_mode = MergeMode::kBitmap;
  config.fold_watermark = 256;  // low enough for many folds per run
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());

  std::atomic<bool> stop{false};
  std::thread folder([&] {
    WorkMeter m;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!engine.MaintenanceStep(&m)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });
  StressParallelSnapshots(&engine, dataset, GetParam() * 7);
  stop.store(true);
  folder.join();

  // Fully folded, the columnar base must equal the row store exactly.
  WorkMeter meter;
  engine.FoldAll(&meter);
  EXPECT_EQ(engine.PendingDelta(), 0u);
  Catalog* catalog = engine.primary_catalog();
  for (TableId id = 0; id < catalog->num_tables(); ++id) {
    RowTable* rows = catalog->GetTable(id);
    const ColumnTable* columns =
        engine.column_table(catalog->table_name(id));
    ASSERT_EQ(rows->NumSlots(), columns->num_rows())
        << catalog->table_name(id);
    for (Rid rid = 0; rid < rows->NumSlots(); rid += 11) {
      Row row_version;
      ASSERT_TRUE(rows->ReadLatest(rid, &row_version, nullptr));
      EXPECT_EQ(row_version, columns->GetRow(rid))
          << catalog->table_name(id) << " rid " << rid;
    }
  }
}

TEST_P(ConsistencyTest, SharedSnapshotsConsistentUnderConcurrentWriters) {
  const Dataset dataset = GenerateDataset(StressConfig(GetParam()));
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  StressParallelSnapshots(&engine, dataset, GetParam() * 11);
}

}  // namespace
}  // namespace hattrick
