// Tests for the execution layer: expressions, relational operators
// (including randomized checks against naive reference implementations),
// and the row/column scan sources with pushdowns, zone-map pruning, and
// index-assisted scans.

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/operator.h"
#include "exec/scan.h"
#include "storage/catalog.h"
#include "storage/column_table.h"

namespace hattrick {
namespace {

Row R(std::initializer_list<Value> values) { return Row(values); }

std::vector<Row> RunPlan(OperatorPtr op, WorkMeter* meter = nullptr) {
  WorkMeter local;
  ExecContext ctx{meter != nullptr ? meter : &local};
  return Collect(op.get(), &ctx);
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

TEST(ExpressionTest, ColumnAndLiteral) {
  const Row row = R({int64_t{5}, std::string("x")});
  EXPECT_EQ(Col(0)->Eval(row).AsInt(), 5);
  EXPECT_EQ(Col(1)->Eval(row).AsString(), "x");
  EXPECT_EQ(Lit(Value(int64_t{9}))->Eval(row).AsInt(), 9);
}

TEST(ExpressionTest, IntArithmetic) {
  const Row row = R({int64_t{6}, int64_t{4}});
  EXPECT_EQ(Add(Col(0), Col(1))->Eval(row).AsInt(), 10);
  EXPECT_EQ(Sub(Col(0), Col(1))->Eval(row).AsInt(), 2);
  EXPECT_EQ(Mul(Col(0), Col(1))->Eval(row).AsInt(), 24);
}

TEST(ExpressionTest, MixedArithmeticPromotesToDouble) {
  const Row row = R({int64_t{6}, 0.5});
  const Value v = Mul(Col(0), Col(1))->Eval(row);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.0);
}

TEST(ExpressionTest, Comparisons) {
  const Row row = R({int64_t{3}, int64_t{7}});
  EXPECT_TRUE(EvalBool(*Lt(Col(0), Col(1)), row));
  EXPECT_FALSE(EvalBool(*Gt(Col(0), Col(1)), row));
  EXPECT_TRUE(EvalBool(*Le(Col(0), Lit(Value(int64_t{3}))), row));
  EXPECT_TRUE(EvalBool(*Ge(Col(1), Lit(Value(int64_t{7}))), row));
  EXPECT_TRUE(EvalBool(*Ne(Col(0), Col(1)), row));
  EXPECT_FALSE(EvalBool(*Eq(Col(0), Col(1)), row));
}

TEST(ExpressionTest, LogicShortCircuits) {
  const Row row = R({int64_t{1}, int64_t{0}});
  EXPECT_TRUE(EvalBool(*Or(Col(0), Col(1)), row));
  EXPECT_FALSE(EvalBool(*And(Col(0), Col(1)), row));
  EXPECT_TRUE(EvalBool(*Not(Col(1)), row));
}

TEST(ExpressionTest, BetweenInclusive) {
  EXPECT_TRUE(EvalBool(
      *Between(Col(0), Value(int64_t{1}), Value(int64_t{3})),
      R({int64_t{1}})));
  EXPECT_TRUE(EvalBool(
      *Between(Col(0), Value(int64_t{1}), Value(int64_t{3})),
      R({int64_t{3}})));
  EXPECT_FALSE(EvalBool(
      *Between(Col(0), Value(int64_t{1}), Value(int64_t{3})),
      R({int64_t{4}})));
}

TEST(ExpressionTest, InList) {
  const ExprPtr e =
      InList(Col(0), {Value("a"), Value("b")});
  EXPECT_TRUE(EvalBool(*e, R({std::string("a")})));
  EXPECT_FALSE(EvalBool(*e, R({std::string("c")})));
}

TEST(ExpressionTest, ToStringIsReadable) {
  EXPECT_EQ(Eq(Col(0), Lit(Value(int64_t{5})))->ToString(), "($0 = 5)");
}

// --------------------------------------------------------------------------
// Operators
// --------------------------------------------------------------------------

TEST(OperatorTest, FilterKeepsMatching) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(R({int64_t{i}}));
  auto out = RunPlan(MakeFilter(MakeValuesScan(rows),
                            Ge(Col(0), Lit(Value(int64_t{7})))));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0][0].AsInt(), 7);
}

TEST(OperatorTest, ProjectComputesExpressions) {
  auto out = RunPlan(MakeProject(MakeValuesScan({R({int64_t{2}, int64_t{3}})}),
                             {Mul(Col(0), Col(1)), Col(0)}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt(), 6);
  EXPECT_EQ(out[0][1].AsInt(), 2);
}

TEST(OperatorTest, HashJoinMatchesPairs) {
  std::vector<Row> probe = {R({int64_t{1}, std::string("p1")}),
                            R({int64_t{2}, std::string("p2")}),
                            R({int64_t{3}, std::string("p3")})};
  std::vector<Row> build = {R({int64_t{2}, std::string("b2")}),
                            R({int64_t{3}, std::string("b3")}),
                            R({int64_t{4}, std::string("b4")})};
  auto out = RunPlan(MakeHashJoin(MakeValuesScan(probe), 0,
                              MakeValuesScan(build), 0));
  ASSERT_EQ(out.size(), 2u);
  // Output = probe row ++ build row.
  for (const Row& row : out) {
    EXPECT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0].AsInt(), row[2].AsInt());
  }
}

TEST(OperatorTest, HashJoinDuplicateBuildKeys) {
  std::vector<Row> probe = {R({int64_t{1}})};
  std::vector<Row> build = {R({int64_t{1}, std::string("a")}),
                            R({int64_t{1}, std::string("b")})};
  auto out = RunPlan(MakeHashJoin(MakeValuesScan(probe), 0,
                              MakeValuesScan(build), 0));
  EXPECT_EQ(out.size(), 2u);
}

TEST(OperatorTest, HashJoinEmptySides) {
  EXPECT_TRUE(RunPlan(MakeHashJoin(MakeValuesScan({}), 0,
                               MakeValuesScan({R({int64_t{1}})}), 0))
                  .empty());
  EXPECT_TRUE(RunPlan(MakeHashJoin(MakeValuesScan({R({int64_t{1}})}), 0,
                               MakeValuesScan({}), 0))
                  .empty());
}

TEST(OperatorTest, HashAggregateGroupsAndSums) {
  std::vector<Row> rows = {R({std::string("a"), int64_t{1}}),
                           R({std::string("b"), int64_t{2}}),
                           R({std::string("a"), int64_t{3}})};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kSum, Col(1)});
  aggs.push_back({AggSpec::Kind::kCount, nullptr});
  auto out = RunPlan(MakeHashAggregate(MakeValuesScan(rows), {Col(0)},
                                   std::move(aggs)));
  ASSERT_EQ(out.size(), 2u);  // groups a, b in key order
  EXPECT_EQ(out[0][0].AsString(), "a");
  EXPECT_DOUBLE_EQ(out[0][1].AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(out[0][2].AsDouble(), 2.0);
  EXPECT_EQ(out[1][0].AsString(), "b");
  EXPECT_DOUBLE_EQ(out[1][1].AsDouble(), 2.0);
}

TEST(OperatorTest, HashAggregateMinMax) {
  std::vector<Row> rows = {R({int64_t{5}}), R({int64_t{-2}}),
                           R({int64_t{9}})};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kMin, Col(0)});
  aggs.push_back({AggSpec::Kind::kMax, Col(0)});
  auto out = RunPlan(MakeHashAggregate(MakeValuesScan(rows), {},
                                   std::move(aggs)));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][0].AsDouble(), -2.0);
  EXPECT_DOUBLE_EQ(out[0][1].AsDouble(), 9.0);
}

TEST(OperatorTest, GlobalAggregateOnEmptyInputEmitsZeroRow) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kSum, Col(0)});
  auto out = RunPlan(MakeHashAggregate(MakeValuesScan({}), {},
                                   std::move(aggs)));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][0].AsDouble(), 0.0);
}

TEST(OperatorTest, GroupedAggregateOnEmptyInputIsEmpty) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kSum, Col(1)});
  auto out = RunPlan(MakeHashAggregate(MakeValuesScan({}), {Col(0)},
                                   std::move(aggs)));
  EXPECT_TRUE(out.empty());
}

TEST(OperatorTest, OrderBySortsAscendingAndDescending) {
  std::vector<Row> rows = {R({int64_t{2}}), R({int64_t{3}}),
                           R({int64_t{1}})};
  auto asc = RunPlan(MakeOrderBy(MakeValuesScan(rows), {{Col(0), true}}));
  EXPECT_EQ(asc[0][0].AsInt(), 1);
  EXPECT_EQ(asc[2][0].AsInt(), 3);
  auto desc = RunPlan(MakeOrderBy(MakeValuesScan(rows), {{Col(0), false}}));
  EXPECT_EQ(desc[0][0].AsInt(), 3);
}

TEST(OperatorTest, OrderByTieBreaksWithSecondKey) {
  std::vector<Row> rows = {R({int64_t{1}, std::string("b")}),
                           R({int64_t{1}, std::string("a")})};
  auto out = RunPlan(MakeOrderBy(MakeValuesScan(rows),
                             {{Col(0), true}, {Col(1), true}}));
  EXPECT_EQ(out[0][1].AsString(), "a");
}

// Randomized join+aggregate against a reference implementation.
class ExecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecPropertyTest, JoinAggregateMatchesReference) {
  Rng rng(GetParam());
  std::vector<Row> fact;
  std::vector<Row> dim;
  const int num_keys = 20;
  for (int i = 0; i < num_keys; ++i) {
    dim.push_back(R({int64_t{i}, std::string(i % 3 == 0 ? "g0" : "g1")}));
  }
  for (int i = 0; i < 500; ++i) {
    fact.push_back(
        R({rng.Uniform(0, num_keys + 5), rng.Uniform(1, 100)}));
  }

  // Reference: sum fact.v grouped by dim.group for joined keys.
  std::map<std::string, double> expected;
  for (const Row& f : fact) {
    const int64_t k = f[0].AsInt();
    if (k < num_keys) {
      expected[k % 3 == 0 ? "g0" : "g1"] += static_cast<double>(f[1].AsInt());
    }
  }

  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kSum, Col(1)});
  auto out = RunPlan(MakeHashAggregate(
      MakeHashJoin(MakeValuesScan(fact), 0, MakeValuesScan(dim), 0),
      {Col(3)}, std::move(aggs)));

  std::map<std::string, double> got;
  for (const Row& row : out) got[row[0].AsString()] = row[1].AsDouble();
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_NEAR(got[k], v, 1e-6) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------------------------------
// Scan sources
// --------------------------------------------------------------------------

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = catalog_.CreateTable(
        "t", Schema({{"k", DataType::kInt64},
                     {"v", DataType::kDouble},
                     {"s", DataType::kString}}));
    catalog_.CreateIndex("t_k", "t", {0}, false);
    column_ = std::make_unique<ColumnTable>(table_->schema());
    for (int i = 0; i < 2500; ++i) {
      const Row row{int64_t{i}, static_cast<double>(i) / 2,
                    std::string(i % 2 == 0 ? "even" : "odd")};
      const Rid rid = table_->Insert(row, 1, nullptr);
      catalog_.GetIndex("t_k")->tree->Insert(
          catalog_.GetIndex("t_k")->KeyFor(row, rid), rid, nullptr);
      ASSERT_TRUE(column_->Append(row, nullptr).ok());
    }
  }

  ScanSpec BaseSpec() {
    ScanSpec spec;
    spec.table = "t";
    spec.projection = {0, 2};
    return spec;
  }

  Catalog catalog_;
  RowTable* table_ = nullptr;
  std::unique_ptr<ColumnTable> column_;
};

TEST_F(ScanTest, RowScanProjectsAndFilters) {
  RowDataSource source(&catalog_, /*snapshot=*/1);
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 10, 19}};
  spec.str_in = {{2, {"even"}}};
  auto out = RunPlan(source.Scan(spec));
  ASSERT_EQ(out.size(), 5u);  // 10,12,14,16,18
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0][0].AsInt(), 10);
  EXPECT_EQ(out[0][1].AsString(), "even");
}

TEST_F(ScanTest, RowScanHonorsSnapshot) {
  // New row inserted at ts=5 is invisible to a snapshot at ts=1.
  table_->Insert(Row{int64_t{9999}, 0.0, std::string("even")}, 5, nullptr);
  RowDataSource old_source(&catalog_, 1);
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 9999, 9999}};
  EXPECT_TRUE(RunPlan(old_source.Scan(spec)).empty());
  RowDataSource new_source(&catalog_, 5);
  EXPECT_EQ(RunPlan(new_source.Scan(spec)).size(), 1u);
}

TEST_F(ScanTest, ColumnScanMatchesRowScan) {
  RowDataSource row_source(&catalog_, 1);
  ColumnDataSource col_source;
  col_source.AddTable("t", column_.get(), column_->num_rows());
  ScanSpec spec = BaseSpec();
  spec.ranges = {{1, 100.0, 200.0}};  // v in [100, 200]
  spec.str_in = {{2, {"odd"}}};
  auto rows = RunPlan(row_source.Scan(spec));
  auto cols = RunPlan(col_source.Scan(spec));
  ASSERT_EQ(rows.size(), cols.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], cols[i]);
}

TEST_F(ScanTest, ColumnScanRespectsBound) {
  ColumnDataSource source;
  source.AddTable("t", column_.get(), /*bound=*/100);
  auto out = RunPlan(source.Scan(BaseSpec()));
  EXPECT_EQ(out.size(), 100u);
}

TEST_F(ScanTest, ColumnScanImpossibleStringPredicate) {
  ColumnDataSource source;
  source.AddTable("t", column_.get(), column_->num_rows());
  ScanSpec spec = BaseSpec();
  spec.str_in = {{2, {"no-such-value"}}};
  EXPECT_TRUE(RunPlan(source.Scan(spec)).empty());
}

TEST_F(ScanTest, ZoneMapPruningSkipsBlocks) {
  ColumnDataSource source;
  source.AddTable("t", column_.get(), column_->num_rows());
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 0, 10}};  // first block only (k ascending)
  WorkMeter meter;
  auto out = RunPlan(source.Scan(spec), &meter);
  EXPECT_EQ(out.size(), 11u);
  // Cells evaluated must be far below a full 2500-row scan: only block 0
  // (1024 rows) and the pruned remainder contribute.
  EXPECT_LT(meter.column_values, 1200 * 3u);
}

TEST_F(ScanTest, IndexHintUsesIndexScan) {
  RowDataSource source(&catalog_, 1);
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 50, 59}};
  spec.index_hint = "t_k";
  WorkMeter meter;
  auto out = RunPlan(source.Scan(spec), &meter);
  ASSERT_EQ(out.size(), 10u);
  // Index scan touches ~10 rows, not 2500.
  EXPECT_LT(meter.rows_read, 50u);
  EXPECT_GT(meter.index_nodes, 0u);
}

TEST_F(ScanTest, IndexHintFallsBackWhenIndexMissing) {
  RowDataSource source(&catalog_, 1);
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 50, 59}};
  spec.index_hint = "no_such_index";
  auto out = RunPlan(source.Scan(spec));
  EXPECT_EQ(out.size(), 10u);  // same answer via sequential scan
}

TEST_F(ScanTest, IndexScanResultsMatchSeqScan) {
  RowDataSource source(&catalog_, 1);
  ScanSpec seq = BaseSpec();
  seq.ranges = {{0, 100, 220}};
  seq.str_in = {{2, {"odd"}}};
  ScanSpec idx = seq;
  idx.index_hint = "t_k";
  auto a = RunPlan(source.Scan(seq));
  auto b = RunPlan(source.Scan(idx));
  ASSERT_EQ(a.size(), b.size());
  // Index scan returns in key order == rid order here.
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// --------------------------------------------------------------------------
// Expression ToString coverage (one assertion per node type)
// --------------------------------------------------------------------------

TEST(ExpressionTest, ToStringCoversEveryNodeType) {
  EXPECT_EQ(Col(3)->ToString(), "$3");
  EXPECT_EQ(Lit(Value(int64_t{5}))->ToString(), "5");
  EXPECT_EQ(Lit(Value(2.5))->ToString(), "2.5000");
  EXPECT_EQ(Lit(Value("x"))->ToString(), "x");
  EXPECT_EQ(Add(Col(0), Col(1))->ToString(), "($0 + $1)");
  EXPECT_EQ(Sub(Col(0), Col(1))->ToString(), "($0 - $1)");
  EXPECT_EQ(Mul(Col(0), Col(1))->ToString(), "($0 * $1)");
  EXPECT_EQ(Eq(Col(0), Col(1))->ToString(), "($0 = $1)");
  EXPECT_EQ(Ne(Col(0), Col(1))->ToString(), "($0 <> $1)");
  EXPECT_EQ(Lt(Col(0), Col(1))->ToString(), "($0 < $1)");
  EXPECT_EQ(Le(Col(0), Col(1))->ToString(), "($0 <= $1)");
  EXPECT_EQ(Gt(Col(0), Col(1))->ToString(), "($0 > $1)");
  EXPECT_EQ(Ge(Col(0), Col(1))->ToString(), "($0 >= $1)");
  EXPECT_EQ(And(Col(0), Col(1))->ToString(), "($0 AND $1)");
  EXPECT_EQ(Or(Col(0), Col(1))->ToString(), "($0 OR $1)");
  EXPECT_EQ(Not(Col(0))->ToString(), "NOT $0");
  // Between lowers to the conjunction of two inclusive comparisons.
  EXPECT_EQ(Between(Col(0), Value(int64_t{1}), Value(int64_t{3}))->ToString(),
            "(($0 >= 1) AND ($0 <= 3))");
  EXPECT_EQ(InList(Col(0), {Value("a"), Value("b")})->ToString(),
            "$0 IN (a, b)");
}

// --------------------------------------------------------------------------
// Vectorized execution: EvalBatch and batch-at-a-time operators must be
// bit-identical to the retained row-at-a-time oracle, including metered
// work, at any batch size.
// --------------------------------------------------------------------------

TEST(BatchTest, DefaultBatchRowsMatchesZoneMapBlocks) {
  // A full batch must never straddle a zone-map block boundary, which the
  // column scan relies on for pruning parity at any batch size.
  EXPECT_EQ(kDefaultBatchRows, ColumnTable::kBlockRows);
}

TEST(BatchTest, SelectionVectorBasics) {
  Batch b;
  b.AppendRow(R({int64_t{10}}));
  b.AppendRow(R({int64_t{20}}));
  b.AppendRow(R({int64_t{30}}));
  EXPECT_EQ(b.ActiveRows(), 3u);
  b.sel.idx = {0, 2};
  b.filtered = true;
  ASSERT_EQ(b.ActiveRows(), 2u);
  EXPECT_EQ(b.cols[0].ints[b.ActiveIndex(1)], 30);
  std::vector<Row> out;
  b.AppendActiveRows(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1][0].AsInt(), 30);
}

TEST(BatchTest, AppendRowSplitsOnTypeSkew) {
  Batch b;
  b.AppendRow(R({int64_t{1}}));
  EXPECT_TRUE(b.TypesMatch(R({int64_t{2}})));
  EXPECT_FALSE(b.TypesMatch(R({std::string("s")})));
  EXPECT_FALSE(b.TypesMatch(R({int64_t{1}, int64_t{2}})));
}

// Evaluates every expression-kernel shape over randomized rows and checks
// the vectorized result cell-for-cell against the per-row interpreter.
TEST(ExpressionTest, EvalBatchMatchesEvalOracle) {
  Rng rng(99);
  const std::vector<std::string> strings = {"a", "b", "c"};
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(R({rng.Uniform(-5, 5), rng.Uniform(0, 10),
                      static_cast<double>(rng.Uniform(-100, 100)) / 4,
                      Value(strings[static_cast<size_t>(rng.Uniform(
                          0, static_cast<int64_t>(strings.size()) - 1))])}));
  }
  Batch batch;
  for (const Row& row : rows) batch.AppendRow(row);

  const std::vector<ExprPtr> exprs = {
      Col(0),
      Col(3),
      Lit(Value(int64_t{7})),
      Lit(Value(1.5)),
      Lit(Value("b")),
      Add(Col(0), Col(1)),
      Sub(Col(0), Lit(Value(int64_t{2}))),
      Mul(Col(0), Col(1)),
      Add(Col(0), Col(2)),  // int + double promotes
      Mul(Col(2), Lit(Value(2.0))),
      Lt(Col(0), Col(1)),
      Le(Col(2), Lit(Value(0.5))),
      Gt(Col(2), Col(0)),
      Ge(Col(1), Lit(Value(int64_t{5}))),
      Eq(Col(3), Lit(Value("a"))),
      Ne(Col(3), Lit(Value("c"))),
      Lt(Col(3), Lit(Value("b"))),
      Eq(Col(0), Col(3)),  // mixed int/string: row-fallback path
      And(Lt(Col(0), Col(1)), Eq(Col(3), Lit(Value("a")))),
      Or(Ge(Col(0), Lit(Value(int64_t{4}))), Eq(Col(3), Lit(Value("b")))),
      Not(Eq(Col(3), Lit(Value("c")))),
      Between(Col(0), Value(int64_t{-1}), Value(int64_t{3})),
      InList(Col(3), {Value("a"), Value("c")}),
      InList(Col(0), {Value(int64_t{0}), Value(int64_t{2})}),
  };
  for (const ExprPtr& e : exprs) {
    ColumnVector vec;
    e->EvalBatch(batch, &vec);
    ASSERT_EQ(vec.size(), rows.size()) << e->ToString();
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value want = e->Eval(rows[i]);
      const Value got = vec.GetValue(i);
      ASSERT_EQ(want.type(), got.type()) << e->ToString() << " row " << i;
      ASSERT_EQ(want, got) << e->ToString() << " row " << i;
    }
  }
}

using PlanFactory = std::function<OperatorPtr()>;

std::vector<Row> RunWithMode(const PlanFactory& make, bool vectorized,
                             size_t batch_rows, WorkMeter* meter) {
  ExecContext ctx{meter};
  ctx.vectorized = vectorized;
  ctx.batch_rows = batch_rows;
  OperatorPtr plan = make();
  return Collect(plan.get(), &ctx);
}

void ExpectSameMeter(const WorkMeter& got, const WorkMeter& want) {
  EXPECT_EQ(got.rows_read, want.rows_read);
  EXPECT_EQ(got.rows_written, want.rows_written);
  EXPECT_EQ(got.index_nodes, want.index_nodes);
  EXPECT_EQ(got.index_writes, want.index_writes);
  EXPECT_EQ(got.column_values, want.column_values);
  EXPECT_EQ(got.output_rows, want.output_rows);
  EXPECT_EQ(got.hash_probes, want.hash_probes);
  EXPECT_EQ(got.version_hops, want.version_hops);
  EXPECT_EQ(got.Total(), want.Total());
}

/// Runs `make`'s plan through the row oracle and through the vectorized
/// path at degenerate, odd, and default batch sizes; results and metered
/// work must match exactly in every configuration.
void ExpectBatchMatchesRowOracle(const PlanFactory& make) {
  WorkMeter oracle_meter;
  const std::vector<Row> oracle =
      RunWithMode(make, /*vectorized=*/false, 1, &oracle_meter);
  for (const size_t batch_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
    SCOPED_TRACE("batch_rows=" + std::to_string(batch_rows));
    WorkMeter meter;
    const std::vector<Row> got =
        RunWithMode(make, /*vectorized=*/true, batch_rows, &meter);
    ASSERT_EQ(got.size(), oracle.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], oracle[i]) << "row " << i;
    }
    ExpectSameMeter(meter, oracle_meter);
  }
}

TEST(BatchDifferentialTest, FilterProject) {
  std::vector<Row> rows;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    rows.push_back(R({rng.Uniform(0, 50), rng.Uniform(0, 100)}));
  }
  ExpectBatchMatchesRowOracle([&] {
    return MakeProject(
        MakeFilter(MakeValuesScan(rows),
                   And(Ge(Col(0), Lit(Value(int64_t{10}))),
                       Lt(Col(1), Lit(Value(int64_t{80}))))),
        {Add(Col(0), Col(1)), Mul(Col(0), Lit(Value(int64_t{3})))});
  });
}

TEST(BatchDifferentialTest, FilterRejectingEverything) {
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(R({int64_t{i}}));
  ExpectBatchMatchesRowOracle([&] {
    return MakeFilter(MakeValuesScan(rows), Lt(Col(0), Lit(Value(int64_t{0}))));
  });
}

TEST(BatchDifferentialTest, JoinAggregateOrderBy) {
  Rng rng(42);
  std::vector<Row> fact;
  std::vector<Row> dim;
  for (int i = 0; i < 25; ++i) {
    dim.push_back(R({int64_t{i}, Value(i % 4 == 0 ? "g0" : "g1")}));
  }
  for (int i = 0; i < 600; ++i) {
    fact.push_back(R({rng.Uniform(0, 30), rng.Uniform(1, 100)}));
  }
  ExpectBatchMatchesRowOracle([&] {
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Kind::kSum, Col(1)});
    aggs.push_back({AggSpec::Kind::kCount, nullptr});
    aggs.push_back({AggSpec::Kind::kMin, Col(1)});
    aggs.push_back({AggSpec::Kind::kMax, Col(1)});
    return MakeOrderBy(
        MakeHashAggregate(
            MakeHashJoin(MakeValuesScan(fact), 0, MakeValuesScan(dim), 0),
            {Col(3)}, std::move(aggs)),
        {{Col(1), false}});
  });
}

TEST(BatchDifferentialTest, GlobalAggregateEmptyInput) {
  ExpectBatchMatchesRowOracle([] {
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Kind::kSum, Col(0)});
    return MakeHashAggregate(MakeValuesScan({}), {}, std::move(aggs));
  });
}

TEST_F(ScanTest, RowScanBatchMatchesRowOracle) {
  RowDataSource source(&catalog_, 1);
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 100, 1500}};
  spec.str_in = {{2, {"even"}}};
  ExpectBatchMatchesRowOracle([&] { return source.Scan(spec); });
}

TEST_F(ScanTest, ColumnScanBatchMatchesRowOracle) {
  ColumnDataSource source;
  source.AddTable("t", column_.get(), column_->num_rows());
  ScanSpec spec = BaseSpec();
  spec.projection = {0, 1, 2};
  spec.ranges = {{0, 900, 2100}, {1, 0.0, 1000.0}};
  spec.str_in = {{2, {"odd"}}};
  ExpectBatchMatchesRowOracle([&] { return source.Scan(spec); });
}

TEST_F(ScanTest, ColumnScanBatchPrunesLikeRowOracle) {
  // Predicate selects only the first zone-map block, so pruning parity is
  // load-bearing for the meter comparison inside the harness.
  ColumnDataSource source;
  source.AddTable("t", column_.get(), column_->num_rows());
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 0, 10}};
  ExpectBatchMatchesRowOracle([&] { return source.Scan(spec); });
}

TEST_F(ScanTest, IndexScanBatchMatchesRowOracle) {
  // Index range scans stay row-native; this exercises the base-class
  // row-to-batch adapter end to end.
  RowDataSource source(&catalog_, 1);
  ScanSpec spec = BaseSpec();
  spec.ranges = {{0, 50, 400}};
  spec.index_hint = "t_k";
  ExpectBatchMatchesRowOracle([&] { return source.Scan(spec); });
}

TEST_F(ScanTest, FullPlanOverColumnScanMatchesRowOracle) {
  ColumnDataSource source;
  source.AddTable("t", column_.get(), column_->num_rows());
  ExpectBatchMatchesRowOracle([&] {
    ScanSpec spec;
    spec.table = "t";
    spec.projection = {0, 1, 2};
    spec.ranges = {{0, 0, 2000}};
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Kind::kSum, Col(1)});
    aggs.push_back({AggSpec::Kind::kCount, nullptr});
    return MakeHashAggregate(
        MakeFilter(source.Scan(spec), Eq(Col(2), Lit(Value("even")))),
        {Col(2)}, std::move(aggs));
  });
}

}  // namespace
}  // namespace hattrick
