// Tests for src/common: Status, StatusOr, Rng, Value, Schema,
// key encoding (including order-preservation properties), Sampler.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/key_encoding.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/value.h"
#include "common/work_meter.h"

namespace hattrick {
namespace {

// --------------------------------------------------------------------------
// Status / StatusOr
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing row");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing row");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kAborted,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    HATTRICK_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.Uniform(0, 9)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependent) {
  Rng base(19);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  EXPECT_NE(fork1.Next(), fork2.Next());
}

// --------------------------------------------------------------------------
// Value
// --------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, IntPromotesToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
}

TEST(ValueTest, CompareSameTypes) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
  EXPECT_LT(Value(1.5).Compare(Value(2.5)), 0);
}

TEST(ValueTest, CompareMixedNumerics) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
}

TEST(ValueTest, NumbersOrderBeforeStrings) {
  EXPECT_LT(Value(int64_t{5}).Compare(Value("5")), 0);
  EXPECT_GT(Value("5").Compare(Value(5.0)), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(1.5).ToString(), "1.5000");
}

TEST(ValueTest, RowToString) {
  EXPECT_EQ(RowToString(Row{Value(int64_t{1}), Value("x")}), "(1, x)");
}

// --------------------------------------------------------------------------
// Schema
// --------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"price", DataType::kDouble}});
}

TEST(SchemaTest, LookupByName) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("absent"), -1);
  EXPECT_EQ(s.ColumnIndex("price"), 2u);
}

TEST(SchemaTest, ValidateRowAcceptsMatching) {
  const Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateRow(Row{int64_t{1}, std::string("a"), 2.0}).ok());
}

TEST(SchemaTest, ValidateRowRejectsArity) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.ValidateRow(Row{int64_t{1}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRowRejectsTypeMismatch) {
  const Schema s = TestSchema();
  EXPECT_EQ(
      s.ValidateRow(Row{int64_t{1}, int64_t{2}, 3.0}).code(),
      StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TestSchema().ToString(), "id:INT64, name:STRING, price:DOUBLE");
}

// --------------------------------------------------------------------------
// Key encoding: order preservation is the core invariant.
// --------------------------------------------------------------------------

TEST(KeyEncodingTest, Int64RoundTrip) {
  for (int64_t v : {INT64_MIN, int64_t{-1}, int64_t{0}, int64_t{1},
                    int64_t{123456789}, INT64_MAX}) {
    std::string buf;
    key::EncodeInt64(v, &buf);
    size_t pos = 0;
    EXPECT_EQ(key::DecodeInt64(buf, &pos), v);
    EXPECT_EQ(pos, 8u);
  }
}

TEST(KeyEncodingTest, DoubleRoundTrip) {
  for (double v : {-1e308, -1.5, -0.0, 0.0, 1.5, 3.14159, 1e308}) {
    std::string buf;
    key::EncodeDouble(v, &buf);
    size_t pos = 0;
    EXPECT_DOUBLE_EQ(key::DecodeDouble(buf, &pos), v);
  }
}

TEST(KeyEncodingTest, StringRoundTripWithEmbeddedZeros) {
  const std::string value = std::string("a\0b", 3) + "tail";
  std::string buf;
  key::EncodeString(value, &buf);
  size_t pos = 0;
  EXPECT_EQ(key::DecodeString(buf, &pos), value);
  EXPECT_EQ(pos, buf.size());
}

TEST(KeyEncodingTest, Int64OrderPreservedProperty) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Next());
    const int64_t b = static_cast<int64_t>(rng.Next());
    std::string ea;
    std::string eb;
    key::EncodeInt64(a, &ea);
    key::EncodeInt64(b, &eb);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST(KeyEncodingTest, DoubleOrderPreservedProperty) {
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    const double a = (rng.NextDouble() - 0.5) * 1e12;
    const double b = (rng.NextDouble() - 0.5) * 1e12;
    std::string ea;
    std::string eb;
    key::EncodeDouble(a, &ea);
    key::EncodeDouble(b, &eb);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST(KeyEncodingTest, StringOrderPreservedProperty) {
  Rng rng(31);
  auto random_string = [&] {
    std::string s;
    const int len = static_cast<int>(rng.Uniform(0, 12));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.Uniform(0, 3)));  // many zeros
    }
    return s;
  };
  for (int i = 0; i < 2000; ++i) {
    const std::string a = random_string();
    const std::string b = random_string();
    std::string ea;
    std::string eb;
    key::EncodeString(a, &ea);
    key::EncodeString(b, &eb);
    EXPECT_EQ(a < b, ea < eb) << "a.size=" << a.size();
  }
}

TEST(KeyEncodingTest, CompositeKeysOrderLexicographically) {
  const std::string k1 = key::EncodeKey({Value("abc"), Value(int64_t{5})});
  const std::string k2 = key::EncodeKey({Value("abc"), Value(int64_t{6})});
  const std::string k3 = key::EncodeKey({Value("abd"), Value(int64_t{0})});
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
}

TEST(KeyEncodingTest, StringPrefixOrdersBeforeExtension) {
  std::string ea;
  std::string eb;
  key::EncodeString("ab", &ea);
  key::EncodeString("abc", &eb);
  EXPECT_LT(ea, eb);
}

TEST(KeyEncodingTest, PrefixSuccessorBoundsPrefixRange) {
  const std::string prefix = "abc";
  const std::string successor = key::PrefixSuccessor(prefix);
  EXPECT_EQ(successor, "abd");
  EXPECT_LT(prefix + "zzz", successor);
  const std::string all_ff = "\xff\xff";
  EXPECT_TRUE(key::PrefixSuccessor(all_ff).empty());
}

// --------------------------------------------------------------------------
// Sampler
// --------------------------------------------------------------------------

TEST(SamplerTest, EmptyBehaviour) {
  Sampler s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0);
}

TEST(SamplerTest, MeanMinMax) {
  Sampler s;
  for (double v : {3.0, 1.0, 2.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
}

TEST(SamplerTest, PercentileNearestRank) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 50);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 99);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1);
}

TEST(SamplerTest, CdfAt) {
  Sampler s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
}

TEST(SamplerTest, CdfPointsMonotone) {
  Sampler s;
  Rng rng(37);
  for (int i = 0; i < 500; ++i) s.Add(rng.NextDouble());
  const auto cdf = s.Cdf();
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SamplerTest, AddAfterSortKeepsCorrectness) {
  Sampler s;
  s.Add(5);
  EXPECT_DOUBLE_EQ(s.Max(), 5);
  s.Add(9);
  EXPECT_DOUBLE_EQ(s.Max(), 9);  // re-sorts lazily
}

TEST(SamplerTest, EmptyPercentileIsZero) {
  Sampler s;
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 0.0);
}

TEST(SamplerTest, SingleSampleAnswersEveryPercentile) {
  Sampler s;
  s.Add(42.0);
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.Percentile(p), 42.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Min(), 42.0);
  EXPECT_DOUBLE_EQ(s.Max(), 42.0);
}

TEST(SamplerTest, PercentileBoundsClampToMinMax) {
  Sampler s;
  Rng rng(41);
  for (int i = 0; i < 100; ++i) s.Add(rng.NextDouble() * 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), s.Min());
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), s.Max());
  // Out-of-range p is clamped, not undefined behaviour.
  EXPECT_DOUBLE_EQ(s.Percentile(-0.5), s.Min());
  EXPECT_DOUBLE_EQ(s.Percentile(1.5), s.Max());
}

TEST(SamplerTest, MergeDisjointRanges) {
  Sampler low;
  Sampler high;
  for (int i = 1; i <= 50; ++i) low.Add(i);            // [1, 50]
  for (int i = 51; i <= 100; ++i) high.Add(i);         // [51, 100]
  EXPECT_DOUBLE_EQ(high.Max(), 100);                   // force a sort first
  low.Merge(high);
  EXPECT_EQ(low.count(), 100u);
  EXPECT_DOUBLE_EQ(low.Min(), 1);
  EXPECT_DOUBLE_EQ(low.Max(), 100);
  EXPECT_DOUBLE_EQ(low.Percentile(0.5), 50);
  EXPECT_DOUBLE_EQ(low.Mean(), 50.5);
  // Merging an empty sampler changes nothing.
  low.Merge(Sampler{});
  EXPECT_EQ(low.count(), 100u);
}

// --------------------------------------------------------------------------
// WorkMeter
// --------------------------------------------------------------------------

TEST(WorkMeterTest, PlusEqualsSumsEveryCounter) {
  WorkMeter a;
  a.rows_read = 1;
  a.rows_written = 2;
  a.index_nodes = 3;
  a.index_writes = 4;
  a.column_values = 5;
  a.output_rows = 6;
  a.hash_probes = 7;
  a.wal_records = 8;
  a.wal_bytes = 9;
  a.merged_rows = 10;
  a.version_hops = 11;
  a.predicate_locks = 12;
  a.conflict_waits = 13;
  WorkMeter b = a;
  b += a;
  EXPECT_EQ(b.rows_read, 2u);
  EXPECT_EQ(b.rows_written, 4u);
  EXPECT_EQ(b.index_nodes, 6u);
  EXPECT_EQ(b.index_writes, 8u);
  EXPECT_EQ(b.column_values, 10u);
  EXPECT_EQ(b.output_rows, 12u);
  EXPECT_EQ(b.hash_probes, 14u);
  EXPECT_EQ(b.wal_records, 16u);
  EXPECT_EQ(b.wal_bytes, 18u);
  EXPECT_EQ(b.merged_rows, 20u);
  EXPECT_EQ(b.version_hops, 22u);
  EXPECT_EQ(b.predicate_locks, 24u);
  EXPECT_EQ(b.conflict_waits, 26u);
}

TEST(WorkMeterTest, TotalExcludesWalBytes) {
  WorkMeter m;
  m.rows_read = 3;
  m.wal_records = 2;
  m.wal_bytes = 1000000;  // bytes must not inflate the operation total
  EXPECT_EQ(m.Total(), 5u);
}

TEST(WorkMeterTest, ToStringListsAllCounters) {
  WorkMeter m;
  m.rows_read = 7;
  m.wal_bytes = 320;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("rows_read=7"), std::string::npos);
  EXPECT_NE(s.find("wal_bytes=320"), std::string::npos);
  EXPECT_NE(s.find("conflict_waits=0"), std::string::npos);
}

TEST(WorkMeterTest, ResetZeroesEverything) {
  WorkMeter m;
  m.rows_read = 5;
  m.wal_bytes = 6;
  m.Reset();
  EXPECT_EQ(m.Total(), 0u);
  EXPECT_EQ(m.wal_bytes, 0u);
}

// --------------------------------------------------------------------------
// Clocks
// --------------------------------------------------------------------------

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.AdvanceTo(2.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 2.5);
}

TEST(ClockTest, WallClockMonotone) {
  WallClock clock;
  const TimePoint a = clock.Now();
  const TimePoint b = clock.Now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace hattrick
