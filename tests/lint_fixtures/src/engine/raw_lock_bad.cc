// Fixture: every marked line must trip raw-lock.
#include <mutex>         // finding (include)
#include <shared_mutex>  // finding (include)

std::mutex g_mu;         // finding
std::shared_mutex g_sh;  // finding

void Critical() {
  std::lock_guard<std::mutex> guard(g_mu);  // finding
  g_sh.lock();    // finding
  g_sh.unlock();  // finding
}
