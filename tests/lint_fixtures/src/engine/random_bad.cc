// Fixture: every marked line must trip nondeterministic-random.
#include <cstdlib>
#include <random>

int AmbientRandom() {
  srand(42);                   // finding
  std::random_device entropy;  // finding
  (void)entropy;
  return std::rand();          // finding
}
