// Fixture: mentions of banned tokens in comments and string literals must
// NOT fire. std::mutex, std::rand(), time(nullptr), std::random_device —
// all prose.

/* Block comment mentioning std::shared_mutex and .lock() too. */

#include <string>

std::string Describe() {
  // The returned text talks about std::mutex but never uses it.
  std::string s = "uses std::rand() and std::chrono::system_clock";
  s += R"(raw string with std::mutex and time(nullptr) inside)";
  return s;
}
