// Fixture: every line below must trip nondeterministic-time.
#include <chrono>
#include <ctime>

double WallSeconds() {
  auto now = std::chrono::system_clock::now();          // finding
  (void)now;
  auto t0 = std::chrono::steady_clock::now();           // finding
  (void)t0;
  auto hr = std::chrono::high_resolution_clock::now();  // finding
  (void)hr;
  return static_cast<double>(time(nullptr));            // finding
}
