// Fixture: hand-rolled CAS outside src/txn/mvcc* must fire raw-cas.
void Install(Node* node, std::atomic<Node*>* head) {
  Node* expected = head->load();
  while (!head->compare_exchange_weak(expected, node)) {
  }
  head->compare_exchange_strong(expected, node);
  // Allowed inside strings and comments: compare_exchange_weak.
  const char* s = "compare_exchange_strong";
  (void)s;
}
