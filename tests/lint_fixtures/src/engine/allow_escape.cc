// Fixture: violations carrying lint:allow(...) must be silent, while the
// last line (no allow) must still fire.
#include <cstdlib>

int Mixed() {
  int a = std::rand();  // lint:allow(nondeterministic-random) test fixture
  srand(7);  // lint:allow(nondeterministic-random,raw-lock) multi-rule form
  return a + std::rand();  // finding: no allow on this line
}
