// Fixture: every lint:allow escape must carry a same-line justification
// after the closing paren; a bare allow fires allow-without-reason, and
// the rule cannot be silenced by allowing itself.
#include <cstdlib>

int Escapes() {
  int a = std::rand();  // lint:allow(nondeterministic-random) seeded fixture
  int b = std::rand();  // lint:allow(nondeterministic-random)
  int c = std::rand();  // lint:allow(nondeterministic-random,allow-without-reason)
  return a + b + c;
}
