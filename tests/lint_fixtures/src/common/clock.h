// Fixture: this path is allowlisted for nondeterministic-time, so the
// wall-clock read below must be silent.
#ifndef FIXTURE_COMMON_CLOCK_H_
#define FIXTURE_COMMON_CLOCK_H_

#include <chrono>

inline double FixtureNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#endif  // FIXTURE_COMMON_CLOCK_H_
