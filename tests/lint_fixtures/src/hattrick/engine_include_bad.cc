// Fixture: concrete engine headers above the engine layer must go
// through the facade/factory instead.
#include "engine/engine_factory.h"
#include "engine/shared_engine.h"
#include "engine/isolated_engine.h"
#include "engine/hybrid_engine.h"
// Prose mentioning #include "engine/shared_engine.h" must not fire.
#include "engine/hybrid_engine.h"  // lint:allow(concrete-engine-include) fixture
#include <engine/isolated_engine.h>
// Prose mentioning #include <engine/hybrid_engine.h> must not fire either.
