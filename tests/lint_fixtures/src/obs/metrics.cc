// Fixture: this path is an export path, so the unordered container below
// must trip unordered-export.
#include <string>
#include <unordered_map>

std::string ExportAll() {
  std::unordered_map<std::string, double> values;  // finding
  std::string out;
  for (const auto& [name, value] : values) {
    out += name + "=" + std::to_string(value) + "\n";
  }
  return out;
}
