// Fixture: assert() in replication code must trip assert-in-replication.
#include <cassert>
#include <cstdint>

void Apply(uint64_t lsn, uint64_t expected) {
  assert(lsn == expected);  // finding
}
