#!/usr/bin/env python3
"""Tests for tools/analyzer/hattrick_analyzer.py.

Same shape as lint_test.py: one positive and one negative fixture per
pass under tests/analyzer_fixtures/ (fixtures mirror repo paths because
the pin and determinism passes are path-scoped, resolved against
--repo-root), plus CLI behavior, lint:allow suppression, the whole-tree
clean run, and the BTree::CopyFrom self-test from the PR's acceptance
criteria: stripping the address-ordering conditional out of the real
btree.cc must make the lock-order pass report the cycle with witness
paths.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.normpath(os.path.join(TESTS_DIR, ".."))
FIXTURES = os.path.join(TESTS_DIR, "analyzer_fixtures")
ANALYZER = os.path.join(REPO_ROOT, "tools", "analyzer",
                        "hattrick_analyzer.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "analyzer"))
import hattrick_analyzer  # noqa: E402


def analyze(rels, repo_root=FIXTURES, frontend="builtin"):
    """Analyzes fixture files; returns the list of Finding objects."""
    paths = [os.path.join(repo_root, rel) for rel in rels]
    program = hattrick_analyzer.load_program(paths, repo_root,
                                             frontend=frontend)
    findings = []
    for _, run in hattrick_analyzer.PASSES.items():
        findings.extend(run(program))
    findings.sort(key=hattrick_analyzer.Finding.key)
    return findings


def fired(findings):
    return {(f.line, f.rule) for f in findings}


class LockOrderPassTest(unittest.TestCase):
    def test_cycle_fires_with_both_witnesses(self):
        findings = analyze(["src/storage/lock_cycle_bad.cc"])
        self.assertEqual({f.rule for f in findings}, {"lock-order-cycle"})
        self.assertEqual(len(findings), 1)
        msg = findings[0].message
        # Both witness acquisition paths are present: one per direction.
        self.assertIn("PairState::FrontFirst", msg)
        self.assertIn("PairState::BackFirst", msg)
        self.assertIn("PairState::front_mu_", msg)
        self.assertIn("PairState::back_mu_", msg)

    def test_consistent_order_and_address_idiom_are_silent(self):
        self.assertEqual(analyze(["src/storage/lock_cycle_ok.cc"]), [])


class UnpinnedSnapshotPassTest(unittest.TestCase):
    def test_unpinned_read_fires(self):
        findings = analyze(["src/engine/unpinned_bad.cc"])
        self.assertEqual({f.rule for f in findings}, {"unpinned-snapshot"})
        self.assertEqual([f.line for f in findings], [12])
        self.assertIn("Scanner::ScanWithoutPin", findings[0].message)

    def test_guarded_and_pinned_reads_are_silent(self):
        self.assertEqual(analyze(["src/engine/pinned_ok.cc"]), [])

    def test_pin_region_is_path_scoped(self):
        # The identical file outside src/engine|shard|storage is silent.
        with tempfile.TemporaryDirectory() as tmp:
            dst = os.path.join(tmp, "src", "hattrick")
            os.makedirs(dst)
            shutil.copy(
                os.path.join(FIXTURES, "src/engine/unpinned_bad.cc"),
                os.path.join(dst, "unpinned_bad.cc"))
            findings = analyze(["src/hattrick/unpinned_bad.cc"],
                               repo_root=tmp)
            self.assertEqual(findings, [])


class UnorderedIterationPassTest(unittest.TestCase):
    def test_unordered_iteration_fires_for_both_loop_forms(self):
        findings = analyze(["src/obs/export_unordered_bad.cc"])
        self.assertEqual({f.rule for f in findings},
                         {"unordered-iteration"})
        self.assertEqual([f.line for f in findings], [12, 19])
        self.assertIn("range-for", findings[0].message)
        self.assertIn("begin", findings[1].message)

    def test_ordered_iteration_is_silent(self):
        self.assertEqual(analyze(["src/obs/export_ordered_ok.cc"]), [])

    def test_determinism_scope_is_path_scoped(self):
        # The identical iteration outside the determinism TUs is silent.
        with tempfile.TemporaryDirectory() as tmp:
            dst = os.path.join(tmp, "src", "engine")
            os.makedirs(dst)
            shutil.copy(
                os.path.join(FIXTURES, "src/obs/export_unordered_bad.cc"),
                os.path.join(dst, "export_unordered_bad.cc"))
            findings = analyze(["src/engine/export_unordered_bad.cc"],
                               repo_root=tmp)
            self.assertEqual(findings, [])


class SwitchExhaustivePassTest(unittest.TestCase):
    def test_missing_enumerator_and_default_fire(self):
        findings = analyze(["src/txn/switch_bad.cc"])
        self.assertEqual({f.rule for f in findings}, {"switch-exhaustive"})
        by_line = {f.line: f.message for f in findings}
        self.assertEqual(sorted(by_line), [14, 26])
        self.assertIn("kDelta", by_line[14])
        self.assertIn("default", by_line[26])

    def test_exhaustive_switch_is_silent(self):
        self.assertEqual(analyze(["src/txn/switch_ok.cc"]), [])


class SuppressionTest(unittest.TestCase):
    def test_lint_allow_suppresses_on_the_reported_line(self):
        with tempfile.TemporaryDirectory() as tmp:
            dst = os.path.join(tmp, "src", "engine")
            os.makedirs(dst)
            src = os.path.join(FIXTURES, "src/engine/unpinned_bad.cc")
            with open(src) as f:
                content = f.read()
            content = content.replace(
                "auto snap = column->SnapshotVersions();",
                "auto snap = column->SnapshotVersions();  "
                "// lint:allow(unpinned-snapshot) fixture exercising the "
                "escape hatch")
            with open(os.path.join(dst, "unpinned_bad.cc"), "w") as f:
                f.write(content)
            findings = analyze(["src/engine/unpinned_bad.cc"],
                               repo_root=tmp)
            self.assertEqual(findings, [])


class CopyFromSelfTest(unittest.TestCase):
    """The acceptance-criteria self-test (DESIGN.md §8): deleting the
    address ordering in the real BTree::CopyFrom must surface the
    self-cycle on BTree::latch_ with witness paths."""

    ORDERED = """  if (this < &other) {
    latch_.Lock();
    other.latch_.LockShared();
  } else {
    other.latch_.LockShared();
    latch_.Lock();
  }
"""
    BROKEN = """  latch_.Lock();
  other.latch_.LockShared();
"""

    def test_stripping_address_order_reports_cycle(self):
        with open(os.path.join(REPO_ROOT, "src/storage/btree.cc")) as f:
            src = f.read()
        self.assertIn(self.ORDERED, src,
                      "btree.cc no longer matches the self-test template; "
                      "update CopyFromSelfTest alongside it")
        with open(os.path.join(REPO_ROOT, "src/storage/btree.h")) as f:
            hdr = f.read()
        with tempfile.TemporaryDirectory() as tmp:
            dst = os.path.join(tmp, "src", "storage")
            os.makedirs(dst)
            with open(os.path.join(dst, "btree.h"), "w") as f:
                f.write(hdr)
            with open(os.path.join(dst, "btree.cc"), "w") as f:
                f.write(src.replace(self.ORDERED, self.BROKEN))
            findings = analyze(
                ["src/storage/btree.h", "src/storage/btree.cc"],
                repo_root=tmp)
            cycles = [f for f in findings if f.rule == "lock-order-cycle"]
            self.assertEqual(len(cycles), 1)
            msg = cycles[0].message
            self.assertIn("BTree::latch_", msg)
            self.assertIn("witness", msg)
            self.assertIn("second witness", msg)

    def test_intact_tree_has_no_cycle(self):
        findings = analyze(
            ["src/storage/btree.h", "src/storage/btree.cc"],
            repo_root=REPO_ROOT)
        self.assertEqual(
            [f for f in findings if f.rule == "lock-order-cycle"], [])


class CliTest(unittest.TestCase):
    def run_analyzer(self, args):
        return subprocess.run(
            [sys.executable, ANALYZER] + args,
            capture_output=True, text=True, check=False,
        )

    def test_tree_is_clean(self):
        proc = self.run_analyzer(["--frontend", "builtin"])
        self.assertEqual(proc.returncode, 0,
                         f"tree has analyzer findings:\n{proc.stdout}")
        self.assertEqual(proc.stdout, "")

    def test_bad_fixture_exits_nonzero(self):
        proc = self.run_analyzer([
            "--frontend", "builtin", "--repo-root", FIXTURES,
            os.path.join(FIXTURES, "src/storage/lock_cycle_bad.cc"),
        ])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[lock-order-cycle]", proc.stdout)

    def test_rules_subset_runs_only_selected(self):
        proc = self.run_analyzer([
            "--frontend", "builtin", "--repo-root", FIXTURES,
            "--rules", "switch-exhaustive",
            os.path.join(FIXTURES, "src/storage/lock_cycle_bad.cc"),
        ])
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_unknown_rule_is_usage_error(self):
        proc = self.run_analyzer(["--rules", "no-such-rule"])
        self.assertEqual(proc.returncode, 2)

    def test_list_rules(self):
        proc = self.run_analyzer(["--list-rules"])
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(
            proc.stdout.split(),
            ["lock-order-cycle", "unpinned-snapshot",
             "unordered-iteration", "switch-exhaustive"],
        )

    def test_explicit_clang_frontend_without_libclang_is_usage_error(self):
        # The CI image has no libclang; forcing the clang frontend must
        # fail loudly rather than silently downgrade. Guarded so the
        # test also passes on machines where libclang IS present.
        try:
            import clang.cindex  # noqa: F401
            self.skipTest("libclang available here")
        except ImportError:
            pass
        proc = self.run_analyzer(["--frontend", "clang"])
        self.assertEqual(proc.returncode, 2)
        self.assertIn("libclang", proc.stderr)


if __name__ == "__main__":
    unittest.main()
