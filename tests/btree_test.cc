// Tests for the in-memory B+-tree, including randomized property tests
// against std::multimap as the reference model.

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/key_encoding.h"
#include "common/rng.h"
#include "storage/btree.h"

namespace hattrick {
namespace {

std::string IntKey(int64_t v) {
  std::string out;
  key::EncodeInt64(v, &out);
  return out;
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  uint64_t value;
  EXPECT_FALSE(tree.Lookup(IntKey(1), &value, nullptr));
}

TEST(BTreeTest, InsertAndLookup) {
  BTree tree;
  tree.Insert(IntKey(10), 100, nullptr);
  tree.Insert(IntKey(20), 200, nullptr);
  uint64_t value = 0;
  ASSERT_TRUE(tree.Lookup(IntKey(10), &value, nullptr));
  EXPECT_EQ(value, 100u);
  ASSERT_TRUE(tree.Lookup(IntKey(20), &value, nullptr));
  EXPECT_EQ(value, 200u);
  EXPECT_FALSE(tree.Lookup(IntKey(15), &value, nullptr));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree(/*leaf_capacity=*/4, /*internal_capacity=*/4);
  for (int i = 0; i < 100; ++i) tree.Insert(IntKey(i), i, nullptr);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 2u);
  uint64_t value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Lookup(IntKey(i), &value, nullptr)) << i;
    EXPECT_EQ(value, static_cast<uint64_t>(i));
  }
}

TEST(BTreeTest, ScanRangeAscendingOrder) {
  BTree tree(4, 4);
  for (int i = 99; i >= 0; --i) tree.Insert(IntKey(i), i, nullptr);
  std::vector<uint64_t> seen;
  tree.ScanRange(IntKey(10), IntKey(20),
                 [&](const std::string&, uint64_t v) {
                   seen.push_back(v);
                   return true;
                 },
                 nullptr);
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[i], static_cast<uint64_t>(10 + i));
}

TEST(BTreeTest, ScanRangeEmptyHiScansToEnd) {
  BTree tree(4, 4);
  for (int i = 0; i < 20; ++i) tree.Insert(IntKey(i), i, nullptr);
  size_t count = 0;
  tree.ScanRange(IntKey(15), "",
                 [&](const std::string&, uint64_t) {
                   ++count;
                   return true;
                 },
                 nullptr);
  EXPECT_EQ(count, 5u);
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree tree(4, 4);
  for (int i = 0; i < 20; ++i) tree.Insert(IntKey(i), i, nullptr);
  size_t count = 0;
  tree.ScanRange(IntKey(0), "",
                 [&](const std::string&, uint64_t) { return ++count < 3; },
                 nullptr);
  EXPECT_EQ(count, 3u);
}

TEST(BTreeTest, DuplicateKeysAllVisited) {
  BTree tree(4, 4);
  for (uint64_t rid = 0; rid < 50; ++rid) {
    tree.Insert(IntKey(7), rid, nullptr);
  }
  std::set<uint64_t> rids;
  tree.ScanPrefix(IntKey(7),
                  [&](const std::string&, uint64_t v) {
                    rids.insert(v);
                    return true;
                  },
                  nullptr);
  EXPECT_EQ(rids.size(), 50u);
}

TEST(BTreeTest, DuplicatesInterleavedWithOtherKeys) {
  BTree tree(4, 4);
  for (int i = 0; i < 30; ++i) tree.Insert(IntKey(i), 1000 + i, nullptr);
  for (uint64_t rid = 0; rid < 20; ++rid) tree.Insert(IntKey(15), rid, nullptr);
  size_t count = 0;
  tree.ScanPrefix(IntKey(15),
                  [&](const std::string&, uint64_t) {
                    ++count;
                    return true;
                  },
                  nullptr);
  EXPECT_EQ(count, 21u);  // 20 duplicates + the original
}

TEST(BTreeTest, InsertUniqueRejectsDuplicate) {
  BTree tree;
  EXPECT_TRUE(tree.InsertUnique(IntKey(1), 10, nullptr).ok());
  EXPECT_EQ(tree.InsertUnique(IntKey(1), 11, nullptr).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, InsertUniqueAcrossSplits) {
  BTree tree(4, 4);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.InsertUnique(IntKey(i), i, nullptr).ok()) << i;
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(tree.InsertUnique(IntKey(i), i, nullptr).code(),
              StatusCode::kAlreadyExists)
        << i;
  }
}

TEST(BTreeTest, RemoveExistingAndMissing) {
  BTree tree(4, 4);
  for (int i = 0; i < 50; ++i) tree.Insert(IntKey(i), i, nullptr);
  EXPECT_TRUE(tree.Remove(IntKey(25), nullptr));
  EXPECT_FALSE(tree.Remove(IntKey(25), nullptr));
  EXPECT_EQ(tree.size(), 49u);
  uint64_t value;
  EXPECT_FALSE(tree.Lookup(IntKey(25), &value, nullptr));
  EXPECT_TRUE(tree.Lookup(IntKey(24), &value, nullptr));
}

TEST(BTreeTest, MeterCountsNodesAndWrites) {
  BTree tree(4, 4);
  WorkMeter meter;
  for (int i = 0; i < 100; ++i) tree.Insert(IntKey(i), i, &meter);
  EXPECT_EQ(meter.index_writes, 100u);
  EXPECT_GE(meter.index_nodes, 100u);  // at least one node per insert
  WorkMeter lookup_meter;
  uint64_t value;
  tree.Lookup(IntKey(50), &value, &lookup_meter);
  // One descent; boundary lookups may hop to one extra leaf.
  EXPECT_GE(lookup_meter.index_nodes, tree.height());
  EXPECT_LE(lookup_meter.index_nodes, tree.height() + 1);
}

TEST(BTreeTest, CopyFromReplicatesContents) {
  BTree tree(4, 4);
  for (int i = 0; i < 123; ++i) tree.Insert(IntKey(i * 3), i, nullptr);
  BTree copy(4, 4);
  copy.Insert(IntKey(999), 1, nullptr);  // will be discarded
  copy.CopyFrom(tree);
  EXPECT_EQ(copy.size(), tree.size());
  EXPECT_EQ(copy.height(), tree.height());
  uint64_t value;
  for (int i = 0; i < 123; ++i) {
    ASSERT_TRUE(copy.Lookup(IntKey(i * 3), &value, nullptr));
    EXPECT_EQ(value, static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(copy.Lookup(IntKey(999), &value, nullptr));
  // Leaf chain intact: full scan sees everything in order.
  std::vector<std::string> keys;
  copy.ScanRange("", "",
                 [&](const std::string& k, uint64_t) {
                   keys.push_back(k);
                   return true;
                 },
                 nullptr);
  EXPECT_EQ(keys.size(), 123u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

// Regression: CopyFrom used to lock this->latch_ then other.latch_ in
// that fixed order, so two threads copying opposite directions could
// each hold one latch and wait forever on the other (lock-order
// inversion, surfaced by the thread-safety annotation pass). The fix
// acquires by address order; on regression this test deadlocks and the
// ctest timeout flags it.
TEST(BTreeTest, ConcurrentBidirectionalCopyFromDoesNotDeadlock) {
  BTree a(4, 4);
  BTree b(4, 4);
  for (int i = 0; i < 200; ++i) {
    a.Insert(IntKey(i), static_cast<uint64_t>(i), nullptr);
    b.Insert(IntKey(1000 + i), static_cast<uint64_t>(i), nullptr);
  }
  constexpr int kIters = 300;
  std::thread forward([&] {
    for (int i = 0; i < kIters; ++i) a.CopyFrom(b);
  });
  std::thread backward([&] {
    for (int i = 0; i < kIters; ++i) b.CopyFrom(a);
  });
  forward.join();
  backward.join();
  // Whatever interleaving won, both trees hold exactly one snapshot.
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(b.size(), 200u);
}

// Self-copy must be a no-op, not a self-deadlock (the address-ordered
// path would otherwise try to re-lock the same latch).
TEST(BTreeTest, SelfCopyFromIsNoOp) {
  BTree tree(4, 4);
  for (int i = 0; i < 50; ++i) {
    tree.Insert(IntKey(i), static_cast<uint64_t>(i), nullptr);
  }
  tree.CopyFrom(tree);
  EXPECT_EQ(tree.size(), 50u);
  uint64_t value = 0;
  ASSERT_TRUE(tree.Lookup(IntKey(7), &value, nullptr));
  EXPECT_EQ(value, 7u);
}

TEST(BTreeTest, ClearResets) {
  BTree tree(4, 4);
  for (int i = 0; i < 100; ++i) tree.Insert(IntKey(i), i, nullptr);
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  uint64_t value;
  EXPECT_FALSE(tree.Lookup(IntKey(1), &value, nullptr));
}

// Property test: random operations mirrored against std::multimap.
class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesMultimapReference) {
  Rng rng(GetParam());
  BTree tree(/*leaf_capacity=*/8, /*internal_capacity=*/8);
  std::multimap<std::string, uint64_t> reference;

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    const int64_t raw_key = rng.Uniform(0, 300);
    const std::string k = IntKey(raw_key);
    if (op < 6) {  // insert
      const uint64_t v = rng.Next() % 1000;
      tree.Insert(k, v, nullptr);
      reference.emplace(k, v);
    } else if (op < 8) {  // remove one
      const bool tree_removed = tree.Remove(k, nullptr);
      const auto it = reference.find(k);
      const bool ref_removed = it != reference.end();
      if (ref_removed) reference.erase(it);
      EXPECT_EQ(tree_removed, ref_removed);
    } else {  // range scan
      const int64_t lo = rng.Uniform(0, 300);
      const int64_t hi = lo + rng.Uniform(0, 50);
      std::multiset<uint64_t> got;
      tree.ScanRange(IntKey(lo), IntKey(hi),
                     [&](const std::string&, uint64_t v) {
                       got.insert(v);
                       return true;
                     },
                     nullptr);
      std::multiset<uint64_t> want;
      for (auto it = reference.lower_bound(IntKey(lo));
           it != reference.lower_bound(IntKey(hi)); ++it) {
        want.insert(it->second);
      }
      EXPECT_EQ(got, want) << "scan [" << lo << "," << hi << ")";
    }
    ASSERT_EQ(tree.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: full scans are always sorted regardless of insertion order.
class BTreeSortedScanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeSortedScanTest, FullScanSorted) {
  Rng rng(GetParam() * 31337);
  BTree tree(6, 6);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(IntKey(static_cast<int64_t>(rng.Next() % 10000)),
                rng.Next(), nullptr);
  }
  std::vector<std::string> keys;
  tree.ScanRange("", "",
                 [&](const std::string& k, uint64_t) {
                   keys.push_back(k);
                   return true;
                 },
                 nullptr);
  EXPECT_EQ(keys.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeSortedScanTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hattrick
