// Tests for the throughput-frontier machinery (Section 3): saturation
// search, grid construction against synthetic analytic performance
// models, Pareto extraction, coverage/deviation metrics, pattern
// classification, and the envelope comparison rule.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "hattrick/frontier.h"

namespace hattrick {
namespace {

/// Synthetic system models: given client counts, produce throughput with
/// a known analytic shape.
OperatingPoint IdealIsolated(int t, int a) {
  // Dedicated resources: each side saturates independently at 8 clients.
  OperatingPoint p;
  p.t_clients = t;
  p.a_clients = a;
  p.tps = 1000.0 * std::min(t, 8);
  p.qps = 10.0 * std::min(a, 8);
  return p;
}

OperatingPoint SharedProportional(int t, int a) {
  // One resource of capacity C split by client counts; service times
  // 1/1000 (txn) and 1/10 (query) per unit.
  OperatingPoint p;
  p.t_clients = t;
  p.a_clients = a;
  if (t + a == 0) return p;
  const double share_t = static_cast<double>(t) / (t + a);
  const double share_a = static_cast<double>(a) / (t + a);
  const double cores = std::min<double>(8.0, t + a);
  p.tps = 1000.0 * cores * share_t;
  p.qps = 10.0 * cores * share_a;
  return p;
}

OperatingPoint Interfering(int t, int a) {
  // Strong negative interference: cross terms crush both sides.
  OperatingPoint p = SharedProportional(t, a);
  if (t > 0 && a > 0) {
    p.tps *= 0.25;
    p.qps *= 0.25;
  }
  return p;
}

FrontierOptions FastOptions() {
  FrontierOptions options;
  options.lines = 5;
  options.points_per_line = 5;
  options.max_clients = 32;
  return options;
}

TEST(FindSaturationTest, FindsKneeOfConcaveCurve) {
  // Throughput saturates at 8 clients.
  const int sat = FindSaturation(
      [](int clients) { return 100.0 * std::min(clients, 8); }, 64, 0.03);
  EXPECT_EQ(sat, 8);
}

TEST(FindSaturationTest, MonotoneGrowthHitsMax) {
  const int sat = FindSaturation(
      [](int clients) { return static_cast<double>(clients); }, 16, 0.03);
  EXPECT_EQ(sat, 16);
}

TEST(FindSaturationTest, FlatCurveStopsEarly) {
  const int sat =
      FindSaturation([](int) { return 100.0; }, 64, 0.03);
  EXPECT_EQ(sat, 1);
}

TEST(ParetoFrontierTest, DropsDominatedPoints) {
  std::vector<OperatingPoint> points(4);
  points[0].tps = 10;
  points[0].qps = 10;
  points[1].tps = 5;
  points[1].qps = 5;  // dominated by points[0]
  points[2].tps = 20;
  points[2].qps = 2;
  points[3].tps = 1;
  points[3].qps = 20;
  const auto frontier = ParetoFrontier(points);
  ASSERT_EQ(frontier.size(), 3u);
  // Ascending tps, descending qps.
  EXPECT_DOUBLE_EQ(frontier[0].tps, 1);
  EXPECT_DOUBLE_EQ(frontier[1].tps, 10);
  EXPECT_DOUBLE_EQ(frontier[2].tps, 20);
  EXPECT_GT(frontier[0].qps, frontier[1].qps);
}

// Regression: equal-tps points used to both survive the frontier walk
// (the reverse scan met the lower-qps duplicate first and kept it); only
// the max-qps point per tps value belongs on the frontier.
TEST(ParetoFrontierTest, EqualTpsKeepsOnlyMaxQps) {
  std::vector<OperatingPoint> points(2);
  points[0].tps = 5;
  points[0].qps = 1;  // dominated: same tps, lower qps
  points[1].tps = 5;
  points[1].qps = 3;
  const auto frontier = ParetoFrontier(points);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_DOUBLE_EQ(frontier[0].tps, 5);
  EXPECT_DOUBLE_EQ(frontier[0].qps, 3);
}

TEST(ParetoFrontierTest, EqualTpsTiesAmongDominantPoints) {
  std::vector<OperatingPoint> points(4);
  points[0].tps = 1;
  points[0].qps = 10;
  points[1].tps = 5;
  points[1].qps = 4;
  points[2].tps = 5;
  points[2].qps = 8;  // best of the tps=5 tie
  points[3].tps = 9;
  points[3].qps = 2;
  const auto frontier = ParetoFrontier(points);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_DOUBLE_EQ(frontier[1].tps, 5);
  EXPECT_DOUBLE_EQ(frontier[1].qps, 8);
}

TEST(ParetoFrontierTest, SingletonAndEmpty) {
  EXPECT_TRUE(ParetoFrontier({}).empty());
  std::vector<OperatingPoint> one(1);
  one[0].tps = 5;
  one[0].qps = 5;
  EXPECT_EQ(ParetoFrontier(one).size(), 1u);
}

TEST(GridGraphTest, IsolatedSystemClassifiedAsIsolation) {
  const GridGraph grid = BuildGridGraph(IdealIsolated, FastOptions());
  EXPECT_EQ(grid.tau_max, 8);
  EXPECT_EQ(grid.alpha_max, 8);
  EXPECT_NEAR(grid.xt, 8000, 1);
  EXPECT_NEAR(grid.xa, 80, 0.1);
  EXPECT_GT(FrontierCoverage(grid), 0.75);
  EXPECT_GT(ProportionalDeviation(grid), 0.2);
  EXPECT_EQ(ClassifyFrontier(grid), FrontierPattern::kIsolation);
}

TEST(GridGraphTest, SharedSystemClassifiedAsProportional) {
  const GridGraph grid = BuildGridGraph(SharedProportional, FastOptions());
  const double coverage = FrontierCoverage(grid);
  EXPECT_GT(coverage, 0.45);
  EXPECT_LT(coverage, 0.75);
  EXPECT_EQ(ClassifyFrontier(grid), FrontierPattern::kProportional);
  EXPECT_NEAR(std::abs(ProportionalDeviation(grid)), 0.0, 0.15);
}

TEST(GridGraphTest, InterferingSystemClassifiedAsInterference) {
  const GridGraph grid = BuildGridGraph(Interfering, FastOptions());
  EXPECT_LT(FrontierCoverage(grid), 0.45);
  EXPECT_EQ(ClassifyFrontier(grid), FrontierPattern::kInterference);
  EXPECT_LT(ProportionalDeviation(grid), 0.0);
}

TEST(GridGraphTest, GridHasRequestedLines) {
  FrontierOptions options = FastOptions();
  const GridGraph grid = BuildGridGraph(IdealIsolated, options);
  EXPECT_EQ(grid.fixed_t_lines.size(),
            static_cast<size_t>(options.lines));
  EXPECT_EQ(grid.fixed_a_lines.size(),
            static_cast<size_t>(options.lines));
  // Fixed-T line client counts span [0, tau_max].
  EXPECT_EQ(grid.fixed_t_lines.front().fixed_clients, 0);
  EXPECT_EQ(grid.fixed_t_lines.back().fixed_clients, grid.tau_max);
}

// Regression: points_per_line == 1 used to divide by zero inside the
// client-count spread (lround of max * 0 / 0) and emit garbage counts.
TEST(GridGraphTest, SinglePointPerLineSweepsBothEndpoints) {
  // points_per_line == 1 used to hit a 0/0 in SpreadClients (i / (count-1))
  // and silently lose the saturation endpoint; the guard must degrade to
  // sweeping {0, max}.
  FrontierOptions options = FastOptions();
  options.lines = 2;
  options.points_per_line = 1;
  const GridGraph grid = BuildGridGraph(IdealIsolated, options);
  ASSERT_GT(grid.alpha_max, 0);
  ASSERT_GT(grid.tau_max, 0);
  EXPECT_EQ(grid.fixed_t_lines.size(), 2u);
  for (const GridLine& line : grid.fixed_t_lines) {
    bool has_zero = false;
    bool has_alpha_max = false;
    for (const OperatingPoint& p : line.points) {
      EXPECT_GE(p.t_clients, 0);
      EXPECT_LE(p.t_clients, grid.tau_max);
      EXPECT_GE(p.a_clients, 0);
      EXPECT_LE(p.a_clients, grid.alpha_max);
      if (p.a_clients == 0) has_zero = true;
      if (p.a_clients == grid.alpha_max) has_alpha_max = true;
    }
    // The all-idle (0, 0) grid point is skipped by design.
    EXPECT_EQ(has_zero, line.fixed_clients != 0);
    EXPECT_TRUE(has_alpha_max);
  }
  for (const GridLine& line : grid.fixed_a_lines) {
    bool has_zero = false;
    bool has_tau_max = false;
    for (const OperatingPoint& p : line.points) {
      EXPECT_GE(p.t_clients, 0);
      EXPECT_LE(p.t_clients, grid.tau_max);
      EXPECT_GE(p.a_clients, 0);
      EXPECT_LE(p.a_clients, grid.alpha_max);
      if (p.t_clients == 0) has_zero = true;
      if (p.t_clients == grid.tau_max) has_tau_max = true;
    }
    EXPECT_EQ(has_zero, line.fixed_clients != 0);
    EXPECT_TRUE(has_tau_max);
  }
}

TEST(GridGraphTest, FrontierWithinBoundingBox) {
  const GridGraph grid = BuildGridGraph(SharedProportional, FastOptions());
  for (const OperatingPoint& p : grid.frontier) {
    EXPECT_LE(p.tps, grid.xt * (1 + 1e-9));
    EXPECT_LE(p.qps, grid.xa * (1 + 1e-9));
  }
}

TEST(GridGraphTest, FrontierSortedAndPareto) {
  const GridGraph grid = BuildGridGraph(SharedProportional, FastOptions());
  for (size_t i = 1; i < grid.frontier.size(); ++i) {
    EXPECT_LT(grid.frontier[i - 1].tps, grid.frontier[i].tps);
    EXPECT_GT(grid.frontier[i - 1].qps, grid.frontier[i].qps);
  }
}

TEST(EnvelopsTest, IsolatedEnvelopsInterfering) {
  const GridGraph big = BuildGridGraph(IdealIsolated, FastOptions());
  const GridGraph small = BuildGridGraph(Interfering, FastOptions());
  EXPECT_TRUE(Envelops(big, small));
  EXPECT_FALSE(Envelops(small, big));
}

TEST(EnvelopsTest, SystemEnvelopsItself) {
  const GridGraph grid = BuildGridGraph(SharedProportional, FastOptions());
  EXPECT_TRUE(Envelops(grid, grid));
}

TEST(EnvelopsTest, CrossingFrontiersDoNotEnvelop) {
  // System A: strong T, weak A. System B: weak T, strong A.
  auto a_runner = [](int t, int a) {
    OperatingPoint p;
    p.t_clients = t;
    p.a_clients = a;
    p.tps = 2000.0 * std::min(t, 4);
    p.qps = 1.0 * std::min(a, 4);
    return p;
  };
  auto b_runner = [](int t, int a) {
    OperatingPoint p;
    p.t_clients = t;
    p.a_clients = a;
    p.tps = 100.0 * std::min(t, 4);
    p.qps = 20.0 * std::min(a, 4);
    return p;
  };
  const GridGraph a = BuildGridGraph(a_runner, FastOptions());
  const GridGraph b = BuildGridGraph(b_runner, FastOptions());
  EXPECT_FALSE(Envelops(a, b));
  EXPECT_FALSE(Envelops(b, a));
}

TEST(FrontierMetricsTest, CoverageOfBoxIsOne) {
  GridGraph grid;
  grid.xt = 100;
  grid.xa = 10;
  OperatingPoint corner;
  corner.tps = 100;
  corner.qps = 10;
  grid.frontier = {corner};
  EXPECT_NEAR(FrontierCoverage(grid), 1.0, 1e-9);
}

TEST(FrontierMetricsTest, EmptyFrontierCoverageZero) {
  GridGraph grid;
  EXPECT_DOUBLE_EQ(FrontierCoverage(grid), 0.0);
  EXPECT_DOUBLE_EQ(ProportionalDeviation(grid), 0.0);
}

TEST(SamplingMethodTest, DeterministicAndSkipsOrigin) {
  int calls = 0;
  PointRunner runner = [&](int t, int a) {
    ++calls;
    OperatingPoint p;
    p.t_clients = t;
    p.a_clients = a;
    p.tps = t * 100.0;
    p.qps = a * 1.0;
    return p;
  };
  const auto a = SampleOperatingPoints(runner, 20, 16, 12, 99);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(calls, 20);
  for (const OperatingPoint& p : a) {
    EXPECT_TRUE(p.t_clients > 0 || p.a_clients > 0);
    EXPECT_LE(p.t_clients, 16);
    EXPECT_LE(p.a_clients, 12);
  }
  const auto b = SampleOperatingPoints(runner, 20, 16, 12, 99);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_clients, b[i].t_clients);
    EXPECT_EQ(a[i].a_clients, b[i].a_clients);
  }
  const auto c = SampleOperatingPoints(runner, 20, 16, 12, 100);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].t_clients != c[i].t_clients) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SamplingMethodTest, SampledFrontierWithinSaturationFrontier) {
  // On the ideal isolated system the sampling method's Pareto frontier
  // is always enveloped by the saturation method's frontier.
  const GridGraph grid = BuildGridGraph(IdealIsolated, FastOptions());
  const auto samples =
      SampleOperatingPoints(IdealIsolated, 40, 16, 16, 7);
  GridGraph sampled = grid;
  sampled.frontier = ParetoFrontier(samples);
  EXPECT_TRUE(Envelops(grid, sampled));
}

TEST(FrontierMetricsTest, PatternNamesAreDistinct) {
  EXPECT_STRNE(FrontierPatternName(FrontierPattern::kIsolation),
               FrontierPatternName(FrontierPattern::kInterference));
}

}  // namespace
}  // namespace hattrick
