// Golden equivalence suite for morsel-driven parallel execution: the 13
// SSB queries must return BIT-IDENTICAL results at dop=1 and dop=4 on
// every engine (row-store, replicated row-store, columnar), under both
// morsel schedules. Also covers MorselSet partitioning, the session-pin
// guard lifetime across worker threads, and determinism of the
// simulator's multi-core charging.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/session_pin.h"
#include "engine/shared_engine.h"
#include "exec/morsel.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"
#include "sim/core_pool.h"
#include "sim/simulation.h"
#include "storage/column_table.h"

namespace hattrick {
namespace {

// Note the fixed dataset seed: how many of the selective SSB queries
// find matching dimension rows is a property of the generated dimension
// attributes, so the dataset stays pinned while the test parameter seeds
// the randomized mutation workload run on top of it.
DatagenConfig SmallConfig(uint64_t seed = 501) {
  DatagenConfig config;
  // SF10 at 6000 rows/SF: ~60k lineorders (several morsels per worker at
  // dop=4) and dimension tables rich enough (20 suppliers / 300 customers
  // / 8000 parts) that 11 of the 13 SSB queries return non-empty groups —
  // dimension cardinalities scale with scale_factor * lineorders_per_sf,
  // so SF1 would leave only 2 suppliers and every join query empty.
  config.scale_factor = 10.0;
  config.lineorders_per_sf = 6000;
  config.seed = seed;
  config.num_freshness_tables = 4;
  return config;
}

void RunRandomWorkload(HtapEngine* engine, WorkloadContext* context,
                       uint64_t seed, int n) {
  const EngineHandles handles =
      EngineHandles::Resolve(*engine->primary_catalog(), 4);
  Rng rng(seed);
  uint64_t txn_num = 0;
  for (int i = 0; i < n; ++i) {
    const TxnParams params = GenerateTxnParams(context, &rng);
    ++txn_num;
    WorkMeter meter;
    const TxnOutcome outcome = engine->ExecuteTransaction(
        MakeTxnBody(params, handles, /*client=*/1 + (i % 4), txn_num),
        1 + (i % 4), txn_num, &meter);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
}

/// Runs query `qid` at the given dop within one analytical session and
/// returns the full result rows (sorted group order, so EXPECT_EQ on the
/// vectors is a bit-identity check including every double).
std::vector<Row> RunAt(const DataSource& source, int qid, int dop,
                       bool dynamic_morsels) {
  OperatorPtr plan =
      dop > 1 ? BuildParallelQueryPlan(qid, source, dop, dynamic_morsels)
              : BuildQueryPlan(qid, source);
  WorkMeter meter;
  ExecContext ctx{&meter};
  ctx.dop = dop;
  ctx.dynamic_morsels = dynamic_morsels;
  return Collect(plan.get(), &ctx);
}

/// The headline assertion: on one snapshot, all 13 queries agree exactly
/// between dop=1, dop=4/static and dop=4/dynamic.
void ExpectDopEquivalence(const DataSource& source) {
  int non_empty = 0;
  for (int qid = 0; qid < kNumQueries; ++qid) {
    const std::vector<Row> serial = RunAt(source, qid, 1, false);
    const std::vector<Row> par_static = RunAt(source, qid, 4, false);
    const std::vector<Row> par_dynamic = RunAt(source, qid, 4, true);
    EXPECT_EQ(serial, par_static) << QueryName(qid) << " static morsels";
    EXPECT_EQ(serial, par_dynamic) << QueryName(qid) << " dynamic morsels";
    if (!serial.empty()) ++non_empty;
  }
  // The most selective queries (city-level Q3.3/Q3.4) may find nothing on
  // the small test dataset, but the suite must not silently compare
  // all-empty results (9-11 of 13 are non-empty across the test seeds).
  EXPECT_GE(non_empty, 9);
}

/// Runs query `qid` in an explicit execution mode: `vectorized` selects
/// batch vs row-at-a-time (oracle) execution, `batch_rows` the vector
/// width. Work charges land in `meter`.
std::vector<Row> RunMode(const DataSource& source, int qid, int dop,
                         bool vectorized, size_t batch_rows,
                         WorkMeter* meter) {
  OperatorPtr plan =
      dop > 1
          ? BuildParallelQueryPlan(qid, source, dop, /*dynamic_morsels=*/false)
          : BuildQueryPlan(qid, source);
  ExecContext ctx{meter};
  ctx.dop = dop;
  ctx.vectorized = vectorized;
  ctx.batch_rows = batch_rows;
  return Collect(plan.get(), &ctx);
}

/// The vectorization invariant at engine level: on one snapshot, every
/// query returns bit-identical rows AND charges a bit-identical WorkMeter
/// in batch mode — at any batch size, degenerate 1 included — as the
/// row-at-a-time oracle, both serial and at dop=4 (worker meters merge in
/// shard order, so parallel totals are schedule-independent too).
void ExpectBatchMatchesRowOracle(const DataSource& source) {
  for (const int dop : {1, 4}) {
    for (int qid = 0; qid < kNumQueries; ++qid) {
      WorkMeter oracle_meter;
      const std::vector<Row> oracle = RunMode(
          source, qid, dop, /*vectorized=*/false, 1, &oracle_meter);
      for (const size_t batch_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
        SCOPED_TRACE(std::string(QueryName(qid)) + " dop=" +
                     std::to_string(dop) + " batch_rows=" +
                     std::to_string(batch_rows));
        WorkMeter meter;
        const std::vector<Row> got =
            RunMode(source, qid, dop, /*vectorized=*/true, batch_rows, &meter);
        EXPECT_EQ(oracle, got);
        EXPECT_EQ(oracle_meter.rows_read, meter.rows_read);
        EXPECT_EQ(oracle_meter.column_values, meter.column_values);
        EXPECT_EQ(oracle_meter.output_rows, meter.output_rows);
        EXPECT_EQ(oracle_meter.hash_probes, meter.hash_probes);
        EXPECT_EQ(oracle_meter.index_nodes, meter.index_nodes);
        EXPECT_EQ(oracle_meter.version_hops, meter.version_hops);
        EXPECT_EQ(oracle_meter.Total(), meter.Total());
      }
    }
  }
}

class ParallelExecTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelExecTest, SharedEngineDopEquivalence) {
  const Dataset dataset = GenerateDataset(SmallConfig());
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 31, 200);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  ExpectDopEquivalence(*session.source);
}

TEST_P(ParallelExecTest, IsolatedEngineDopEquivalence) {
  const Dataset dataset = GenerateDataset(SmallConfig());
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine engine(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 37, 200);

  WorkMeter meter;
  while (engine.MaintenanceStep(&meter)) {
  }
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  ExpectDopEquivalence(*session.source);
}

TEST_P(ParallelExecTest, HybridEngineDopEquivalence) {
  const Dataset dataset = GenerateDataset(SmallConfig());
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 41, 200);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  ExpectDopEquivalence(*session.source);
}

TEST_P(ParallelExecTest, RunQueryMatchesAcrossDop) {
  // End-to-end through RunQuery (checksum + freshness), the path the
  // drivers use.
  const Dataset dataset = GenerateDataset(SmallConfig(GetParam()));
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, GetParam() * 43, 150);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  for (int qid = 0; qid < kNumQueries; ++qid) {
    ExecContext serial_ctx{&meter};
    const QueryResult serial = RunQuery(qid, *session.source, 4, &serial_ctx);
    ExecContext par_ctx{&meter};
    par_ctx.dop = 4;
    par_ctx.dynamic_morsels = true;
    par_ctx.session_pin = session.guard;
    const QueryResult parallel = RunQuery(qid, *session.source, 4, &par_ctx);
    EXPECT_EQ(serial.rows, parallel.rows) << QueryName(qid);
    EXPECT_EQ(serial.checksum, parallel.checksum) << QueryName(qid);
    EXPECT_EQ(serial.freshness, parallel.freshness) << QueryName(qid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelExecTest,
                         ::testing::Values(501, 502, 503));

// ---------------------------------------------------------------------------
// Vectorized batch execution vs the row oracle (one seed per engine: the
// sweep is 13 queries x 2 dops x 3 batch sizes, so a single mutated
// snapshot per engine keeps the suite's runtime bounded).
// ---------------------------------------------------------------------------

TEST(BatchExecEquivalenceTest, SharedEngineBatchMatchesRowOracle) {
  const Dataset dataset = GenerateDataset(SmallConfig());
  SharedEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, 501 * 31, 200);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  ExpectBatchMatchesRowOracle(*session.source);
}

TEST(BatchExecEquivalenceTest, IsolatedEngineBatchMatchesRowOracle) {
  const Dataset dataset = GenerateDataset(SmallConfig());
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  IsolatedEngine engine(config);
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, 502 * 37, 200);

  WorkMeter meter;
  while (engine.MaintenanceStep(&meter)) {
  }
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  ExpectBatchMatchesRowOracle(*session.source);
}

TEST(BatchExecEquivalenceTest, HybridEngineBatchMatchesRowOracle) {
  const Dataset dataset = GenerateDataset(SmallConfig());
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  RunRandomWorkload(&engine, &context, 503 * 41, 200);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);
  ExpectBatchMatchesRowOracle(*session.source);
}

// ---------------------------------------------------------------------------
// MorselSet partitioning.
// ---------------------------------------------------------------------------

TEST(MorselSetTest, StaticAssignmentCoversExtentDisjointly) {
  MorselSet morsels(/*extent=*/10000, /*num_workers=*/4, /*dynamic=*/false,
                    /*morsel_rows=*/1024);
  std::vector<int> covered(10000, 0);
  for (uint32_t w = 0; w < 4; ++w) {
    MorselSet::ClaimState state;
    size_t begin;
    size_t end;
    while (morsels.Claim(w, &state, &begin, &end)) {
      ASSERT_LT(begin, end);
      ASSERT_LE(end, 10000u);
      EXPECT_EQ(begin % 1024, 0u);  // block-aligned
      for (size_t r = begin; r < end; ++r) ++covered[r];
    }
  }
  for (size_t r = 0; r < covered.size(); ++r) {
    EXPECT_EQ(covered[r], 1) << "row " << r;
  }
}

TEST(MorselSetTest, DynamicClaimingCoversExtentDisjointly) {
  MorselSet morsels(/*extent=*/50000, /*num_workers=*/4, /*dynamic=*/true);
  std::vector<std::atomic<int>> covered(50000);
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      MorselSet::ClaimState state;
      size_t begin;
      size_t end;
      while (morsels.Claim(w, &state, &begin, &end)) {
        for (size_t r = begin; r < end; ++r) {
          covered[r].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (size_t r = 0; r < covered.size(); ++r) {
    ASSERT_EQ(covered[r].load(), 1) << "row " << r;
  }
}

TEST(MorselSetTest, MorselRowsAlignWithColumnBlocks) {
  // The bit-identity of zone-map metering at any dop depends on morsels
  // never splitting a column block.
  EXPECT_EQ(MorselSet::kMorselAlignRows, ColumnTable::kBlockRows);
  EXPECT_EQ(MorselSet::kDefaultMorselRows % ColumnTable::kBlockRows, 0u);
  for (const size_t extent : {0u, 100u, 1500u, 6000u, 20000u, 1000000u}) {
    for (const uint32_t workers : {1u, 2u, 4u, 16u}) {
      const size_t rows = MorselSet::PickMorselRows(extent, workers);
      EXPECT_GE(rows, MorselSet::kMorselAlignRows);
      EXPECT_LE(rows, MorselSet::kDefaultMorselRows);
      EXPECT_EQ(rows % MorselSet::kMorselAlignRows, 0u)
          << extent << "/" << workers;
    }
  }
}

// ---------------------------------------------------------------------------
// Session-pin guard lifetime (AnalyticsSession::guard contract).
// ---------------------------------------------------------------------------

TEST(SessionPinLatchTest, ExclusiveWaitsForPinReleasedOnOtherThread) {
  SessionPinLatch latch;
  std::shared_ptr<void> pin = latch.AcquirePin();
  std::atomic<bool> released{false};
  std::atomic<bool> exclusive_ran{false};

  // Worker inherits the pin (as a morsel worker inherits the session
  // guard) and releases it from its own thread.
  std::thread worker([&, pin]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    released.store(true);
    pin.reset();  // last release happens HERE, off the acquiring thread
  });
  pin.reset();  // the session itself lets go first

  latch.WithExclusive([&] {
    EXPECT_TRUE(released.load()) << "exclusive ran while a pin was held";
    exclusive_ran.store(true);
  });
  EXPECT_TRUE(exclusive_ran.load());
  worker.join();
}

TEST(SessionPinLatchTest, PinWaitsForExclusive) {
  SessionPinLatch latch;
  std::atomic<bool> in_exclusive{false};
  std::thread writer([&] {
    latch.WithExclusive([&] {
      in_exclusive.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      in_exclusive.store(false);
    });
  });
  while (!in_exclusive.load()) std::this_thread::yield();
  std::shared_ptr<void> pin = latch.AcquirePin();
  EXPECT_FALSE(in_exclusive.load());  // pin could not start mid-exclusive
  pin.reset();
  writer.join();
}

TEST(GuardLifetimeTest, HybridMergeBlocksUntilWorkerDropsGuard) {
  // Regression for the AnalyticsSession::guard contract: a worker thread
  // that outlives the issuing session must keep the hybrid engine's
  // column store pinned — a delta merge (triggered by the next
  // BeginAnalytics) may only proceed once the worker releases its copy.
  const Dataset dataset = GenerateDataset(SmallConfig(99));
  // Pinned to eager mode: the scenario under test is the merge inside
  // BeginAnalytics waiting on the worker's pin.
  HybridEngineConfig config;
  config.merge_mode = MergeMode::kEager;
  HybridEngine engine{config};
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);

  WorkMeter meter;
  AnalyticsSession session = engine.BeginAnalytics(&meter);

  std::atomic<bool> worker_released{false};
  std::thread worker([guard = session.guard, &worker_released]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    worker_released.store(true);
    guard.reset();
  });
  // The session ends while the worker still runs — the exact scenario a
  // shared_mutex guard would make undefined behaviour.
  session.guard.reset();
  session.source.reset();

  // Commit a transaction so the next BeginAnalytics has a delta to merge.
  RunRandomWorkload(&engine, &context, 7, 5);
  ASSERT_GT(engine.PendingDelta(), 0u);

  AnalyticsSession next = engine.BeginAnalytics(&meter);
  // BeginAnalytics merges the delta, which must have waited for the
  // worker's pin.
  EXPECT_TRUE(worker_released.load());
  EXPECT_EQ(engine.PendingDelta(), 0u);
  EXPECT_NE(next.source, nullptr);
  worker.join();
}

// ---------------------------------------------------------------------------
// Simulator determinism at dop > 1.
// ---------------------------------------------------------------------------

std::string FormatMetrics(const RunMetrics& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "tps=%.17g qps=%.17g committed=%llu aborts=%llu failed=%llu "
      "queries=%llu txn_p50=%.17g txn_p99=%.17g q_p50=%.17g q_p99=%.17g "
      "fresh_p99=%.17g",
      m.t_throughput, m.a_throughput,
      static_cast<unsigned long long>(m.committed),
      static_cast<unsigned long long>(m.aborts),
      static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.queries),
      m.txn_latency.empty() ? 0.0 : m.txn_latency.Percentile(0.5),
      m.txn_latency.empty() ? 0.0 : m.txn_latency.Percentile(0.99),
      m.query_latency.empty() ? 0.0 : m.query_latency.Percentile(0.5),
      m.query_latency.empty() ? 0.0 : m.query_latency.Percentile(0.99),
      m.freshness.empty() ? 0.0 : m.freshness.Percentile(0.99));
  return buf;
}

TEST(ParallelSimTest, IdenticalSeedsGiveIdenticalReportsAtDop4) {
  const Dataset dataset = GenerateDataset(SmallConfig(77));
  HybridEngine engine;
  ASSERT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine).ok());
  WorkloadContext context(dataset);
  SimDriver driver(&engine, &context, HybridSimSetup());

  WorkloadConfig config;
  config.t_clients = 2;
  config.a_clients = 2;
  config.warmup_seconds = 0.05;
  config.measure_seconds = 0.3;
  config.seed = 21;
  config.dop = 4;

  const std::string first = FormatMetrics(driver.Run(config));
  const std::string second = FormatMetrics(driver.Run(config));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("queries="), std::string::npos);
}

TEST(ParallelSimTest, SubmitParallelFinishesFasterOnIdleCores) {
  // dop=4 on an idle 8-core pool: the same demand completes in 1/4 the
  // virtual time of a serial submission.
  Simulation sim;
  CorePool pool(&sim, "test", 8.0);
  double serial_done = -1;
  double parallel_done = -1;
  pool.Submit(1.0, [&] { serial_done = sim.Now(); });
  sim.RunToCompletion();
  const double serial_elapsed = serial_done;

  Simulation sim2;
  CorePool pool2(&sim2, "test", 8.0);
  pool2.SubmitParallel(1.0, 4, [&] { parallel_done = sim2.Now(); });
  sim2.RunToCompletion();

  ASSERT_GT(serial_elapsed, 0);
  ASSERT_GT(parallel_done, 0);
  EXPECT_NEAR(parallel_done, serial_elapsed / 4.0, 1e-9);
}

}  // namespace
}  // namespace hattrick
