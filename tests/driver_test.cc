// Tests for the virtual-time benchmark driver: determinism, throughput
// scaling and saturation, the interference signatures of the three
// designs, and freshness semantics per design/replication mode — the
// core behavioural claims of the paper's evaluation.

#include <memory>

#include <gtest/gtest.h>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"
#include "hattrick/frontier.h"

namespace hattrick {
namespace {

DatagenConfig TinyConfig() {
  DatagenConfig config;
  config.scale_factor = 1.0;
  config.lineorders_per_sf = 1500;
  config.seed = 3;
  config.num_freshness_tables = 32;
  return config;
}

WorkloadConfig QuickRun(int t, int a) {
  WorkloadConfig config;
  config.t_clients = t;
  config.a_clients = a;
  config.warmup_seconds = 0.1;
  config.measure_seconds = 0.5;
  config.seed = 5;
  return config;
}

class DriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(GenerateDataset(TinyConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }


  static Dataset* dataset_;
};

Dataset* DriverTest::dataset_ = nullptr;

template <typename EngineT, typename ConfigT>
std::unique_ptr<EngineT> LoadEngine(const Dataset& dataset,
                                    ConfigT config = {}) {
  auto engine = std::make_unique<EngineT>(config);
  EXPECT_TRUE(
      LoadDataset(dataset, PhysicalSchema::kAllIndexes, engine.get()).ok());
  return engine;
}

TEST_F(DriverTest, DeterministicAcrossRuns) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  const RunMetrics a = driver.Run(QuickRun(3, 2));
  const RunMetrics b = driver.Run(QuickRun(3, 2));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_DOUBLE_EQ(a.t_throughput, b.t_throughput);
}

TEST_F(DriverTest, SeedChangesRun) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  WorkloadConfig config = QuickRun(3, 2);
  const RunMetrics a = driver.Run(config);
  config.seed = 999;
  const RunMetrics b = driver.Run(config);
  EXPECT_NE(a.committed, b.committed);
}

TEST_F(DriverTest, ThroughputGrowsWithClientsUntilSaturation) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  const double tps1 = driver.Run(QuickRun(1, 0)).t_throughput;
  const double tps4 = driver.Run(QuickRun(4, 0)).t_throughput;
  const double tps8 = driver.Run(QuickRun(8, 0)).t_throughput;
  EXPECT_GT(tps4, tps1 * 2);
  // Growth flattens near saturation (row-lock contention on the tiny
  // dataset caps it even before the core count).
  EXPECT_GT(tps8, tps4);
  const double tps24 = driver.Run(QuickRun(24, 0)).t_throughput;
  EXPECT_LT(tps24, tps8 * 1.5);
}

TEST_F(DriverTest, PureWorkloadsProduceOnlyTheirMetrics) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  const RunMetrics pure_t = driver.Run(QuickRun(4, 0));
  EXPECT_GT(pure_t.committed, 0u);
  EXPECT_EQ(pure_t.queries, 0u);
  const RunMetrics pure_a = driver.Run(QuickRun(0, 3));
  EXPECT_EQ(pure_a.committed, 0u);
  EXPECT_GT(pure_a.queries, 0u);
}

TEST_F(DriverTest, SharedDesignShowsInterference) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  const double t_alone = driver.Run(QuickRun(6, 0)).t_throughput;
  const double t_mixed = driver.Run(QuickRun(6, 6)).t_throughput;
  // Analytical clients steal shared cores: T throughput must drop
  // noticeably (Figure 5 behaviour).
  EXPECT_LT(t_mixed, t_alone * 0.85);
}

TEST_F(DriverTest, IsolatedDesignShieldsTransactions) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  auto engine =
      LoadEngine<IsolatedEngine, IsolatedEngineConfig>(*dataset_, config);
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, IsolatedSimSetup());
  const double t_alone = driver.Run(QuickRun(6, 0)).t_throughput;
  const double t_mixed = driver.Run(QuickRun(6, 6)).t_throughput;
  // Dedicated pools: adding A clients barely affects T (Figure 7).
  EXPECT_GT(t_mixed, t_alone * 0.9);
}

TEST_F(DriverTest, SharedAndHybridFreshnessIsZero) {
  {
    auto engine =
        LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
    WorkloadContext context(*dataset_);
    SimDriver driver(engine.get(), &context, SharedSimSetup());
    const RunMetrics metrics = driver.Run(QuickRun(6, 3));
    ASSERT_FALSE(metrics.freshness.empty());
    EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
  }
  {
    auto engine = LoadEngine<HybridEngine, HybridEngineConfig>(
        *dataset_, SystemXConfig());
    WorkloadContext context(*dataset_);
    SimDriver driver(engine.get(), &context, HybridSimSetup());
    const RunMetrics metrics = driver.Run(QuickRun(6, 3));
    ASSERT_FALSE(metrics.freshness.empty());
    EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
  }
}

TEST_F(DriverTest, IsolatedOnModeProducesStaleness) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kSyncShip;
  auto engine =
      LoadEngine<IsolatedEngine, IsolatedEngineConfig>(*dataset_, config);
  WorkloadContext context(*dataset_);
  // Force the standby applier to be slower than the T-heavy commit rate
  // so the mechanism (lag -> stale snapshots -> positive freshness) is
  // exercised independent of the default calibration.
  SimSetup setup = IsolatedSimSetup();
  setup.cost.replay_multiplier = 12.0;
  SimDriver driver(engine.get(), &context, setup);
  // T-heavy mix: the standby applier falls behind (Figure 7/8 behaviour).
  const RunMetrics metrics = driver.Run(QuickRun(12, 2));
  ASSERT_FALSE(metrics.freshness.empty());
  EXPECT_GT(metrics.freshness.Percentile(0.99), 0.0);
}

TEST_F(DriverTest, IsolatedRemoteApplyFreshnessZero) {
  IsolatedEngineConfig config;
  config.mode = ReplicationMode::kRemoteApply;
  auto engine =
      LoadEngine<IsolatedEngine, IsolatedEngineConfig>(*dataset_, config);
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, IsolatedSimSetup());
  const RunMetrics metrics = driver.Run(QuickRun(12, 2));
  ASSERT_FALSE(metrics.freshness.empty());
  EXPECT_DOUBLE_EQ(metrics.freshness.Max(), 0.0);
  EXPECT_GT(metrics.committed, 0u);
}

TEST_F(DriverTest, RemoteApplyCostsTransactionThroughput) {
  // A slow applier makes the remote-apply wait the bottleneck.
  SimSetup setup = IsolatedSimSetup();
  setup.cost.replay_multiplier = 12.0;

  IsolatedEngineConfig on_config;
  on_config.mode = ReplicationMode::kSyncShip;
  auto on_engine = LoadEngine<IsolatedEngine, IsolatedEngineConfig>(
      *dataset_, on_config);
  WorkloadContext on_context(*dataset_);
  SimDriver on_driver(on_engine.get(), &on_context, setup);
  const double on_tps = on_driver.Run(QuickRun(8, 0)).t_throughput;

  IsolatedEngineConfig ra_config;
  ra_config.mode = ReplicationMode::kRemoteApply;
  auto ra_engine = LoadEngine<IsolatedEngine, IsolatedEngineConfig>(
      *dataset_, ra_config);
  WorkloadContext ra_context(*dataset_);
  SimDriver ra_driver(ra_engine.get(), &ra_context, setup);
  const double ra_tps = ra_driver.Run(QuickRun(8, 0)).t_throughput;

  // The paper's Figure 8a trade-off: RA sacrifices T throughput for
  // freshness.
  EXPECT_LT(ra_tps, on_tps);
}

TEST_F(DriverTest, LatencySamplersPopulated) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  const RunMetrics metrics = driver.Run(QuickRun(4, 2));
  EXPECT_EQ(metrics.txn_latency.count(), metrics.committed);
  EXPECT_EQ(metrics.query_latency.count(), metrics.queries);
  size_t by_type = 0;
  for (const auto& sampler : metrics.txn_latency_by_type) {
    by_type += sampler.count();
  }
  EXPECT_EQ(by_type, metrics.committed);
  size_t by_query = 0;
  for (const auto& sampler : metrics.query_latency_by_id) {
    by_query += sampler.count();
  }
  EXPECT_EQ(by_query, metrics.queries);
  EXPECT_EQ(metrics.freshness.count(), metrics.queries);
  EXPECT_GT(metrics.txn_latency.Percentile(0.99), 0.0);
}

TEST_F(DriverTest, NoFailuresOnHealthyRuns) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  const RunMetrics metrics = driver.Run(QuickRun(4, 2));
  EXPECT_EQ(metrics.failed, 0u);
}

TEST_F(DriverTest, MakeRunnerWiresThrough) {
  auto engine = LoadEngine<SharedEngine, SharedEngineConfig>(*dataset_, {});
  WorkloadContext context(*dataset_);
  SimDriver driver(engine.get(), &context, SharedSimSetup());
  PointRunner runner = MakeRunner(&driver, QuickRun(0, 0));
  const OperatingPoint p = runner(2, 1);
  EXPECT_EQ(p.t_clients, 2);
  EXPECT_EQ(p.a_clients, 1);
  EXPECT_GT(p.tps, 0);
  EXPECT_GT(p.qps, 0);
}

}  // namespace
}  // namespace hattrick
