// Tests for the CLI flags parser (tools/flags.h).

#include <gtest/gtest.h>

#include "tools/flags.h"

namespace hattrick {
namespace tools {
namespace {

Flags Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, KeyEqualsValue) {
  const Flags flags = Parse({"--mode=frontier", "--sf=10"});
  EXPECT_EQ(flags.GetString("mode", ""), "frontier");
  EXPECT_EQ(flags.GetInt("sf", 0), 10);
}

TEST(FlagsTest, KeySpaceValue) {
  const Flags flags = Parse({"--system", "tidb", "--t", "8"});
  EXPECT_EQ(flags.GetString("system", ""), "tidb");
  EXPECT_EQ(flags.GetInt("t", 0), 8);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags flags = Parse({"--threaded"});
  EXPECT_TRUE(flags.GetBool("threaded", false));
  EXPECT_TRUE(flags.Has("threaded"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = Parse({});
  EXPECT_EQ(flags.GetString("mode", "point"), "point");
  EXPECT_EQ(flags.GetInt("t", 4), 4);
  EXPECT_DOUBLE_EQ(flags.GetDouble("sf", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("threaded", false));
  EXPECT_FALSE(flags.Has("mode"));
}

TEST(FlagsTest, DoubleValues) {
  const Flags flags = Parse({"--measure=2.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("measure", 0), 2.5);
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(Parse({"--x=yes"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=true"}).GetBool("x", false));
  EXPECT_FALSE(Parse({"--x=no"}).GetBool("x", true));
}

TEST(FlagsTest, PositionalCollected) {
  const Flags flags = Parse({"input.csv", "--mode=sweep", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  const Flags flags = Parse({"--verbose", "--sf=2"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("sf", 0), 2);
}

TEST(FlagsTest, GetPositiveIntAcceptsPositiveValues) {
  EXPECT_EQ(Parse({"--batch-size=1"}).GetPositiveInt("batch-size", 1024), 1);
  EXPECT_EQ(Parse({"--batch-size=4096"}).GetPositiveInt("batch-size", 1024),
            4096);
}

TEST(FlagsTest, GetPositiveIntRejectsZeroAndNegatives) {
  // A batch of zero rows can make no progress and a negative width is
  // meaningless, so both fall back to the default instead of being
  // clamped to some other surprising value.
  EXPECT_EQ(Parse({"--batch-size=0"}).GetPositiveInt("batch-size", 1024),
            1024);
  EXPECT_EQ(Parse({"--batch-size=-5"}).GetPositiveInt("batch-size", 1024),
            1024);
}

TEST(FlagsTest, GetPositiveIntRejectsGarbage) {
  // atoi parses "banana" as 0, which the positivity check then rejects.
  EXPECT_EQ(Parse({"--batch-size=banana"}).GetPositiveInt("batch-size", 1024),
            1024);
}

TEST(FlagsTest, GetPositiveIntUsesFallbackWhenAbsent) {
  EXPECT_EQ(Parse({}).GetPositiveInt("batch-size", 1024), 1024);
}

}  // namespace
}  // namespace tools
}  // namespace hattrick
