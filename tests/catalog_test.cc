// Tests for the catalog: table/index registration, key derivation, index
// rebuild on content copy, and the physical-schema helpers.

#include <gtest/gtest.h>

#include "common/key_encoding.h"
#include "storage/catalog.h"

namespace hattrick {
namespace {

Schema PersonSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"age", DataType::kInt64}});
}

TEST(CatalogTest, CreateAndLookupTables) {
  Catalog catalog;
  RowTable* people = catalog.CreateTable("people", PersonSchema());
  RowTable* pets = catalog.CreateTable("pets", PersonSchema());
  EXPECT_EQ(catalog.num_tables(), 2u);
  EXPECT_EQ(catalog.GetTable("people"), people);
  EXPECT_EQ(catalog.GetTable("pets"), pets);
  EXPECT_EQ(catalog.GetTable("absent"), nullptr);
  EXPECT_EQ(catalog.GetTableId("people"), 0u);
  EXPECT_EQ(catalog.GetTableId("pets"), 1u);
  EXPECT_EQ(catalog.GetTable(TableId{1}), pets);
  EXPECT_EQ(catalog.table_name(0), "people");
}

TEST(CatalogTest, CreateIndexAndTableIndexes) {
  Catalog catalog;
  catalog.CreateTable("people", PersonSchema());
  IndexInfo* pk = catalog.CreateIndex("people_pk", "people", {0}, true);
  IndexInfo* by_name = catalog.CreateIndex("people_name", "people", {1},
                                           false);
  EXPECT_EQ(catalog.GetIndex("people_pk"), pk);
  EXPECT_EQ(catalog.GetIndex("absent"), nullptr);
  const auto& indexes = catalog.TableIndexes(0);
  ASSERT_EQ(indexes.size(), 2u);
  EXPECT_EQ(indexes[0], pk);
  EXPECT_EQ(indexes[1], by_name);
}

TEST(CatalogTest, IndexKeyForUniqueOmitsRid) {
  Catalog catalog;
  catalog.CreateTable("people", PersonSchema());
  IndexInfo* pk = catalog.CreateIndex("pk", "people", {0}, true);
  const Row row{int64_t{7}, std::string("bob"), int64_t{30}};
  EXPECT_EQ(pk->KeyFor(row, 99), key::EncodeKey({Value(int64_t{7})}));
}

TEST(CatalogTest, IndexKeyForNonUniqueAppendsRid) {
  Catalog catalog;
  catalog.CreateTable("people", PersonSchema());
  IndexInfo* by_name = catalog.CreateIndex("name", "people", {1}, false);
  const Row row{int64_t{7}, std::string("bob"), int64_t{30}};
  std::string expected = key::EncodeKey({Value("bob")});
  key::EncodeInt64(99, &expected);
  EXPECT_EQ(by_name->KeyFor(row, 99), expected);
  // Same key values, different rids -> distinct index keys.
  EXPECT_NE(by_name->KeyFor(row, 99), by_name->KeyFor(row, 100));
}

TEST(CatalogTest, CompositeIndexKey) {
  Catalog catalog;
  catalog.CreateTable("people", PersonSchema());
  IndexInfo* composite =
      catalog.CreateIndex("name_age", "people", {1, 2}, true);
  const Row row{int64_t{1}, std::string("amy"), int64_t{41}};
  EXPECT_EQ(composite->KeyFor(row, 0),
            key::EncodeKey({Value("amy"), Value(int64_t{41})}));
}

TEST(CatalogTest, DropAllIndexes) {
  Catalog catalog;
  catalog.CreateTable("people", PersonSchema());
  catalog.CreateIndex("pk", "people", {0}, true);
  catalog.DropAllIndexes();
  EXPECT_EQ(catalog.GetIndex("pk"), nullptr);
  EXPECT_TRUE(catalog.TableIndexes(0).empty());
}

TEST(CatalogTest, CopyContentsRebuildsIndexes) {
  Catalog source;
  RowTable* src_table = source.CreateTable("people", PersonSchema());
  for (int i = 0; i < 20; ++i) {
    src_table->Insert(Row{int64_t{i}, std::string("p" + std::to_string(i)),
                          int64_t{20 + i}},
                      /*begin_ts=*/1, nullptr);
  }

  Catalog dest;
  dest.CreateTable("people", PersonSchema());
  IndexInfo* pk = dest.CreateIndex("pk", "people", {0}, true);
  dest.CopyContentsFrom(source);

  EXPECT_EQ(dest.GetTable("people")->NumSlots(), 20u);
  EXPECT_EQ(pk->tree->size(), 20u);
  uint64_t rid = 0;
  ASSERT_TRUE(pk->tree->Lookup(key::EncodeKey({Value(int64_t{7})}), &rid,
                               nullptr));
  EXPECT_EQ(rid, 7u);
}

TEST(CatalogTest, CopyContentsSeesLatestCommittedVersions) {
  Catalog source;
  RowTable* src_table = source.CreateTable("people", PersonSchema());
  const Rid rid = src_table->Insert(
      Row{int64_t{1}, std::string("old"), int64_t{1}}, 1, nullptr);
  ASSERT_TRUE(src_table
                  ->AddVersion(rid,
                               Row{int64_t{1}, std::string("new"),
                                   int64_t{2}},
                               5, nullptr)
                  .ok());

  Catalog dest;
  dest.CreateTable("people", PersonSchema());
  IndexInfo* by_name = dest.CreateIndex("name", "people", {1}, false);
  dest.CopyContentsFrom(source);
  // The rebuilt index reflects the newest committed version.
  size_t hits = 0;
  by_name->tree->ScanPrefix(key::EncodeKey({Value("new")}),
                            [&](const std::string&, uint64_t) {
                              ++hits;
                              return true;
                            },
                            nullptr);
  EXPECT_EQ(hits, 1u);
}

}  // namespace
}  // namespace hattrick
