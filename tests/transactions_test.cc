// Tests for the three HATtrick transactions (Section 5.2.1): parameter
// generation and mix, and the observable database effects of each
// transaction against a loaded engine — including the no-index fallback
// paths used by the Figure 6b physical schemas.

#include <memory>

#include <gtest/gtest.h>

#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/transactions.h"

namespace hattrick {
namespace {

class TransactionsTest : public ::testing::TestWithParam<PhysicalSchema> {
 protected:
  void SetUp() override {
    DatagenConfig config;
    config.scale_factor = 1.0;
    config.lineorders_per_sf = 2000;
    config.seed = 7;
    config.num_freshness_tables = 4;
    dataset_ = GenerateDataset(config);
    engine_ = std::make_unique<SharedEngine>();
    ASSERT_TRUE(LoadDataset(dataset_, GetParam(), engine_.get()).ok());
    context_ = std::make_unique<WorkloadContext>(dataset_);
    handles_ = EngineHandles::Resolve(*engine_->primary_catalog(),
                                      config.num_freshness_tables);
  }

  TxnOutcome Execute(const TxnParams& params, uint32_t client,
                     uint64_t txn_num) {
    WorkMeter meter;
    return engine_->ExecuteTransaction(
        MakeTxnBody(params, handles_, client, txn_num), client, txn_num,
        &meter);
  }

  int64_t FreshnessValue(uint32_t client) {
    Row row;
    EXPECT_TRUE(engine_->primary_catalog()
                    ->GetTable(handles_.freshness[client - 1])
                    ->ReadLatest(0, &row, nullptr));
    return row[fresh::kTxnNum].AsInt();
  }

  Dataset dataset_;
  std::unique_ptr<SharedEngine> engine_;
  std::unique_ptr<WorkloadContext> context_;
  EngineHandles handles_;
};

TEST_P(TransactionsTest, NewOrderInsertsLineordersAndBumpsFreshness) {
  RowTable* lineorder =
      engine_->primary_catalog()->GetTable(handles_.lineorder);
  const size_t before = lineorder->NumSlots();

  TxnParams params;
  params.type = TxnType::kNewOrder;
  params.orderkey = context_->next_orderkey.fetch_add(1);
  params.customer_name = CustomerName(3);
  params.orderdate = DateKeyAt(100);
  for (int i = 0; i < 3; ++i) {
    params.lines.push_back({/*partkey=*/static_cast<int64_t>(i + 1),
                            SupplierName(1), /*quantity=*/int64_t{10},
                            /*discount=*/int64_t{2}, /*tax=*/int64_t{1},
                            "AIR", "1-URGENT"});
  }
  const TxnOutcome outcome = Execute(params, /*client=*/2, /*txn_num=*/5);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(lineorder->NumSlots(), before + 3);
  EXPECT_EQ(FreshnessValue(2), 5);
  // New lines carry the right keys and computed prices.
  Row row;
  ASSERT_TRUE(lineorder->ReadLatest(before, &row, nullptr));
  EXPECT_EQ(row[lo::kOrderKey].AsInt(), params.orderkey);
  EXPECT_EQ(row[lo::kCustKey].AsInt(), 3);
  const double price = dataset_.part[0][part::kPrice].AsDouble();
  EXPECT_NEAR(row[lo::kExtendedPrice].AsDouble(), price * 10, 1e-9);
  EXPECT_NEAR(row[lo::kRevenue].AsDouble(), price * 10 * 0.98, 1e-9);
  // write_keys include the three inserts + freshness row.
  EXPECT_EQ(outcome.write_keys.size(), 4u);
}

TEST_P(TransactionsTest, PaymentUpdatesCustomerSupplierHistory) {
  TxnParams params;
  params.type = TxnType::kPayment;
  params.by_custkey = false;
  params.custkey = 5;
  params.customer_name = CustomerName(5);
  params.suppkey = 1;
  params.payment_orderkey = 1;
  params.amount = 123.5;

  RowTable* history =
      engine_->primary_catalog()->GetTable(handles_.history);
  const size_t history_before = history->NumSlots();
  const double ytd_before =
      dataset_.supplier[0][supp::kYtd].AsDouble();

  ASSERT_TRUE(Execute(params, 1, 1).status.ok());

  Row customer;
  ASSERT_TRUE(engine_->primary_catalog()
                  ->GetTable(handles_.customer)
                  ->ReadLatest(4, &customer, nullptr));
  EXPECT_EQ(customer[cust::kPaymentCnt].AsInt(), 1);

  Row supplier;
  ASSERT_TRUE(engine_->primary_catalog()
                  ->GetTable(handles_.supplier)
                  ->ReadLatest(0, &supplier, nullptr));
  EXPECT_NEAR(supplier[supp::kYtd].AsDouble(), ytd_before + 123.5, 1e-9);

  EXPECT_EQ(history->NumSlots(), history_before + 1);
  Row hist_row;
  ASSERT_TRUE(history->ReadLatest(history_before, &hist_row, nullptr));
  EXPECT_EQ(hist_row[hist::kCustKey].AsInt(), 5);
  EXPECT_NEAR(hist_row[hist::kAmount].AsDouble(), 123.5, 1e-9);
  EXPECT_EQ(FreshnessValue(1), 1);
}

TEST_P(TransactionsTest, PaymentByCustkeyPath) {
  TxnParams params;
  params.type = TxnType::kPayment;
  params.by_custkey = true;
  params.custkey = 7;
  params.customer_name = CustomerName(7);
  params.suppkey = 1;
  params.payment_orderkey = 1;
  params.amount = 10;
  ASSERT_TRUE(Execute(params, 1, 1).status.ok());
  Row customer;
  ASSERT_TRUE(engine_->primary_catalog()
                  ->GetTable(handles_.customer)
                  ->ReadLatest(6, &customer, nullptr));
  EXPECT_EQ(customer[cust::kPaymentCnt].AsInt(), 1);
}

TEST_P(TransactionsTest, CountOrdersIsReadOnlyExceptFreshness) {
  TxnParams params;
  params.type = TxnType::kCountOrders;
  params.customer_name = CustomerName(2);

  RowTable* lineorder =
      engine_->primary_catalog()->GetTable(handles_.lineorder);
  const size_t lineorders_before = lineorder->NumSlots();
  const TxnOutcome outcome = Execute(params, 3, 9);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(lineorder->NumSlots(), lineorders_before);
  EXPECT_EQ(FreshnessValue(3), 9);
  // Only the freshness row was written.
  EXPECT_EQ(outcome.write_keys.size(), 1u);
}

TEST_P(TransactionsTest, MissingCustomerFails) {
  TxnParams params;
  params.type = TxnType::kCountOrders;
  params.customer_name = "Customer#999999999";
  const TxnOutcome outcome = Execute(params, 1, 1);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(
    PhysicalSchemas, TransactionsTest,
    ::testing::Values(PhysicalSchema::kAllIndexes,
                      PhysicalSchema::kSemiIndexes,
                      PhysicalSchema::kNoIndexes),
    [](const ::testing::TestParamInfo<PhysicalSchema>& info) {
      return PhysicalSchemaName(info.param);
    });

// --------------------------------------------------------------------------
// Parameter generation.
// --------------------------------------------------------------------------

class ParamGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatagenConfig config;
    config.scale_factor = 1.0;
    config.lineorders_per_sf = 2000;
    dataset_ = GenerateDataset(config);
    context_ = std::make_unique<WorkloadContext>(dataset_);
  }

  Dataset dataset_;
  std::unique_ptr<WorkloadContext> context_;
};

TEST_F(ParamGenTest, MixMatchesPaperDistribution) {
  Rng rng(42);
  int counts[3] = {0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const TxnParams params = GenerateTxnParams(context_.get(), &rng);
    ++counts[static_cast<int>(params.type)];
  }
  // 48% new order, 48% payment, 4% count orders (Section 5.3).
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.48, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.48, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.04, 0.005);
}

TEST_F(ParamGenTest, PaymentSelectorMix) {
  Rng rng(43);
  int by_key = 0;
  int payments = 0;
  for (int i = 0; i < 50000; ++i) {
    const TxnParams params = GenerateTxnParams(context_.get(), &rng);
    if (params.type == TxnType::kPayment) {
      ++payments;
      if (params.by_custkey) ++by_key;
    }
  }
  // Customer selected by name 60% of the time (Section 5.2.1).
  EXPECT_NEAR(by_key / static_cast<double>(payments), 0.40, 0.02);
}

TEST_F(ParamGenTest, NewOrderKeysAreSequentialAndUnique) {
  Rng rng(44);
  int64_t last = context_->initial_max_orderkey;
  for (int i = 0; i < 1000; ++i) {
    const TxnParams params = GenerateTxnParams(context_.get(), &rng);
    if (params.type == TxnType::kNewOrder) {
      EXPECT_GT(params.orderkey, last);
      last = params.orderkey;
      EXPECT_GE(params.lines.size(), 1u);
      EXPECT_LE(params.lines.size(), 7u);
    }
  }
}

TEST_F(ParamGenTest, ParamsStayInDomains) {
  Rng rng(45);
  for (int i = 0; i < 2000; ++i) {
    const TxnParams params = GenerateTxnParams(context_.get(), &rng);
    if (params.type == TxnType::kNewOrder) {
      EXPECT_GE(params.orderdate, 19920101);
      EXPECT_LE(params.orderdate, 19981231);
      for (const auto& line : params.lines) {
        EXPECT_GE(line.partkey, 1);
        EXPECT_LE(line.partkey,
                  static_cast<int64_t>(context_->num_parts));
        EXPECT_GE(line.quantity, 1);
        EXPECT_LE(line.quantity, 50);
      }
    }
  }
}

TEST_F(ParamGenTest, ContextResetRewindsOrderKeys) {
  Rng rng(46);
  for (int i = 0; i < 100; ++i) GenerateTxnParams(context_.get(), &rng);
  context_->Reset();
  EXPECT_EQ(context_->next_orderkey.load(),
            context_->initial_max_orderkey + 1);
}

TEST_F(ParamGenTest, TxnTypeNames) {
  EXPECT_STREQ(TxnTypeName(TxnType::kNewOrder), "new_order");
  EXPECT_STREQ(TxnTypeName(TxnType::kPayment), "payment");
  EXPECT_STREQ(TxnTypeName(TxnType::kCountOrders), "count_orders");
}

}  // namespace
}  // namespace hattrick
