#include "fault/fault_injector.h"

namespace hattrick {

namespace {

/// Event-kind salts keep the per-kind decision streams independent: the
/// draw for "drop lsn 7" shares nothing with the draw for "duplicate
/// lsn 7".
enum Salt : uint64_t {
  kSaltDrop = 0x1d,
  kSaltDuplicate = 0x2d,
  kSaltReorder = 0x3d,
  kSaltResendDrop = 0x4d,
  kSaltCrash = 0x5d,
  kSaltShipDelay = 0x6d,
  kSaltSlowApply = 0x7d,
};

/// splitmix64 finalizer: a strong 64-bit mixer, the same construction the
/// repo's Rng uses for seed expansion.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

StatusOr<FaultConfig> MakeFaultProfile(const std::string& name,
                                       uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.profile = name;
  if (name == "none") {
    return config;
  }
  config.enabled = true;
  if (name == "drop") {
    config.drop_rate = 0.2;
    config.resend_drop_rate = 0.15;
  } else if (name == "duplicate") {
    config.duplicate_rate = 0.25;
  } else if (name == "reorder") {
    config.reorder_rate = 0.2;
  } else if (name == "crash") {
    config.crash_rate = 0.05;
  } else if (name == "delay") {
    config.ship_delay_rate = 0.3;
    config.ship_delay_seconds = 2e-3;
    config.slow_apply_rate = 0.3;
    config.slow_apply_multiplier = 4.0;
  } else if (name == "chaos") {
    config.drop_rate = 0.1;
    config.duplicate_rate = 0.1;
    config.reorder_rate = 0.1;
    config.resend_drop_rate = 0.1;
    config.crash_rate = 0.02;
    config.slow_apply_rate = 0.1;
    config.slow_apply_multiplier = 2.0;
  } else {
    return Status::InvalidArgument("unknown fault profile: " + name);
  }
  return config;
}

double FaultInjector::Draw(uint64_t salt, uint64_t a, uint64_t b) const {
  const uint64_t h = Mix(Mix(config_.seed ^ (salt * 0xff51afd7ed558ccdULL)) ^
                         Mix(a * 0xc4ceb9fe1a85ec53ULL + b));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::DropShip(uint64_t lsn) const {
  return enabled() && Draw(kSaltDrop, lsn, 0) < config_.drop_rate;
}

bool FaultInjector::DuplicateShip(uint64_t lsn) const {
  return enabled() && Draw(kSaltDuplicate, lsn, 0) < config_.duplicate_rate;
}

bool FaultInjector::ReorderShip(uint64_t lsn) const {
  return enabled() && Draw(kSaltReorder, lsn, 0) < config_.reorder_rate;
}

bool FaultInjector::DropResend(uint64_t lsn, uint64_t attempt) const {
  return enabled() &&
         Draw(kSaltResendDrop, lsn, attempt) < config_.resend_drop_rate;
}

bool FaultInjector::CrashBeforeApply(uint64_t step) const {
  return enabled() && Draw(kSaltCrash, step, 0) < config_.crash_rate;
}

double FaultInjector::SlowApplyMultiplier(uint64_t lsn) const {
  if (!enabled() ||
      Draw(kSaltSlowApply, lsn, 0) >= config_.slow_apply_rate) {
    return 1.0;
  }
  return config_.slow_apply_multiplier;
}

double FaultInjector::ShipDelaySeconds(uint64_t lsn) const {
  if (!enabled() ||
      Draw(kSaltShipDelay, lsn, 0) >= config_.ship_delay_rate) {
    return 0.0;
  }
  return config_.ship_delay_seconds;
}

}  // namespace hattrick
