#ifndef HATTRICK_FAULT_FAULT_INJECTOR_H_
#define HATTRICK_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace hattrick {

/// Configuration of the replication-layer fault injector.
///
/// All rates are probabilities in [0, 1] evaluated *deterministically*:
/// every decision is a pure hash of (seed, event kind, event key), never
/// of call order or wall time. Two runs with the same seed therefore see
/// the byte-identical fault schedule — the same records dropped, the same
/// deliveries duplicated, the same apply steps crashed — which is what
/// makes faulted simulation runs reproducible and lets the chaos harness
/// compare them against a fault-free baseline.
struct FaultConfig {
  /// Master switch; a default-constructed config injects nothing.
  bool enabled = false;
  uint64_t seed = 0;
  /// The profile name this config was built from ("none", "drop", ...).
  std::string profile = "none";

  /// P(the initial ship of a record is lost in the network).
  double drop_rate = 0;
  /// P(a record is delivered twice).
  double duplicate_rate = 0;
  /// P(a record is held back and delivered after its successor).
  double reorder_rate = 0;
  /// P(a requested retransmission is lost too).
  double resend_drop_rate = 0;
  /// P(the replica crashes immediately before an apply step).
  double crash_rate = 0;
  /// P(a commit's ship is delayed) and the extra delay applied.
  double ship_delay_rate = 0;
  double ship_delay_seconds = 0;
  /// P(an apply step runs slow) and the work multiplier when it does.
  double slow_apply_rate = 0;
  double slow_apply_multiplier = 1.0;
};

/// Builds the canned fault profiles used by the chaos harness and the
/// CLI's --fault-profile flag:
///   none      no faults (enabled = false)
///   drop      initial ships and some resends are lost
///   duplicate records are delivered twice
///   reorder   records are delivered out of order
///   crash     the replica crashes and recovers mid-replay
///   delay     ships are delayed and applies run slow
///   chaos     all of the above at once (lower individual rates)
/// Returns InvalidArgument for an unknown name.
StatusOr<FaultConfig> MakeFaultProfile(const std::string& name,
                                       uint64_t seed);

/// Deterministic, stateless fault oracle over a FaultConfig. Each query
/// hashes (seed, salt, key, attempt) to a uniform [0, 1) draw and
/// compares it to the configured rate; the injector holds no mutable
/// state, so it is trivially thread-safe and its schedule is independent
/// of the order in which the stream and the replica consult it.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(std::move(config)) {}

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  /// Network faults on the shipping channel, keyed by LSN.
  bool DropShip(uint64_t lsn) const;
  bool DuplicateShip(uint64_t lsn) const;
  bool ReorderShip(uint64_t lsn) const;
  /// `attempt` is the replica's 1-based resend attempt for `lsn`, so a
  /// retransmission that was dropped once is an independent draw on the
  /// next attempt (a 100% first-try drop still converges via retries).
  bool DropResend(uint64_t lsn, uint64_t attempt) const;

  /// Replica faults, keyed by the replica's apply-step sequence number.
  bool CrashBeforeApply(uint64_t step) const;
  double SlowApplyMultiplier(uint64_t lsn) const;

  /// Extra commit-visible ship latency for `lsn` (seconds; 0 = none).
  double ShipDelaySeconds(uint64_t lsn) const;

 private:
  /// Uniform [0, 1) draw, a pure function of (seed, salt, a, b).
  double Draw(uint64_t salt, uint64_t a, uint64_t b) const;

  FaultConfig config_;
};

}  // namespace hattrick

#endif  // HATTRICK_FAULT_FAULT_INJECTOR_H_
