#ifndef HATTRICK_STORAGE_ROW_TABLE_H_
#define HATTRICK_STORAGE_ROW_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"

namespace hattrick {

/// Row identifier: the slot index within a RowTable. Stable for the life
/// of the table (rows are never physically moved).
using Rid = uint64_t;

/// Timestamps are commit sequence numbers handed out by the TimestampOracle.
using Ts = uint64_t;
inline constexpr Ts kMaxTs = std::numeric_limits<Ts>::max();

/// A multi-versioned in-memory row store.
///
/// Each slot holds a version chain ordered oldest-to-newest. A version is
/// visible to a snapshot `s` iff begin_ts <= s < end_ts. Versions are only
/// installed by committed transactions (the transaction manager buffers
/// writes and applies them at commit under its commit latch), so readers
/// never observe uncommitted data and a snapshot never exposes a partial
/// commit.
///
/// This mirrors the PostgreSQL/Hekaton-style MVCC design the paper's
/// "shared" and "hybrid" categories rely on (Section 2.2): readers never
/// block writers and vice versa; analytical queries traverse version
/// chains to find their snapshot (metered as version_hops).
class RowTable {
 public:
  explicit RowTable(Schema schema);

  RowTable(const RowTable&) = delete;
  RowTable& operator=(const RowTable&) = delete;

  const Schema& schema() const { return schema_; }

  /// Appends a new row whose first version begins at `begin_ts`.
  /// Returns the new row id.
  Rid Insert(const Row& row, Ts begin_ts, WorkMeter* meter);

  /// Installs a new version of `rid` beginning at `commit_ts` and
  /// terminates the previous newest version. The caller is responsible
  /// for conflict detection (see TxnManager).
  Status AddVersion(Rid rid, const Row& row, Ts commit_ts, WorkMeter* meter);

  /// Terminates the newest version at `commit_ts` (logical delete).
  Status MarkDeleted(Rid rid, Ts commit_ts, WorkMeter* meter);

  /// Reads the version of `rid` visible at `snapshot`. Returns false if no
  /// visible version exists (row created later, or deleted).
  bool Read(Rid rid, Ts snapshot, Row* out, WorkMeter* meter) const;

  /// Reads the newest committed version regardless of snapshot (used for
  /// read-committed isolation). Returns false if the row is deleted.
  bool ReadLatest(Rid rid, Row* out, WorkMeter* meter) const;

  /// begin_ts of the newest version of `rid` (0 if rid is out of range).
  /// Used for first-updater-wins write-conflict checks and for OCC read
  /// validation.
  Ts LatestVersionTs(Rid rid) const;

  /// Visits every row visible at `snapshot` in rid order; return false
  /// from the visitor to stop.
  void Scan(Ts snapshot,
            const std::function<bool(Rid, const Row&)>& visitor,
            WorkMeter* meter) const;

  /// Like Scan but restricted to rids in [begin, end) — the row-store
  /// morsel primitive for parallel heap scans. Metering per rid is
  /// identical to Scan (whole-chain version_hops, rows_read per visible
  /// row), so a full cover of disjoint ranges meters exactly like one
  /// Scan. `end` past the slot count is clamped.
  void ScanRange(Ts snapshot, Rid begin, Rid end,
                 const std::function<bool(Rid, const Row&)>& visitor,
                 WorkMeter* meter) const;

  /// Number of slots (including rows whose newest version is a delete).
  size_t NumSlots() const;

  /// Total number of versions across all slots (for GC diagnostics).
  size_t NumVersions() const;

  /// Drops all versions that ended at or before `horizon` and are not the
  /// newest version of their chain. Returns the number dropped.
  size_t Vacuum(Ts horizon);

  /// Replaces contents with a deep copy of `other` (benchmark reset).
  void CopyFrom(const RowTable& other);

 private:
  struct Version {
    Ts begin_ts;
    Ts end_ts;  // kMaxTs while newest
    Row data;
  };
  struct Chain {
    std::vector<Version> versions;  // oldest first
  };

  mutable SharedMutex latch_;
  const Schema schema_;  // immutable after construction; never latched
  std::deque<Chain> slots_ GUARDED_BY(latch_);
};

}  // namespace hattrick

#endif  // HATTRICK_STORAGE_ROW_TABLE_H_
