#ifndef HATTRICK_STORAGE_ROW_TABLE_H_
#define HATTRICK_STORAGE_ROW_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"
#include "txn/mvcc.h"

namespace hattrick {

/// A multi-versioned in-memory row store over lock-free version chains.
///
/// Each slot holds an atomic head pointer to a newest-first chain of
/// CSN-stamped version nodes (see txn/mvcc.h). A version is visible to a
/// snapshot `s` iff it is committed with cts <= s and no newer committed
/// full version also has cts <= s; committed delta versions (single-cell
/// increments) above the resolved full version fold into the read.
/// Writers install PENDING nodes with a head CAS — a pending node is the
/// row's write lock — and the transaction manager publishes or withdraws
/// them; readers skip pending and aborted nodes, so they never observe
/// uncommitted data and never block.
///
/// `latch_` protects only the slot directory (the deque), not row
/// contents: reads, installs, and Vacuum all run under the shared side.
/// Vacuum unlinks superseded nodes with CAS and retires them through the
/// epoch manager, so garbage collection never blocks readers either.
///
/// This mirrors the Hekaton/STO-style MVCC design the paper's "shared"
/// and "hybrid" categories rely on (Section 2.2): readers never block
/// writers and vice versa; analytical queries traverse version chains to
/// find their snapshot (metered as version_hops).
class RowTable {
 public:
  explicit RowTable(Schema schema);
  ~RowTable();

  RowTable(const RowTable&) = delete;
  RowTable& operator=(const RowTable&) = delete;

  const Schema& schema() const { return schema_; }

  /// Appends a new row whose first version commits at `begin_ts`.
  /// Returns the new row id.
  Rid Insert(const Row& row, Ts begin_ts, WorkMeter* meter);

  /// Installs a committed full version of `rid` at `commit_ts` above the
  /// current head. The caller is responsible for conflict detection
  /// (replica replay and pre-validated single-writer paths).
  Status AddVersion(Rid rid, const Row& row, Ts commit_ts, WorkMeter* meter);

  /// Installs a committed delta version: `increment` folds into
  /// `column` of the visible full version at read time (replica replay
  /// of WalOp::Kind::kDelta records).
  Status AddDeltaVersion(Rid rid, uint32_t column, const Value& increment,
                         Ts commit_ts, WorkMeter* meter);

  /// Terminates visibility at `commit_ts` (logical delete): installs a
  /// committed tombstone version.
  Status MarkDeleted(Rid rid, Ts commit_ts, WorkMeter* meter);

  /// Installs a PENDING full after-image of `rid` for `owner`, validating
  /// first-updater-wins against `base_ts` (the newest committed work the
  /// writer's read folded in): fails — returning nullptr and metering a
  /// conflict_wait — if a foreign pending version exists or any committed
  /// version above (and including) the newest committed full has
  /// cts > base_ts. On success the returned node is the row's write lock;
  /// the caller publishes it with mvcc::Publish or rolls it back with
  /// mvcc::Withdraw.
  mvcc::VersionNode* TryInstallFull(Rid rid, const Row& row,
                                    const void* owner, Ts base_ts,
                                    WorkMeter* meter);

  /// Installs a PENDING delta version. Deltas commute with committed
  /// versions and with other deltas, so the only conflict is a foreign
  /// pending *full* version (a full overwrite racing the increment).
  mvcc::VersionNode* TryInstallDelta(Rid rid, uint32_t column,
                                     const Value& increment,
                                     const void* owner, WorkMeter* meter);

  /// Backward OCC read validation: true iff the newest committed full
  /// version of `rid` still has cts == observed_full_cts and no foreign
  /// pending full version is in flight. Committed/pending deltas never
  /// invalidate a read (commutative escrow relaxation; see DESIGN.md).
  bool ValidateRead(Rid rid, Ts observed_full_cts, const void* owner) const;

  /// Reads the version of `rid` visible at `snapshot`. Returns false if no
  /// visible version exists (row created later, or deleted).
  bool Read(Rid rid, Ts snapshot, Row* out, WorkMeter* meter) const;

  /// Like Read, also reporting what the fold observed (feeds write-write
  /// and read validation in the transaction manager).
  bool ReadObserved(Rid rid, Ts snapshot, Row* out,
                    mvcc::FoldObservation* obs, WorkMeter* meter) const;

  /// Reads the newest committed version regardless of snapshot (used for
  /// read-committed isolation). Returns false if the row is deleted.
  bool ReadLatest(Rid rid, Row* out, WorkMeter* meter) const;

  /// Like ReadLatest, also reporting what the fold observed.
  bool ReadLatestObserved(Rid rid, Row* out, mvcc::FoldObservation* obs,
                          WorkMeter* meter) const;

  /// cts of the newest committed full version of `rid` (0 if rid is out
  /// of range). Pending, aborted, and delta versions do not count.
  Ts LatestVersionTs(Rid rid) const;

  /// Visits every row visible at `snapshot` in rid order; return false
  /// from the visitor to stop.
  void Scan(Ts snapshot,
            const std::function<bool(Rid, const Row&)>& visitor,
            WorkMeter* meter) const;

  /// Like Scan but restricted to rids in [begin, end) — the row-store
  /// morsel primitive for parallel heap scans. Metering per rid is
  /// identical to Scan (whole-chain version_hops, rows_read per visible
  /// row), so a full cover of disjoint ranges meters exactly like one
  /// Scan. `end` past the slot count is clamped.
  void ScanRange(Ts snapshot, Rid begin, Rid end,
                 const std::function<bool(Rid, const Row&)>& visitor,
                 WorkMeter* meter) const;

  /// Number of slots (including rows whose newest version is a delete).
  size_t NumSlots() const;

  /// Total number of version nodes across all slots, including pending
  /// and aborted ones (for GC diagnostics).
  size_t NumVersions() const;

  /// Unlinks versions no snapshot at or after `horizon` can reach:
  /// aborted nodes, and committed nodes superseded by a newer committed
  /// full version with cts <= horizon. Runs against the shared latch
  /// (readers are never blocked); unlinked nodes are retired through the
  /// epoch manager. Returns the number unlinked.
  size_t Vacuum(Ts horizon);

  /// Replaces contents with a deep copy of `other`'s committed versions
  /// (benchmark reset; pending/aborted nodes are not carried over).
  void CopyFrom(const RowTable& other);

 private:
  bool FoldAt(Rid rid, Ts snapshot, Row* out, mvcc::FoldObservation* obs,
              WorkMeter* meter) const;

  mutable SharedMutex latch_;
  /// Serializes Vacuum passes (concurrent unlinks of adjacent nodes
  /// could resurrect an unlinked node). Acquired before latch_.
  Mutex vacuum_mu_ ACQUIRED_BEFORE(latch_);
  const Schema schema_;  // immutable after construction; never latched
  std::deque<mvcc::VersionChain> slots_ GUARDED_BY(latch_);
};

}  // namespace hattrick

#endif  // HATTRICK_STORAGE_ROW_TABLE_H_
