#include "storage/btree.h"

#include <algorithm>
#include <cassert>

#include "common/key_encoding.h"

namespace hattrick {

struct BTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<std::string> keys;
  std::vector<uint64_t> values;  // leaf only; parallel to keys
  std::vector<Node*> children;   // internal only; size == keys.size() + 1
  Node* next = nullptr;          // leaf chain
};

namespace {

void Meter(WorkMeter* meter, uint64_t nodes, uint64_t writes) {
  if (meter != nullptr) {
    meter->index_nodes += nodes;
    meter->index_writes += writes;
  }
}

// Cache-miss weight of one node access: trees beyond ~32k entries spill
// out of the cache hierarchy and every level of growth makes node visits
// more expensive. This is what makes index maintenance degrade
// transactional throughput at large scale factors (the paper's SF100
// observation, Section 6.2) — tree *depth* alone grows only
// logarithmically and would understate the effect.
uint64_t CacheWeight(size_t size) {
  uint64_t weight = 1;
  for (size_t s = size / 16384; s > 0; s /= 4) ++weight;
  return weight;
}

}  // namespace

BTree::BTree(size_t leaf_capacity, size_t internal_capacity)
    : leaf_capacity_(leaf_capacity),
      internal_capacity_(internal_capacity),
      root_(new Node()) {
  assert(leaf_capacity_ >= 2 && internal_capacity_ >= 3);
}

BTree::~BTree() { DeleteSubtree(root_); }

void BTree::DeleteSubtree(Node* node) {
  if (!node->leaf) {
    for (Node* child : node->children) DeleteSubtree(child);
  }
  delete node;
}

// Descends to the leaf that should receive an insertion of `key`
// (rightmost leaf whose range admits the key, so duplicate runs append).
BTree::Node* BTree::FindLeaf(const std::string& key, WorkMeter* meter) const {
  Node* node = root_;
  uint64_t visited = 1;
  while (!node->leaf) {
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<size_t>(it - node->keys.begin())];
    ++visited;
  }
  Meter(meter, visited * CacheWeight(size_), 0);
  return node;
}

namespace {

// Descends to the leftmost leaf that may contain the first entry >= key.
// Because duplicate runs may straddle a split separator, descent uses
// lower_bound (ties go left); callers then walk the leaf chain forward.
template <typename NodeT>
NodeT* FindLeafForScan(NodeT* root, const std::string& key, uint64_t weight,
                       WorkMeter* meter) {
  NodeT* node = root;
  uint64_t visited = 1;
  while (!node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<size_t>(it - node->keys.begin())];
    ++visited;
  }
  Meter(meter, visited * weight, 0);
  return node;
}

}  // namespace

void BTree::Insert(const std::string& key, uint64_t value, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  Node* leaf = FindLeaf(key, meter);
  InsertIntoLeaf(leaf, key, value, meter);
}

Status BTree::InsertUnique(const std::string& key, uint64_t value,
                           WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  Node* leaf = FindLeafForScan(root_, key, CacheWeight(size_), meter);
  // Check the leaf (and, for boundary cases, the next leaf) for the key.
  for (Node* n = leaf; n != nullptr; n = n->next) {
    const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it != n->keys.end()) {
      if (*it == key) return Status::AlreadyExists("duplicate key");
      break;  // first entry >= key differs from key => absent
    }
    // Leaf exhausted without reaching a key >= target; continue right.
  }
  InsertIntoLeaf(FindLeaf(key, nullptr), key, value, meter);
  return Status::OK();
}

void BTree::InsertIntoLeaf(Node* leaf, const std::string& key, uint64_t value,
                           WorkMeter* meter) {
  const auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key);
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.insert(leaf->keys.begin() + pos, key);
  leaf->values.insert(leaf->values.begin() + pos, value);
  ++size_;
  Meter(meter, 0, 1);
  if (leaf->keys.size() > leaf_capacity_) SplitLeaf(leaf);
}

void BTree::SplitLeaf(Node* leaf) {
  if (split_counter_ != nullptr) split_counter_->Inc();
  const size_t mid = leaf->keys.size() / 2;
  Node* right = new Node();
  right->leaf = true;
  right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
  right->values.assign(leaf->values.begin() + mid, leaf->values.end());
  leaf->keys.resize(mid);
  leaf->values.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
}

void BTree::SplitInternal(Node* node) {
  if (split_counter_ != nullptr) split_counter_->Inc();
  const size_t mid = node->keys.size() / 2;
  std::string separator = node->keys[mid];
  Node* right = new Node();
  right->leaf = false;
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  for (Node* child : right->children) child->parent = right;
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  InsertIntoParent(node, std::move(separator), right);
}

void BTree::InsertIntoParent(Node* node, std::string separator,
                             Node* sibling) {
  Node* parent = node->parent;
  if (parent == nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(separator));
    new_root->children = {node, sibling};
    node->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    ++height_;
    return;
  }
  const auto it = std::find(parent->children.begin(), parent->children.end(),
                            node);
  assert(it != parent->children.end());
  const size_t pos = static_cast<size_t>(it - parent->children.begin());
  parent->keys.insert(parent->keys.begin() + pos, std::move(separator));
  parent->children.insert(parent->children.begin() + pos + 1, sibling);
  sibling->parent = parent;
  if (parent->keys.size() > internal_capacity_) SplitInternal(parent);
}

bool BTree::Remove(const std::string& key, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  for (Node* n = FindLeafForScan(root_, key, CacheWeight(size_), meter); n != nullptr;
       n = n->next) {
    const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it != n->keys.end()) {
      if (*it != key) return false;
      const size_t pos = static_cast<size_t>(it - n->keys.begin());
      n->keys.erase(n->keys.begin() + pos);
      n->values.erase(n->values.begin() + pos);
      --size_;
      Meter(meter, 0, 1);
      return true;
    }
    Meter(meter, 1, 0);  // hop to the next leaf
  }
  return false;
}

bool BTree::Lookup(const std::string& key, uint64_t* value,
                   WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  for (const Node* n = FindLeafForScan(root_, key, CacheWeight(size_), meter); n != nullptr;
       n = n->next) {
    const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it != n->keys.end()) {
      if (*it != key) return false;
      *value = n->values[static_cast<size_t>(it - n->keys.begin())];
      return true;
    }
    Meter(meter, 1, 0);
  }
  return false;
}

void BTree::ScanRange(const std::string& lo, const std::string& hi,
                      const Visitor& visitor, WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  const Node* n = FindLeafForScan(root_, lo, CacheWeight(size_), meter);
  size_t pos = 0;
  {
    const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), lo);
    pos = static_cast<size_t>(it - n->keys.begin());
  }
  while (n != nullptr) {
    for (; pos < n->keys.size(); ++pos) {
      if (!hi.empty() && n->keys[pos] >= hi) return;
      if (!visitor(n->keys[pos], n->values[pos])) return;
    }
    n = n->next;
    pos = 0;
    if (n != nullptr) Meter(meter, 1, 0);
  }
}

void BTree::ScanPrefix(const std::string& prefix, const Visitor& visitor,
                       WorkMeter* meter) const {
  ScanRange(prefix, key::PrefixSuccessor(prefix), visitor, meter);
}

size_t BTree::size() const {
  SharedReaderLock lock(&latch_);
  return size_;
}

size_t BTree::height() const {
  SharedReaderLock lock(&latch_);
  return height_;
}

BTree::Node* BTree::CloneSubtree(const Node* node, Node** prev_leaf) {
  Node* copy = new Node();
  copy->leaf = node->leaf;
  copy->keys = node->keys;
  if (node->leaf) {
    copy->values = node->values;
    if (*prev_leaf != nullptr) (*prev_leaf)->next = copy;
    *prev_leaf = copy;
  } else {
    copy->children.reserve(node->children.size());
    for (const Node* child : node->children) {
      Node* child_copy = CloneSubtree(child, prev_leaf);
      child_copy->parent = copy;
      copy->children.push_back(child_copy);
    }
  }
  return copy;
}

void BTree::CopyFrom(const BTree& other) {
  if (this == &other) return;
  // Address-ordered acquisition, mirroring {Row,Column}Table::CopyFrom:
  // catalog resets copy trees in both directions between the same pair
  // (load snapshotting vs benchmark reset), so the previous fixed
  // this-then-other order was a latent lock-order inversion — two
  // threads copying opposite directions could deadlock. Explicit
  // Lock/Unlock because a scoped lock cannot express the conditional
  // order; the analysis still checks the hold set on every path.
  if (this < &other) {
    latch_.Lock();
    other.latch_.LockShared();
  } else {
    other.latch_.LockShared();
    latch_.Lock();
  }
  DeleteSubtree(root_);
  Node* prev_leaf = nullptr;
  root_ = CloneSubtree(other.root_, &prev_leaf);
  size_ = other.size_;
  height_ = other.height_;
  other.latch_.UnlockShared();
  latch_.Unlock();
}

void BTree::Clear() {
  SharedMutexLock lock(&latch_);
  DeleteSubtree(root_);
  root_ = new Node();
  size_ = 0;
  height_ = 1;
}

}  // namespace hattrick
