#ifndef HATTRICK_STORAGE_BTREE_H_
#define HATTRICK_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/work_meter.h"
#include "obs/metrics.h"

namespace hattrick {

/// An in-memory B+-tree from memcomparable byte-string keys to uint64
/// values (row ids).
///
/// - Unique indexes store the primary key encoding directly.
/// - Secondary (non-unique) indexes append the row id to the key
///   (key = Encode(attrs) + Encode(rid)), the standard trick that makes
///   every entry unique while preserving prefix-scan semantics.
/// - Deletion removes entries from leaves without rebalancing; empty
///   leaves are skipped by scans. HATtrick issues no deletes, so this
///   lazy scheme only matters for the unit tests that exercise it.
///
/// All operations meter the number of nodes visited into a WorkMeter,
/// which is how index traversal and maintenance costs (a first-order
/// effect in the paper's SF100 results, Section 6.2) reach the cost model.
///
/// Thread safety: a single reader-writer latch guards the whole tree.
/// Fine-grained latching is unnecessary because contention is modeled in
/// virtual time by the simulator, not exercised in real time.
class BTree {
 public:
  /// Visitor for scans; return false to stop the scan early.
  using Visitor = std::function<bool(const std::string& key, uint64_t value)>;

  /// Creates an empty tree. `leaf_capacity`/`internal_capacity` are
  /// tunable for tests that want to force deep trees.
  explicit BTree(size_t leaf_capacity = 64, size_t internal_capacity = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts key -> value; duplicate keys are allowed and are returned in
  /// insertion-independent (key-sorted, stable by value of encoded key)
  /// order by scans.
  void Insert(const std::string& key, uint64_t value, WorkMeter* meter);

  /// Inserts only if `key` is absent; returns AlreadyExists otherwise.
  Status InsertUnique(const std::string& key, uint64_t value,
                      WorkMeter* meter);

  /// Removes one entry with exactly `key`; returns true if found.
  bool Remove(const std::string& key, WorkMeter* meter);

  /// Point lookup; returns true and sets *value if found. If multiple
  /// entries share `key`, returns the first in key order.
  bool Lookup(const std::string& key, uint64_t* value,
              WorkMeter* meter) const;

  /// Visits entries with lo <= key < hi in ascending key order.
  /// An empty `hi` means "to the end of the tree".
  void ScanRange(const std::string& lo, const std::string& hi,
                 const Visitor& visitor, WorkMeter* meter) const;

  /// Visits all entries whose key starts with `prefix`.
  void ScanPrefix(const std::string& prefix, const Visitor& visitor,
                  WorkMeter* meter) const;

  /// Number of entries.
  size_t size() const;

  /// Height of the tree (1 for a single leaf).
  size_t height() const;

  /// Replaces the contents of this tree with a copy of `other`.
  void CopyFrom(const BTree& other);

  /// Removes all entries.
  void Clear();

  /// Optional split counter (obs registry). Incremented on every leaf or
  /// internal node split; null (the default) disables counting, so the
  /// insert path carries only a pointer test when observability is off.
  void set_split_counter(obs::Counter* counter) { split_counter_ = counter; }

 private:
  struct Node;

  Node* FindLeaf(const std::string& key, WorkMeter* meter) const
      REQUIRES_SHARED(latch_);
  void InsertIntoLeaf(Node* leaf, const std::string& key, uint64_t value,
                      WorkMeter* meter) REQUIRES(latch_);
  void SplitLeaf(Node* leaf) REQUIRES(latch_);
  void SplitInternal(Node* node) REQUIRES(latch_);
  void InsertIntoParent(Node* node, std::string separator, Node* sibling)
      REQUIRES(latch_);
  static void DeleteSubtree(Node* node);
  static Node* CloneSubtree(const Node* node, Node** prev_leaf);

  const size_t leaf_capacity_;
  const size_t internal_capacity_;
  mutable SharedMutex latch_;
  Node* root_ GUARDED_BY(latch_);
  size_t size_ GUARDED_BY(latch_) = 0;
  size_t height_ GUARDED_BY(latch_) = 1;
  obs::Counter* split_counter_ = nullptr;  // attach-time wiring, quiesced
};

}  // namespace hattrick

#endif  // HATTRICK_STORAGE_BTREE_H_
