#ifndef HATTRICK_STORAGE_CATALOG_H_
#define HATTRICK_STORAGE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/row_table.h"

namespace hattrick {

/// Numeric table identifier used by WAL records and replication.
using TableId = uint32_t;

/// Metadata and storage of one secondary or primary index.
struct IndexInfo {
  std::string name;
  TableId table_id = 0;
  std::vector<size_t> key_columns;  // ordinals within the table schema
  bool unique = false;
  std::unique_ptr<BTree> tree;

  /// Builds the encoded index key for `row` (rid appended when non-unique).
  std::string KeyFor(const Row& row, Rid rid) const;
};

/// Owns the row tables and indexes of one engine node (primary, replica).
///
/// A node's catalog is deterministic: table ids are assigned in creation
/// order, so a replica that creates the same tables in the same order can
/// replay WAL records by table id.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a row table; the name must be unique.
  RowTable* CreateTable(const std::string& name, Schema schema);

  /// Creates an index over `table_name` keyed on `key_columns`.
  IndexInfo* CreateIndex(const std::string& index_name,
                         const std::string& table_name,
                         std::vector<size_t> key_columns, bool unique);

  /// Lookup helpers; return nullptr when absent.
  RowTable* GetTable(const std::string& name) const;
  RowTable* GetTable(TableId id) const;
  IndexInfo* GetIndex(const std::string& name) const;
  TableId GetTableId(const std::string& name) const;

  /// All indexes defined over table `id` (for write-path maintenance).
  const std::vector<IndexInfo*>& TableIndexes(TableId id) const;

  /// Every index in the catalog, in creation order (used to wire
  /// observability counters onto the trees).
  std::vector<IndexInfo*> AllIndexes() const;

  size_t num_tables() const { return tables_.size(); }
  const std::string& table_name(TableId id) const { return names_[id]; }

  /// Drops all indexes (used by the physical-schema experiments to switch
  /// between no/semi/all index configurations).
  void DropAllIndexes();

  /// Vacuums every table at `horizon` (see RowTable::Vacuum); returns
  /// total versions dropped.
  size_t VacuumAll(Ts horizon);

  /// Deep-copies all table contents and rebuilt indexes from `other`,
  /// which must have an identical layout (benchmark reset).
  void CopyContentsFrom(const Catalog& other);

 private:
  std::vector<std::unique_ptr<RowTable>> tables_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, TableId> by_name_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;
  std::unordered_map<std::string, IndexInfo*> indexes_by_name_;
  std::vector<std::vector<IndexInfo*>> indexes_by_table_;
};

}  // namespace hattrick

#endif  // HATTRICK_STORAGE_CATALOG_H_
