#include "storage/row_table.h"

#include <algorithm>
#include <cassert>

namespace hattrick {

namespace {

using mvcc::VersionChain;
using mvcc::VersionNode;
using mvcc::VersionStatus;

VersionNode* NewCommittedFull(const Row& row, Ts cts, bool tombstone) {
  auto* node = new VersionNode();
  node->tombstone = tombstone;
  node->payload = row;
  mvcc::Publish(node, cts);
  return node;
}

VersionNode* NewCommittedDelta(uint32_t column, const Value& increment,
                               Ts cts) {
  auto* node = new VersionNode();
  node->is_delta = true;
  node->delta_column = column;
  node->payload = Row{increment};
  mvcc::Publish(node, cts);
  return node;
}

/// Deep-copies the committed suffix of a chain (newest first). Pending
/// and aborted nodes are dropped: a cloned pending node could never be
/// published by its (foreign) owner and would pin the chain forever.
VersionNode* CloneCommitted(const VersionNode* head) {
  VersionNode* new_head = nullptr;
  VersionNode* tail = nullptr;
  for (const VersionNode* node = head; node != nullptr;
       node = node->prev.load(std::memory_order_acquire)) {
    if (!mvcc::IsCommitted(mvcc::StatusOf(node))) continue;
    auto* clone = new VersionNode();
    clone->tombstone = node->tombstone;
    clone->is_delta = node->is_delta;
    clone->delta_column = node->delta_column;
    clone->payload = node->payload;
    clone->cts.store(node->cts.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    clone->status.store(node->status.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    if (tail == nullptr) {
      new_head = clone;
    } else {
      tail->prev.store(clone, std::memory_order_relaxed);
    }
    tail = clone;
  }
  return new_head;
}

}  // namespace

RowTable::RowTable(Schema schema) : schema_(std::move(schema)) {}

RowTable::~RowTable() {
  SharedMutexLock lock(&latch_);
  for (VersionChain& chain : slots_) {
    mvcc::FreeChain(chain.head.load(std::memory_order_acquire));
    chain.head.store(nullptr, std::memory_order_relaxed);
  }
}

Rid RowTable::Insert(const Row& row, Ts begin_ts, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  const Rid rid = slots_.size();
  slots_.emplace_back();
  slots_.back().head.store(NewCommittedFull(row, begin_ts, false),
                           std::memory_order_release);
  if (meter != nullptr) ++meter->rows_written;
  return rid;
}

Status RowTable::AddVersion(Rid rid, const Row& row, Ts commit_ts,
                            WorkMeter* meter) {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return Status::NotFound("rid out of range");
  mvcc::EpochManager::Guard guard;
  mvcc::PushHead(&slots_[rid], NewCommittedFull(row, commit_ts, false));
  if (meter != nullptr) ++meter->rows_written;
  return Status::OK();
}

Status RowTable::AddDeltaVersion(Rid rid, uint32_t column,
                                 const Value& increment, Ts commit_ts,
                                 WorkMeter* meter) {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return Status::NotFound("rid out of range");
  mvcc::EpochManager::Guard guard;
  mvcc::PushHead(&slots_[rid], NewCommittedDelta(column, increment,
                                                 commit_ts));
  if (meter != nullptr) ++meter->rows_written;
  return Status::OK();
}

Status RowTable::MarkDeleted(Rid rid, Ts commit_ts, WorkMeter* meter) {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return Status::NotFound("rid out of range");
  mvcc::EpochManager::Guard guard;
  mvcc::PushHead(&slots_[rid], NewCommittedFull(Row{}, commit_ts, true));
  if (meter != nullptr) ++meter->rows_written;
  return Status::OK();
}

mvcc::VersionNode* RowTable::TryInstallFull(Rid rid, const Row& row,
                                            const void* owner, Ts base_ts,
                                            WorkMeter* meter) {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return nullptr;
  mvcc::EpochManager::Guard guard;
  VersionChain& chain = slots_[rid];
  auto* node = new VersionNode();
  node->owner = owner;
  node->payload = row;
  for (;;) {
    VersionNode* head = chain.head.load(std::memory_order_acquire);
    // Validate the prefix above (and including) the newest committed
    // full version. Any committed work there with cts > base_ts was not
    // seen by the read this write is based on (first-updater-wins), and
    // any foreign pending version is a concurrent writer holding the
    // row's write lock.
    bool conflict = false;
    for (VersionNode* cur = head; cur != nullptr;
         cur = cur->prev.load(std::memory_order_acquire)) {
      const VersionStatus st = mvcc::StatusOf(cur);
      if (st == VersionStatus::kAborted) continue;
      if (st == VersionStatus::kPending) {
        if (cur->owner != owner) {
          conflict = true;
          break;
        }
        continue;  // own earlier pending write to the same row
      }
      if (cur->cts.load(std::memory_order_relaxed) > base_ts) {
        conflict = true;
        break;
      }
      if (st == VersionStatus::kCommitted) break;  // newest committed full
    }
    if (conflict) {
      delete node;
      if (meter != nullptr) ++meter->conflict_waits;
      return nullptr;
    }
    // The CAS is the linearization point: success means the validated
    // prefix is still the chain prefix.
    if (mvcc::TryPushHead(&chain, node, head)) {
      if (meter != nullptr) ++meter->rows_written;
      return node;
    }
  }
}

mvcc::VersionNode* RowTable::TryInstallDelta(Rid rid, uint32_t column,
                                             const Value& increment,
                                             const void* owner,
                                             WorkMeter* meter) {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return nullptr;
  mvcc::EpochManager::Guard guard;
  VersionChain& chain = slots_[rid];
  auto* node = new VersionNode();
  node->owner = owner;
  node->is_delta = true;
  node->delta_column = column;
  node->payload = Row{increment};
  for (;;) {
    VersionNode* head = chain.head.load(std::memory_order_acquire);
    // Deltas commute with committed versions and with other deltas; the
    // only conflict is a foreign pending full version (its after-image
    // was computed without this increment, so letting both publish would
    // lose one of the writes — the full-vs-delta race).
    bool conflict = false;
    for (VersionNode* cur = head; cur != nullptr;
         cur = cur->prev.load(std::memory_order_acquire)) {
      const VersionStatus st = mvcc::StatusOf(cur);
      if (st == VersionStatus::kPending && !cur->is_delta &&
          cur->owner != owner) {
        conflict = true;
        break;
      }
      if (st == VersionStatus::kCommitted) break;
      // Aborted, committed-delta, pending-delta, own pending: keep going
      // until the newest committed full version bounds the window.
    }
    if (conflict) {
      delete node;
      if (meter != nullptr) ++meter->conflict_waits;
      return nullptr;
    }
    if (mvcc::TryPushHead(&chain, node, head)) {
      if (meter != nullptr) ++meter->rows_written;
      return node;
    }
  }
}

bool RowTable::ValidateRead(Rid rid, Ts observed_full_cts,
                            const void* owner) const {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return false;
  mvcc::EpochManager::Guard guard;
  for (const VersionNode* node =
           slots_[rid].head.load(std::memory_order_acquire);
       node != nullptr; node = node->prev.load(std::memory_order_acquire)) {
    const VersionStatus st = mvcc::StatusOf(node);
    if (st == VersionStatus::kPending) {
      // A foreign in-flight full write may commit with a timestamp below
      // ours; conservatively treat it as a conflict (deltas commute and
      // are exempt). Our own pending writes are fine.
      if (!node->is_delta && node->owner != owner) return false;
      continue;
    }
    if (st == VersionStatus::kCommitted) {
      return node->cts.load(std::memory_order_relaxed) == observed_full_cts;
    }
  }
  return observed_full_cts == 0;
}

bool RowTable::FoldAt(Rid rid, Ts snapshot, Row* out,
                      mvcc::FoldObservation* obs, WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return false;
  mvcc::EpochManager::Guard guard;
  return mvcc::FoldVisible(slots_[rid].head.load(std::memory_order_acquire),
                           snapshot, out, obs, meter);
}

bool RowTable::Read(Rid rid, Ts snapshot, Row* out, WorkMeter* meter) const {
  return FoldAt(rid, snapshot, out, nullptr, meter);
}

bool RowTable::ReadObserved(Rid rid, Ts snapshot, Row* out,
                            mvcc::FoldObservation* obs,
                            WorkMeter* meter) const {
  return FoldAt(rid, snapshot, out, obs, meter);
}

bool RowTable::ReadLatest(Rid rid, Row* out, WorkMeter* meter) const {
  return FoldAt(rid, kMaxTs, out, nullptr, meter);
}

bool RowTable::ReadLatestObserved(Rid rid, Row* out,
                                  mvcc::FoldObservation* obs,
                                  WorkMeter* meter) const {
  return FoldAt(rid, kMaxTs, out, obs, meter);
}

Ts RowTable::LatestVersionTs(Rid rid) const {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return 0;
  mvcc::EpochManager::Guard guard;
  return mvcc::NewestCommittedFullCts(
      slots_[rid].head.load(std::memory_order_acquire));
}

void RowTable::Scan(Ts snapshot,
                    const std::function<bool(Rid, const Row&)>& visitor,
                    WorkMeter* meter) const {
  ScanRange(snapshot, 0, kMaxTs, visitor, meter);
}

void RowTable::ScanRange(Ts snapshot, Rid begin, Rid end,
                         const std::function<bool(Rid, const Row&)>& visitor,
                         WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  mvcc::EpochManager::Guard guard;
  end = std::min<Rid>(end, slots_.size());
  Row row;
  for (Rid rid = begin; rid < end; ++rid) {
    const VersionNode* head =
        slots_[rid].head.load(std::memory_order_acquire);
    // A heap scan reads every version physically present in the slot
    // (dead-tuple bloat, the PostgreSQL behaviour Vacuum exists to fix);
    // meter the whole chain, not just the hops to the visible version.
    if (meter != nullptr) {
      meter->version_hops += mvcc::ChainLength(head);
    }
    mvcc::FoldObservation obs;
    if (mvcc::FoldVisible(head, snapshot, &row, &obs, nullptr)) {
      if (meter != nullptr) ++meter->rows_read;
      if (!visitor(rid, row)) return;
    }
  }
}

size_t RowTable::NumSlots() const {
  SharedReaderLock lock(&latch_);
  return slots_.size();
}

size_t RowTable::NumVersions() const {
  SharedReaderLock lock(&latch_);
  mvcc::EpochManager::Guard guard;
  size_t n = 0;
  for (const VersionChain& chain : slots_) {
    n += mvcc::ChainLength(chain.head.load(std::memory_order_acquire));
  }
  return n;
}

size_t RowTable::Vacuum(Ts horizon) {
  MutexLock vacuum_lock(&vacuum_mu_);
  size_t unlinked = 0;
  {
    SharedReaderLock lock(&latch_);
    mvcc::EpochManager::Guard guard;
    for (VersionChain& chain : slots_) {
      // `link` always points through a retained node (or the head), so a
      // successful CAS cannot resurrect anything: only this pass (the
      // vacuum_mu_ holder) unlinks, and installs only touch the head.
      std::atomic<VersionNode*>* link = &chain.head;
      bool superseded = false;
      VersionNode* node = link->load(std::memory_order_acquire);
      while (node != nullptr) {
        const VersionStatus st = mvcc::StatusOf(node);
        const bool committed = mvcc::IsCommitted(st);
        const bool drop =
            st == VersionStatus::kAborted || (superseded && committed);
        if (drop) {
          if (mvcc::Unlink(link, node)) {
            mvcc::EpochManager::Instance().Retire(node);
            ++unlinked;
          }
          // On CAS failure a concurrent install changed the head;
          // re-read the link and rescan from there.
          node = link->load(std::memory_order_acquire);
          continue;
        }
        if (st == VersionStatus::kCommitted &&
            node->cts.load(std::memory_order_relaxed) <= horizon) {
          // Newest committed full version at or below the horizon: every
          // snapshot >= horizon resolves here or above, so everything
          // below is unreachable.
          superseded = true;
        }
        link = &node->prev;
        node = link->load(std::memory_order_acquire);
      }
    }
  }
  mvcc::EpochManager::Instance().BumpEpoch();
  mvcc::EpochManager::Instance().ReclaimExpired();
  return unlinked;
}

void RowTable::CopyFrom(const RowTable& other) {
  if (this == &other) return;
  // Acquire the two latches in address order: copies run in both
  // directions between the same table pair (load snapshotting vs
  // benchmark reset), so a fixed this-then-other order would be a
  // lock-order inversion. Explicit Lock/Unlock because a scoped lock
  // cannot express the conditional order; the thread-safety analysis
  // still verifies both branches end holding (and both exits release)
  // exactly {latch_, other.latch_}. The schemas are identical by
  // contract (Catalog resets copy between same-layout tables), so
  // schema_ stays untouched and needs no latch.
  if (this < &other) {
    latch_.Lock();
    other.latch_.LockShared();
  } else {
    other.latch_.LockShared();
    latch_.Lock();
  }
  {
    // The exclusive latch excludes every reader of this table, so the
    // old chains free directly; `other`'s chains may see concurrent
    // installs/vacuum (shared side), so clone under an epoch guard.
    mvcc::EpochManager::Guard guard;
    for (VersionChain& chain : slots_) {
      mvcc::FreeChain(chain.head.load(std::memory_order_acquire));
      chain.head.store(nullptr, std::memory_order_relaxed);
    }
    slots_.clear();
    for (const VersionChain& src : other.slots_) {
      slots_.emplace_back();
      slots_.back().head.store(
          CloneCommitted(src.head.load(std::memory_order_acquire)),
          std::memory_order_release);
    }
  }
  other.latch_.UnlockShared();
  latch_.Unlock();
}

}  // namespace hattrick
