#include "storage/row_table.h"

#include <algorithm>
#include <cassert>

namespace hattrick {

RowTable::RowTable(Schema schema) : schema_(std::move(schema)) {}

Rid RowTable::Insert(const Row& row, Ts begin_ts, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  const Rid rid = slots_.size();
  Chain chain;
  chain.versions.push_back(Version{begin_ts, kMaxTs, row});
  slots_.push_back(std::move(chain));
  if (meter != nullptr) ++meter->rows_written;
  return rid;
}

Status RowTable::AddVersion(Rid rid, const Row& row, Ts commit_ts,
                            WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  if (rid >= slots_.size()) return Status::NotFound("rid out of range");
  Chain& chain = slots_[rid];
  assert(!chain.versions.empty());
  Version& newest = chain.versions.back();
  newest.end_ts = commit_ts;
  chain.versions.push_back(Version{commit_ts, kMaxTs, row});
  if (meter != nullptr) ++meter->rows_written;
  return Status::OK();
}

Status RowTable::MarkDeleted(Rid rid, Ts commit_ts, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  if (rid >= slots_.size()) return Status::NotFound("rid out of range");
  Chain& chain = slots_[rid];
  assert(!chain.versions.empty());
  chain.versions.back().end_ts = commit_ts;
  if (meter != nullptr) ++meter->rows_written;
  return Status::OK();
}

bool RowTable::Read(Rid rid, Ts snapshot, Row* out, WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return false;
  const Chain& chain = slots_[rid];
  // Walk newest-to-oldest: an OLTP access usually wants a recent version.
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (meter != nullptr) ++meter->version_hops;
    if (it->begin_ts <= snapshot) {
      if (it->end_ts <= snapshot) return false;  // deleted as of snapshot
      *out = it->data;
      if (meter != nullptr) ++meter->rows_read;
      return true;
    }
  }
  return false;  // row did not exist at snapshot
}

bool RowTable::ReadLatest(Rid rid, Row* out, WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return false;
  const Version& newest = slots_[rid].versions.back();
  if (meter != nullptr) ++meter->version_hops;
  if (newest.end_ts != kMaxTs) return false;  // deleted
  *out = newest.data;
  if (meter != nullptr) ++meter->rows_read;
  return true;
}

Ts RowTable::LatestVersionTs(Rid rid) const {
  SharedReaderLock lock(&latch_);
  if (rid >= slots_.size()) return 0;
  return slots_[rid].versions.back().begin_ts;
}

void RowTable::Scan(Ts snapshot,
                    const std::function<bool(Rid, const Row&)>& visitor,
                    WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  for (Rid rid = 0; rid < slots_.size(); ++rid) {
    const Chain& chain = slots_[rid];
    // A heap scan reads every version physically present in the slot
    // (dead-tuple bloat, the PostgreSQL behaviour Vacuum exists to fix);
    // meter the whole chain, not just the hops to the visible version.
    if (meter != nullptr) {
      meter->version_hops += chain.versions.size();
    }
    for (auto it = chain.versions.rbegin(); it != chain.versions.rend();
         ++it) {
      if (it->begin_ts <= snapshot) {
        if (it->end_ts > snapshot) {
          if (meter != nullptr) ++meter->rows_read;
          if (!visitor(rid, it->data)) return;
        }
        break;
      }
    }
  }
}

void RowTable::ScanRange(Ts snapshot, Rid begin, Rid end,
                         const std::function<bool(Rid, const Row&)>& visitor,
                         WorkMeter* meter) const {
  SharedReaderLock lock(&latch_);
  end = std::min<Rid>(end, slots_.size());
  for (Rid rid = begin; rid < end; ++rid) {
    const Chain& chain = slots_[rid];
    if (meter != nullptr) {
      meter->version_hops += chain.versions.size();
    }
    for (auto it = chain.versions.rbegin(); it != chain.versions.rend();
         ++it) {
      if (it->begin_ts <= snapshot) {
        if (it->end_ts > snapshot) {
          if (meter != nullptr) ++meter->rows_read;
          if (!visitor(rid, it->data)) return;
        }
        break;
      }
    }
  }
}

size_t RowTable::NumSlots() const {
  SharedReaderLock lock(&latch_);
  return slots_.size();
}

size_t RowTable::NumVersions() const {
  SharedReaderLock lock(&latch_);
  size_t n = 0;
  for (const Chain& chain : slots_) n += chain.versions.size();
  return n;
}

size_t RowTable::Vacuum(Ts horizon) {
  SharedMutexLock lock(&latch_);
  size_t dropped = 0;
  for (Chain& chain : slots_) {
    auto& v = chain.versions;
    size_t keep_from = 0;
    // Keep the newest version always; drop older versions whose end_ts is
    // at or before the horizon (no active snapshot can see them).
    while (keep_from + 1 < v.size() && v[keep_from].end_ts <= horizon) {
      ++keep_from;
    }
    if (keep_from > 0) {
      v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(keep_from));
      dropped += keep_from;
    }
  }
  return dropped;
}

void RowTable::CopyFrom(const RowTable& other) {
  if (this == &other) return;
  // Acquire the two latches in address order: copies run in both
  // directions between the same table pair (load snapshotting vs
  // benchmark reset), so a fixed this-then-other order would be a
  // lock-order inversion. Explicit Lock/Unlock because a scoped lock
  // cannot express the conditional order; the thread-safety analysis
  // still verifies both branches end holding (and both exits release)
  // exactly {latch_, other.latch_}. The schemas are identical by
  // contract (Catalog resets copy between same-layout tables), so
  // schema_ stays untouched and needs no latch.
  if (this < &other) {
    latch_.Lock();
    other.latch_.LockShared();
  } else {
    other.latch_.LockShared();
    latch_.Lock();
  }
  slots_ = other.slots_;
  other.latch_.UnlockShared();
  latch_.Unlock();
}

}  // namespace hattrick
