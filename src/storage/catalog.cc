#include "storage/catalog.h"

#include <cassert>

#include "common/key_encoding.h"

namespace hattrick {

std::string IndexInfo::KeyFor(const Row& row, Rid rid) const {
  std::string out;
  for (size_t col : key_columns) {
    key::EncodeValue(row[col], &out);
  }
  if (!unique) {
    key::EncodeInt64(static_cast<int64_t>(rid), &out);
  }
  return out;
}

RowTable* Catalog::CreateTable(const std::string& name, Schema schema) {
  assert(by_name_.find(name) == by_name_.end() && "duplicate table");
  const TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<RowTable>(std::move(schema)));
  names_.push_back(name);
  by_name_.emplace(name, id);
  indexes_by_table_.emplace_back();
  return tables_.back().get();
}

IndexInfo* Catalog::CreateIndex(const std::string& index_name,
                                const std::string& table_name,
                                std::vector<size_t> key_columns,
                                bool unique) {
  assert(indexes_by_name_.find(index_name) == indexes_by_name_.end());
  const auto it = by_name_.find(table_name);
  assert(it != by_name_.end() && "unknown table");
  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table_id = it->second;
  info->key_columns = std::move(key_columns);
  info->unique = unique;
  info->tree = std::make_unique<BTree>();
  IndexInfo* raw = info.get();
  indexes_.push_back(std::move(info));
  indexes_by_name_.emplace(index_name, raw);
  indexes_by_table_[raw->table_id].push_back(raw);
  return raw;
}

RowTable* Catalog::GetTable(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : tables_[it->second].get();
}

RowTable* Catalog::GetTable(TableId id) const {
  return id < tables_.size() ? tables_[id].get() : nullptr;
}

IndexInfo* Catalog::GetIndex(const std::string& name) const {
  const auto it = indexes_by_name_.find(name);
  return it == indexes_by_name_.end() ? nullptr : it->second;
}

TableId Catalog::GetTableId(const std::string& name) const {
  const auto it = by_name_.find(name);
  assert(it != by_name_.end() && "unknown table");
  return it->second;
}

const std::vector<IndexInfo*>& Catalog::TableIndexes(TableId id) const {
  assert(id < indexes_by_table_.size());
  return indexes_by_table_[id];
}

std::vector<IndexInfo*> Catalog::AllIndexes() const {
  std::vector<IndexInfo*> out;
  out.reserve(indexes_.size());
  for (const auto& index : indexes_) out.push_back(index.get());
  return out;
}

void Catalog::DropAllIndexes() {
  indexes_.clear();
  indexes_by_name_.clear();
  for (auto& list : indexes_by_table_) list.clear();
}

size_t Catalog::VacuumAll(Ts horizon) {
  size_t dropped = 0;
  for (const auto& table : tables_) dropped += table->Vacuum(horizon);
  return dropped;
}

void Catalog::CopyContentsFrom(const Catalog& other) {
  assert(tables_.size() == other.tables_.size() && "layout mismatch");
  for (size_t i = 0; i < tables_.size(); ++i) {
    tables_[i]->CopyFrom(*other.tables_[i]);
  }
  // Rebuild index contents: the index *definitions* belong to this
  // catalog (they may differ from `other`, e.g. physical-schema
  // experiments), so re-derive entries from the copied tables.
  for (const auto& index : indexes_) {
    index->tree->Clear();
    RowTable* table = tables_[index->table_id].get();
    // kMaxTs - 1 sees every committed version (end_ts of live versions is
    // kMaxTs, which would fail the end_ts > snapshot visibility test).
    table->Scan(
        kMaxTs - 1,
        [&](Rid rid, const Row& row) {
          index->tree->Insert(index->KeyFor(row, rid), rid, nullptr);
          return true;
        },
        nullptr);
  }
}

}  // namespace hattrick
