#include "storage/column_table.h"

#include <algorithm>
#include <cassert>

#include "txn/mvcc.h"

namespace hattrick {

ColumnTable::ColumnTable(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

Status ColumnTable::Append(const Row& row, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  HATTRICK_RETURN_IF_ERROR(schema_.ValidateRow(row));
  const size_t block = num_rows_ / kBlockRows;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column& col = columns_[i];
    double numeric = 0;
    switch (col.type) {
      case DataType::kInt64:
        col.ints.push_back(row[i].AsInt());
        numeric = static_cast<double>(row[i].AsInt());
        break;
      case DataType::kDouble:
        col.doubles.push_back(row[i].AsDouble());
        numeric = row[i].AsDouble();
        break;
      case DataType::kString: {
        const std::string& s = row[i].AsString();
        auto [it, inserted] =
            col.dict_index.emplace(s, static_cast<uint32_t>(col.dict.size()));
        if (inserted) col.dict.push_back(s);
        col.codes.push_back(it->second);
        break;
      }
    }
    if (col.type != DataType::kString) {
      if (block >= col.block_min.size()) {
        col.block_min.push_back(numeric);
        col.block_max.push_back(numeric);
      } else {
        col.block_min[block] = std::min(col.block_min[block], numeric);
        col.block_max[block] = std::max(col.block_max[block], numeric);
      }
    }
  }
  ++num_rows_;
  if (meter != nullptr) {
    ++meter->rows_written;
    meter->column_values += columns_.size();
  }
  return Status::OK();
}

size_t ColumnTable::num_rows() const {
  SharedReaderLock lock(&latch_);
  return num_rows_;
}

int64_t ColumnTable::GetInt(size_t col, size_t row) const {
  return columns_[col].ints[row];
}

double ColumnTable::GetDouble(size_t col, size_t row) const {
  const Column& c = columns_[col];
  return c.type == DataType::kInt64 ? static_cast<double>(c.ints[row])
                                    : c.doubles[row];
}

const std::string& ColumnTable::GetString(size_t col, size_t row) const {
  const Column& c = columns_[col];
  return c.dict[c.codes[row]];
}

uint32_t ColumnTable::GetStringCode(size_t col, size_t row) const {
  return columns_[col].codes[row];
}

int64_t ColumnTable::FindStringCode(size_t col, const std::string& s) const {
  const Column& c = columns_[col];
  const auto it = c.dict_index.find(s);
  return it == c.dict_index.end() ? -1 : static_cast<int64_t>(it->second);
}

size_t ColumnTable::DictionarySize(size_t col) const {
  return columns_[col].dict.size();
}

const int64_t* ColumnTable::IntData(size_t col) const {
  return columns_[col].ints.data();
}

const double* ColumnTable::DoubleData(size_t col) const {
  return columns_[col].doubles.data();
}

const uint32_t* ColumnTable::CodeData(size_t col) const {
  return columns_[col].codes.data();
}

const std::string& ColumnTable::DictEntry(size_t col, uint32_t code) const {
  return columns_[col].dict[code];
}

Row ColumnTable::GetRow(size_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    switch (columns_[i].type) {
      case DataType::kInt64:
        out.emplace_back(GetInt(i, row));
        break;
      case DataType::kDouble:
        out.emplace_back(GetDouble(i, row));
        break;
      case DataType::kString:
        out.emplace_back(GetString(i, row));
        break;
    }
  }
  return out;
}

bool ColumnTable::BlockMinMax(size_t col, size_t block, double* min,
                              double* max) const {
  const Column& c = columns_[col];
  if (c.type == DataType::kString) return false;
  assert(block < c.block_min.size());
  *min = c.block_min[block];
  *max = c.block_max[block];
  return true;
}

Status ColumnTable::UpdateRow(size_t row, const Row& values,
                              WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  if (row >= num_rows_) return Status::OutOfRange("row beyond table");
  HATTRICK_RETURN_IF_ERROR(schema_.ValidateRow(values));
  const size_t block = row / kBlockRows;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column& col = columns_[i];
    switch (col.type) {
      case DataType::kInt64:
        col.ints[row] = values[i].AsInt();
        break;
      case DataType::kDouble:
        col.doubles[row] = values[i].AsDouble();
        break;
      case DataType::kString: {
        const std::string& s = values[i].AsString();
        auto [it, inserted] =
            col.dict_index.emplace(s, static_cast<uint32_t>(col.dict.size()));
        if (inserted) col.dict.push_back(s);
        col.codes[row] = it->second;
        break;
      }
    }
    if (col.type != DataType::kString) {
      const double v = values[i].AsDouble();
      col.block_min[block] = std::min(col.block_min[block], v);
      col.block_max[block] = std::max(col.block_max[block], v);
    }
  }
  if (meter != nullptr) {
    ++meter->rows_written;
    meter->column_values += columns_.size();
  }
  return Status::OK();
}

Status ColumnTable::ApplyDelta(size_t row, size_t column,
                               const Value& increment, WorkMeter* meter) {
  SharedMutexLock lock(&latch_);
  if (row >= num_rows_) return Status::OutOfRange("row beyond table");
  if (column >= columns_.size()) {
    return Status::OutOfRange("column beyond schema");
  }
  Column& col = columns_[column];
  const size_t block = row / kBlockRows;
  double widened = 0;
  switch (col.type) {
    case DataType::kInt64:
      col.ints[row] += increment.AsInt();
      widened = static_cast<double>(col.ints[row]);
      break;
    case DataType::kDouble:
      col.doubles[row] += increment.AsDouble();
      widened = col.doubles[row];
      break;
    case DataType::kString:
      return Status::InvalidArgument("delta on a string column");
  }
  col.block_min[block] = std::min(col.block_min[block], widened);
  col.block_max[block] = std::max(col.block_max[block], widened);
  if (meter != nullptr) {
    ++meter->rows_written;
    ++meter->column_values;  // one cell touched, not a full after-image
  }
  return Status::OK();
}

void ColumnTable::AppendVersion(uint64_t csn, size_t rid, const Row& row) {
  SharedMutexLock lock(&delta_mu_);
  assert((delta_log_.empty() || delta_log_.back().csn <= csn) &&
         "version log must stay CSN-ascending (append from commit order)");
  assert(rid == num_rows() + pending_inserts_ &&
         "insert version out of sync with the row store's rid space");
  delta_log_.push_back(VersionOp{VersionOp::Kind::kInsert, csn, rid, row});
  ++pending_inserts_;
}

void ColumnTable::UpdateVersion(uint64_t csn, size_t rid, const Row& row) {
  SharedMutexLock lock(&delta_mu_);
  assert((delta_log_.empty() || delta_log_.back().csn <= csn) &&
         "version log must stay CSN-ascending (append from commit order)");
  delta_log_.push_back(VersionOp{VersionOp::Kind::kUpdate, csn, rid, row});
}

void ColumnTable::AppendDeltaVersion(uint64_t csn, size_t rid, size_t column,
                                     const Value& increment) {
  SharedMutexLock lock(&delta_mu_);
  assert((delta_log_.empty() || delta_log_.back().csn <= csn) &&
         "version log must stay CSN-ascending (append from commit order)");
  // Materialize the increment against the newest version of the row:
  // the latest pending op for this rid, or the base cell values if the
  // row has no pending versions. Because the commit tail appends in CSN
  // order, nothing can slip between that base and this version.
  Row materialized;
  bool found = false;
  for (auto it = delta_log_.rbegin(); it != delta_log_.rend(); ++it) {
    if (it->rid == rid) {
      materialized = it->row;
      found = true;
      break;
    }
  }
  if (!found) {
    assert(rid < num_rows() && "delta targets a row the column copy lacks");
    materialized = GetRow(rid);
  }
  assert(column < materialized.size());
  mvcc::ApplyDeltaValue(&materialized[column], increment);
  delta_log_.push_back(
      VersionOp{VersionOp::Kind::kUpdate, csn, rid, std::move(materialized)});
}

size_t ColumnTable::PendingVersions() const {
  SharedReaderLock lock(&delta_mu_);
  return delta_log_.size();
}

void ColumnTable::SnapshotVersions(uint64_t snapshot,
                                   ColumnDeltaSnapshot* out,
                                   WorkMeter* meter) const {
  SharedReaderLock lock(&delta_mu_);
  // Holding delta_mu_ (shared) makes (base_rows, log prefix) one
  // consistent pair: FoldVersions holds it exclusively across both the
  // log drain and the base apply.
  out->base_rows = num_rows();
  out->dirty.clear();
  out->overrides.clear();
  out->inserts.clear();
  uint64_t hops = 0;
  for (const VersionOp& op : delta_log_) {
    if (op.csn > snapshot) break;  // CSN-ascending: prefix is complete
    ++hops;
    if (op.kind == VersionOp::Kind::kInsert) {
      assert(op.rid == out->base_rows + out->inserts.size() &&
             "insert versions must be rid-contiguous from the base");
      out->inserts.push_back(op.row);
    } else if (op.rid >= out->base_rows) {
      // Update of a row inserted after the last fold: newest visible
      // version wins in place (the insert is earlier in the prefix).
      out->inserts[op.rid - out->base_rows] = op.row;
    } else {
      out->overrides[op.rid] = op.row;  // newest visible version wins
    }
  }
  out->bound = out->base_rows + out->inserts.size();
  if (!out->overrides.empty()) {
    out->dirty.assign((out->base_rows + 63) / 64, 0);
    for (const auto& [rid, row] : out->overrides) {
      out->dirty[rid >> 6] |= uint64_t{1} << (rid & 63);
    }
  }
  if (meter != nullptr) {
    meter->version_hops += hops;
    meter->column_values +=
        (out->overrides.size() + out->inserts.size()) * columns_.size();
  }
}

size_t ColumnTable::FoldVersions(uint64_t horizon, WorkMeter* meter) {
  SharedMutexLock lock(&delta_mu_);
  size_t folded = 0;
  while (!delta_log_.empty() && delta_log_.front().csn <= horizon) {
    const VersionOp& op = delta_log_.front();
    // Replaying the prefix in log (= commit) order is always
    // self-consistent: an update can only target a rid whose insert
    // committed earlier, hence appears earlier in the prefix.
    if (op.kind == VersionOp::Kind::kInsert) {
      assert(op.rid == num_rows() && "fold would break rid contiguity");
      const Status s = Append(op.row, meter);
      assert(s.ok());
      (void)s;
      --pending_inserts_;
    } else {
      const Status s = UpdateRow(op.rid, op.row, meter);
      assert(s.ok());
      (void)s;
    }
    if (meter != nullptr) ++meter->merged_rows;
    delta_log_.pop_front();
    ++folded;
  }
  return folded;
}

void ColumnTable::CopyFrom(const ColumnTable& other) {
  if (this == &other) return;
  // Version state first, sequentially (never nested with the base
  // latches below, so the address-order discipline is untouched): the
  // destination's unfolded log dies with its base contents, and the
  // source must not have one — copies only run against quiesced or
  // snapshot tables, which are always fully folded.
  {
    SharedReaderLock src(&other.delta_mu_);
    assert(other.delta_log_.empty() &&
           "CopyFrom source has unfolded versions");
  }
  {
    SharedMutexLock dst(&delta_mu_);
    delta_log_.clear();
    pending_inserts_ = 0;
  }
  // Address-ordered acquisition: copies run in both directions between
  // the same table pair (load snapshotting vs benchmark reset), so a
  // fixed this-then-other order would be a lock-order inversion.
  // Explicit Lock/Unlock because a scoped lock cannot express the
  // conditional order; the analysis still checks the hold set on every
  // path. Schemas are identical by contract, so schema_ stays untouched.
  if (this < &other) {
    latch_.Lock();
    other.latch_.LockShared();
  } else {
    other.latch_.LockShared();
    latch_.Lock();
  }
  columns_ = other.columns_;
  num_rows_ = other.num_rows_;
  other.latch_.UnlockShared();
  latch_.Unlock();
}

void ColumnTable::TruncateTo(size_t n) {
  {
    SharedMutexLock delta_lock(&delta_mu_);
    delta_log_.clear();
    pending_inserts_ = 0;
  }
  SharedMutexLock lock(&latch_);
  if (n >= num_rows_) return;
  for (Column& col : columns_) {
    switch (col.type) {
      case DataType::kInt64:
        col.ints.resize(n);
        break;
      case DataType::kDouble:
        col.doubles.resize(n);
        break;
      case DataType::kString:
        col.codes.resize(n);
        // The dictionary may retain unused entries; harmless.
        break;
    }
  }
  // Zone maps for the truncated tail are stale beyond the new bound;
  // rebuild the last partial block conservatively by widening to the
  // remaining rows.
  const size_t blocks = NumBlocks(n);
  for (Column& col : columns_) {
    if (col.type == DataType::kString) continue;
    col.block_min.resize(blocks);
    col.block_max.resize(blocks);
    if (blocks == 0) continue;
    const size_t first = (blocks - 1) * kBlockRows;
    double mn = 0;
    double mx = 0;
    for (size_t r = first; r < n; ++r) {
      const double v = col.type == DataType::kInt64
                           ? static_cast<double>(col.ints[r])
                           : col.doubles[r];
      if (r == first) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    col.block_min[blocks - 1] = mn;
    col.block_max[blocks - 1] = mx;
  }
  num_rows_ = n;
}

}  // namespace hattrick
