#ifndef HATTRICK_STORAGE_COLUMN_TABLE_H_
#define HATTRICK_STORAGE_COLUMN_TABLE_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"

namespace hattrick {

/// An immutable per-session view of a column table's committed but
/// unfolded row versions (bitmap merge mode, see engine/hybrid_engine.h).
/// Built once at BeginAnalytics under the table's version latch; scans
/// then read it lock-free for the life of the session:
///  - `dirty` is a per-rid visibility bitmap over the columnar base
///    ([0, base_rows)): bit set means the base cell values are stale and
///    `overrides` holds the newest version visible at the snapshot CSN.
///  - `inserts` are the rows committed after the base was last folded
///    and visible at the snapshot, occupying rids
///    [base_rows, bound) in row-store order.
/// A null/empty snapshot means the base alone is the snapshot (exactly
/// the eager-merge read path).
struct ColumnDeltaSnapshot {
  size_t base_rows = 0;
  size_t bound = 0;
  /// One bit per base rid; 64 rids per word. Empty when no overrides.
  std::vector<uint64_t> dirty;
  std::unordered_map<size_t, Row> overrides;
  std::vector<Row> inserts;

  bool Empty() const { return overrides.empty() && inserts.empty(); }

  bool DirtyBit(size_t rid) const {
    const size_t word = rid >> 6;
    if (word >= dirty.size()) return false;
    return (dirty[word] >> (rid & 63)) & 1;
  }

  /// True if any rid in [begin, end) has an override.
  bool AnyDirtyInRange(size_t begin, size_t end) const {
    if (dirty.empty() || begin >= end) return false;
    const size_t first = begin >> 6;
    const size_t last = (end - 1) >> 6;
    for (size_t w = first; w <= last && w < dirty.size(); ++w) {
      uint64_t word = dirty[w];
      if (w == first) word &= ~uint64_t{0} << (begin & 63);
      if (w == last && ((end & 63) != 0)) {
        word &= (uint64_t{1} << (end & 63)) - 1;
      }
      if (word != 0) return true;
    }
    return false;
  }

  const Row& OverrideRow(size_t rid) const {
    const auto it = overrides.find(rid);
    assert(it != overrides.end() && "override lookup on a clean rid");
    return it->second;
  }

  const Row& InsertRow(size_t rid) const {
    assert(rid >= base_rows && rid < bound);
    return inserts[rid - base_rows];
  }
};

/// A columnar, append-only table used as the analytical copy of the data
/// in the "hybrid" engine designs (System-X / TiDB-TiFlash analogues,
/// Section 2.2 of the paper).
///
/// Storage layout:
///  - int64/double columns: flat typed vectors.
///  - string columns: dictionary-encoded (uint32 codes into a per-column
///    dictionary), the paper's "efficient data compression" for
///    column stores.
///  - per-block (kBlockRows rows) min/max zone maps on numeric columns,
///    used by the column scan operator to prune blocks.
///
/// The table is not versioned: the engine that owns it decides which
/// committed rows have been merged (see engine/hybrid_engine.cc). Reads
/// pass an explicit row-count bound so a query sees a consistent prefix.
class ColumnTable {
 public:
  /// Rows per zone-map block.
  static constexpr size_t kBlockRows = 1024;

  explicit ColumnTable(Schema schema);

  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;

  const Schema& schema() const { return schema_; }

  /// Appends a row; meters one write plus one cell per column.
  Status Append(const Row& row, WorkMeter* meter);

  size_t num_rows() const;

  /// Cell accessors. `row` must be < num_rows(); `col` must have the
  /// matching type.
  int64_t GetInt(size_t col, size_t row) const;
  double GetDouble(size_t col, size_t row) const;
  /// Returns the dictionary string for a string cell (stable reference).
  const std::string& GetString(size_t col, size_t row) const;
  /// Returns the dictionary code of a string cell (for fast group-by).
  uint32_t GetStringCode(size_t col, size_t row) const;
  /// Looks up the code of `s` in the column dictionary; -1 if absent.
  int64_t FindStringCode(size_t col, const std::string& s) const;
  /// Dictionary size for a string column.
  size_t DictionarySize(size_t col) const;

  /// Raw payload pointers for bulk (vectorized) reads of rows below a
  /// query's row bound. Same safety contract as the per-cell accessors
  /// above: the analytics session pin blocks structural changes (merge,
  /// reset), so the payload vectors cannot reallocate under a reader.
  /// IntData requires a kInt64 column, DoubleData a kDouble column (no
  /// int promotion — callers branch on the schema type), CodeData a
  /// kString column.
  const int64_t* IntData(size_t col) const;
  const double* DoubleData(size_t col) const;
  const uint32_t* CodeData(size_t col) const;
  /// Dictionary string for `code` of string column `col` (stable ref).
  const std::string& DictEntry(size_t col, uint32_t code) const;

  /// Materializes row `row` (mostly for tests and debugging).
  Row GetRow(size_t row) const;

  /// Zone map for block `block` of numeric column `col`; returns false if
  /// the column is a string column (no zone map).
  bool BlockMinMax(size_t col, size_t block, double* min, double* max) const;

  /// Number of zone-map blocks covering `bound` rows.
  static size_t NumBlocks(size_t bound) {
    return (bound + kBlockRows - 1) / kBlockRows;
  }

  /// Overwrites row `row` in place (delta merge of an update). Zone maps
  /// are widened, never narrowed, so pruning stays conservative.
  Status UpdateRow(size_t row, const Row& values, WorkMeter* meter);

  /// Folds a commutative single-cell increment into row `row` in place
  /// (eager merge of a kDelta WAL op). Zone maps widen like UpdateRow.
  Status ApplyDelta(size_t row, size_t column, const Value& increment,
                    WorkMeter* meter);

  /// Replaces contents with a deep copy of `other` (benchmark reset).
  /// The destination's unfolded version log is dropped; the source must
  /// not have one (snapshot tables never do).
  void CopyFrom(const ColumnTable& other);

  /// Drops all rows with index >= `n` (used by reset in delta designs).
  /// Also drops any unfolded versions: truncation rewinds the table to a
  /// pre-delta state, so retaining versions stamped against the old row
  /// space would be nonsense.
  void TruncateTo(size_t n);

  // --- CSN-stamped version store (bitmap merge mode) -----------------
  //
  // Committed delta records land here instead of mutating the base:
  // inserts as append-segment versions, updates as per-rid differential
  // versions. The log is ordered by commit (CSN-ascending — callers
  // append from inside the commit critical section), so a snapshot at
  // CSN c is exactly a log prefix. FoldVersions() is the background
  // merge/GC: it replays a committed prefix into the base in commit
  // order, producing the same final base state (including zone-map
  // widening) as the eager merge path.

  /// Appends an insert version: row `rid` (== base rows + pending
  /// inserts, the row store's rid) committed at `csn`.
  void AppendVersion(uint64_t csn, size_t rid, const Row& row);

  /// Appends an update version for row `rid` committed at `csn`.
  void UpdateVersion(uint64_t csn, size_t rid, const Row& row);

  /// Appends a version for a commutative increment of one cell of row
  /// `rid` committed at `csn`. The increment is materialized into a full
  /// after-image (newest pending version of `rid`, or the base row,
  /// plus the increment) and stored as an ordinary update version —
  /// safe because the commit tail calls this in CSN order, so the
  /// newest version at append time IS the delta's base. Snapshot and
  /// fold paths are untouched.
  void AppendDeltaVersion(uint64_t csn, size_t rid, size_t column,
                          const Value& increment);

  /// Committed-but-unfolded version ops (delta depth).
  size_t PendingVersions() const;

  /// Builds the immutable visibility snapshot for a session at CSN
  /// `snapshot`. Meters one version hop per log entry examined and the
  /// materialized override/insert cells, charged to the requesting
  /// session — the bitmap path's (much cheaper) replacement for the
  /// eager path's merge-before-read charge.
  void SnapshotVersions(uint64_t snapshot, ColumnDeltaSnapshot* out,
                        WorkMeter* meter) const;

  /// Folds every version with csn <= `horizon` into the base, in commit
  /// order. Returns ops folded. Callers must exclude running sessions
  /// (the engine folds under its session pin latch) — the base payloads
  /// reallocate. Holds the version latch throughout, so concurrent
  /// commits stall for at most one watermark batch.
  size_t FoldVersions(uint64_t horizon, WorkMeter* meter);

 private:
  /// One committed, unfolded row version.
  struct VersionOp {
    enum class Kind { kInsert, kUpdate };
    Kind kind;
    uint64_t csn;
    size_t rid;
    Row row;
  };

  struct Column {
    DataType type;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<uint32_t> codes;
    std::vector<std::string> dict;
    std::unordered_map<std::string, uint32_t> dict_index;
    // Zone maps, one entry per block (numeric columns only).
    std::vector<double> block_min;
    std::vector<double> block_max;
  };

  const Schema schema_;  // immutable after construction; never latched
  mutable SharedMutex latch_;
  /// Structural state: the latch guards all *mutation* (Append, UpdateRow,
  /// CopyFrom, TruncateTo run under the exclusive latch). The per-cell and
  /// raw-pointer read accessors intentionally take no latch: readers are
  /// synchronized externally by the engine's analytics session pin, which
  /// excludes every structural change for the life of the session (see
  /// AnalyticsSession::guard in engine/htap_engine.h) — a contract the
  /// thread-safety analysis cannot express without falsely requiring the
  /// latch at every call site, so `columns_` itself stays unannotated and
  /// only the row-count watermark is latch-checked.
  ///
  /// The version store below is NOT covered by that pin contract:
  /// commits append versions while sessions are live, so it gets its own
  /// internal latch (delta_mu_) and sessions read it only through the
  /// deep-copied ColumnDeltaSnapshot taken at session open. Lock order
  /// is delta_mu_ before latch_ (FoldVersions holds delta_mu_ while
  /// applying to the base; SnapshotVersions holds it shared while
  /// reading num_rows()); the two are never taken in the other order.
  std::vector<Column> columns_;
  size_t num_rows_ GUARDED_BY(latch_) = 0;

  mutable SharedMutex delta_mu_;
  /// CSN-ascending committed version log (bitmap merge mode).
  std::deque<VersionOp> delta_log_ GUARDED_BY(delta_mu_);
  /// Insert ops currently in the log; insert rids are contiguous from
  /// num_rows_, an invariant asserted on every append.
  size_t pending_inserts_ GUARDED_BY(delta_mu_) = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_STORAGE_COLUMN_TABLE_H_
