#ifndef HATTRICK_STORAGE_COLUMN_TABLE_H_
#define HATTRICK_STORAGE_COLUMN_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"

namespace hattrick {

/// A columnar, append-only table used as the analytical copy of the data
/// in the "hybrid" engine designs (System-X / TiDB-TiFlash analogues,
/// Section 2.2 of the paper).
///
/// Storage layout:
///  - int64/double columns: flat typed vectors.
///  - string columns: dictionary-encoded (uint32 codes into a per-column
///    dictionary), the paper's "efficient data compression" for
///    column stores.
///  - per-block (kBlockRows rows) min/max zone maps on numeric columns,
///    used by the column scan operator to prune blocks.
///
/// The table is not versioned: the engine that owns it decides which
/// committed rows have been merged (see engine/hybrid_engine.cc). Reads
/// pass an explicit row-count bound so a query sees a consistent prefix.
class ColumnTable {
 public:
  /// Rows per zone-map block.
  static constexpr size_t kBlockRows = 1024;

  explicit ColumnTable(Schema schema);

  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;

  const Schema& schema() const { return schema_; }

  /// Appends a row; meters one write plus one cell per column.
  Status Append(const Row& row, WorkMeter* meter);

  size_t num_rows() const;

  /// Cell accessors. `row` must be < num_rows(); `col` must have the
  /// matching type.
  int64_t GetInt(size_t col, size_t row) const;
  double GetDouble(size_t col, size_t row) const;
  /// Returns the dictionary string for a string cell (stable reference).
  const std::string& GetString(size_t col, size_t row) const;
  /// Returns the dictionary code of a string cell (for fast group-by).
  uint32_t GetStringCode(size_t col, size_t row) const;
  /// Looks up the code of `s` in the column dictionary; -1 if absent.
  int64_t FindStringCode(size_t col, const std::string& s) const;
  /// Dictionary size for a string column.
  size_t DictionarySize(size_t col) const;

  /// Raw payload pointers for bulk (vectorized) reads of rows below a
  /// query's row bound. Same safety contract as the per-cell accessors
  /// above: the analytics session pin blocks structural changes (merge,
  /// reset), so the payload vectors cannot reallocate under a reader.
  /// IntData requires a kInt64 column, DoubleData a kDouble column (no
  /// int promotion — callers branch on the schema type), CodeData a
  /// kString column.
  const int64_t* IntData(size_t col) const;
  const double* DoubleData(size_t col) const;
  const uint32_t* CodeData(size_t col) const;
  /// Dictionary string for `code` of string column `col` (stable ref).
  const std::string& DictEntry(size_t col, uint32_t code) const;

  /// Materializes row `row` (mostly for tests and debugging).
  Row GetRow(size_t row) const;

  /// Zone map for block `block` of numeric column `col`; returns false if
  /// the column is a string column (no zone map).
  bool BlockMinMax(size_t col, size_t block, double* min, double* max) const;

  /// Number of zone-map blocks covering `bound` rows.
  static size_t NumBlocks(size_t bound) {
    return (bound + kBlockRows - 1) / kBlockRows;
  }

  /// Overwrites row `row` in place (delta merge of an update). Zone maps
  /// are widened, never narrowed, so pruning stays conservative.
  Status UpdateRow(size_t row, const Row& values, WorkMeter* meter);

  /// Replaces contents with a deep copy of `other` (benchmark reset).
  void CopyFrom(const ColumnTable& other);

  /// Drops all rows with index >= `n` (used by reset in delta designs).
  void TruncateTo(size_t n);

 private:
  struct Column {
    DataType type;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<uint32_t> codes;
    std::vector<std::string> dict;
    std::unordered_map<std::string, uint32_t> dict_index;
    // Zone maps, one entry per block (numeric columns only).
    std::vector<double> block_min;
    std::vector<double> block_max;
  };

  const Schema schema_;  // immutable after construction; never latched
  mutable SharedMutex latch_;
  /// Structural state: the latch guards all *mutation* (Append, UpdateRow,
  /// CopyFrom, TruncateTo run under the exclusive latch). The per-cell and
  /// raw-pointer read accessors intentionally take no latch: readers are
  /// synchronized externally by the engine's analytics session pin, which
  /// excludes every structural change for the life of the session (see
  /// AnalyticsSession::guard in engine/htap_engine.h) — a contract the
  /// thread-safety analysis cannot express without falsely requiring the
  /// latch at every call site, so `columns_` itself stays unannotated and
  /// only the row-count watermark is latch-checked.
  std::vector<Column> columns_;
  size_t num_rows_ GUARDED_BY(latch_) = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_STORAGE_COLUMN_TABLE_H_
