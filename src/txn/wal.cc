#include "txn/wal.h"

#include <cstring>

namespace hattrick {

namespace {

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

void PutValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case DataType::kInt64:
      PutU64(static_cast<uint64_t>(v.AsInt()), out);
      break;
    case DataType::kDouble: {
      const double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      PutU64(bits, out);
      break;
    }
    case DataType::kString: {
      const std::string& s = v.AsString();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      break;
    }
  }
}

bool GetValue(const std::string& in, size_t* pos, Value* v) {
  if (*pos >= in.size()) return false;
  const auto type = static_cast<DataType>(in[*pos]);
  ++*pos;
  switch (type) {
    case DataType::kInt64: {
      uint64_t u;
      if (!GetU64(in, pos, &u)) return false;
      *v = Value(static_cast<int64_t>(u));
      return true;
    }
    case DataType::kDouble: {
      uint64_t bits;
      if (!GetU64(in, pos, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value(d);
      return true;
    }
    case DataType::kString: {
      uint32_t len;
      if (!GetU32(in, pos, &len)) return false;
      if (*pos + len > in.size()) return false;
      *v = Value(in.substr(*pos, len));
      *pos += len;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string WalRecord::Encode() const {
  std::string out;
  PutU64(lsn, &out);
  PutU64(commit_ts, &out);
  PutU32(client_id, &out);
  PutU64(txn_num, &out);
  PutU32(static_cast<uint32_t>(ops.size()), &out);
  for (const WalOp& op : ops) {
    out.push_back(static_cast<char>(op.kind));
    PutU32(op.table_id, &out);
    PutU64(op.rid, &out);
    // The target column rides only on delta ops, keeping insert/update
    // records byte-identical to the pre-delta format.
    if (op.kind == WalOp::Kind::kDelta) PutU32(op.column, &out);
    PutU32(static_cast<uint32_t>(op.row.size()), &out);
    for (const Value& v : op.row) PutValue(v, &out);
  }
  return out;
}

StatusOr<WalRecord> WalRecord::Decode(const std::string& bytes) {
  WalRecord rec;
  size_t pos = 0;
  uint32_t num_ops = 0;
  if (!GetU64(bytes, &pos, &rec.lsn) || !GetU64(bytes, &pos, &rec.commit_ts) ||
      !GetU32(bytes, &pos, &rec.client_id) ||
      !GetU64(bytes, &pos, &rec.txn_num) || !GetU32(bytes, &pos, &num_ops)) {
    return Status::InvalidArgument("truncated WAL header");
  }
  rec.ops.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    WalOp op;
    if (pos >= bytes.size()) return Status::InvalidArgument("truncated op");
    // Validate before casting: every downstream dispatch (replica apply,
    // delta feed, merge) is an exhaustive switch over Kind, so an
    // out-of-range byte must die here, not alias to an arbitrary kind.
    // two_pc.cc applies the same rule to TwoPcRecord kind bytes.
    const auto kind_byte = static_cast<uint8_t>(bytes[pos]);
    if (kind_byte > static_cast<uint8_t>(WalOp::Kind::kDelta)) {
      return Status::InvalidArgument("unknown WAL op kind byte " +
                                     std::to_string(kind_byte));
    }
    op.kind = static_cast<WalOp::Kind>(kind_byte);
    ++pos;
    uint32_t arity = 0;
    if (!GetU32(bytes, &pos, &op.table_id) || !GetU64(bytes, &pos, &op.rid)) {
      return Status::InvalidArgument("truncated op header");
    }
    if (op.kind == WalOp::Kind::kDelta &&
        !GetU32(bytes, &pos, &op.column)) {
      return Status::InvalidArgument("truncated op header");
    }
    if (!GetU32(bytes, &pos, &arity)) {
      return Status::InvalidArgument("truncated op header");
    }
    op.row.reserve(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      Value v;
      if (!GetValue(bytes, &pos, &v)) {
        return Status::InvalidArgument("truncated value");
      }
      op.row.push_back(std::move(v));
    }
    rec.ops.push_back(std::move(op));
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes after WAL record");
  }
  return rec;
}

}  // namespace hattrick
