#ifndef HATTRICK_TXN_TXN_CONTEXT_H_
#define HATTRICK_TXN_TXN_CONTEXT_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/work_meter.h"
#include "storage/catalog.h"
#include "txn/txn_manager.h"

namespace hattrick {

/// Per-transaction execution surface handed to transaction bodies
/// (engine/engine_facade.h's TxnBody). Bodies are written once against
/// this interface and run unchanged on a single node (LocalTxnContext
/// forwards straight to one TxnManager) or across shards (the shard
/// layer's routed context fans each operation out to the owning shard
/// and commits with two-phase commit).
class TxnContext {
 public:
  virtual ~TxnContext() = default;

  /// The begin snapshot of the (local) transaction. Sharded contexts
  /// report the coordinator shard's snapshot; per-shard snapshots are
  /// only loosely aligned (atomicity comes from 2PC, not a global TSO).
  virtual Ts snapshot() const = 0;

  virtual IsolationLevel isolation() const = 0;

  /// Reads `rid` honoring isolation and the transaction's own buffered
  /// writes; returns NotFound when the row is invisible.
  virtual Status Read(TableId table_id, Rid rid, Row* out,
                      WorkMeter* meter) = 0;

  /// Visits each visible row whose indexed key equals `key_values`
  /// (committed rows first, then own buffered inserts). `index` is
  /// resolved against the engine's primary catalog; routed contexts map
  /// it onto the equivalent per-shard index by name. Returns the number
  /// of visible matches.
  virtual size_t IndexLookup(const IndexInfo& index,
                             const std::vector<Value>& key_values,
                             const std::function<bool(Rid, const Row&)>& visitor,
                             WorkMeter* meter) = 0;

  /// Buffers an insert; returns the provisional rid for read-back.
  virtual Rid BufferInsert(TableId table_id, Row row) = 0;

  /// Buffers a full-row update of `rid` (old_row = the version read).
  virtual void BufferUpdate(TableId table_id, Rid rid, Row old_row,
                            Row new_row) = 0;

  /// Buffers a commutative single-cell increment.
  virtual void BufferDelta(TableId table_id, Rid rid, uint32_t column,
                           Value increment) = 0;

  /// Scans every row of `table_id` visible at the transaction snapshot
  /// (the no-index fallback of the workload's lookups; does not surface
  /// the transaction's own buffered writes, matching the historical
  /// sequential-scan behavior). The visitor returns false to stop.
  virtual void ScanVisible(TableId table_id,
                           const std::function<bool(Rid, const Row&)>& visitor,
                           WorkMeter* meter) = 0;
};

/// Single-node TxnContext: forwards one-for-one to a TxnManager and its
/// Transaction handle. Zero behavior change relative to calling the
/// manager directly — this is the adapter every non-sharded engine wraps
/// around its RunWithRetries body.
class LocalTxnContext final : public TxnContext {
 public:
  LocalTxnContext(TxnManager* manager, Transaction* txn)
      : manager_(manager), txn_(txn) {}

  Ts snapshot() const override { return txn_->snapshot(); }
  IsolationLevel isolation() const override { return txn_->isolation(); }

  Status Read(TableId table_id, Rid rid, Row* out,
              WorkMeter* meter) override {
    return manager_->Read(txn_, table_id, rid, out, meter);
  }

  size_t IndexLookup(const IndexInfo& index,
                     const std::vector<Value>& key_values,
                     const std::function<bool(Rid, const Row&)>& visitor,
                     WorkMeter* meter) override {
    return manager_->IndexLookup(txn_, index, key_values, visitor, meter);
  }

  Rid BufferInsert(TableId table_id, Row row) override {
    return manager_->BufferInsert(txn_, table_id, std::move(row));
  }

  void BufferUpdate(TableId table_id, Rid rid, Row old_row,
                    Row new_row) override {
    manager_->BufferUpdate(txn_, table_id, rid, std::move(old_row),
                           std::move(new_row));
  }

  void BufferDelta(TableId table_id, Rid rid, uint32_t column,
                   Value increment) override {
    manager_->BufferDelta(txn_, table_id, rid, column, std::move(increment));
  }

  void ScanVisible(TableId table_id,
                   const std::function<bool(Rid, const Row&)>& visitor,
                   WorkMeter* meter) override;

  TxnManager* manager() const { return manager_; }
  Transaction* txn() const { return txn_; }

 private:
  TxnManager* manager_;
  Transaction* txn_;
};

}  // namespace hattrick

#endif  // HATTRICK_TXN_TXN_CONTEXT_H_
