#include "txn/txn_context.h"

namespace hattrick {

void LocalTxnContext::ScanVisible(
    TableId table_id, const std::function<bool(Rid, const Row&)>& visitor,
    WorkMeter* meter) {
  RowTable* table = manager_->catalog()->GetTable(table_id);
  if (table == nullptr) return;
  table->Scan(txn_->snapshot(), visitor, meter);
}

}  // namespace hattrick
