#include "txn/txn_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/key_encoding.h"

namespace hattrick {

namespace {

/// splitmix64: deterministic jitter source for retry backoff (seeded by
/// transaction identity, so same-seed runs replay identical schedules).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TxnProtocol ProtocolFromEnv() {
  const char* mode = std::getenv("HATTRICK_TXN_PROTOCOL");
  if (mode != nullptr && std::strcmp(mode, "latch") == 0) {
    return TxnProtocol::kLatch;
  }
  return TxnProtocol::kLockFree;
}

}  // namespace

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadCommitted:
      return "READ_COMMITTED";
    case IsolationLevel::kSnapshot:
      return "SNAPSHOT";
    case IsolationLevel::kSerializable:
      return "SERIALIZABLE";
  }
  return "UNKNOWN";
}

TxnManager::TxnManager(Catalog* catalog, TimestampOracle* oracle,
                       WalSink* sink)
    : catalog_(catalog),
      oracle_(oracle),
      sink_(sink),
      protocol_(ProtocolFromEnv()) {
  // Real sleep by default: any caller driving the manager from real
  // threads gets livelock-free retries out of the box. Virtual-time
  // drivers replace this with a no-op and schedule the reported backoff
  // in simulated time instead (single-threaded sim bodies never abort,
  // so the default is never reached there anyway).
  retry_sleeper_ = [](double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  };
}

Transaction TxnManager::Begin(IsolationLevel isolation, uint32_t client_id,
                              uint64_t txn_num) const {
  Transaction txn;
  txn.snapshot_ = oracle_->last_committed();
  txn.isolation_ = isolation;
  txn.client_id_ = client_id;
  txn.txn_num_ = txn_num;
  return txn;
}

Status TxnManager::Read(Transaction* txn, TableId table_id, Rid rid, Row* out,
                        WorkMeter* meter) const {
  // Read-your-own-writes: find the newest buffered full image (update, or
  // insert via its provisional rid; newest last), then fold buffered
  // deltas recorded after it.
  size_t base_idx = txn->writes_.size();
  for (size_t i = txn->writes_.size(); i-- > 0;) {
    const Transaction::Write& w = txn->writes_[i];
    if (w.table_id != table_id || w.rid != rid) continue;
    if (w.kind == WalOp::Kind::kDelta) continue;
    base_idx = i;
    break;
  }
  if (base_idx < txn->writes_.size()) {
    *out = txn->writes_[base_idx].row;
  } else {
    RowTable* table = catalog_->GetTable(table_id);
    if (table == nullptr) return Status::NotFound("no such table");
    mvcc::FoldObservation obs;
    bool found;
    if (txn->isolation_ == IsolationLevel::kReadCommitted) {
      found = table->ReadLatestObserved(rid, out, &obs, meter);
    } else {
      found = table->ReadObserved(rid, txn->snapshot_, out, &obs, meter);
    }
    if (!found) return Status::NotFound("row invisible");
    // Every isolation level records what it observed: BufferUpdate bases
    // its first-updater-wins window on the read (a read-committed read
    // of newer-than-snapshot state must not be treated as a conflict
    // with itself), and serializable validates the full set at commit.
    txn->reads_.push_back(Transaction::ReadEntry{table_id, rid, obs.full_cts,
                                                 obs.any_cts});
    if (txn->isolation_ == IsolationLevel::kSerializable) {
      if (meter != nullptr) ++meter->predicate_locks;
    }
  }
  // Own buffered deltas fold over whichever base was resolved. Deltas
  // buffered before an own full image are already part of it (BufferUpdate
  // collapses them); later ones apply here.
  for (size_t i = base_idx < txn->writes_.size() ? base_idx + 1 : 0;
       i < txn->writes_.size(); ++i) {
    const Transaction::Write& w = txn->writes_[i];
    if (w.table_id == table_id && w.rid == rid &&
        w.kind == WalOp::Kind::kDelta) {
      mvcc::ApplyDeltaValue(&(*out)[w.column], w.row[0]);
    }
  }
  return Status::OK();
}

size_t TxnManager::IndexLookup(
    Transaction* txn, const IndexInfo& index,
    const std::vector<Value>& key_values,
    const std::function<bool(Rid, const Row&)>& visitor,
    WorkMeter* meter) const {
  const std::string prefix = key::EncodeKey(key_values);
  size_t matches = 0;
  std::vector<Rid> rids;
  if (index.unique) {
    uint64_t rid = 0;
    if (index.tree->Lookup(prefix, &rid, meter)) rids.push_back(rid);
  } else {
    index.tree->ScanPrefix(
        prefix,
        [&](const std::string&, uint64_t rid) {
          rids.push_back(rid);
          return true;
        },
        meter);
  }
  Row row;
  bool stopped = false;
  for (const Rid rid : rids) {
    if (!Read(txn, index.table_id, rid, &row, meter).ok()) continue;
    // Re-check the key: index entries can be stale if an update changed
    // an indexed column (old entries are not removed eagerly).
    bool key_matches = true;
    for (size_t i = 0; i < index.key_columns.size(); ++i) {
      if (!(row[index.key_columns[i]] == key_values[i])) {
        key_matches = false;
        break;
      }
    }
    if (!key_matches) continue;
    ++matches;
    if (!visitor(rid, row)) {
      stopped = true;
      break;
    }
  }
  if (stopped) return matches;
  // Read-your-own-inserts: buffered rows are not in the index yet, so
  // surface matching ones under their provisional rids (deltas buffered
  // against them are already collapsed into the insert image).
  for (const Transaction::Write& w : txn->writes_) {
    if (w.kind != WalOp::Kind::kInsert || w.table_id != index.table_id) {
      continue;
    }
    bool key_matches = true;
    for (size_t i = 0; i < index.key_columns.size(); ++i) {
      if (!(w.row[index.key_columns[i]] == key_values[i])) {
        key_matches = false;
        break;
      }
    }
    if (!key_matches) continue;
    ++matches;
    if (!visitor(w.rid, w.row)) break;
  }
  return matches;
}

Rid TxnManager::BufferInsert(Transaction* txn, TableId table_id,
                             Row row) const {
  const Rid provisional = kProvisionalRidBase + txn->writes_.size();
  txn->writes_.push_back(Transaction::Write{WalOp::Kind::kInsert, table_id,
                                            provisional, 0, std::move(row),
                                            Row{}, 0});
  return provisional;
}

void TxnManager::BufferUpdate(Transaction* txn, TableId table_id, Rid rid,
                              Row old_row, Row new_row) const {
  if (rid >= kProvisionalRidBase) {
    // Updating an own buffered insert: collapse into the insert image.
    for (auto it = txn->writes_.rbegin(); it != txn->writes_.rend(); ++it) {
      if (it->kind == WalOp::Kind::kInsert && it->table_id == table_id &&
          it->rid == rid) {
        it->row = std::move(new_row);
        return;
      }
    }
    return;  // unknown provisional rid: nothing to update
  }
  // First-updater-wins window: conflicts are commits newer than what the
  // transaction's read of this row actually folded in (falling back to
  // the begin snapshot for blind writes).
  Ts base_ts = txn->snapshot_;
  for (auto it = txn->reads_.rbegin(); it != txn->reads_.rend(); ++it) {
    if (it->table_id == table_id && it->rid == rid) {
      base_ts = it->observed_any_ts;
      break;
    }
  }
  txn->writes_.push_back(Transaction::Write{WalOp::Kind::kUpdate, table_id,
                                            rid, 0, std::move(new_row),
                                            std::move(old_row), base_ts});
}

void TxnManager::BufferDelta(Transaction* txn, TableId table_id, Rid rid,
                             uint32_t column, Value increment) const {
  if (rid >= kProvisionalRidBase) {
    // Increment against an own buffered insert: fold it in directly.
    for (auto it = txn->writes_.rbegin(); it != txn->writes_.rend(); ++it) {
      if (it->kind == WalOp::Kind::kInsert && it->table_id == table_id &&
          it->rid == rid) {
        mvcc::ApplyDeltaValue(&it->row[column], increment);
        return;
      }
    }
    return;
  }
  txn->writes_.push_back(Transaction::Write{WalOp::Kind::kDelta, table_id,
                                            rid, column,
                                            Row{std::move(increment)}, Row{},
                                            0});
}

bool TxnManager::ValidateReads(const Transaction* txn,
                               WorkMeter* meter) const {
  for (const auto& r : txn->reads_) {
    if (r.rid >= kProvisionalRidBase) continue;  // own uncommitted insert
    RowTable* table = catalog_->GetTable(r.table_id);
    if (table == nullptr || !table->ValidateRead(r.rid, r.observed_full_ts,
                                                 txn)) {
      if (meter != nullptr) ++meter->conflict_waits;
      return false;
    }
  }
  return true;
}

TxnManager::CommitSlot TxnManager::RegisterCommit() {
  MutexLock lock(&seq_mu_);
  CommitSlot slot;
  slot.ticket = seq_issued_++;
  // Allocating under seq_mu_ makes ticket order == commit_ts order, the
  // invariant the ordered tail relies on (WAL in cts order, insert rids
  // in LSN order, publishes in cts order).
  slot.commit_ts = oracle_->Allocate();
  return slot;
}

void TxnManager::EnterTail(uint64_t ticket) {
  MutexLock lock(&seq_mu_);
  while (seq_draining_ != ticket) seq_cv_.Wait(&seq_mu_);
}

void TxnManager::ExitTail() {
  MutexLock lock(&seq_mu_);
  ++seq_draining_;
  seq_cv_.NotifyAll();
}

StatusOr<CommitResult> TxnManager::Commit(Transaction* txn, WorkMeter* meter) {
  if (protocol_ == TxnProtocol::kLatch) {
    // Differential protocol: one global latch around the whole commit —
    // the pre-lock-free behaviour the contention ablation compares
    // against.
    MutexLock lock(&commit_latch_);
    return CommitImpl(txn, meter);
  }
  return CommitImpl(txn, meter);
}

StatusOr<CommitResult> TxnManager::CommitImpl(Transaction* txn,
                                              WorkMeter* meter) {
  Prepared prep;
  HATTRICK_RETURN_IF_ERROR(Prepare(txn, &prep, meter));
  return CommitPrepared(txn, &prep, meter);
}

Status TxnManager::Prepare(Transaction* txn, Prepared* prep,
                           WorkMeter* meter) {
  if (txn->writes_.empty()) {
    if (txn->isolation_ == IsolationLevel::kSerializable &&
        !ValidateReads(txn, meter)) {
      if (read_conflicts_metric_ != nullptr) read_conflicts_metric_->Inc();
      return Status::Aborted("read validation failure");
    }
    // Read-only: will commit at its snapshot, no timestamp consumed.
    prep->read_only = true;
    return Status::OK();
  }

  // Phase 1 — install: CAS pending version nodes, one per written row
  // (inserts materialize in the ordered tail; they cannot conflict). A
  // pending node is the row's write lock; installation performs
  // first-updater-wins validation at every isolation level.
  //
  // Installs run in canonical (table, rid) order, not buffer order. With
  // a shared order, two transactions contending on the same row set
  // collide at their FIRST shared row, so exactly one of them aborts —
  // the unordered alternative lets each install the row the other needs
  // next and both abort, which under a tight retry loop degenerates
  // into livelock on hot rows.
  std::vector<size_t> install_order;
  install_order.reserve(txn->writes_.size());
  for (size_t i = 0; i < txn->writes_.size(); ++i) {
    if (txn->writes_[i].kind != WalOp::Kind::kInsert) {
      install_order.push_back(i);
    }
  }
  std::stable_sort(install_order.begin(), install_order.end(),
                   [&](size_t a, size_t b) {
                     const Transaction::Write& wa = txn->writes_[a];
                     const Transaction::Write& wb = txn->writes_[b];
                     return PackRowKey(wa.table_id, wa.rid) <
                            PackRowKey(wb.table_id, wb.rid);
                   });
  std::vector<mvcc::VersionNode*>& installed = prep->installed;
  installed.assign(txn->writes_.size(), nullptr);
  for (const size_t i : install_order) {
    const Transaction::Write& w = txn->writes_[i];
    RowTable* table = catalog_->GetTable(w.table_id);
    mvcc::VersionNode* node =
        w.kind == WalOp::Kind::kUpdate
            ? table->TryInstallFull(w.rid, w.row, txn, w.base_ts, meter)
            : table->TryInstallDelta(w.rid, w.column, w.row[0], txn, meter);
    if (node == nullptr) {
      for (mvcc::VersionNode* n : installed) {
        if (n != nullptr) mvcc::Withdraw(n);
      }
      installed.clear();
      // No commit_ts was allocated, so the ordered tail sees no gap.
      if (write_conflicts_metric_ != nullptr) write_conflicts_metric_->Inc();
      return Status::Aborted("write-write conflict");
    }
    installed[i] = node;
  }

  // Phase 2 — register: allocate commit_ts and the tail ticket.
  const CommitSlot slot = RegisterCommit();
  prep->ticket = slot.ticket;
  prep->commit_ts = slot.commit_ts;
  prep->registered = true;

  // Phase 3 — serializable read validation. Registering first closes the
  // latch-free OCC window: any writer that publishes a conflicting
  // version after this validation must have registered after us, so its
  // commit_ts exceeds ours and the serialization order stays consistent;
  // writers registered but not yet published are caught as pending.
  if (txn->isolation_ == IsolationLevel::kSerializable &&
      !ValidateReads(txn, meter)) {
    if (read_conflicts_metric_ != nullptr) read_conflicts_metric_->Inc();
    AbortPrepared(txn, prep);
    return Status::Aborted("read validation failure");
  }
  return Status::OK();
}

void TxnManager::AbortPrepared(Transaction* txn, Prepared* prep) {
  (void)txn;
  for (mvcc::VersionNode* n : prep->installed) {
    if (n != nullptr) mvcc::Withdraw(n);
  }
  prep->installed.clear();
  if (prep->registered) {
    // The reserved slot must still pass through the tail or every later
    // committer would wait forever on the gap.
    EnterTail(prep->ticket);
    ExitTail();
    prep->registered = false;
  }
}

CommitResult TxnManager::CommitPrepared(Transaction* txn, Prepared* prep,
                                        WorkMeter* meter) {
  CommitResult result;
  if (prep->read_only) {
    // Read-only: commits at its snapshot, no timestamp consumed.
    result.commit_ts = txn->snapshot_;
    result.lsn = 0;
    if (commits_metric_ != nullptr) commits_metric_->Inc();
    return result;
  }

  // Phase 4 — ordered tail, strictly in commit_ts order: publish the
  // pending nodes, apply inserts (rids assigned in LSN order — the
  // replica and the bitmap column store both assert this), maintain
  // indexes, emit WAL, advance the watermark.
  EnterTail(prep->ticket);
  prep->registered = false;  // the slot drains via ExitTail below
  const Ts commit_ts = prep->commit_ts;
  uint64_t delta_installs = 0;

  for (mvcc::VersionNode* n : prep->installed) {
    if (n != nullptr) mvcc::Publish(n, commit_ts);
  }

  WalRecord record;
  record.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  record.commit_ts = commit_ts;
  record.client_id = txn->client_id_;
  record.txn_num = txn->txn_num_;
  record.ops.reserve(txn->writes_.size());

  for (auto& w : txn->writes_) {
    RowTable* table = catalog_->GetTable(w.table_id);
    // Exhaustive over WalOp::Kind: this is the commit publish path, so a
    // new kind must decide its index-maintenance story here explicitly
    // rather than silently riding the delta arm.
    switch (w.kind) {
      case WalOp::Kind::kInsert: {
        const Rid rid = table->Insert(w.row, commit_ts, meter);
        w.rid = rid;
        for (const IndexInfo* index : catalog_->TableIndexes(w.table_id)) {
          index->tree->Insert(index->KeyFor(w.row, rid), rid, meter);
        }
        break;
      }
      case WalOp::Kind::kUpdate: {
        // Maintain only indexes whose key actually changed; stale old
        // entries are tolerated and filtered by IndexLookup's re-check.
        for (const IndexInfo* index : catalog_->TableIndexes(w.table_id)) {
          const std::string new_key = index->KeyFor(w.row, w.rid);
          if (!w.old_row.empty() &&
              new_key == index->KeyFor(w.old_row, w.rid)) {
            continue;
          }
          index->tree->Insert(new_key, w.rid, meter);
        }
        break;
      }
      case WalOp::Kind::kDelta:
        ++delta_installs;  // deltas never touch indexed key columns
        break;
    }
    WalOp op;
    op.kind = w.kind;
    op.table_id = w.table_id;
    op.rid = w.rid;
    op.column = w.column;
    op.row = w.row;
    record.ops.push_back(std::move(op));
    if (w.kind == WalOp::Kind::kDelta) {
      result.delta_keys.push_back(PackRowKey(w.table_id, w.rid));
    } else {
      result.write_keys.push_back(PackRowKey(w.table_id, w.rid));
    }
  }

  if (meter != nullptr || commits_metric_ != nullptr) {
    const uint64_t encoded_bytes = record.Encode().size();
    if (meter != nullptr) {
      ++meter->wal_records;
      meter->wal_bytes += encoded_bytes;
    }
    if (commits_metric_ != nullptr) {
      commits_metric_->Inc();
      wal_records_metric_->Inc();
      wal_bytes_metric_->Inc(encoded_bytes);
      if (delta_installs > 0) delta_installs_metric_->Inc(delta_installs);
    }
  }
  if (sink_ != nullptr) sink_->OnCommit(record);
  oracle_->AdvanceCommitted(commit_ts);
  ExitTail();

  result.commit_ts = commit_ts;
  result.lsn = record.lsn;
  return result;
}

void TxnManager::SetMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    if (backoff_gauge_ != nullptr) backoff_gauge_->SetProbe(nullptr);
    commits_metric_ = write_conflicts_metric_ = read_conflicts_metric_ =
        wal_records_metric_ = wal_bytes_metric_ = delta_installs_metric_ =
            nullptr;
    backoff_gauge_ = nullptr;
    return;
  }
  commits_metric_ = registry->GetCounter(obs::kTxnCommits);
  write_conflicts_metric_ = registry->GetCounter(obs::kTxnAbortsWriteConflict);
  read_conflicts_metric_ = registry->GetCounter(obs::kTxnAbortsReadConflict);
  wal_records_metric_ = registry->GetCounter(obs::kTxnWalRecords);
  wal_bytes_metric_ = registry->GetCounter(obs::kTxnWalBytes);
  delta_installs_metric_ = registry->GetCounter(obs::kTxnDeltaInstalls);
  backoff_gauge_ = registry->GetGauge(obs::kTxnRetryBackoffSeconds);
  backoff_gauge_->SetProbe([this] {
    return static_cast<double>(backoff_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  });
}

void TxnManager::Abort(Transaction* txn) const {
  txn->writes_.clear();
  txn->reads_.clear();
}

double TxnManager::RetryBackoffSeconds(uint32_t client_id, uint64_t txn_num,
                                       int attempt) {
  constexpr double kBaseSeconds = 100e-6;
  constexpr double kCapSeconds = 10e-3;
  const int exponent = std::min(attempt, 10);
  const double window =
      std::min(kCapSeconds, kBaseSeconds * static_cast<double>(1 << exponent));
  const uint64_t h = Mix64((static_cast<uint64_t>(client_id) << 32) ^
                           Mix64(txn_num) ^ static_cast<uint64_t>(attempt));
  // Jitter in [0.5, 1.0) of the window: retriers spread apart instead of
  // re-colliding in lockstep, but never retry immediately.
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return window * jitter;
}

StatusOr<CommitResult> TxnManager::RunWithRetries(
    IsolationLevel isolation, uint32_t client_id, uint64_t txn_num,
    const std::function<Status(Transaction*)>& body, WorkMeter* meter,
    int max_retries, int* attempts, double* backoff_seconds) {
  Status last = Status::Internal("not run");
  double backoff_total = 0;
  if (backoff_seconds != nullptr) *backoff_seconds = 0;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff between attempts: hot-row conflicts
      // under the threaded driver would otherwise livelock in a tight
      // retry loop. Virtual-time drivers schedule the reported backoff;
      // the threaded driver installs a real sleeper.
      const double delay =
          RetryBackoffSeconds(client_id, txn_num, attempt - 1);
      backoff_total += delay;
      backoff_nanos_.fetch_add(static_cast<uint64_t>(delay * 1e9),
                               std::memory_order_relaxed);
      if (retry_sleeper_) retry_sleeper_(delay);
    }
    if (attempts != nullptr) *attempts = attempt + 1;
    Transaction txn = Begin(isolation, client_id, txn_num);
    const Status body_status = body(&txn);
    if (!body_status.ok()) {
      Abort(&txn);
      if (body_status.code() == StatusCode::kAborted) {
        last = body_status;
        continue;
      }
      if (backoff_seconds != nullptr) *backoff_seconds = backoff_total;
      return body_status;
    }
    StatusOr<CommitResult> commit = Commit(&txn, meter);
    if (backoff_seconds != nullptr) *backoff_seconds = backoff_total;
    if (commit.ok()) return commit;
    if (commit.status().code() != StatusCode::kAborted) return commit;
    last = commit.status();
  }
  if (backoff_seconds != nullptr) *backoff_seconds = backoff_total;
  return last;
}

}  // namespace hattrick
