#include "txn/txn_manager.h"

#include <cassert>

#include "common/key_encoding.h"

namespace hattrick {

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadCommitted:
      return "READ_COMMITTED";
    case IsolationLevel::kSnapshot:
      return "SNAPSHOT";
    case IsolationLevel::kSerializable:
      return "SERIALIZABLE";
  }
  return "UNKNOWN";
}

TxnManager::TxnManager(Catalog* catalog, TimestampOracle* oracle,
                       WalSink* sink)
    : catalog_(catalog), oracle_(oracle), sink_(sink) {}

Transaction TxnManager::Begin(IsolationLevel isolation, uint32_t client_id,
                              uint64_t txn_num) const {
  Transaction txn;
  txn.snapshot_ = oracle_->last_committed();
  txn.isolation_ = isolation;
  txn.client_id_ = client_id;
  txn.txn_num_ = txn_num;
  return txn;
}

Status TxnManager::Read(Transaction* txn, TableId table_id, Rid rid, Row* out,
                        WorkMeter* meter) const {
  // Read-your-own-writes: check the write set first (newest last).
  for (auto it = txn->writes_.rbegin(); it != txn->writes_.rend(); ++it) {
    if (it->table_id == table_id && it->kind == WalOp::Kind::kUpdate &&
        it->rid == rid) {
      *out = it->row;
      return Status::OK();
    }
  }
  RowTable* table = catalog_->GetTable(table_id);
  if (table == nullptr) return Status::NotFound("no such table");
  bool found;
  if (txn->isolation_ == IsolationLevel::kReadCommitted) {
    found = table->ReadLatest(rid, out, meter);
  } else {
    found = table->Read(rid, txn->snapshot_, out, meter);
  }
  if (!found) return Status::NotFound("row invisible");
  if (txn->isolation_ == IsolationLevel::kSerializable) {
    txn->reads_.push_back(
        Transaction::ReadEntry{table_id, rid, table->LatestVersionTs(rid)});
    if (meter != nullptr) ++meter->predicate_locks;
  }
  return Status::OK();
}

size_t TxnManager::IndexLookup(
    Transaction* txn, const IndexInfo& index,
    const std::vector<Value>& key_values,
    const std::function<bool(Rid, const Row&)>& visitor,
    WorkMeter* meter) const {
  const std::string prefix = key::EncodeKey(key_values);
  size_t matches = 0;
  std::vector<Rid> rids;
  if (index.unique) {
    uint64_t rid = 0;
    if (index.tree->Lookup(prefix, &rid, meter)) rids.push_back(rid);
  } else {
    index.tree->ScanPrefix(
        prefix,
        [&](const std::string&, uint64_t rid) {
          rids.push_back(rid);
          return true;
        },
        meter);
  }
  Row row;
  for (const Rid rid : rids) {
    if (!Read(txn, index.table_id, rid, &row, meter).ok()) continue;
    // Re-check the key: index entries can be stale if an update changed
    // an indexed column (old entries are not removed eagerly).
    bool key_matches = true;
    for (size_t i = 0; i < index.key_columns.size(); ++i) {
      if (!(row[index.key_columns[i]] == key_values[i])) {
        key_matches = false;
        break;
      }
    }
    if (!key_matches) continue;
    ++matches;
    if (!visitor(rid, row)) break;
  }
  return matches;
}

void TxnManager::BufferInsert(Transaction* txn, TableId table_id,
                              Row row) const {
  txn->writes_.push_back(Transaction::Write{
      WalOp::Kind::kInsert, table_id, /*rid=*/0, std::move(row), Row{}});
}

void TxnManager::BufferUpdate(Transaction* txn, TableId table_id, Rid rid,
                              Row old_row, Row new_row) const {
  txn->writes_.push_back(Transaction::Write{WalOp::Kind::kUpdate, table_id,
                                            rid, std::move(new_row),
                                            std::move(old_row)});
}

StatusOr<CommitResult> TxnManager::Commit(Transaction* txn, WorkMeter* meter) {
  MutexLock lock(&commit_latch_);

  if (txn->isolation_ != IsolationLevel::kReadCommitted) {
    // First-updater-wins write-write validation.
    for (const auto& w : txn->writes_) {
      if (w.kind != WalOp::Kind::kUpdate) continue;
      RowTable* table = catalog_->GetTable(w.table_id);
      if (table->LatestVersionTs(w.rid) > txn->snapshot_) {
        if (meter != nullptr) ++meter->conflict_waits;
        if (write_conflicts_metric_ != nullptr) write_conflicts_metric_->Inc();
        return Status::Aborted("write-write conflict");
      }
    }
  }
  if (txn->isolation_ == IsolationLevel::kSerializable) {
    // Backward OCC read validation: every row read must still be current.
    for (const auto& r : txn->reads_) {
      RowTable* table = catalog_->GetTable(r.table_id);
      if (table->LatestVersionTs(r.rid) != r.observed_version_ts) {
        if (meter != nullptr) ++meter->conflict_waits;
        if (read_conflicts_metric_ != nullptr) read_conflicts_metric_->Inc();
        return Status::Aborted("read validation failure");
      }
    }
  }

  CommitResult result;
  if (txn->writes_.empty()) {
    // Read-only: commits at its snapshot, no timestamp consumed.
    result.commit_ts = txn->snapshot_;
    result.lsn = 0;
    if (commits_metric_ != nullptr) commits_metric_->Inc();
    return result;
  }

  const Ts commit_ts = oracle_->Allocate();
  WalRecord record;
  record.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  record.commit_ts = commit_ts;
  record.client_id = txn->client_id_;
  record.txn_num = txn->txn_num_;
  record.ops.reserve(txn->writes_.size());

  for (auto& w : txn->writes_) {
    RowTable* table = catalog_->GetTable(w.table_id);
    if (w.kind == WalOp::Kind::kInsert) {
      const Rid rid = table->Insert(w.row, commit_ts, meter);
      w.rid = rid;
      for (const IndexInfo* index : catalog_->TableIndexes(w.table_id)) {
        index->tree->Insert(index->KeyFor(w.row, rid), rid, meter);
      }
    } else {
      const Status s = table->AddVersion(w.rid, w.row, commit_ts, meter);
      assert(s.ok());
      (void)s;
      // Maintain only indexes whose key actually changed; stale old
      // entries are tolerated and filtered by IndexLookup's re-check.
      for (const IndexInfo* index : catalog_->TableIndexes(w.table_id)) {
        const std::string new_key = index->KeyFor(w.row, w.rid);
        if (!w.old_row.empty() &&
            new_key == index->KeyFor(w.old_row, w.rid)) {
          continue;
        }
        index->tree->Insert(new_key, w.rid, meter);
      }
    }
    record.ops.push_back(WalOp{w.kind, w.table_id, w.rid, w.row});
    result.write_keys.push_back(PackRowKey(w.table_id, w.rid));
  }

  if (meter != nullptr || commits_metric_ != nullptr) {
    const uint64_t encoded_bytes = record.Encode().size();
    if (meter != nullptr) {
      ++meter->wal_records;
      meter->wal_bytes += encoded_bytes;
    }
    if (commits_metric_ != nullptr) {
      commits_metric_->Inc();
      wal_records_metric_->Inc();
      wal_bytes_metric_->Inc(encoded_bytes);
    }
  }
  if (sink_ != nullptr) sink_->OnCommit(record);
  oracle_->AdvanceCommitted(commit_ts);

  result.commit_ts = commit_ts;
  result.lsn = record.lsn;
  return result;
}

void TxnManager::SetMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    commits_metric_ = write_conflicts_metric_ = read_conflicts_metric_ =
        wal_records_metric_ = wal_bytes_metric_ = nullptr;
    return;
  }
  commits_metric_ = registry->GetCounter(obs::kTxnCommits);
  write_conflicts_metric_ = registry->GetCounter(obs::kTxnAbortsWriteConflict);
  read_conflicts_metric_ = registry->GetCounter(obs::kTxnAbortsReadConflict);
  wal_records_metric_ = registry->GetCounter(obs::kTxnWalRecords);
  wal_bytes_metric_ = registry->GetCounter(obs::kTxnWalBytes);
}

void TxnManager::Abort(Transaction* txn) const {
  txn->writes_.clear();
  txn->reads_.clear();
}

StatusOr<CommitResult> TxnManager::RunWithRetries(
    IsolationLevel isolation, uint32_t client_id, uint64_t txn_num,
    const std::function<Status(Transaction*)>& body, WorkMeter* meter,
    int max_retries, int* attempts) {
  Status last = Status::Internal("not run");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempts != nullptr) *attempts = attempt + 1;
    Transaction txn = Begin(isolation, client_id, txn_num);
    const Status body_status = body(&txn);
    if (!body_status.ok()) {
      Abort(&txn);
      if (body_status.code() == StatusCode::kAborted) {
        last = body_status;
        continue;
      }
      return body_status;
    }
    StatusOr<CommitResult> commit = Commit(&txn, meter);
    if (commit.ok()) return commit;
    if (commit.status().code() != StatusCode::kAborted) return commit;
    last = commit.status();
  }
  return last;
}

}  // namespace hattrick
