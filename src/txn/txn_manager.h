#ifndef HATTRICK_TXN_TXN_MANAGER_H_
#define HATTRICK_TXN_TXN_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/work_meter.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "txn/mvcc.h"
#include "txn/timestamp.h"
#include "txn/wal.h"

namespace hattrick {

/// Transaction isolation levels evaluated by the paper (Section 6.2,
/// Figure 6a): PostgreSQL runs serializable by default in the experiments
/// and read committed in the isolation-level comparison; TiDB provides
/// snapshot-isolated reads.
enum class IsolationLevel {
  kReadCommitted,
  kSnapshot,
  kSerializable,
};

/// Returns "READ_COMMITTED" etc.
const char* IsolationLevelName(IsolationLevel level);

/// Commit protocol selector. kLockFree is the per-row version-chain
/// protocol (install-pending -> validate -> CAS-publish, ordered WAL
/// tail); kLatch additionally serializes whole commits behind one global
/// mutex — the pre-lock-free behaviour, kept for old-vs-new differential
/// testing and for the contention ablation. Overridable at process level
/// with HATTRICK_TXN_PROTOCOL=latch.
enum class TxnProtocol {
  kLockFree,
  kLatch,
};

/// Rids at or above this value are provisional: assigned by BufferInsert
/// to rows the transaction has buffered but not committed, so the
/// transaction can read and index-look-up its own inserts. Real rids are
/// assigned at commit. Below the 40-bit PackRowKey rid space.
inline constexpr Rid kProvisionalRidBase = Rid{1} << 36;

/// A client-visible transaction handle. All state lives client-side until
/// commit; storage sees nothing until Commit installs pending version
/// nodes, so readers never see dirty data and aborts are free.
class Transaction {
 public:
  Ts snapshot() const { return snapshot_; }
  IsolationLevel isolation() const { return isolation_; }

 private:
  friend class TxnManager;

  struct Write {
    WalOp::Kind kind;
    TableId table_id;
    Rid rid;             // real rid for updates/deltas; provisional for inserts
    uint32_t column = 0;  // target column for deltas
    Row row;             // after-image; a single increment cell for deltas
    Row old_row;         // before-image for updates (index maintenance)
    /// Newest committed work folded into the read this update is based
    /// on (first-updater-wins validates commits after this, at every
    /// isolation level).
    Ts base_ts = 0;
  };
  struct ReadEntry {
    TableId table_id;
    Rid rid;
    Ts observed_full_ts;  // cts of the full version the read resolved to
    Ts observed_any_ts;   // newest committed work folded in (incl. deltas)
  };

  Ts snapshot_ = 0;
  IsolationLevel isolation_ = IsolationLevel::kSnapshot;
  uint32_t client_id_ = 0;
  uint64_t txn_num_ = 0;
  std::vector<Write> writes_;
  std::vector<ReadEntry> reads_;
};

/// Outcome of a successful commit.
struct CommitResult {
  Ts commit_ts = 0;
  uint64_t lsn = 0;  // 0 for read-only transactions (no WAL record)
  /// Identity of every row fully written ((table_id << 40) | rid),
  /// consumed by the simulator's row-lock contention model.
  std::vector<uint64_t> write_keys;
  /// Rows written via commutative deltas: held only for the short
  /// escrow window in the contention model, not the full write hold.
  std::vector<uint64_t> delta_keys;
};

/// Packs a row identity for CommitResult::write_keys.
inline uint64_t PackRowKey(TableId table_id, Rid rid) {
  return (static_cast<uint64_t>(table_id) << 40) | rid;
}

/// Optimistic multi-version transaction manager over a Catalog.
///
/// Protocol (Hekaton/STO-flavored OCC over lock-free MVCC chains):
///  - Begin: snapshot = oracle.last_committed().
///  - Reads: read-committed folds the newest committed state; snapshot /
///    serializable fold as of the snapshot (committed delta versions fold
///    over the resolved full version). Every read records what it
///    observed; serializable additionally meters predicate locks.
///  - Writes: buffered in the transaction. Full updates carry the
///    base_ts their read observed; BufferDelta buffers a commutative
///    single-cell increment; BufferInsert assigns a provisional rid so
///    the transaction sees its own inserts.
///  - Commit (no global latch):
///      1. install: CAS-install PENDING version nodes per written row —
///         a pending node is the row's write lock. First-updater-wins at
///         *every* isolation level: installing fails if a foreign pending
///         version exists or committed work newer than the write's
///         base_ts is found. Deltas conflict only with pending fulls.
///      2. register: allocate commit_ts and a commit-order ticket.
///      3. read validation (serializable): every read's resolved full
///         version must still be newest, with no foreign pending full in
///         flight. Registering *before* validating closes the classic
///         latch-free OCC window (any writer that publishes after our
///         validation must carry a larger commit_ts).
///      4. ordered tail (ticket order == commit_ts order): publish the
///         pending nodes, apply inserts (rids in LSN order), maintain
///         indexes, emit the WAL record, advance last_committed.
///    An install-phase abort consumes no timestamp, so the tail never
///    stalls on a gap.
///
/// Validation failures meter conflict_waits, which the simulator's cost
/// model converts into the blocking/wait time the paper attributes to
/// contention at small scale factors (Sections 6.2 and 6.4).
class TxnManager {
 public:
  /// `sink` may be null (no replication / no delta feed).
  TxnManager(Catalog* catalog, TimestampOracle* oracle, WalSink* sink);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  Catalog* catalog() const { return catalog_; }
  TimestampOracle* oracle() const { return oracle_; }
  void set_sink(WalSink* sink) { sink_ = sink; }
  WalSink* sink() const { return sink_; }

  TxnProtocol protocol() const { return protocol_; }
  void SetProtocol(TxnProtocol protocol) { protocol_ = protocol; }

  /// Starts a transaction. `client_id`/`txn_num` tag the eventual WAL
  /// record (used by replication diagnostics).
  Transaction Begin(IsolationLevel isolation, uint32_t client_id = 0,
                    uint64_t txn_num = 0) const;

  /// Reads `rid`, honoring isolation and the transaction's own writes —
  /// including buffered inserts (via their provisional rid) and buffered
  /// deltas, which fold over the visible base. Returns NotFound if the
  /// row is invisible.
  Status Read(Transaction* txn, TableId table_id, Rid rid, Row* out,
              WorkMeter* meter) const;

  /// Visits each row whose indexed key equals `key_values` and is visible
  /// to `txn` — committed rows first (re-checked against the key; index
  /// entries may be stale after updates to indexed columns), then the
  /// transaction's own buffered inserts whose key matches (visited under
  /// their provisional rid). Returns the number of visible matches.
  size_t IndexLookup(Transaction* txn, const IndexInfo& index,
                     const std::vector<Value>& key_values,
                     const std::function<bool(Rid, const Row&)>& visitor,
                     WorkMeter* meter) const;

  /// Buffers an insert of `row` into `table_id`; returns the provisional
  /// rid under which the transaction can read it back.
  Rid BufferInsert(Transaction* txn, TableId table_id, Row row) const;

  /// Buffers a full-row update of `rid`. `old_row` must be the version the
  /// transaction read (used to detect indexed-column changes).
  void BufferUpdate(Transaction* txn, TableId table_id, Rid rid, Row old_row,
                    Row new_row) const;

  /// Buffers a commutative increment of `column` by `increment`:
  /// materialized at read time by folding over the base version, so
  /// concurrent increments to the same hot row commit without
  /// write-write conflicts (Payment's S_YTD / C_PAYMENTCNT path).
  void BufferDelta(Transaction* txn, TableId table_id, Rid rid,
                   uint32_t column, Value increment) const;

  /// Validates and applies the transaction. On conflict returns
  /// kAborted and applies nothing.
  StatusOr<CommitResult> Commit(Transaction* txn, WorkMeter* meter);

  /// Two-phase commit support (the sharded engine's coordinator). A
  /// successful Prepare runs the install / register / validate phases
  /// and parks the transaction as a prepared participant: the pending
  /// version nodes stay installed (they are the row write locks) and a
  /// commit slot is reserved, but nothing publishes and the ordered
  /// tail is NOT entered — so a prepared participant never sits in the
  /// tail waiting for a remote decision. Exactly one of CommitPrepared
  /// or AbortPrepared must eventually follow every successful Prepare,
  /// or later commits on this shard stall behind the reserved slot.
  struct Prepared {
    std::vector<mvcc::VersionNode*> installed;
    uint64_t ticket = 0;
    Ts commit_ts = 0;
    bool registered = false;  // a commit slot is reserved
    bool read_only = false;   // validated; nothing to publish
  };

  /// Phases 1-3 of the lock-free commit: install pending versions,
  /// reserve the commit slot, validate serializable reads. On conflict
  /// returns kAborted with everything rolled back (no slot leaked).
  /// Note the kLatch differential protocol does not cover this path —
  /// 2PC is lock-free only.
  Status Prepare(Transaction* txn, Prepared* prep, WorkMeter* meter);

  /// Phase 4 (the ordered publish tail) for a prepared transaction.
  /// Infallible: the decision to commit was made at Prepare time.
  CommitResult CommitPrepared(Transaction* txn, Prepared* prep,
                              WorkMeter* meter);

  /// Rolls back a prepared transaction: withdraws the installed
  /// versions and drains the reserved commit slot through the tail.
  void AbortPrepared(Transaction* txn, Prepared* prep);

  /// Discards the transaction (no-op on storage).
  void Abort(Transaction* txn) const;

  /// Injected sleep for retry backoff: the threaded driver installs a
  /// real sleep; the simulated driver leaves it null and schedules the
  /// reported backoff in virtual time. Must be set while quiesced.
  using RetrySleeper = std::function<void(double seconds)>;
  void SetRetrySleeper(RetrySleeper sleeper) {
    retry_sleeper_ = std::move(sleeper);
  }

  /// Deterministic capped exponential backoff before retry `attempt`
  /// (0-based): seeded by (client_id, txn_num, attempt) so same-seed runs
  /// replay identically and concurrent retriers jitter apart.
  static double RetryBackoffSeconds(uint32_t client_id, uint64_t txn_num,
                                    int attempt);

  /// Executes `body` as a transaction, retrying on kAborted up to
  /// `max_retries` times with deterministic exponential backoff; counts
  /// attempts and accumulated backoff. Convenience used by workload
  /// drivers, which retry aborted transactions (only successes count
  /// toward throughput, matching the paper's "successful transactions per
  /// second").
  StatusOr<CommitResult> RunWithRetries(
      IsolationLevel isolation, uint32_t client_id, uint64_t txn_num,
      const std::function<Status(Transaction*)>& body, WorkMeter* meter,
      int max_retries, int* attempts, double* backoff_seconds = nullptr);

  /// LSN that the next committed WAL record will receive. Safe to read
  /// concurrently with commits (atomic; commits advance it inside the
  /// ordered commit tail, but freshness probes read it from other
  /// threads).
  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_relaxed);
  }

  /// Resets the LSN counter (benchmark reset).
  void ResetLsn(uint64_t lsn) {
    next_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// Attaches run metrics (txn.commits, txn.aborts.*, txn.wal.*,
  /// txn.delta.installs, txn.retry.backoff_seconds); handles are resolved
  /// once here so Commit() only does counter increments. Pass nullptr to
  /// detach.
  void SetMetrics(obs::MetricsRegistry* registry);

 private:
  /// A slot in the commit order: tail work (publish, inserts, WAL,
  /// watermark) runs strictly in ticket order == commit_ts order, which
  /// keeps the WAL stream, replica rid assignment, and the bitmap column
  /// store's CSN-ascending append invariant intact without a global
  /// commit latch around install/validation.
  struct CommitSlot {
    uint64_t ticket = 0;
    Ts commit_ts = 0;
  };

  StatusOr<CommitResult> CommitImpl(Transaction* txn, WorkMeter* meter);
  bool ValidateReads(const Transaction* txn, WorkMeter* meter) const;

  CommitSlot RegisterCommit() EXCLUDES(seq_mu_);
  void EnterTail(uint64_t ticket) EXCLUDES(seq_mu_);
  void ExitTail() EXCLUDES(seq_mu_);

  Catalog* catalog_;
  TimestampOracle* oracle_;
  WalSink* sink_;
  TxnProtocol protocol_;
  /// Atomic rather than GUARDED_BY: advanced only inside the ordered
  /// commit tail, but read lock-free by next_lsn() from driver/freshness
  /// threads while commits are in flight.
  std::atomic<uint64_t> next_lsn_{1};
  /// kLatch protocol only: serializes whole commits (the pre-lock-free
  /// behaviour, for differential testing).
  Mutex commit_latch_;
  /// Commit sequencer: tickets admit committers to the ordered tail.
  /// Only the counters are guarded; tail work runs outside the mutex —
  /// ticket order itself serializes it.
  Mutex seq_mu_;
  CondVar seq_cv_;
  uint64_t seq_issued_ GUARDED_BY(seq_mu_) = 0;
  uint64_t seq_draining_ GUARDED_BY(seq_mu_) = 0;
  /// Total virtual/real seconds spent in retry backoff (gauge probe).
  std::atomic<uint64_t> backoff_nanos_{0};
  RetrySleeper retry_sleeper_;
  obs::Counter* commits_metric_ = nullptr;
  obs::Counter* write_conflicts_metric_ = nullptr;
  obs::Counter* read_conflicts_metric_ = nullptr;
  obs::Counter* wal_records_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* delta_installs_metric_ = nullptr;
  obs::Gauge* backoff_gauge_ = nullptr;
};

}  // namespace hattrick

#endif  // HATTRICK_TXN_TXN_MANAGER_H_
