#ifndef HATTRICK_TXN_TXN_MANAGER_H_
#define HATTRICK_TXN_TXN_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/work_meter.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "txn/timestamp.h"
#include "txn/wal.h"

namespace hattrick {

/// Transaction isolation levels evaluated by the paper (Section 6.2,
/// Figure 6a): PostgreSQL runs serializable by default in the experiments
/// and read committed in the isolation-level comparison; TiDB provides
/// snapshot-isolated reads.
enum class IsolationLevel {
  kReadCommitted,
  kSnapshot,
  kSerializable,
};

/// Returns "READ_COMMITTED" etc.
const char* IsolationLevelName(IsolationLevel level);

/// A client-visible transaction handle. All state lives client-side until
/// commit; nothing is installed in storage for uncommitted transactions,
/// so readers never see dirty data and aborts are free.
class Transaction {
 public:
  Ts snapshot() const { return snapshot_; }
  IsolationLevel isolation() const { return isolation_; }

 private:
  friend class TxnManager;

  struct Write {
    WalOp::Kind kind;
    TableId table_id;
    Rid rid;          // valid for updates; assigned at commit for inserts
    Row row;          // after-image
    Row old_row;      // before-image for updates (index maintenance)
  };
  struct ReadEntry {
    TableId table_id;
    Rid rid;
    Ts observed_version_ts;
  };

  Ts snapshot_ = 0;
  IsolationLevel isolation_ = IsolationLevel::kSnapshot;
  uint32_t client_id_ = 0;
  uint64_t txn_num_ = 0;
  std::vector<Write> writes_;
  std::vector<ReadEntry> reads_;  // tracked only under kSerializable
};

/// Outcome of a successful commit.
struct CommitResult {
  Ts commit_ts = 0;
  uint64_t lsn = 0;  // 0 for read-only transactions (no WAL record)
  /// Identity of every row written ((table_id << 40) | rid), consumed by
  /// the simulator's row-lock contention model.
  std::vector<uint64_t> write_keys;
};

/// Packs a row identity for CommitResult::write_keys.
inline uint64_t PackRowKey(TableId table_id, Rid rid) {
  return (static_cast<uint64_t>(table_id) << 40) | rid;
}

/// Optimistic multi-version transaction manager over a Catalog.
///
/// Protocol (Hekaton-flavored OCC over MVCC, matching the paper's
/// System-X description in Section 6.4):
///  - Begin: snapshot = oracle.last_committed().
///  - Reads: read-committed reads the newest committed version; snapshot /
///    serializable read as of the snapshot. Serializable transactions
///    record (rid, observed version ts) in a read set.
///  - Writes: buffered in the transaction (inserts and full-row updates).
///  - Commit (single commit latch):
///      1. write-write validation (snapshot & serializable):
///         first-updater-wins — abort if any updated row has a version
///         newer than the snapshot;
///      2. read validation (serializable only): abort if any read row has
///         a version newer than the one observed (backward OCC);
///      3. allocate commit_ts, apply writes, maintain indexes, emit the
///         WAL record to the sink, advance last_committed.
///
/// Validation failures meter conflict_waits, which the simulator's cost
/// model converts into the blocking/wait time the paper attributes to
/// contention at small scale factors (Sections 6.2 and 6.4).
class TxnManager {
 public:
  /// `sink` may be null (no replication / no delta feed).
  TxnManager(Catalog* catalog, TimestampOracle* oracle, WalSink* sink);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  Catalog* catalog() const { return catalog_; }
  TimestampOracle* oracle() const { return oracle_; }
  void set_sink(WalSink* sink) { sink_ = sink; }

  /// Starts a transaction. `client_id`/`txn_num` tag the eventual WAL
  /// record (used by replication diagnostics).
  Transaction Begin(IsolationLevel isolation, uint32_t client_id = 0,
                    uint64_t txn_num = 0) const;

  /// Reads `rid`, honoring isolation and the transaction's own writes.
  /// Returns NotFound if the row is invisible.
  Status Read(Transaction* txn, TableId table_id, Rid rid, Row* out,
              WorkMeter* meter) const;

  /// Visits each row whose indexed key equals `key_values` and is visible
  /// to `txn`. Rows are re-checked against the key (index entries may be
  /// stale after updates to indexed columns). Returns the number of
  /// visible matches.
  size_t IndexLookup(Transaction* txn, const IndexInfo& index,
                     const std::vector<Value>& key_values,
                     const std::function<bool(Rid, const Row&)>& visitor,
                     WorkMeter* meter) const;

  /// Buffers an insert of `row` into `table_id`.
  void BufferInsert(Transaction* txn, TableId table_id, Row row) const;

  /// Buffers a full-row update of `rid`. `old_row` must be the version the
  /// transaction read (used to detect indexed-column changes).
  void BufferUpdate(Transaction* txn, TableId table_id, Rid rid, Row old_row,
                    Row new_row) const;

  /// Validates and applies the transaction. On conflict returns
  /// kAborted and applies nothing.
  StatusOr<CommitResult> Commit(Transaction* txn, WorkMeter* meter)
      EXCLUDES(commit_latch_);

  /// Discards the transaction (no-op on storage).
  void Abort(Transaction* txn) const;

  /// Executes `body` as a transaction, retrying on kAborted up to
  /// `max_retries` times; counts attempts. Convenience used by workload
  /// drivers, which retry aborted transactions (only successes count
  /// toward throughput, matching the paper's "successful transactions per
  /// second").
  StatusOr<CommitResult> RunWithRetries(
      IsolationLevel isolation, uint32_t client_id, uint64_t txn_num,
      const std::function<Status(Transaction*)>& body, WorkMeter* meter,
      int max_retries, int* attempts);

  /// LSN that the next committed WAL record will receive. Safe to read
  /// concurrently with commits (atomic; commits advance it under the
  /// commit latch, but freshness probes read it from other threads).
  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_relaxed);
  }

  /// Resets the LSN counter (benchmark reset).
  void ResetLsn(uint64_t lsn) {
    next_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// Attaches run metrics (txn.commits, txn.aborts.*, txn.wal.*); handles
  /// are resolved once here so Commit() only does counter increments.
  /// Pass nullptr to detach.
  void SetMetrics(obs::MetricsRegistry* registry);

 private:
  Catalog* catalog_;
  TimestampOracle* oracle_;
  WalSink* sink_;
  /// Atomic rather than GUARDED_BY(commit_latch_): advanced only inside
  /// Commit (under the latch), but read lock-free by next_lsn() from
  /// driver/freshness threads while commits are in flight — previously a
  /// plain uint64_t, i.e. a data race the annotations pass surfaced.
  std::atomic<uint64_t> next_lsn_{1};
  /// Serializes validation + apply + WAL emit (see class comment).
  Mutex commit_latch_;
  obs::Counter* commits_metric_ = nullptr;
  obs::Counter* write_conflicts_metric_ = nullptr;
  obs::Counter* read_conflicts_metric_ = nullptr;
  obs::Counter* wal_records_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
};

}  // namespace hattrick

#endif  // HATTRICK_TXN_TXN_MANAGER_H_
