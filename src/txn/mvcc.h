#ifndef HATTRICK_TXN_MVCC_H_
#define HATTRICK_TXN_MVCC_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "common/work_meter.h"

namespace hattrick {

/// Row identifier: the slot index within a RowTable. Stable for the life
/// of the table (rows are never physically moved).
using Rid = uint64_t;

/// Timestamps are commit sequence numbers handed out by the TimestampOracle.
using Ts = uint64_t;
inline constexpr Ts kMaxTs = std::numeric_limits<Ts>::max();

/// Lock-free MVCC version chains in the style of STO's MVCCStructs: each
/// row head is an atomic pointer to a CSN-stamped version node whose
/// lifecycle is an atomic status word (PENDING -> COMMITTED /
/// COMMITTED_DELTA / ABORTED). Writers install PENDING nodes with a head
/// CAS (a pending node doubles as the row's write lock), publish by
/// flipping the status word, and roll back by flipping to ABORTED —
/// no per-row or global mutex on the transaction hot path.
///
/// Delta versions are the escrow-style relaxation that makes hot-row
/// increments commute: a COMMITTED_DELTA node carries a single-cell
/// increment that readers fold over the newest visible full version, so
/// two Payments bumping the same supplier's S_YTD both commit without a
/// write-write conflict.
///
/// All raw compare_exchange loops in the repository live in this header
/// (enforced by the `raw-cas` lint rule); everything else manipulates
/// chains through these helpers.
namespace mvcc {

/// Version lifecycle. A node is installed PENDING, becomes visible when
/// its writer flips it to COMMITTED (full after-image or tombstone) or
/// COMMITTED_DELTA (single-cell increment), or is withdrawn as ABORTED.
/// ABORTED nodes stay linked until Vacuum unlinks them — readers skip
/// them, preserving the dead-tuple bloat the scan meter models.
enum class VersionStatus : uint32_t {
  kPending = 0,
  kCommitted = 1,
  kCommittedDelta = 2,
  kAborted = 3,
};

struct VersionNode {
  /// Lifecycle word; stores of kCommitted/kCommittedDelta use release
  /// ordering so `cts` and `payload` are visible to any reader that
  /// acquires the status.
  std::atomic<uint32_t> status{
      static_cast<uint32_t>(VersionStatus::kPending)};
  /// Commit timestamp; written before the status flips to committed.
  std::atomic<Ts> cts{0};
  /// Next-older node (nullptr at the chain tail). Written by the
  /// installing CAS and by Vacuum unlinks.
  std::atomic<VersionNode*> prev{nullptr};
  /// Identity of the installing transaction; valid while kPending. Used
  /// to distinguish a transaction's own pending nodes from foreign ones.
  const void* owner = nullptr;
  /// Logical delete: a committed tombstone ends visibility at `cts`.
  bool tombstone = false;
  /// True for delta (increment) versions; `payload` then holds a single
  /// increment cell targeting `delta_column`.
  bool is_delta = false;
  uint32_t delta_column = 0;
  /// Full after-image, or the one-cell increment for deltas.
  Row payload;
};

inline VersionStatus StatusOf(const VersionNode* node) {
  return static_cast<VersionStatus>(
      node->status.load(std::memory_order_acquire));
}

inline bool IsCommitted(VersionStatus st) {
  return st == VersionStatus::kCommitted ||
         st == VersionStatus::kCommittedDelta;
}

/// Flips a pending node to committed at `cts`. Release ordering on the
/// status store publishes the timestamp and payload together.
inline void Publish(VersionNode* node, Ts cts) {
  node->cts.store(cts, std::memory_order_relaxed);
  node->status.store(
      static_cast<uint32_t>(node->is_delta ? VersionStatus::kCommittedDelta
                                           : VersionStatus::kCommitted),
      std::memory_order_release);
}

/// Withdraws a pending node after a failed validation.
inline void Withdraw(VersionNode* node) {
  node->status.store(static_cast<uint32_t>(VersionStatus::kAborted),
                     std::memory_order_release);
}

/// Adds `increment` into `*cell`: integer cells add integrally, numeric
/// cells otherwise add as doubles (S_YTD-style decimal columns).
inline void ApplyDeltaValue(Value* cell, const Value& increment) {
  if (cell->is_int() && increment.is_int()) {
    *cell = Value{cell->AsInt() + increment.AsInt()};
  } else {
    *cell = Value{cell->AsDouble() + increment.AsDouble()};
  }
}

/// One row's chain: an atomic head pointer, newest node first.
struct VersionChain {
  std::atomic<VersionNode*> head{nullptr};
};

/// Unconditionally links `node` above the current head (pre-ordered
/// installs: loads, replica replay, committed tombstones).
inline void PushHead(VersionChain* chain, VersionNode* node) {
  VersionNode* cur = chain->head.load(std::memory_order_acquire);
  do {
    node->prev.store(cur, std::memory_order_relaxed);
  } while (!chain->head.compare_exchange_weak(
      cur, node, std::memory_order_release, std::memory_order_acquire));
}

/// Links `node` above `expected_head` only if the head is still
/// `expected_head` — the linearization point of a validated install (the
/// caller re-validates from the new head and retries on failure).
inline bool TryPushHead(VersionChain* chain, VersionNode* node,
                        VersionNode* expected_head) {
  node->prev.store(expected_head, std::memory_order_relaxed);
  VersionNode* expected = expected_head;
  return chain->head.compare_exchange_strong(
      expected, node, std::memory_order_release, std::memory_order_acquire);
}

/// Unlinks `node` from `*link` (the head pointer or a retained
/// predecessor's `prev`). Fails if a concurrent install changed the link.
inline bool Unlink(std::atomic<VersionNode*>* link, VersionNode* node) {
  VersionNode* expected = node;
  return link->compare_exchange_strong(
      expected, node->prev.load(std::memory_order_acquire),
      std::memory_order_acq_rel, std::memory_order_acquire);
}

/// Physical chain length (all nodes: pending, aborted, committed) — the
/// dead-tuple bloat a heap scan pays for until Vacuum runs.
inline size_t ChainLength(const VersionNode* head) {
  size_t n = 0;
  for (const VersionNode* node = head; node != nullptr;
       node = node->prev.load(std::memory_order_acquire)) {
    ++n;
  }
  return n;
}

/// Frees a whole chain. Only safe when no concurrent reader can hold the
/// nodes (table destructor, reset under the exclusive structure latch).
inline void FreeChain(VersionNode* head) {
  VersionNode* node = head;
  while (node != nullptr) {
    VersionNode* older = node->prev.load(std::memory_order_relaxed);
    delete node;
    node = older;
  }
}

/// What a fold observed; feeds first-updater-wins and OCC read
/// validation in the transaction manager.
struct FoldObservation {
  /// cts of the committed full version the read resolved to (0 if the
  /// row was invisible at the snapshot).
  Ts full_cts = 0;
  /// Newest committed work folded into the read: max cts over the full
  /// version and every delta folded onto it. The publish protocol
  /// guarantees any write committed after the read has cts > any_cts,
  /// so validating against any_cts is exact at every isolation level.
  Ts any_cts = 0;
};

/// Resolves the version of a chain visible at `snapshot`: walks newest to
/// oldest skipping pending/aborted nodes and versions newer than the
/// snapshot, accumulates visible committed deltas, and folds them over
/// the first visible committed full version. Deltas older than that full
/// version are already incorporated in it (every committed full
/// after-image was computed from a read that folded all deltas below it)
/// and are ignored. Returns false if no version is visible (row created
/// later, or tombstoned as of the snapshot).
///
/// Meters one version_hop per node visited, matching the
/// newest-to-oldest walk of the previous vector-based chains.
inline bool FoldVisible(const VersionNode* head, Ts snapshot, Row* out,
                        FoldObservation* obs, WorkMeter* meter) {
  // Deltas commute logically, but double addition rounds differently
  // under reordering — and the column-store copies apply deltas in
  // commit order. Collect, then replay in cts order below so every
  // store folds to the bit-identical value.
  std::vector<const VersionNode*> deltas;
  for (const VersionNode* node = head; node != nullptr;
       node = node->prev.load(std::memory_order_acquire)) {
    if (meter != nullptr) ++meter->version_hops;
    const VersionStatus st = StatusOf(node);
    if (!IsCommitted(st)) continue;  // pending or aborted: invisible
    const Ts cts = node->cts.load(std::memory_order_relaxed);
    if (cts > snapshot) continue;
    if (st == VersionStatus::kCommittedDelta) {
      deltas.push_back(node);
      continue;
    }
    // First committed full version at or below the snapshot.
    if (node->tombstone) return false;  // deleted as of snapshot
    *out = node->payload;
    Ts any = cts;
    std::sort(deltas.begin(), deltas.end(),
              [](const VersionNode* a, const VersionNode* b) {
                return a->cts.load(std::memory_order_relaxed) <
                       b->cts.load(std::memory_order_relaxed);
              });
    for (const VersionNode* d : deltas) {
      ApplyDeltaValue(&(*out)[d->delta_column], d->payload[0]);
      const Ts dts = d->cts.load(std::memory_order_relaxed);
      if (dts > any) any = dts;
    }
    if (obs != nullptr) {
      obs->full_cts = cts;
      obs->any_cts = any;
    }
    if (meter != nullptr) ++meter->rows_read;
    return true;
  }
  return false;  // row did not exist at snapshot
}

/// cts of the newest committed full (non-delta) version, 0 if none.
/// Tombstones count (their cts ends visibility).
inline Ts NewestCommittedFullCts(const VersionNode* head) {
  for (const VersionNode* node = head; node != nullptr;
       node = node->prev.load(std::memory_order_acquire)) {
    if (StatusOf(node) == VersionStatus::kCommitted) {
      return node->cts.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

/// Epoch-based reclamation for version nodes unlinked by Vacuum while
/// lock-free readers may still hold pointers into the chain. Readers
/// wrap chain walks in a Guard (per-thread cache-line-aligned epoch
/// slots, RAII-acquired on first use and released at thread exit);
/// Vacuum retires unlinked nodes into a limbo list and frees an entry
/// only once every active reader entered after it was retired.
class EpochManager {
 public:
  static EpochManager& Instance() {
    static EpochManager manager;
    return manager;
  }

  /// Read-side critical section. Re-entrant (nested guards on one thread
  /// keep the outermost epoch).
  class Guard {
   public:
    Guard() : slot_(LocalSlot()) {
      if (slot_->depth++ == 0) {
        // seq_cst pairs with the reclaimer's slot scan: if the scan did
        // not see this store, every later chain load on this thread is
        // ordered after the scan — and thus after the unlink it follows.
        slot_->epoch.store(
            Instance().global_epoch_.load(std::memory_order_seq_cst),
            std::memory_order_seq_cst);
      }
    }
    ~Guard() {
      if (--slot_->depth == 0) {
        slot_->epoch.store(kIdle, std::memory_order_release);
      }
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class EpochManager;
    struct alignas(64) Slot {
      std::atomic<uint64_t> epoch{kIdle};
      std::atomic<bool> owned{false};
      uint32_t depth = 0;  // only touched by the owning thread
    };
    static Slot* LocalSlot() {
      thread_local SlotLease lease;
      return lease.slot;
    }
    Slot* slot_;
  };

  /// Queues an unlinked node for deferred free.
  void Retire(VersionNode* node) {
    const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    MutexLock lock(&limbo_mu_);
    limbo_.push_back({epoch, node});
  }

  /// Advances the global epoch (one bump per Vacuum pass).
  void BumpEpoch() {
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Frees every limbo node retired before the oldest active reader
  /// epoch; returns the number freed.
  size_t ReclaimExpired() {
    uint64_t min_active = kIdle;
    for (const Guard::Slot& slot : slots_) {
      const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e < min_active) min_active = e;
    }
    std::vector<VersionNode*> free_now;
    {
      MutexLock lock(&limbo_mu_);
      size_t kept = 0;
      for (auto& entry : limbo_) {
        if (entry.first < min_active) {
          free_now.push_back(entry.second);
        } else {
          limbo_[kept++] = entry;
        }
      }
      limbo_.resize(kept);
    }
    for (VersionNode* node : free_now) delete node;
    return free_now.size();
  }

 private:
  static constexpr uint64_t kIdle = std::numeric_limits<uint64_t>::max();
  static constexpr size_t kMaxSlots = 1024;

  /// Thread-lifetime lease on one epoch slot (slots recycle across the
  /// drivers' short-lived client threads).
  struct SlotLease {
    Guard::Slot* slot = nullptr;
    SlotLease() {
      EpochManager& mgr = Instance();
      for (size_t i = 0; i < kMaxSlots; ++i) {
        bool expected = false;
        if (mgr.slots_[i].owned.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          slot = &mgr.slots_[i];
          return;
        }
      }
      std::abort();  // > kMaxSlots concurrent threads; raise the cap
    }
    ~SlotLease() {
      slot->epoch.store(kIdle, std::memory_order_release);
      slot->owned.store(false, std::memory_order_release);
    }
  };

  EpochManager() = default;
  ~EpochManager() {
    // Process teardown: no readers remain; drain the limbo list so leak
    // checkers see every node freed.
    MutexLock lock(&limbo_mu_);
    for (auto& entry : limbo_) delete entry.second;
    limbo_.clear();
  }

  Guard::Slot slots_[kMaxSlots];
  std::atomic<uint64_t> global_epoch_{1};
  Mutex limbo_mu_;
  std::vector<std::pair<uint64_t, VersionNode*>> limbo_
      GUARDED_BY(limbo_mu_);
};

}  // namespace mvcc
}  // namespace hattrick

#endif  // HATTRICK_TXN_MVCC_H_
