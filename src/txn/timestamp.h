#ifndef HATTRICK_TXN_TIMESTAMP_H_
#define HATTRICK_TXN_TIMESTAMP_H_

#include <atomic>

#include "storage/row_table.h"

namespace hattrick {

/// Hands out commit timestamps and tracks the newest fully-applied commit.
///
/// Snapshots are `last_committed()` at transaction/query start: because the
/// transaction manager applies a commit's writes *before* advancing
/// last_committed (under its commit latch), a snapshot never exposes a
/// partially applied commit.
class TimestampOracle {
 public:
  TimestampOracle() = default;

  TimestampOracle(const TimestampOracle&) = delete;
  TimestampOracle& operator=(const TimestampOracle&) = delete;

  /// Allocates the next commit timestamp (monotonically increasing, >= 1).
  Ts Allocate() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Newest timestamp whose commit is fully applied.
  Ts last_committed() const {
    return last_committed_.load(std::memory_order_acquire);
  }

  /// Publishes `ts` as fully applied.
  void AdvanceCommitted(Ts ts) {
    last_committed_.store(ts, std::memory_order_release);
  }

  /// Resets to the initial state with `ts` as the last committed timestamp
  /// (benchmark reset back to a loaded snapshot).
  void ResetTo(Ts ts) {
    next_.store(ts + 1, std::memory_order_relaxed);
    last_committed_.store(ts, std::memory_order_release);
  }

 private:
  std::atomic<Ts> next_{1};
  std::atomic<Ts> last_committed_{0};
};

}  // namespace hattrick

#endif  // HATTRICK_TXN_TIMESTAMP_H_
