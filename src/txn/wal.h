#ifndef HATTRICK_TXN_WAL_H_
#define HATTRICK_TXN_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/value.h"
#include "storage/catalog.h"
#include "storage/row_table.h"

namespace hattrick {

/// One logical write within a committed transaction. kDelta carries a
/// commutative single-cell increment (`row` holds the one increment
/// value, `column` the target column) instead of a full after-image, so
/// replication and the column-store delta feed replay hot-row increments
/// exactly as the row store folded them.
struct WalOp {
  enum class Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelta = 2 };

  Kind kind = Kind::kInsert;
  TableId table_id = 0;
  Rid rid = 0;  // slot assigned at commit (insert) or updated slot (update)
  uint32_t column = 0;  // delta target column (kDelta only; not encoded otherwise)
  Row row;      // full after-image, or the single increment cell for kDelta

  friend bool operator==(const WalOp& a, const WalOp& b) {
    return a.kind == b.kind && a.table_id == b.table_id && a.rid == b.rid &&
           (a.kind != Kind::kDelta || a.column == b.column) &&
           a.row == b.row;
  }
};

/// The WAL record of one committed transaction. Records are the unit of
/// streaming replication (isolated design) and of delta maintenance
/// (hybrid design). Encoded size is metered as shipped bytes.
struct WalRecord {
  uint64_t lsn = 0;
  Ts commit_ts = 0;
  uint32_t client_id = 0;   // issuing T-client (0 = none/loader)
  uint64_t txn_num = 0;     // client-local sequence number
  std::vector<WalOp> ops;

  /// Serializes to a length-delimited binary format.
  std::string Encode() const;

  /// Parses a record encoded by Encode().
  static StatusOr<WalRecord> Decode(const std::string& bytes);

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.lsn == b.lsn && a.commit_ts == b.commit_ts &&
           a.client_id == b.client_id && a.txn_num == b.txn_num &&
           a.ops == b.ops;
  }
};

/// Receives the WAL records of committed transactions, in commit order.
/// Implementations: the replication stream (isolated engine) and the
/// column-store delta feed (hybrid engine).
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual void OnCommit(const WalRecord& record) = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_TXN_WAL_H_
