#include "exec/parallel.h"

#include <algorithm>
#include <limits>
#include <map>
#include <thread>
#include <utility>

#include "common/key_encoding.h"
#include "exec/op_profiler.h"

namespace hattrick {

namespace {

/// Executes every shard plan on its own thread, then merges the partial
/// aggregate rows into final groups (see MakeGatherMerge in parallel.h).
class GatherMergeOp final : public Operator {
 public:
  GatherMergeOp(std::vector<OperatorPtr> shards, size_t group_columns,
                std::vector<AggSpec::Kind> kinds)
      : shards_(std::move(shards)),
        group_columns_(group_columns),
        kinds_(std::move(kinds)) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "GatherMerge",
                    "shards=" + std::to_string(shards_.size()));
    const size_t n = shards_.size();
    // In batch mode each worker ships its partial-aggregate output as
    // column-vector batches (no per-row materialization on the worker
    // side); in row (oracle) mode it ships materialized rows.
    std::vector<std::vector<Batch>> shard_batches(n);
    std::vector<std::vector<Row>> shard_rows(n);
    std::vector<WorkMeter> shard_meters(n);
    // Private per-worker profiles (workers must not share a PlanProfile);
    // grafted under this operator's node in shard order after the join,
    // so the merged tree is schedule-independent like the meters.
    std::vector<obs::PlanProfile> shard_profiles;
    if (prof_.enabled()) {
      shard_profiles.assign(n, obs::PlanProfile(ctx->profile->clock()));
    }
    {
      // Each worker gets a private context: its own meter (merged below in
      // shard order, so totals are schedule-independent) and a copy of the
      // session pin so the engine's analytical state outlives the thread.
      std::vector<std::thread> workers;
      workers.reserve(n);
      for (size_t w = 0; w < n; ++w) {
        workers.emplace_back([this, ctx, w, &shard_batches, &shard_rows,
                              &shard_meters, &shard_profiles] {
          obs::ScopedSpan span(ctx->tracer, ctx->trace_clock, "morsel-shard",
                               "morsel",
                               ctx->trace_tid + static_cast<uint32_t>(w));
          ExecContext worker_ctx;
          worker_ctx.meter = &shard_meters[w];
          worker_ctx.dop = ctx->dop;
          worker_ctx.dynamic_morsels = ctx->dynamic_morsels;
          worker_ctx.vectorized = ctx->vectorized;
          worker_ctx.batch_rows = ctx->batch_rows;
          worker_ctx.session_pin = ctx->session_pin;
          if (!shard_profiles.empty()) {
            worker_ctx.profile = &shard_profiles[w];
          }
          if (worker_ctx.vectorized) {
            shard_batches[w] = CollectBatches(shards_[w].get(), &worker_ctx);
          } else {
            shard_rows[w] = Collect(shards_[w].get(), &worker_ctx);
          }
        });
      }
      for (std::thread& t : workers) t.join();
    }
    if (ctx->meter != nullptr) {
      for (const WorkMeter& m : shard_meters) *ctx->meter += m;
    }
    if (prof_.enabled()) ctx->profile->AbsorbShards(shard_profiles);

    // Merge partials: group key -> (key values, exact sums/counts, min/max
    // doubles). std::map keeps encoded-key order, matching the serial
    // HashAggregateOp's sorted output.
    struct Merged {
      Row key_values;
      std::vector<int64_t> exact;
      std::vector<double> accum;
    };
    std::map<std::string, Merged> groups;
    const auto merge_row = [&](const Row& row) {
        std::string key;
        for (size_t i = 0; i < group_columns_; ++i) {
          key::EncodeValue(row[i], &key);
        }
        auto [it, inserted] = groups.try_emplace(std::move(key));
        Merged& m = it->second;
        if (inserted) {
          m.key_values.assign(row.begin(), row.begin() + group_columns_);
          m.exact.resize(kinds_.size(), 0);
          m.accum.resize(kinds_.size());
          for (size_t i = 0; i < kinds_.size(); ++i) {
            switch (kinds_[i]) {
              case AggSpec::Kind::kMin:
                m.accum[i] = std::numeric_limits<double>::infinity();
                break;
              case AggSpec::Kind::kMax:
                m.accum[i] = -std::numeric_limits<double>::infinity();
                break;
              default:
                m.accum[i] = 0;
            }
          }
        }
        for (size_t i = 0; i < kinds_.size(); ++i) {
          const double v = row[group_columns_ + i].AsDouble();
          switch (kinds_[i]) {
            case AggSpec::Kind::kSum:
              // Partial sums are fixed-point values rendered as double;
              // re-quantizing recovers the exact integer (sums stay well
              // inside double's 2^53 exact range), so the merged total is
              // bit-identical to a serial aggregation.
              m.exact[i] += QuantizeSumValue(v);
              break;
            case AggSpec::Kind::kCount:
              m.exact[i] += static_cast<int64_t>(v);
              break;
            case AggSpec::Kind::kMin:
              m.accum[i] = std::min(m.accum[i], v);
              break;
            case AggSpec::Kind::kMax:
              m.accum[i] = std::max(m.accum[i], v);
              break;
          }
        }
    };
    // Shards merge in worker order in both modes, so the merged groups —
    // and the fixed-point partial sums — fold identically.
    Row scratch;
    for (size_t w = 0; w < n; ++w) {
      for (const Batch& b : shard_batches[w]) {
        const size_t active = b.ActiveRows();
        for (size_t k = 0; k < active; ++k) {
          b.MaterializeRow(b.ActiveIndex(k), &scratch);
          merge_row(scratch);
        }
      }
      for (const Row& row : shard_rows[w]) merge_row(row);
    }

    // A global aggregate over empty input still yields the serial plan's
    // single zero row (partial shards emit nothing for empty input).
    if (group_columns_ == 0 && groups.empty()) {
      Merged zero;
      zero.exact.assign(kinds_.size(), 0);
      zero.accum.assign(kinds_.size(), 0.0);
      groups.emplace(std::string(), std::move(zero));
    }

    output_.reserve(groups.size());
    for (auto& [key, m] : groups) {
      Row out = std::move(m.key_values);
      for (size_t i = 0; i < kinds_.size(); ++i) {
        switch (kinds_[i]) {
          case AggSpec::Kind::kSum:
            out.emplace_back(static_cast<double>(m.exact[i]) /
                             kSumFixedPointScale);
            break;
          case AggSpec::Kind::kCount:
            out.emplace_back(static_cast<double>(m.exact[i]));
            break;
          default:
            out.emplace_back(m.accum[i]);
        }
      }
      output_.push_back(std::move(out));
    }
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      if (pos_ >= output_.size()) return false;
      *out = std::move(output_[pos_++]);
      if (ctx->meter != nullptr) ++ctx->meter->output_rows;
      return true;
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] {
      out->Clear();
      while (pos_ < output_.size() && out->rows < ctx->batch_rows) {
        if (!out->TypesMatch(output_[pos_])) break;
        out->AppendRow(output_[pos_++]);
      }
      if (ctx->meter != nullptr) ctx->meter->output_rows += out->rows;
      return out->rows > 0;
    });
  }

 private:
  std::vector<OperatorPtr> shards_;
  size_t group_columns_;
  std::vector<AggSpec::Kind> kinds_;
  std::vector<Row> output_;
  size_t pos_ = 0;
  OpProfiler prof_;
};

}  // namespace

OperatorPtr MakeGatherMerge(std::vector<OperatorPtr> shards,
                            size_t group_columns,
                            std::vector<AggSpec::Kind> kinds) {
  return std::make_unique<GatherMergeOp>(std::move(shards), group_columns,
                                         std::move(kinds));
}

}  // namespace hattrick
