#include "exec/operator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/key_encoding.h"
#include "exec/op_profiler.h"

namespace hattrick {

int64_t QuantizeSumValue(double v) {
  return std::llround(v * kSumFixedPointScale);
}

bool Operator::NextBatch(ExecContext* ctx, Batch* out) {
  out->Clear();
  if (has_pending_row_) {
    out->AppendRow(pending_row_);
    has_pending_row_ = false;
  }
  Row row;
  while (out->rows < ctx->batch_rows && Next(ctx, &row)) {
    if (!out->TypesMatch(row)) {
      // Type skew: close this batch and start the next one with the row.
      pending_row_ = std::move(row);
      has_pending_row_ = true;
      break;
    }
    out->AppendRow(row);
  }
  return out->rows > 0;
}

namespace {

/// Boolean truth of the i-th cell of an evaluated predicate vector,
/// matching EvalBool's Value::AsInt semantics for non-int results.
bool BoolAt(const ColumnVector& v, size_t i) {
  if (v.type() == DataType::kInt64) return v.ints[i] != 0;
  return v.GetValue(i).AsInt() != 0;
}

/// Numeric value of the i-th cell, matching Value::AsDouble (int
/// promotion) for the aggregate-input path.
double DoubleAt(const ColumnVector& v, size_t i) {
  if (v.is_numeric()) return v.NumericAt(i);
  return v.GetValue(i).AsDouble();
}

class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "Filter");
    child_->Open(ctx);
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      while (child_->Next(ctx, out)) {
        if (EvalBool(*predicate_, *out)) return true;
      }
      return false;
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] {
      while (child_->NextBatch(ctx, out)) {
        predicate_->EvalBatch(*out, &pred_);
        // Refine the selection in place: keep the active rows where the
        // predicate holds. Payloads are untouched (no compaction).
        keep_.clear();
        const size_t n = out->ActiveRows();
        for (size_t k = 0; k < n; ++k) {
          const size_t i = out->ActiveIndex(k);
          if (BoolAt(pred_, i)) keep_.push_back(static_cast<uint32_t>(i));
        }
        if (keep_.empty()) continue;  // fully filtered batch: pull the next
        out->sel.idx = keep_;
        out->filtered = true;
        return true;
      }
      return false;
    });
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  ColumnVector pred_;
  std::vector<uint32_t> keep_;
  OpProfiler prof_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "Project", "exprs=" + std::to_string(exprs_.size()));
    child_->Open(ctx);
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      Row in;
      if (!child_->Next(ctx, &in)) return false;
      out->clear();
      out->reserve(exprs_.size());
      for (const ExprPtr& e : exprs_) out->push_back(e->Eval(in));
      return true;
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] {
      if (!child_->NextBatch(ctx, &in_)) return false;
      // One kernel sweep per output expression over the whole batch; the
      // input selection carries over (expressions are pure, so values
      // computed at unselected rows are never read).
      out->cols.resize(exprs_.size());
      for (size_t i = 0; i < exprs_.size(); ++i) {
        exprs_[i]->EvalBatch(in_, &out->cols[i]);
      }
      out->rows = in_.rows;
      out->sel = in_.sel;
      out->filtered = in_.filtered;
      return true;
    });
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Batch in_;
  OpProfiler prof_;
};

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr probe, size_t probe_key, OperatorPtr build,
             size_t build_key)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        probe_key_(probe_key),
        build_key_(build_key) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "HashJoin",
                    "probe_key=" + std::to_string(probe_key_) +
                        " build_key=" + std::to_string(build_key_));
    OpenImpl(ctx);
    prof_.OpenEnd(ctx);
  }

  void OpenImpl(ExecContext* ctx) {
    probe_->Open(ctx);
    build_->Open(ctx);
    if (ctx->vectorized) {
      // Batch drain of the build side. Insertion order matches the row
      // path (active rows in batch order), so the multimap — and with it
      // the equal_range emission order on the probe side — is identical.
      Batch b;
      Row row;
      while (build_->NextBatch(ctx, &b)) {
        const size_t n = b.ActiveRows();
        for (size_t k = 0; k < n; ++k) {
          b.MaterializeRow(b.ActiveIndex(k), &row);
          std::string key;
          key::EncodeValue(row[build_key_], &key);
          table_.emplace(std::move(key), row);
        }
        if (ctx->meter != nullptr) ctx->meter->hash_probes += n;
      }
      return;
    }
    Row row;
    while (build_->Next(ctx, &row)) {
      std::string key;
      key::EncodeValue(row[build_key_], &key);
      table_.emplace(std::move(key), row);
      if (ctx->meter != nullptr) ++ctx->meter->hash_probes;
    }
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      while (true) {
        if (match_it_ != match_end_) {
          *out = probe_row_;
          const Row& build_row = match_it_->second;
          out->insert(out->end(), build_row.begin(), build_row.end());
          ++match_it_;
          if (ctx->meter != nullptr) ++ctx->meter->output_rows;
          return true;
        }
        if (!probe_->Next(ctx, &probe_row_)) return false;
        std::string key;
        key::EncodeValue(probe_row_[probe_key_], &key);
        if (ctx->meter != nullptr) ++ctx->meter->hash_probes;
        std::tie(match_it_, match_end_) = table_.equal_range(key);
      }
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] { return NextBatchImpl(ctx, out); });
  }

  bool NextBatchImpl(ExecContext* ctx, Batch* out) {
    out->Clear();
    Row joined;
    while (out->rows < ctx->batch_rows) {
      if (match_it_ != match_end_) {
        joined = probe_row_;
        const Row& build_row = match_it_->second;
        joined.insert(joined.end(), build_row.begin(), build_row.end());
        if (!out->TypesMatch(joined)) break;  // type skew: close the batch
        out->AppendRow(joined);
        ++match_it_;
        if (ctx->meter != nullptr) ++ctx->meter->output_rows;
        continue;
      }
      // Advance to the next active probe row, pulling a new probe batch
      // when the current one is spent.
      if (probe_pos_ >= probe_batch_.ActiveRows()) {
        if (!probe_->NextBatch(ctx, &probe_batch_)) break;
        probe_pos_ = 0;
      }
      probe_batch_.MaterializeRow(probe_batch_.ActiveIndex(probe_pos_++),
                                  &probe_row_);
      std::string key;
      key::EncodeValue(probe_row_[probe_key_], &key);
      if (ctx->meter != nullptr) ++ctx->meter->hash_probes;
      std::tie(match_it_, match_end_) = table_.equal_range(key);
    }
    return out->rows > 0;
  }

 private:
  using Table = std::unordered_multimap<std::string, Row>;

  OperatorPtr probe_;
  OperatorPtr build_;
  size_t probe_key_;
  size_t build_key_;
  Table table_;
  Row probe_row_;
  Table::iterator match_it_{};
  Table::iterator match_end_{};
  Batch probe_batch_;
  size_t probe_pos_ = 0;
  OpProfiler prof_;
};

class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_by,
                  std::vector<AggSpec> aggregates, bool partial)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)),
        partial_(partial) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, partial_ ? "PartialHashAggregate" : "HashAggregate",
                    "groups=" + std::to_string(group_by_.size()) +
                        " aggs=" + std::to_string(aggregates_.size()));
    OpenImpl(ctx);
    prof_.OpenEnd(ctx);
  }

  void OpenImpl(ExecContext* ctx) {
    child_->Open(ctx);
    std::unordered_map<std::string, State> groups;
    if (ctx->vectorized) {
      DrainBatches(ctx, &groups);
    } else {
      DrainRows(ctx, &groups);
    }
    // Global aggregate with no input rows still emits one (zero) row —
    // except in partial mode, where the merge operator owns that row.
    if (group_by_.empty() && groups.empty() && !partial_) {
      State zero;
      zero.accum.assign(aggregates_.size(), 0.0);
      zero.exact.assign(aggregates_.size(), 0);
      groups.emplace(std::string(), std::move(zero));
    }
    // Deterministic output order: sort by encoded key.
    output_.reserve(groups.size());
    std::vector<std::pair<std::string, State>> sorted(
        std::make_move_iterator(groups.begin()),
        std::make_move_iterator(groups.end()));
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [key, state] : sorted) {
      Row out = std::move(state.key_values);
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        switch (aggregates_[i].kind) {
          case AggSpec::Kind::kSum:
            out.emplace_back(static_cast<double>(state.exact[i]) /
                             kSumFixedPointScale);
            break;
          case AggSpec::Kind::kCount:
            out.emplace_back(static_cast<double>(state.exact[i]));
            break;
          default:
            out.emplace_back(state.accum[i]);
        }
      }
      output_.push_back(std::move(out));
    }
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      if (pos_ >= output_.size()) return false;
      *out = std::move(output_[pos_++]);
      if (ctx->meter != nullptr) ++ctx->meter->output_rows;
      return true;
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] {
      out->Clear();
      while (pos_ < output_.size() && out->rows < ctx->batch_rows) {
        if (!out->TypesMatch(output_[pos_])) break;
        out->AppendRow(output_[pos_++]);
      }
      if (ctx->meter != nullptr) ctx->meter->output_rows += out->rows;
      return out->rows > 0;
    });
  }

 private:
  struct State {
    Row key_values;
    std::vector<double> accum;    // min/max
    std::vector<int64_t> exact;   // sum (fixed-point) and count
  };

  void DrainRows(ExecContext* ctx,
                 std::unordered_map<std::string, State>* groups) {
    Row row;
    while (child_->Next(ctx, &row)) {
      std::string key;
      Row key_values;
      key_values.reserve(group_by_.size());
      for (const ExprPtr& e : group_by_) {
        Value v = e->Eval(row);
        key::EncodeValue(v, &key);
        key_values.push_back(std::move(v));
      }
      State& state = Accumulate(ctx, groups, std::move(key),
                                std::move(key_values));
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        const AggSpec& agg = aggregates_[i];
        switch (agg.kind) {
          case AggSpec::Kind::kSum:
            // Fixed-point: exactly associative, so partial aggregates
            // merge bit-identically to a serial sum (see operator.h).
            state.exact[i] += QuantizeSumValue(agg.arg->Eval(row).AsDouble());
            break;
          case AggSpec::Kind::kCount:
            state.exact[i] += 1;
            break;
          case AggSpec::Kind::kMin:
            state.accum[i] =
                std::min(state.accum[i], agg.arg->Eval(row).AsDouble());
            break;
          case AggSpec::Kind::kMax:
            state.accum[i] =
                std::max(state.accum[i], agg.arg->Eval(row).AsDouble());
            break;
        }
      }
    }
  }

  void DrainBatches(ExecContext* ctx,
                    std::unordered_map<std::string, State>* groups) {
    Batch b;
    std::vector<ColumnVector> keys(group_by_.size());
    std::vector<ColumnVector> args(aggregates_.size());
    while (child_->NextBatch(ctx, &b)) {
      // One kernel sweep per group-by / aggregate-input expression, then
      // a per-active-row accumulation pass over the evaluated vectors.
      for (size_t j = 0; j < group_by_.size(); ++j) {
        group_by_[j]->EvalBatch(b, &keys[j]);
      }
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (aggregates_[i].kind != AggSpec::Kind::kCount) {
          aggregates_[i].arg->EvalBatch(b, &args[i]);
        }
      }
      const size_t n = b.ActiveRows();
      for (size_t k = 0; k < n; ++k) {
        const size_t r = b.ActiveIndex(k);
        std::string key;
        Row key_values;
        key_values.reserve(group_by_.size());
        for (size_t j = 0; j < group_by_.size(); ++j) {
          Value v = keys[j].GetValue(r);
          key::EncodeValue(v, &key);
          key_values.push_back(std::move(v));
        }
        State& state = Accumulate(ctx, groups, std::move(key),
                                  std::move(key_values));
        for (size_t i = 0; i < aggregates_.size(); ++i) {
          switch (aggregates_[i].kind) {
            case AggSpec::Kind::kSum:
              state.exact[i] += QuantizeSumValue(DoubleAt(args[i], r));
              break;
            case AggSpec::Kind::kCount:
              state.exact[i] += 1;
              break;
            case AggSpec::Kind::kMin:
              state.accum[i] = std::min(state.accum[i], DoubleAt(args[i], r));
              break;
            case AggSpec::Kind::kMax:
              state.accum[i] = std::max(state.accum[i], DoubleAt(args[i], r));
              break;
          }
        }
      }
    }
  }

  /// Looks up (inserting if needed) the group for `key`, charging the
  /// hash probe exactly as the row path does.
  State& Accumulate(ExecContext* ctx,
                    std::unordered_map<std::string, State>* groups,
                    std::string key, Row key_values) {
    auto [it, inserted] = groups->emplace(std::move(key), State{});
    if (ctx->meter != nullptr) ++ctx->meter->hash_probes;
    State& state = it->second;
    if (inserted) {
      state.key_values = std::move(key_values);
      state.accum.resize(aggregates_.size());
      state.exact.resize(aggregates_.size(), 0);
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        switch (aggregates_[i].kind) {
          case AggSpec::Kind::kMin:
            state.accum[i] = std::numeric_limits<double>::infinity();
            break;
          case AggSpec::Kind::kMax:
            state.accum[i] = -std::numeric_limits<double>::infinity();
            break;
          default:
            state.accum[i] = 0;
        }
      }
    }
    return state;
  }

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggregates_;
  bool partial_;
  std::vector<Row> output_;
  size_t pos_ = 0;
  OpProfiler prof_;
};

class OrderByOp final : public Operator {
 public:
  OrderByOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "OrderBy", "keys=" + std::to_string(keys_.size()));
    child_->Open(ctx);
    if (ctx->vectorized) {
      Batch b;
      while (child_->NextBatch(ctx, &b)) b.AppendActiveRows(&rows_);
    } else {
      Row row;
      while (child_->Next(ctx, &row)) rows_.push_back(std::move(row));
    }
    std::sort(rows_.begin(), rows_.end(), [&](const Row& a, const Row& b) {
      for (const SortKey& k : keys_) {
        const int c = k.expr->Eval(a).Compare(k.expr->Eval(b));
        if (c != 0) return k.ascending ? c < 0 : c > 0;
      }
      return false;
    });
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      if (pos_ >= rows_.size()) return false;
      *out = std::move(rows_[pos_++]);
      return true;
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] {
      out->Clear();
      while (pos_ < rows_.size() && out->rows < ctx->batch_rows) {
        if (!out->TypesMatch(rows_[pos_])) break;
        out->AppendRow(rows_[pos_++]);
      }
      return out->rows > 0;
    });
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  OpProfiler prof_;
};

class ValuesScanOp final : public Operator {
 public:
  explicit ValuesScanOp(std::vector<Row> rows) : rows_(std::move(rows)) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "ValuesScan",
                    "rows=" + std::to_string(rows_.size()));
    pos_ = 0;
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      if (pos_ >= rows_.size()) return false;
      *out = rows_[pos_++];
      return true;
    });
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] {
      out->Clear();
      while (pos_ < rows_.size() && out->rows < ctx->batch_rows) {
        if (!out->TypesMatch(rows_[pos_])) break;
        out->AppendRow(rows_[pos_++]);
      }
      return out->rows > 0;
    });
  }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
  OpProfiler prof_;
};

}  // namespace

OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs));
}

OperatorPtr MakeHashJoin(OperatorPtr probe, size_t probe_key,
                         OperatorPtr build, size_t build_key) {
  return std::make_unique<HashJoinOp>(std::move(probe), probe_key,
                                      std::move(build), build_key);
}

OperatorPtr MakeHashAggregate(OperatorPtr child, std::vector<ExprPtr> group_by,
                              std::vector<AggSpec> aggregates) {
  return std::make_unique<HashAggregateOp>(std::move(child),
                                           std::move(group_by),
                                           std::move(aggregates),
                                           /*partial=*/false);
}

OperatorPtr MakePartialHashAggregate(OperatorPtr child,
                                     std::vector<ExprPtr> group_by,
                                     std::vector<AggSpec> aggregates) {
  return std::make_unique<HashAggregateOp>(std::move(child),
                                           std::move(group_by),
                                           std::move(aggregates),
                                           /*partial=*/true);
}

OperatorPtr MakeOrderBy(OperatorPtr child, std::vector<SortKey> keys) {
  return std::make_unique<OrderByOp>(std::move(child), std::move(keys));
}

OperatorPtr MakeValuesScan(std::vector<Row> rows) {
  return std::make_unique<ValuesScanOp>(std::move(rows));
}

std::vector<Row> Collect(Operator* op, ExecContext* ctx) {
  std::vector<Row> out;
  op->Open(ctx);
  if (ctx->vectorized) {
    Batch b;
    while (op->NextBatch(ctx, &b)) b.AppendActiveRows(&out);
  } else {
    Row row;
    while (op->Next(ctx, &row)) out.push_back(row);
  }
  return out;
}

std::vector<Batch> CollectBatches(Operator* op, ExecContext* ctx) {
  std::vector<Batch> out;
  op->Open(ctx);
  Batch b;
  while (op->NextBatch(ctx, &b)) {
    out.push_back(std::move(b));
    b = Batch();
  }
  return out;
}

}  // namespace hattrick
