#ifndef HATTRICK_EXEC_OPERATOR_H_
#define HATTRICK_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "common/work_meter.h"
#include "exec/expression.h"

namespace hattrick {

/// Per-query execution state: the work meter that accumulates the cost of
/// the query (fed to the simulator's cost model).
struct ExecContext {
  WorkMeter* meter = nullptr;
};

/// Volcano-style physical operator. Scans stream; blocking operators
/// (hash join build, aggregation, sort) materialize internally.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator; called once before Next.
  virtual void Open(ExecContext* ctx) = 0;

  /// Produces the next row into *out; returns false when exhausted.
  virtual bool Next(ExecContext* ctx, Row* out) = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Numeric pushdown predicate: lo <= column <= hi (inclusive). The column
/// scan uses these to prune zone-map blocks.
struct NumRange {
  size_t column;
  double lo;
  double hi;
};

/// String pushdown predicate: column IN values (equality when single).
struct StrIn {
  size_t column;
  std::vector<std::string> values;
};

/// What a query needs from a base table: a projection plus conjunctive
/// pushdown predicates. Plans are written against the logical HATtrick
/// schema; the engine's DataSource lowers the spec onto its physical
/// representation (row store with MVCC snapshot, or column store).
struct ScanSpec {
  std::string table;
  std::vector<size_t> projection;  // output columns, in output order
  std::vector<NumRange> ranges;
  std::vector<StrIn> str_in;
  /// Optional plan hint: name of a B+-tree index whose first key column
  /// matches one of `ranges`. Row-store backends use an index range scan
  /// when the index exists (the paper's Figure 6b "all indexes"
  /// configuration accelerating analytical plans); columnar backends and
  /// reduced physical schemas ignore the hint.
  std::string index_hint;
};

/// Engine-provided factory for base-table scans. The 13 SSB query plans
/// are backend-agnostic: they consume whatever operators the data source
/// produces for their scan specs.
class DataSource {
 public:
  virtual ~DataSource() = default;
  virtual OperatorPtr Scan(const ScanSpec& spec) const = 0;
};

/// Relational operators used by the HATtrick query plans.

/// Filters rows by a residual predicate.
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate);

/// Computes one output expression per column.
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs);

/// Hash join: materializes `build`, probes with `probe`. Output is
/// probe row concatenated with build row. Join keys must be single
/// columns on each side (all SSB joins are key/foreign-key equijoins).
OperatorPtr MakeHashJoin(OperatorPtr probe, size_t probe_key,
                         OperatorPtr build, size_t build_key);

/// One aggregate specification.
struct AggSpec {
  enum class Kind { kSum, kCount, kMin, kMax };
  Kind kind = Kind::kSum;
  ExprPtr arg;  // unused for kCount
};

/// Hash aggregation; output = group-by values then aggregate values, with
/// groups emitted in deterministic (encoded-key) order. With no group-by
/// columns produces exactly one row (global aggregate).
OperatorPtr MakeHashAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_by,
                              std::vector<AggSpec> aggregates);

/// Sort specification: expression + direction.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Full sort (materializing); used for ORDER BY clauses.
OperatorPtr MakeOrderBy(OperatorPtr child, std::vector<SortKey> keys);

/// Fixed in-memory input (used by tests).
OperatorPtr MakeValuesScan(std::vector<Row> rows);

/// Drains `op` into a vector (helper for tests and result collection).
std::vector<Row> Collect(Operator* op, ExecContext* ctx);

}  // namespace hattrick

#endif  // HATTRICK_EXEC_OPERATOR_H_
