#ifndef HATTRICK_EXEC_OPERATOR_H_
#define HATTRICK_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/value.h"
#include "common/work_meter.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/morsel.h"
#include "obs/plan_profile.h"
#include "obs/trace.h"

namespace hattrick {

/// Per-query execution state: the work meter that accumulates the cost of
/// the query (fed to the simulator's cost model) plus the parallelism
/// knobs consulted when the plan is built and executed.
struct ExecContext {
  WorkMeter* meter = nullptr;

  /// Degree of intra-query parallelism. 1 (the paper-faithful default)
  /// executes the serial Volcano plan; >1 executes a morsel-parallel plan
  /// whose worker shards run on real threads (see exec/parallel.h).
  int dop = 1;

  /// Morsel scheduling: dynamic claiming (wall-clock drivers, load
  /// balance) vs static round-robin (simulated drivers, where metered
  /// work must not depend on thread scheduling).
  bool dynamic_morsels = false;

  /// Vectorized (batch-at-a-time) vs row-at-a-time execution. The mode is
  /// uniform across one plan: a vectorized consumer drives the root with
  /// NextBatch and every operator pulls its children with NextBatch;
  /// blocking operators consult this flag in Open when draining their
  /// inputs. false selects the original Volcano path, retained as the
  /// differential-testing oracle — results and WorkMeter totals are
  /// bit-identical between the modes (tests/exec_test.cc enforces it).
  bool vectorized = true;

  /// Target rows per column-vector batch (>= 1). Defaults to
  /// kDefaultBatchRows unless the HATTRICK_BATCH_ROWS env override is set
  /// (the CI degenerate-batch leg). Ignored when !vectorized.
  size_t batch_rows = DefaultBatchRows();

  /// Engine session pin (AnalyticsSession::guard). Worker threads hold a
  /// copy for their whole lifetime so the engine cannot move data (delta
  /// merge, reset) under a shard even if the issuing client releases its
  /// session early.
  std::shared_ptr<void> session_pin;

  /// Optional tracing (both null by default — benches pay nothing).
  /// When set, the gather-merge exchange records one span per worker
  /// shard on tracks trace_tid, trace_tid+1, ... using trace_clock.
  obs::Tracer* tracer = nullptr;
  const Clock* trace_clock = nullptr;
  uint32_t trace_tid = 0;

  /// Optional EXPLAIN ANALYZE profile (null by default — operators pay
  /// one pointer test per call). When set, every operator registers a
  /// PlanProfileNode in Open and accumulates rows/batches/work-meter
  /// units/injected-clock time per Next/NextBatch (exec/op_profiler.h).
  /// Profiling never writes the meter or alters control flow, so
  /// results and metered totals are bit-identical with it on or off.
  obs::PlanProfile* profile = nullptr;
};

/// Physical operator. The primary interface is batch-at-a-time
/// (NextBatch, column-vector batches with selection vectors); the
/// row-at-a-time Volcano interface (Next) is retained as the
/// differential-testing oracle and for row-native operators (index range
/// scans), which get NextBatch from the base-class adapter. Scans
/// stream; blocking operators (hash join build, aggregation, sort)
/// materialize internally, draining their children in the mode
/// ExecContext::vectorized selects.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator; called once before Next/NextBatch.
  virtual void Open(ExecContext* ctx) = 0;

  /// Produces the next row into *out; returns false when exhausted.
  virtual bool Next(ExecContext* ctx, Row* out) = 0;

  /// Produces the next batch (>= 1 active row) into *out; returns false
  /// when exhausted. The base implementation adapts a row-native
  /// operator by pulling up to ctx->batch_rows rows through Next.
  virtual bool NextBatch(ExecContext* ctx, Batch* out);

 private:
  // Row the base NextBatch adapter read but could not append because its
  // cell types differ from the open batch's columns; it opens the next
  // batch instead.
  Row pending_row_;
  bool has_pending_row_ = false;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Numeric pushdown predicate: lo <= column <= hi (inclusive). The column
/// scan uses these to prune zone-map blocks.
struct NumRange {
  size_t column;
  double lo;
  double hi;
};

/// String pushdown predicate: column IN values (equality when single).
struct StrIn {
  size_t column;
  std::vector<std::string> values;
};

/// What a query needs from a base table: a projection plus conjunctive
/// pushdown predicates. Plans are written against the logical HATtrick
/// schema; the engine's DataSource lowers the spec onto its physical
/// representation (row store with MVCC snapshot, or column store).
struct ScanSpec {
  std::string table;
  std::vector<size_t> projection;  // output columns, in output order
  std::vector<NumRange> ranges;
  std::vector<StrIn> str_in;
  /// Optional plan hint: name of a B+-tree index whose first key column
  /// matches one of `ranges`. Row-store backends use an index range scan
  /// when the index exists (the paper's Figure 6b "all indexes"
  /// configuration accelerating analytical plans); columnar backends and
  /// reduced physical schemas ignore the hint. Ignored when `morsels` is
  /// set (parallel shards always partition the heap/column extent).
  std::string index_hint;
  /// Optional morsel restriction: when set, the scan covers only the
  /// morsels this spec's `worker` claims from the shared set, instead of
  /// the whole table. Used by the parallel plans' fact-table shards.
  std::shared_ptr<MorselSet> morsels;
  uint32_t worker = 0;
};

/// Engine-provided factory for base-table scans. The 13 SSB query plans
/// are backend-agnostic: they consume whatever operators the data source
/// produces for their scan specs.
class DataSource {
 public:
  virtual ~DataSource() = default;
  virtual OperatorPtr Scan(const ScanSpec& spec) const = 0;

  /// Number of rows/slots a full scan of `table` would cover right now
  /// (the row bound for columnar sources, the slot count for row
  /// sources). Parallel plans use it to build the MorselSet partitioning
  /// the fact-table scan; 0 means the source cannot be morselized.
  virtual size_t ScanExtent(const std::string& table) const {
    (void)table;
    return 0;
  }

  /// Horizontally partitioned sources (the sharded engine) expose one
  /// view per shard; query planning then scatters a per-shard subplan
  /// over each view and gathers the partial aggregates. Single-node
  /// sources return empty (the default), which keeps ordinary planning
  /// untouched. The returned views are owned by this source and stay
  /// valid for the life of the analytics session.
  virtual std::vector<const DataSource*> ShardViews() const { return {}; }
};

/// Relational operators used by the HATtrick query plans.

/// Filters rows by a residual predicate.
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate);

/// Computes one output expression per column.
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs);

/// Hash join: materializes `build`, probes with `probe`. Output is
/// probe row concatenated with build row. Join keys must be single
/// columns on each side (all SSB joins are key/foreign-key equijoins).
OperatorPtr MakeHashJoin(OperatorPtr probe, size_t probe_key,
                         OperatorPtr build, size_t build_key);

/// One aggregate specification.
struct AggSpec {
  enum class Kind { kSum, kCount, kMin, kMax };
  Kind kind = Kind::kSum;
  ExprPtr arg;  // unused for kCount
};

/// Fixed-point scale of SUM accumulation: 1e-4 units (DECIMAL(.,4)).
/// Inputs must stay below ~9e11 in magnitude so the scaled value fits the
/// exact integer range of double/int64; HATtrick's monetary domain tops
/// out around 1e9.
inline constexpr double kSumFixedPointScale = 1e4;

/// Quantizes one SUM input to its exact fixed-point representation.
int64_t QuantizeSumValue(double v);

/// Hash aggregation; output = group-by values then aggregate values, with
/// groups emitted in deterministic (encoded-key) order. With no group-by
/// columns produces exactly one row (global aggregate).
///
/// SUM over kDouble inputs accumulates in fixed-point (1e-4 units, i.e.
/// DECIMAL(.,4) semantics — SSB's monetary columns are DECIMAL in the
/// spec). Integer accumulation is exactly associative, so a sum is a pure
/// function of the input *set*: serial plans, per-worker partial
/// aggregates, and any morsel schedule produce bit-identical results.
OperatorPtr MakeHashAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_by,
                              std::vector<AggSpec> aggregates);

/// Per-worker partial aggregation for morsel-parallel plans: identical to
/// MakeHashAggregate except an empty input produces no output row (not
/// even for a global aggregate), so merging partials never folds identity
/// placeholders into MIN/MAX and the gather-merge operator alone decides
/// the empty-global row.
OperatorPtr MakePartialHashAggregate(OperatorPtr child,
                                     std::vector<ExprPtr> group_by,
                                     std::vector<AggSpec> aggregates);

/// Sort specification: expression + direction.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Full sort (materializing); used for ORDER BY clauses.
OperatorPtr MakeOrderBy(OperatorPtr child, std::vector<SortKey> keys);

/// Fixed in-memory input (used by tests).
OperatorPtr MakeValuesScan(std::vector<Row> rows);

/// Drains `op` into a vector of materialized rows (helper for tests and
/// result collection). Honors ctx->vectorized: drives the root with
/// NextBatch (default) or with the row-oracle Next — active rows arrive
/// in the same order either way.
std::vector<Row> Collect(Operator* op, ExecContext* ctx);

/// Drains `op` batch-at-a-time without materializing rows (the exchange
/// and benches use this; requires ctx->vectorized).
std::vector<Batch> CollectBatches(Operator* op, ExecContext* ctx);

}  // namespace hattrick

#endif  // HATTRICK_EXEC_OPERATOR_H_
