#include "exec/batch.h"

#include <cstdlib>

namespace hattrick {

size_t DefaultBatchRows() {
  static const size_t rows = [] {
    const char* env = std::getenv("HATTRICK_BATCH_ROWS");
    if (env == nullptr) return kDefaultBatchRows;
    const long v = std::atol(env);
    return v < 1 ? size_t{1} : static_cast<size_t>(v);
  }();
  return rows;
}

}  // namespace hattrick
