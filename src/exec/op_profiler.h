#ifndef HATTRICK_EXEC_OP_PROFILER_H_
#define HATTRICK_EXEC_OP_PROFILER_H_

#include <string>
#include <utility>

#include "exec/operator.h"
#include "obs/plan_profile.h"

namespace hattrick {

/// Per-operator profiling hook. Every physical operator owns one and
/// brackets its Open with OpenBegin/OpenEnd and its Next/NextBatch
/// bodies with the Next/NextBatch wrappers. With profiling off
/// (ExecContext::profile == nullptr) every method reduces to one null
/// test, and with it on the hook only *reads* the work meter and the
/// profile's injected clock — execution, results, and metered totals
/// are identical either way.
class OpProfiler {
 public:
  /// Registers this operator's node under the currently open one and
  /// starts the Open bracket. Call first thing in Open, before opening
  /// children, so the profile tree nests like the Open calls do.
  void OpenBegin(ExecContext* ctx, const char* name,
                 std::string detail = std::string()) {
    if (ctx->profile == nullptr) return;
    profile_ = ctx->profile;
    node_ = profile_->BeginNode(name, std::move(detail));
    open_t0_ = profile_->NowOrZero();
    open_m0_ = MeterTotal(ctx);
    node_->opens++;
    if (!node_->has_ts) {
      node_->first_ts = open_t0_;
      node_->last_ts = open_t0_;
      node_->has_ts = true;
    }
  }

  /// Ends the Open bracket. Call last thing in Open.
  void OpenEnd(ExecContext* ctx) {
    if (node_ == nullptr) return;
    const double t1 = profile_->NowOrZero();
    node_->open_seconds += t1 - open_t0_;
    node_->work_units += MeterTotal(ctx) - open_m0_;
    node_->last_ts = t1;
    profile_->EndNode();
  }

  /// Runs a row-mode Next body, accounting one call and (on true) one
  /// output row plus the inclusive time/meter delta.
  template <typename Fn>
  bool Next(ExecContext* ctx, Fn&& fn) {
    if (node_ == nullptr) return fn();
    const double t0 = profile_->NowOrZero();
    const uint64_t m0 = MeterTotal(ctx);
    const bool ok = fn();
    node_->calls++;
    if (ok) {
      node_->rows_out++;
      node_->phys_rows++;
    }
    FinishCall(ctx, t0, m0);
    return ok;
  }

  /// Runs a batch-mode NextBatch body, accounting one call and (on
  /// true) the produced batch's active and physical rows.
  template <typename Fn>
  bool NextBatch(ExecContext* ctx, Batch* out, Fn&& fn) {
    if (node_ == nullptr) return fn();
    const double t0 = profile_->NowOrZero();
    const uint64_t m0 = MeterTotal(ctx);
    const bool ok = fn();
    node_->calls++;
    if (ok) {
      node_->batches++;
      node_->rows_out += out->ActiveRows();
      node_->phys_rows += out->rows;
    }
    FinishCall(ctx, t0, m0);
    return ok;
  }

  bool enabled() const { return node_ != nullptr; }

  /// The operator's node; null when profiling is off. Scans use it to
  /// record pruning and lane counters the generic hook cannot see.
  obs::PlanProfileNode* node() const { return node_; }

 private:
  static uint64_t MeterTotal(const ExecContext* ctx) {
    return ctx->meter != nullptr ? ctx->meter->Total() : 0;
  }

  void FinishCall(ExecContext* ctx, double t0, uint64_t m0) {
    const double t1 = profile_->NowOrZero();
    node_->next_seconds += t1 - t0;
    node_->work_units += MeterTotal(ctx) - m0;
    node_->last_ts = t1;
  }

  obs::PlanProfile* profile_ = nullptr;
  obs::PlanProfileNode* node_ = nullptr;
  double open_t0_ = 0;
  uint64_t open_m0_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_EXEC_OP_PROFILER_H_
