#ifndef HATTRICK_EXEC_MORSEL_H_
#define HATTRICK_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hattrick {

/// Fixed-size morsel partitioning of one base-table scan (Leis et al.,
/// "Morsel-Driven Parallelism"): the scan's extent is cut into morsels of
/// `morsel_rows` rows and the workers of a parallel plan consume them
/// either dynamically (work stealing via an atomic cursor, used by the
/// wall-clock driver for load balance) or statically (worker w owns
/// morsels w, w+W, w+2W, ... — used by the simulator, where per-worker
/// work must be a deterministic function of the data, never of thread
/// scheduling).
///
/// One MorselSet is shared by all worker shards of one scan; each shard
/// keeps its own ClaimState.
struct MorselSet {
  /// Morsel sizes are multiples of this so column-store morsels never
  /// split a zone-map block (must equal ColumnTable::kBlockRows; asserted
  /// by parallel_exec_test to avoid an exec -> storage include).
  static constexpr size_t kMorselAlignRows = 1024;

  /// Default morsel size: a multiple of kMorselAlignRows.
  static constexpr size_t kDefaultMorselRows = 4096;

  /// Picks a morsel size for `extent` rows split across `num_workers`:
  /// aims for ~4 morsels per worker (so dynamic claiming can balance a
  /// skewed scan) but never exceeds the default size and never splits a
  /// column block. A pure function of its arguments, so simulated runs
  /// stay deterministic.
  static size_t PickMorselRows(size_t extent, uint32_t num_workers) {
    if (num_workers == 0) num_workers = 1;
    size_t per = extent / (static_cast<size_t>(num_workers) * 4);
    per = std::min(per, kDefaultMorselRows);
    per -= per % kMorselAlignRows;
    return per == 0 ? kMorselAlignRows : per;
  }

  size_t extent = 0;       // rows/rids to cover: [0, extent)
  size_t morsel_rows = kDefaultMorselRows;
  uint32_t num_workers = 1;
  bool dynamic = false;    // dynamic claiming vs static round-robin

  std::atomic<size_t> next{0};  // dynamic-mode claim cursor

  MorselSet(size_t extent, uint32_t num_workers, bool dynamic,
            size_t morsel_rows = kDefaultMorselRows)
      : extent(extent),
        morsel_rows(morsel_rows),
        num_workers(num_workers == 0 ? 1 : num_workers),
        dynamic(dynamic) {}

  size_t num_morsels() const {
    return (extent + morsel_rows - 1) / morsel_rows;
  }

  /// Per-shard claim cursor (static mode's position; reset by Open).
  struct ClaimState {
    size_t next_static = 0;  // next morsel index owned by this worker
  };

  /// Claims the next morsel for `worker`, writing its row range into
  /// [*begin, *end). Returns false when this worker's share is exhausted.
  bool Claim(uint32_t worker, ClaimState* state, size_t* begin,
             size_t* end) {
    size_t morsel;
    if (dynamic) {
      morsel = next.fetch_add(1, std::memory_order_relaxed);
      if (morsel >= num_morsels()) return false;
    } else {
      if (state->next_static == 0) state->next_static = worker;
      morsel = state->next_static;
      if (morsel >= num_morsels()) return false;
      state->next_static = morsel + num_workers;
    }
    *begin = morsel * morsel_rows;
    *end = std::min(extent, *begin + morsel_rows);
    return true;
  }
};

}  // namespace hattrick

#endif  // HATTRICK_EXEC_MORSEL_H_
