#ifndef HATTRICK_EXEC_PARALLEL_H_
#define HATTRICK_EXEC_PARALLEL_H_

#include <vector>

#include "exec/operator.h"

namespace hattrick {

/// The exchange half of the partial-aggregation/merge pair.
///
/// `shards` are complete per-worker plans — each one scans its share of
/// the fact table's morsels (ScanSpec::morsels) and ends in a
/// MakePartialHashAggregate. Open() executes every shard to completion on
/// its own std::thread (the morsel worker pool of one query), each with a
/// private WorkMeter that is folded into the calling context in shard
/// order after the join, so metered totals are independent of thread
/// scheduling. Worker threads copy ExecContext::session_pin, so the
/// engine's analytical state stays pinned for the whole worker lifetime
/// even if the issuing client drops its session guard early.
///
/// The merge re-aggregates the partial rows: the first `group_columns`
/// cells are the group key, the remaining cells are combined per `kinds`
/// (sum/count re-enter exact fixed-point space, so the merged result is
/// bit-identical to a serial aggregation of the same input; min/min,
/// max/max). Groups are emitted in encoded-key order — the same order
/// MakeHashAggregate uses — and a global aggregate (group_columns == 0)
/// with no input emits the serial plan's single zero row.
OperatorPtr MakeGatherMerge(std::vector<OperatorPtr> shards,
                            size_t group_columns,
                            std::vector<AggSpec::Kind> kinds);

}  // namespace hattrick

#endif  // HATTRICK_EXEC_PARALLEL_H_
