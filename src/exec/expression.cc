#include "exec/expression.h"

#include <algorithm>
#include <cassert>

namespace hattrick {

namespace {

class ColExpr final : public Expr {
 public:
  explicit ColExpr(size_t index) : index_(index) {}
  Value Eval(const Row& row) const override {
    assert(index_ < row.size());
    return row[index_];
  }
  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

 private:
  size_t index_;
};

class LitExpr final : public Expr {
 public:
  explicit LitExpr(Value v) : v_(std::move(v)) {}
  Value Eval(const Row&) const override { return v_; }
  std::string ToString() const override { return v_.ToString(); }

 private:
  Value v_;
};

enum class BinOp { kAdd, kSub, kMul, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

class BinExpr final : public Expr {
 public:
  BinExpr(BinOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Value Eval(const Row& row) const override {
    // Short-circuit the logical connectives.
    if (op_ == BinOp::kAnd) {
      if (l_->Eval(row).AsInt() == 0) return Value(int64_t{0});
      return Value(int64_t{r_->Eval(row).AsInt() != 0});
    }
    if (op_ == BinOp::kOr) {
      if (l_->Eval(row).AsInt() != 0) return Value(int64_t{1});
      return Value(int64_t{r_->Eval(row).AsInt() != 0});
    }
    const Value a = l_->Eval(row);
    const Value b = r_->Eval(row);
    switch (op_) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        if (a.is_int() && b.is_int()) {
          const int64_t x = a.AsInt();
          const int64_t y = b.AsInt();
          switch (op_) {
            case BinOp::kAdd: return Value(x + y);
            case BinOp::kSub: return Value(x - y);
            default: return Value(x * y);
          }
        }
        const double x = a.AsDouble();
        const double y = b.AsDouble();
        switch (op_) {
          case BinOp::kAdd: return Value(x + y);
          case BinOp::kSub: return Value(x - y);
          default: return Value(x * y);
        }
      }
      default: {
        const int c = a.Compare(b);
        bool result = false;
        switch (op_) {
          case BinOp::kEq: result = c == 0; break;
          case BinOp::kNe: result = c != 0; break;
          case BinOp::kLt: result = c < 0; break;
          case BinOp::kLe: result = c <= 0; break;
          case BinOp::kGt: result = c > 0; break;
          case BinOp::kGe: result = c >= 0; break;
          default: break;
        }
        return Value(int64_t{result});
      }
    }
  }

  std::string ToString() const override {
    return "(" + l_->ToString() + " " + BinOpName(op_) + " " +
           r_->ToString() + ")";
  }

 private:
  BinOp op_;
  ExprPtr l_;
  ExprPtr r_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr e) : e_(std::move(e)) {}
  Value Eval(const Row& row) const override {
    return Value(int64_t{e_->Eval(row).AsInt() == 0});
  }
  std::string ToString() const override {
    return "NOT " + e_->ToString();
  }

 private:
  ExprPtr e_;
};

class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr e, std::vector<Value> candidates)
      : e_(std::move(e)), candidates_(std::move(candidates)) {}
  Value Eval(const Row& row) const override {
    const Value v = e_->Eval(row);
    const bool found =
        std::any_of(candidates_.begin(), candidates_.end(),
                    [&](const Value& c) { return c == v; });
    return Value(int64_t{found});
  }
  std::string ToString() const override {
    std::string out = e_->ToString() + " IN (";
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (i > 0) out += ", ";
      out += candidates_[i].ToString();
    }
    return out + ")";
  }

 private:
  ExprPtr e_;
  std::vector<Value> candidates_;
};

}  // namespace

ExprPtr Col(size_t index) { return std::make_shared<ColExpr>(index); }
ExprPtr Lit(Value v) { return std::make_shared<LitExpr>(std::move(v)); }

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kMul, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }

ExprPtr Between(ExprPtr e, Value lo, Value hi) {
  ExprPtr lower = Ge(e, Lit(std::move(lo)));
  ExprPtr upper = Le(std::move(e), Lit(std::move(hi)));
  return And(std::move(lower), std::move(upper));
}

ExprPtr InList(ExprPtr e, std::vector<Value> candidates) {
  return std::make_shared<InListExpr>(std::move(e), std::move(candidates));
}

}  // namespace hattrick
