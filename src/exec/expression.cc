#include "exec/expression.h"

#include <algorithm>
#include <cassert>

namespace hattrick {

/// Fallback kernel: materialize each physical row and defer to the
/// row-at-a-time interpreter. Correct for any node; the built-in nodes
/// override with typed loops below.
void Expr::EvalBatch(const Batch& batch, ColumnVector* out) const {
  out->Reset(DataType::kInt64);
  Row row;
  for (size_t i = 0; i < batch.rows; ++i) {
    batch.MaterializeRow(i, &row);
    const Value v = Eval(row);
    if (i == 0) out->Reset(v.type());
    out->PushValue(v);
  }
}

namespace {

class ColExpr final : public Expr {
 public:
  explicit ColExpr(size_t index) : index_(index) {}
  Value Eval(const Row& row) const override {
    assert(index_ < row.size());
    return row[index_];
  }
  void EvalBatch(const Batch& batch, ColumnVector* out) const override {
    assert(index_ < batch.cols.size());
    *out = batch.cols[index_];
  }
  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

 private:
  size_t index_;
};

class LitExpr final : public Expr {
 public:
  explicit LitExpr(Value v) : v_(std::move(v)) {}
  Value Eval(const Row&) const override { return v_; }
  void EvalBatch(const Batch& batch, ColumnVector* out) const override {
    out->Reset(v_.type());
    for (size_t i = 0; i < batch.rows; ++i) out->PushValue(v_);
  }
  std::string ToString() const override { return v_.ToString(); }

 private:
  Value v_;
};

enum class BinOp { kAdd, kSub, kMul, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

class BinExpr final : public Expr {
 public:
  BinExpr(BinOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Value Eval(const Row& row) const override {
    // Short-circuit the logical connectives.
    if (op_ == BinOp::kAnd) {
      if (l_->Eval(row).AsInt() == 0) return Value(int64_t{0});
      return Value(int64_t{r_->Eval(row).AsInt() != 0});
    }
    if (op_ == BinOp::kOr) {
      if (l_->Eval(row).AsInt() != 0) return Value(int64_t{1});
      return Value(int64_t{r_->Eval(row).AsInt() != 0});
    }
    const Value a = l_->Eval(row);
    const Value b = r_->Eval(row);
    switch (op_) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        if (a.is_int() && b.is_int()) {
          const int64_t x = a.AsInt();
          const int64_t y = b.AsInt();
          switch (op_) {
            case BinOp::kAdd: return Value(x + y);
            case BinOp::kSub: return Value(x - y);
            default: return Value(x * y);
          }
        }
        const double x = a.AsDouble();
        const double y = b.AsDouble();
        switch (op_) {
          case BinOp::kAdd: return Value(x + y);
          case BinOp::kSub: return Value(x - y);
          default: return Value(x * y);
        }
      }
      default: {
        const int c = a.Compare(b);
        bool result = false;
        switch (op_) {
          case BinOp::kEq: result = c == 0; break;
          case BinOp::kNe: result = c != 0; break;
          case BinOp::kLt: result = c < 0; break;
          case BinOp::kLe: result = c <= 0; break;
          case BinOp::kGt: result = c > 0; break;
          case BinOp::kGe: result = c >= 0; break;
          default: break;
        }
        return Value(int64_t{result});
      }
    }
  }

  /// Typed loop kernels. Column types are uniform within a vector, so
  /// the per-row type dispatch of Eval resolves once per batch; the
  /// arithmetic performed per cell is identical to Eval's, so results
  /// are bit-identical. AND/OR evaluate both sides fully (expressions
  /// are pure, so the short-circuit of Eval is unobservable).
  void EvalBatch(const Batch& batch, ColumnVector* out) const override {
    ColumnVector l;
    ColumnVector r;
    l_->EvalBatch(batch, &l);
    r_->EvalBatch(batch, &r);
    const size_t n = batch.rows;
    const bool ints = l.type() == DataType::kInt64 &&
                      r.type() == DataType::kInt64;
    switch (op_) {
      case BinOp::kAnd:
      case BinOp::kOr: {
        if (!ints) break;  // fall through to the row fallback below
        out->Reset(DataType::kInt64);
        out->ints.resize(n);
        if (op_ == BinOp::kAnd) {
          for (size_t i = 0; i < n; ++i) {
            out->ints[i] = (l.ints[i] != 0 && r.ints[i] != 0) ? 1 : 0;
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            out->ints[i] = (l.ints[i] != 0 || r.ints[i] != 0) ? 1 : 0;
          }
        }
        return;
      }
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        if (ints) {
          out->Reset(DataType::kInt64);
          out->ints.resize(n);
          switch (op_) {
            case BinOp::kAdd:
              for (size_t i = 0; i < n; ++i)
                out->ints[i] = l.ints[i] + r.ints[i];
              break;
            case BinOp::kSub:
              for (size_t i = 0; i < n; ++i)
                out->ints[i] = l.ints[i] - r.ints[i];
              break;
            default:
              for (size_t i = 0; i < n; ++i)
                out->ints[i] = l.ints[i] * r.ints[i];
              break;
          }
          return;
        }
        if (!l.is_numeric() || !r.is_numeric()) break;
        out->Reset(DataType::kDouble);
        out->doubles.resize(n);
        switch (op_) {
          case BinOp::kAdd:
            for (size_t i = 0; i < n; ++i)
              out->doubles[i] = l.NumericAt(i) + r.NumericAt(i);
            break;
          case BinOp::kSub:
            for (size_t i = 0; i < n; ++i)
              out->doubles[i] = l.NumericAt(i) - r.NumericAt(i);
            break;
          default:
            for (size_t i = 0; i < n; ++i)
              out->doubles[i] = l.NumericAt(i) * r.NumericAt(i);
            break;
        }
        return;
      }
      default: {  // comparisons
        if (l.is_numeric() && r.is_numeric()) {
          out->Reset(DataType::kInt64);
          out->ints.resize(n);
          if (ints) {
            for (size_t i = 0; i < n; ++i) {
              out->ints[i] = CompareResult(
                  l.ints[i] < r.ints[i] ? -1
                                        : (l.ints[i] > r.ints[i] ? 1 : 0));
            }
          } else {
            for (size_t i = 0; i < n; ++i) {
              const double a = l.NumericAt(i);
              const double b = r.NumericAt(i);
              out->ints[i] = CompareResult(a < b ? -1 : (a > b ? 1 : 0));
            }
          }
          return;
        }
        if (l.type() == DataType::kString &&
            r.type() == DataType::kString) {
          out->Reset(DataType::kInt64);
          out->ints.resize(n);
          for (size_t i = 0; i < n; ++i) {
            const int c = l.strings[i].compare(r.strings[i]);
            out->ints[i] = CompareResult(c < 0 ? -1 : (c > 0 ? 1 : 0));
          }
          return;
        }
        break;  // mixed string/number: fall through to the row fallback
      }
    }
    Expr::EvalBatch(batch, out);
  }

  std::string ToString() const override {
    return "(" + l_->ToString() + " " + BinOpName(op_) + " " +
           r_->ToString() + ")";
  }

 private:
  /// Maps a three-way comparison to this node's 1/0 predicate result,
  /// mirroring Eval's switch over Value::Compare.
  int64_t CompareResult(int c) const {
    switch (op_) {
      case BinOp::kEq: return c == 0;
      case BinOp::kNe: return c != 0;
      case BinOp::kLt: return c < 0;
      case BinOp::kLe: return c <= 0;
      case BinOp::kGt: return c > 0;
      case BinOp::kGe: return c >= 0;
      default: return 0;
    }
  }

  BinOp op_;
  ExprPtr l_;
  ExprPtr r_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr e) : e_(std::move(e)) {}
  Value Eval(const Row& row) const override {
    return Value(int64_t{e_->Eval(row).AsInt() == 0});
  }
  void EvalBatch(const Batch& batch, ColumnVector* out) const override {
    ColumnVector in;
    e_->EvalBatch(batch, &in);
    if (in.type() != DataType::kInt64) {
      Expr::EvalBatch(batch, out);
      return;
    }
    out->Reset(DataType::kInt64);
    out->ints.resize(batch.rows);
    for (size_t i = 0; i < batch.rows; ++i) {
      out->ints[i] = in.ints[i] == 0 ? 1 : 0;
    }
  }
  std::string ToString() const override {
    return "NOT " + e_->ToString();
  }

 private:
  ExprPtr e_;
};

class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr e, std::vector<Value> candidates)
      : e_(std::move(e)), candidates_(std::move(candidates)) {}
  Value Eval(const Row& row) const override {
    const Value v = e_->Eval(row);
    const bool found =
        std::any_of(candidates_.begin(), candidates_.end(),
                    [&](const Value& c) { return c == v; });
    return Value(int64_t{found});
  }
  void EvalBatch(const Batch& batch, ColumnVector* out) const override {
    ColumnVector in;
    e_->EvalBatch(batch, &in);
    out->Reset(DataType::kInt64);
    out->ints.resize(batch.rows);
    // The candidate list is tiny (SSB IN-lists top out at 8 brands), so a
    // linear membership probe per row matches Eval's std::any_of exactly.
    for (size_t i = 0; i < batch.rows; ++i) {
      const Value v = in.GetValue(i);
      out->ints[i] =
          std::any_of(candidates_.begin(), candidates_.end(),
                      [&](const Value& c) { return c == v; })
              ? 1
              : 0;
    }
  }
  std::string ToString() const override {
    std::string out = e_->ToString() + " IN (";
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (i > 0) out += ", ";
      out += candidates_[i].ToString();
    }
    return out + ")";
  }

 private:
  ExprPtr e_;
  std::vector<Value> candidates_;
};

}  // namespace

ExprPtr Col(size_t index) { return std::make_shared<ColExpr>(index); }
ExprPtr Lit(Value v) { return std::make_shared<LitExpr>(std::move(v)); }

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kMul, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<BinExpr>(BinOp::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }

ExprPtr Between(ExprPtr e, Value lo, Value hi) {
  ExprPtr lower = Ge(e, Lit(std::move(lo)));
  ExprPtr upper = Le(std::move(e), Lit(std::move(hi)));
  return And(std::move(lower), std::move(upper));
}

ExprPtr InList(ExprPtr e, std::vector<Value> candidates) {
  return std::make_shared<InListExpr>(std::move(e), std::move(candidates));
}

}  // namespace hattrick
