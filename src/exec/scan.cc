#include "exec/scan.h"

#include <algorithm>
#include <cassert>

#include "common/key_encoding.h"

namespace hattrick {

namespace {

/// Applies a spec's pushdown predicates to a full row.
bool MatchesPushdowns(const Row& row, const ScanSpec& spec) {
  for (const NumRange& r : spec.ranges) {
    const double v = row[r.column].AsDouble();
    if (v < r.lo || v > r.hi) return false;
  }
  for (const StrIn& p : spec.str_in) {
    const std::string& v = row[p.column].AsString();
    bool found = false;
    for (const std::string& cand : p.values) {
      if (v == cand) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Scan over an MVCC row table.
///
/// Row mode: the first Next() materializes the projected columns of the
/// visible, predicate-passing rows in one pass over the table, so no
/// full-row copies are made for filtered-out or projected-away cells.
///
/// Batch mode: Open() only positions a slot cursor; NextBatch fills
/// column vectors by covering the slot space with batch-sized ScanRange
/// chunks. RowTable::ScanRange guarantees a disjoint cover meters exactly
/// like one Scan, and output_rows is charged per emitted row either way,
/// so both modes charge identical WorkMeter totals.
class RowScanOp final : public Operator {
 public:
  RowScanOp(const RowTable* table, Ts snapshot, ScanSpec spec)
      : table_(table), snapshot_(snapshot), spec_(std::move(spec)) {
    types_.reserve(spec_.projection.size());
    for (size_t col : spec_.projection) {
      types_.push_back(table_->schema().column(col).type);
    }
  }

  void Open(ExecContext* ctx) override {
    (void)ctx;
    rows_.clear();
    pos_ = 0;
    materialized_ = false;
    cursor_ = 0;
    limit_ = 0;
    serial_pending_ = spec_.morsels == nullptr;
    claim_ = MorselSet::ClaimState{};
  }

  bool Next(ExecContext* ctx, Row* out) override {
    // Row path: materialize on first pull (same scan, same meter totals
    // as materializing in Open — just charged at the first Next).
    if (!materialized_) {
      materialized_ = true;
      const auto visit = [&](Rid, const Row& row) {
        if (!MatchesPushdowns(row, spec_)) return true;
        Row projected;
        projected.reserve(spec_.projection.size());
        for (size_t col : spec_.projection) projected.push_back(row[col]);
        rows_.push_back(std::move(projected));
        return true;
      };
      if (spec_.morsels != nullptr) {
        // Parallel shard: scan only the rid ranges this worker claims.
        MorselSet::ClaimState claim;
        size_t begin;
        size_t end;
        while (spec_.morsels->Claim(spec_.worker, &claim, &begin, &end)) {
          table_->ScanRange(snapshot_, begin, end, visit, ctx->meter);
        }
      } else {
        table_->Scan(snapshot_, visit, ctx->meter);
      }
      if (ctx->meter != nullptr) ctx->meter->output_rows += rows_.size();
    }
    if (pos_ >= rows_.size()) return false;
    *out = std::move(rows_[pos_++]);
    return true;
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    out->ResetTypes(types_);
    size_t emitted = 0;
    const auto visit = [&](Rid, const Row& row) {
      if (!MatchesPushdowns(row, spec_)) return true;
      for (size_t j = 0; j < spec_.projection.size(); ++j) {
        out->cols[j].PushValue(row[spec_.projection[j]]);
      }
      ++out->rows;
      ++emitted;
      return true;
    };
    while (out->rows < ctx->batch_rows) {
      if (cursor_ >= limit_) {
        if (!NextSlotRange()) break;
        continue;
      }
      // Never scan more slots than the batch has room for: every slot
      // can yield at most one visible row.
      const size_t end =
          std::min(limit_, cursor_ + (ctx->batch_rows - out->rows));
      table_->ScanRange(snapshot_, cursor_, end, visit, ctx->meter);
      cursor_ = end;
    }
    if (ctx->meter != nullptr) ctx->meter->output_rows += emitted;
    return out->rows > 0;
  }

 private:
  /// Advances the cursor to the next slot range: the whole table in
  /// serial mode (once), or this worker's next claimed morsel.
  bool NextSlotRange() {
    if (spec_.morsels != nullptr) {
      size_t begin;
      size_t end;
      if (!spec_.morsels->Claim(spec_.worker, &claim_, &begin, &end)) {
        return false;
      }
      cursor_ = begin;
      limit_ = end;
      return true;
    }
    if (!serial_pending_) return false;
    serial_pending_ = false;
    cursor_ = 0;
    limit_ = table_->NumSlots();
    return cursor_ < limit_;
  }

  const RowTable* table_;
  Ts snapshot_;
  ScanSpec spec_;
  std::vector<DataType> types_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  bool materialized_ = false;
  // Batch-mode cursor state.
  size_t cursor_ = 0;
  size_t limit_ = 0;
  bool serial_pending_ = false;
  MorselSet::ClaimState claim_;
};

/// Streaming scan over a column table with zone-map block pruning.
///
/// Batch mode processes block-bounded runs of rows: one tight loop per
/// pushdown predicate over the raw column payloads (string predicates on
/// dictionary codes), then a gather of the survivors' projected columns
/// straight into the output vectors. Runs never cross a zone-map block
/// boundary, so pruning decisions — and metered column_values — are
/// identical to the row-at-a-time path at any batch size.
class ColumnScanOp final : public Operator {
 public:
  ColumnScanOp(const ColumnTable* table, size_t bound, ScanSpec spec)
      : table_(table), bound_(bound), spec_(std::move(spec)) {
    types_.reserve(spec_.projection.size());
    for (size_t col : spec_.projection) {
      types_.push_back(table_->schema().column(col).type);
    }
  }

  void Open(ExecContext*) override {
    // Serial scans cover [0, bound_); morsel shards start empty and claim
    // ranges lazily in Next. Morsels are block-aligned (kDefaultMorselRows
    // is a multiple of kBlockRows), so zone-map pruning behaves — and
    // meters — identically at any dop.
    row_ = 0;
    limit_ = spec_.morsels != nullptr ? 0 : bound_;
    claim_ = MorselSet::ClaimState{};
    // Resolve string predicates to dictionary code sets once.
    code_preds_.clear();
    impossible_ = false;
    for (const StrIn& p : spec_.str_in) {
      CodePred cp;
      cp.column = p.column;
      for (const std::string& v : p.values) {
        const int64_t code = table_->FindStringCode(p.column, v);
        if (code >= 0) cp.codes.push_back(static_cast<uint32_t>(code));
      }
      if (cp.codes.empty()) {
        impossible_ = true;  // predicate value absent from the dictionary
        return;
      }
      code_preds_.push_back(std::move(cp));
    }
  }

  bool Next(ExecContext* ctx, Row* out) override {
    if (impossible_) return false;
    while (true) {
      while (row_ < limit_) {
        // Zone-map pruning at block boundaries.
        if (row_ % ColumnTable::kBlockRows == 0) {
          while (row_ < limit_ &&
                 BlockPruned(row_ / ColumnTable::kBlockRows)) {
            row_ = std::min<size_t>(limit_, row_ + ColumnTable::kBlockRows);
          }
          if (row_ >= limit_) break;
        }
        const size_t r = row_++;
        if (!Matches(r, ctx)) continue;
        out->clear();
        out->reserve(spec_.projection.size());
        for (size_t col : spec_.projection) {
          switch (table_->schema().column(col).type) {
            case DataType::kInt64:
              out->emplace_back(table_->GetInt(col, r));
              break;
            case DataType::kDouble:
              out->emplace_back(table_->GetDouble(col, r));
              break;
            case DataType::kString:
              out->emplace_back(table_->GetString(col, r));
              break;
          }
        }
        if (ctx->meter != nullptr) {
          ctx->meter->column_values += spec_.projection.size();
          ++ctx->meter->output_rows;
        }
        return true;
      }
      if (!ClaimNextRange()) return false;
    }
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    out->ResetTypes(types_);
    if (impossible_) return false;
    while (true) {
      while (row_ < limit_) {
        // Zone-map pruning at block boundaries (same condition as the
        // row path: mid-block resume positions skip the check).
        if (row_ % ColumnTable::kBlockRows == 0) {
          while (row_ < limit_ &&
                 BlockPruned(row_ / ColumnTable::kBlockRows)) {
            row_ = std::min<size_t>(limit_, row_ + ColumnTable::kBlockRows);
          }
          if (row_ >= limit_) break;
        }
        // Run end: block boundary, range limit, or remaining batch room.
        const size_t block_end =
            (row_ / ColumnTable::kBlockRows + 1) * ColumnTable::kBlockRows;
        const size_t end = std::min(
            {limit_, block_end, row_ + (ctx->batch_rows - out->rows)});
        ScanRun(row_, end, ctx, out);
        row_ = end;
        if (out->rows >= ctx->batch_rows) return true;
      }
      if (!ClaimNextRange()) return out->rows > 0;
    }
  }

 private:
  struct CodePred {
    size_t column;
    std::vector<uint32_t> codes;
  };

  /// Evaluates the pushdown predicates over rows [begin, end) and gathers
  /// the survivors' projected columns into *out. Metering matches the row
  /// path: every evaluated row charges one column_values per predicate,
  /// every emitted row charges the projection width plus one output row.
  void ScanRun(size_t begin, size_t end, ExecContext* ctx, Batch* out) {
    match_.clear();
    for (size_t r = begin; r < end; ++r) {
      match_.push_back(static_cast<uint32_t>(r));
    }
    for (const NumRange& pred : spec_.ranges) {
      size_t kept = 0;
      if (table_->schema().column(pred.column).type == DataType::kInt64) {
        const int64_t* data = table_->IntData(pred.column);
        for (const uint32_t r : match_) {
          const double v = static_cast<double>(data[r]);
          if (v >= pred.lo && v <= pred.hi) match_[kept++] = r;
        }
      } else {
        const double* data = table_->DoubleData(pred.column);
        for (const uint32_t r : match_) {
          if (data[r] >= pred.lo && data[r] <= pred.hi) match_[kept++] = r;
        }
      }
      match_.resize(kept);
    }
    for (const CodePred& pred : code_preds_) {
      const uint32_t* codes = table_->CodeData(pred.column);
      size_t kept = 0;
      for (const uint32_t r : match_) {
        const uint32_t code = codes[r];
        bool found = false;
        for (const uint32_t c : pred.codes) {
          if (c == code) {
            found = true;
            break;
          }
        }
        if (found) match_[kept++] = r;
      }
      match_.resize(kept);
    }
    for (size_t j = 0; j < spec_.projection.size(); ++j) {
      const size_t col = spec_.projection[j];
      ColumnVector& dst = out->cols[j];
      switch (types_[j]) {
        case DataType::kInt64: {
          const int64_t* data = table_->IntData(col);
          for (const uint32_t r : match_) dst.ints.push_back(data[r]);
          break;
        }
        case DataType::kDouble: {
          const double* data = table_->DoubleData(col);
          for (const uint32_t r : match_) dst.doubles.push_back(data[r]);
          break;
        }
        case DataType::kString: {
          const uint32_t* codes = table_->CodeData(col);
          for (const uint32_t r : match_) {
            dst.strings.push_back(table_->DictEntry(col, codes[r]));
          }
          break;
        }
      }
    }
    out->rows += match_.size();
    if (ctx->meter != nullptr) {
      ctx->meter->column_values +=
          (end - begin) * (spec_.ranges.size() + code_preds_.size()) +
          match_.size() * spec_.projection.size();
      ctx->meter->output_rows += match_.size();
    }
  }

  bool BlockPruned(size_t block) const {
    for (const NumRange& pred : spec_.ranges) {
      double mn;
      double mx;
      if (!table_->BlockMinMax(pred.column, block, &mn, &mx)) continue;
      if (mx < pred.lo || mn > pred.hi) return true;
    }
    return false;
  }

  bool Matches(size_t r, ExecContext* ctx) const {
    if (ctx->meter != nullptr) {
      ctx->meter->column_values +=
          spec_.ranges.size() + code_preds_.size();
    }
    for (const NumRange& pred : spec_.ranges) {
      const double v = table_->GetDouble(pred.column, r);
      if (v < pred.lo || v > pred.hi) return false;
    }
    for (const CodePred& pred : code_preds_) {
      const uint32_t code = table_->GetStringCode(pred.column, r);
      bool found = false;
      for (const uint32_t c : pred.codes) {
        if (c == code) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  /// Claims this worker's next morsel and clamps it to the snapshot
  /// bound. Returns false (scan done) in serial mode or when the morsel
  /// set is exhausted.
  bool ClaimNextRange() {
    if (spec_.morsels == nullptr) return false;
    size_t begin;
    size_t end;
    while (spec_.morsels->Claim(spec_.worker, &claim_, &begin, &end)) {
      end = std::min(end, bound_);
      if (begin >= end) continue;
      row_ = begin;
      limit_ = end;
      return true;
    }
    return false;
  }

  const ColumnTable* table_;
  size_t bound_;
  ScanSpec spec_;
  std::vector<DataType> types_;
  size_t row_ = 0;
  size_t limit_ = 0;
  MorselSet::ClaimState claim_;
  std::vector<CodePred> code_preds_;
  std::vector<uint32_t> match_;  // surviving row ids of the current run
  bool impossible_ = false;
};

/// Index range scan: walks a B+-tree index over [lo, hi] of the hinted
/// range predicate, fetches visible rows, applies the residual predicates
/// and projects. Used when a query plan hints an index that exists in the
/// physical schema (Figure 6b, "all indexes").
class IndexRangeScanOp final : public Operator {
 public:
  IndexRangeScanOp(const RowTable* table, const IndexInfo* index,
                   Ts snapshot, ScanSpec spec, NumRange bounds)
      : table_(table),
        index_(index),
        snapshot_(snapshot),
        spec_(std::move(spec)),
        bounds_(bounds) {}

  void Open(ExecContext* ctx) override {
    // Materialize candidate rids from the index (bounded range).
    std::string lo;
    std::string hi;
    key::EncodeInt64(static_cast<int64_t>(bounds_.lo), &lo);
    key::EncodeInt64(static_cast<int64_t>(bounds_.hi) + 1, &hi);
    index_->tree->ScanRange(
        lo, hi,
        [&](const std::string&, uint64_t rid) {
          rids_.push_back(rid);
          return true;
        },
        ctx->meter);
    pos_ = 0;
  }

  bool Next(ExecContext* ctx, Row* out) override {
    Row row;
    while (pos_ < rids_.size()) {
      const Rid rid = rids_[pos_++];
      if (!table_->Read(rid, snapshot_, &row, ctx->meter)) continue;
      if (!MatchesPushdowns(row, spec_)) continue;
      out->clear();
      out->reserve(spec_.projection.size());
      for (size_t col : spec_.projection) out->push_back(row[col]);
      if (ctx->meter != nullptr) ++ctx->meter->output_rows;
      return true;
    }
    return false;
  }

 private:
  const RowTable* table_;
  const IndexInfo* index_;
  Ts snapshot_;
  ScanSpec spec_;
  NumRange bounds_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr RowDataSource::Scan(const ScanSpec& spec) const {
  const RowTable* table = catalog_->GetTable(spec.table);
  assert(table != nullptr && "unknown table in scan spec");
  if (!spec.index_hint.empty() && spec.morsels == nullptr) {
    const IndexInfo* index = catalog_->GetIndex(spec.index_hint);
    if (index != nullptr && index->key_columns.size() == 1) {
      for (const NumRange& range : spec.ranges) {
        if (range.column == index->key_columns[0]) {
          return std::make_unique<IndexRangeScanOp>(table, index, snapshot_,
                                                    spec, range);
        }
      }
    }
  }
  return std::make_unique<RowScanOp>(table, snapshot_, spec);
}

size_t RowDataSource::ScanExtent(const std::string& table) const {
  const RowTable* t = catalog_->GetTable(table);
  // NumSlots may keep growing after the plan is built, but rids appended
  // past this point carry begin_ts > snapshot_ and are invisible anyway,
  // so the morsel cover of [0, extent) misses nothing the snapshot sees.
  return t == nullptr ? 0 : t->NumSlots();
}

OperatorPtr ColumnDataSource::Scan(const ScanSpec& spec) const {
  const auto it = tables_.find(spec.table);
  assert(it != tables_.end() && "unknown table in scan spec");
  return std::make_unique<ColumnScanOp>(it->second.table, it->second.bound,
                                        spec);
}

size_t ColumnDataSource::ScanExtent(const std::string& table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.bound;
}

}  // namespace hattrick
