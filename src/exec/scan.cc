#include "exec/scan.h"

#include <algorithm>
#include <cassert>

#include "common/key_encoding.h"
#include "exec/op_profiler.h"

namespace hattrick {

namespace {

/// Applies a spec's pushdown predicates to a full row.
bool MatchesPushdowns(const Row& row, const ScanSpec& spec) {
  for (const NumRange& r : spec.ranges) {
    const double v = row[r.column].AsDouble();
    if (v < r.lo || v > r.hi) return false;
  }
  for (const StrIn& p : spec.str_in) {
    const std::string& v = row[p.column].AsString();
    bool found = false;
    for (const std::string& cand : p.values) {
      if (v == cand) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Scan over an MVCC row table.
///
/// Row mode: the first Next() materializes the projected columns of the
/// visible, predicate-passing rows in one pass over the table, so no
/// full-row copies are made for filtered-out or projected-away cells.
///
/// Batch mode: Open() only positions a slot cursor; NextBatch fills
/// column vectors by covering the slot space with batch-sized ScanRange
/// chunks. RowTable::ScanRange guarantees a disjoint cover meters exactly
/// like one Scan, and output_rows is charged per emitted row either way,
/// so both modes charge identical WorkMeter totals.
class RowScanOp final : public Operator {
 public:
  RowScanOp(const RowTable* table, Ts snapshot, ScanSpec spec)
      : table_(table), snapshot_(snapshot), spec_(std::move(spec)) {
    types_.reserve(spec_.projection.size());
    for (size_t col : spec_.projection) {
      types_.push_back(table_->schema().column(col).type);
    }
  }

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "RowScan", "table=" + spec_.table);
    rows_.clear();
    pos_ = 0;
    materialized_ = false;
    cursor_ = 0;
    limit_ = 0;
    serial_pending_ = spec_.morsels == nullptr;
    claim_ = MorselSet::ClaimState{};
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] { return NextImpl(ctx, out); });
  }

  bool NextImpl(ExecContext* ctx, Row* out) {
    // Row path: materialize on first pull (same scan, same meter totals
    // as materializing in Open — just charged at the first Next).
    if (!materialized_) {
      materialized_ = true;
      const auto visit = [&](Rid, const Row& row) {
        if (!MatchesPushdowns(row, spec_)) return true;
        Row projected;
        projected.reserve(spec_.projection.size());
        for (size_t col : spec_.projection) projected.push_back(row[col]);
        rows_.push_back(std::move(projected));
        return true;
      };
      if (spec_.morsels != nullptr) {
        // Parallel shard: scan only the rid ranges this worker claims.
        MorselSet::ClaimState claim;
        size_t begin;
        size_t end;
        while (spec_.morsels->Claim(spec_.worker, &claim, &begin, &end)) {
          table_->ScanRange(snapshot_, begin, end, visit, ctx->meter);
        }
      } else {
        table_->Scan(snapshot_, visit, ctx->meter);
      }
      if (ctx->meter != nullptr) ctx->meter->output_rows += rows_.size();
    }
    if (pos_ >= rows_.size()) return false;
    *out = std::move(rows_[pos_++]);
    return true;
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] { return NextBatchImpl(ctx, out); });
  }

  bool NextBatchImpl(ExecContext* ctx, Batch* out) {
    out->ResetTypes(types_);
    size_t emitted = 0;
    const auto visit = [&](Rid, const Row& row) {
      if (!MatchesPushdowns(row, spec_)) return true;
      for (size_t j = 0; j < spec_.projection.size(); ++j) {
        out->cols[j].PushValue(row[spec_.projection[j]]);
      }
      ++out->rows;
      ++emitted;
      return true;
    };
    while (out->rows < ctx->batch_rows) {
      if (cursor_ >= limit_) {
        if (!NextSlotRange()) break;
        continue;
      }
      // Never scan more slots than the batch has room for: every slot
      // can yield at most one visible row.
      const size_t end =
          std::min(limit_, cursor_ + (ctx->batch_rows - out->rows));
      table_->ScanRange(snapshot_, cursor_, end, visit, ctx->meter);
      cursor_ = end;
    }
    if (ctx->meter != nullptr) ctx->meter->output_rows += emitted;
    return out->rows > 0;
  }

 private:
  /// Advances the cursor to the next slot range: the whole table in
  /// serial mode (once), or this worker's next claimed morsel.
  bool NextSlotRange() {
    if (spec_.morsels != nullptr) {
      size_t begin;
      size_t end;
      if (!spec_.morsels->Claim(spec_.worker, &claim_, &begin, &end)) {
        return false;
      }
      cursor_ = begin;
      limit_ = end;
      return true;
    }
    if (!serial_pending_) return false;
    serial_pending_ = false;
    cursor_ = 0;
    limit_ = table_->NumSlots();
    return cursor_ < limit_;
  }

  const RowTable* table_;
  Ts snapshot_;
  ScanSpec spec_;
  std::vector<DataType> types_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  bool materialized_ = false;
  // Batch-mode cursor state.
  size_t cursor_ = 0;
  size_t limit_ = 0;
  bool serial_pending_ = false;
  MorselSet::ClaimState claim_;
  OpProfiler prof_;
};

/// Streaming scan over a column table with zone-map block pruning.
///
/// Batch mode processes block-bounded runs of rows: one tight loop per
/// pushdown predicate over the raw column payloads (string predicates on
/// dictionary codes), then a gather of the survivors' projected columns
/// straight into the output vectors. Runs never cross a zone-map block
/// boundary, so pruning decisions — and metered column_values — are
/// identical to the row-at-a-time path at any batch size.
///
/// With a visibility snapshot (bitmap merge mode) the scan has three row
/// classes, all charged like their eager-merge equivalents so metered
/// totals stay invariant across batch size, dop and execution mode:
///  - clean base rows: the vectorized lanes above, with the run's
///    selection pre-intersected against the snapshot's dirty bitmap;
///  - overridden base rows: evaluated per row on the snapshot's version
///    row by value (their strings may be absent from the dictionary);
///  - insert-segment rows ([base_rows, bound)): evaluated per row on the
///    snapshot's insert rows; no zone maps exist there, so no pruning.
/// A zone-map-pruned block with dirty bits still evaluates its dirty
/// rows (the override values may match where the stale base could not);
/// an impossible dictionary predicate prunes only the clean base lanes.
class ColumnScanOp final : public Operator {
 public:
  ColumnScanOp(const ColumnTable* table, size_t bound,
               const ColumnDeltaSnapshot* delta, ScanSpec spec)
      : table_(table),
        bound_(bound),
        delta_(delta),
        base_rows_(delta != nullptr ? delta->base_rows : bound),
        spec_(std::move(spec)) {
    types_.reserve(spec_.projection.size());
    for (size_t col : spec_.projection) {
      types_.push_back(table_->schema().column(col).type);
    }
  }

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "ColumnScan", "table=" + spec_.table);
    OpenImpl();
    prof_.OpenEnd(ctx);
  }

  void OpenImpl() {
    // Serial scans cover [0, bound_); morsel shards start empty and claim
    // ranges lazily in Next. Morsels are block-aligned (kDefaultMorselRows
    // is a multiple of kBlockRows), so zone-map pruning behaves — and
    // meters — identically at any dop.
    row_ = 0;
    limit_ = spec_.morsels != nullptr ? 0 : bound_;
    claim_ = MorselSet::ClaimState{};
    pruned_ = false;
    // Resolve string predicates to dictionary code sets once. The
    // dictionary cannot grow during the session: folds are excluded by
    // the session pin, and unfolded versions never touch it.
    code_preds_.clear();
    impossible_ = false;
    for (const StrIn& p : spec_.str_in) {
      CodePred cp;
      cp.column = p.column;
      for (const std::string& v : p.values) {
        const int64_t code = table_->FindStringCode(p.column, v);
        if (code >= 0) cp.codes.push_back(static_cast<uint32_t>(code));
      }
      if (cp.codes.empty()) {
        impossible_ = true;  // predicate value absent from the dictionary
        return;
      }
      code_preds_.push_back(std::move(cp));
    }
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] { return NextImpl(ctx, out); });
  }

  bool NextImpl(ExecContext* ctx, Row* out) {
    if (impossible_ && delta_ == nullptr) return false;
    obs::PlanProfileNode* node = prof_.node();
    while (true) {
      while (row_ < limit_) {
        // Zone-map pruning at block boundaries (mid-block resume
        // positions keep the block's pruned_ state).
        if (row_ < base_rows_ && row_ % ColumnTable::kBlockRows == 0) {
          SkipPrunedCleanBlocks();
          if (row_ >= limit_) break;
        }
        const size_t r = row_++;
        if (r >= base_rows_) {
          if (node != nullptr) node->rows_insert++;
          if (EvalDeltaRow(delta_->InsertRow(r), ctx, out)) return true;
          continue;
        }
        if (delta_ != nullptr && delta_->DirtyBit(r)) {
          if (node != nullptr) node->rows_override++;
          if (EvalDeltaRow(delta_->OverrideRow(r), ctx, out)) return true;
          continue;
        }
        if (pruned_) continue;  // clean row in a pruned-dirty block
        if (node != nullptr) node->rows_clean++;
        if (!Matches(r, ctx)) continue;
        out->clear();
        out->reserve(spec_.projection.size());
        for (size_t col : spec_.projection) {
          switch (table_->schema().column(col).type) {
            case DataType::kInt64:
              out->emplace_back(table_->GetInt(col, r));
              break;
            case DataType::kDouble:
              out->emplace_back(table_->GetDouble(col, r));
              break;
            case DataType::kString:
              out->emplace_back(table_->GetString(col, r));
              break;
          }
        }
        if (ctx->meter != nullptr) {
          ctx->meter->column_values += spec_.projection.size();
          ++ctx->meter->output_rows;
        }
        return true;
      }
      if (!ClaimNextRange()) return false;
    }
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    return prof_.NextBatch(ctx, out, [&] { return NextBatchImpl(ctx, out); });
  }

  bool NextBatchImpl(ExecContext* ctx, Batch* out) {
    out->ResetTypes(types_);
    if (impossible_ && delta_ == nullptr) return false;
    while (true) {
      while (row_ < limit_) {
        // Same pruning condition as the row path.
        if (row_ < base_rows_ && row_ % ColumnTable::kBlockRows == 0) {
          SkipPrunedCleanBlocks();
          if (row_ >= limit_) break;
        }
        // Run end: block boundary, range limit, remaining batch room, or
        // the base/insert segment boundary (the segments scan
        // differently, so runs never straddle it).
        const size_t block_end =
            (row_ / ColumnTable::kBlockRows + 1) * ColumnTable::kBlockRows;
        size_t end = std::min(
            {limit_, block_end, row_ + (ctx->batch_rows - out->rows)});
        if (row_ < base_rows_) {
          end = std::min(end, base_rows_);
          if (pruned_) {
            ScanDirtyOnlyRun(row_, end, ctx, out);
          } else {
            ScanRun(row_, end, ctx, out);
          }
        } else {
          ScanInsertRun(row_, end, ctx, out);
        }
        row_ = end;
        if (out->rows >= ctx->batch_rows) return true;
      }
      if (!ClaimNextRange()) return out->rows > 0;
    }
  }

 private:
  struct CodePred {
    size_t column;
    std::vector<uint32_t> codes;
  };

  /// A survivor of a dirty run's predicates, in ascending rid order:
  /// `row` is null for clean base rids (gather from the raw payloads)
  /// and points at the snapshot's version row otherwise.
  struct EmitRef {
    uint32_t rid;
    const Row* row;
  };

  /// Predicate count charged for rows evaluated by value (version rows).
  /// Equals ranges + code_preds when the dictionary resolution succeeded,
  /// and stays well defined when it did not (impossible_): version rows
  /// compare strings directly, so an absent dictionary entry prunes only
  /// the base lanes.
  size_t NumPredsByValue() const {
    return spec_.ranges.size() + spec_.str_in.size();
  }

  /// Advances row_ past consecutive base blocks that are zone-map-pruned
  /// (or dictionary-impossible) AND have no dirty bits; stops at the
  /// first block that must be visited and records whether it is pruned
  /// (pruned_ == true means only its dirty rows are evaluated). Never
  /// advances past base_rows_: the insert segment has no zone maps and
  /// is always scanned.
  void SkipPrunedCleanBlocks() {
    // Each base block is entered at most once per scan (morsel claims
    // are block-aligned, resumes mid-block skip this call), so counting
    // here attributes every block to exactly one outcome — identically
    // in row and batch mode, at any dop.
    obs::PlanProfileNode* node = prof_.node();
    while (row_ < limit_ && row_ < base_rows_) {
      const size_t block = row_ / ColumnTable::kBlockRows;
      const size_t block_end = (block + 1) * ColumnTable::kBlockRows;
      const size_t base_end = std::min({limit_, block_end, base_rows_});
      const bool block_pruned = impossible_ || BlockPruned(block);
      if (block_pruned &&
          (delta_ == nullptr || !delta_->AnyDirtyInRange(row_, base_end))) {
        if (node != nullptr) node->blocks_pruned++;
        row_ = base_end;
        continue;
      }
      pruned_ = block_pruned;
      if (node != nullptr) {
        // A pruned block with dirty bits still skips its clean lanes.
        if (block_pruned) {
          node->blocks_pruned++;
        } else {
          node->blocks_scanned++;
        }
      }
      return;
    }
  }

  /// Evaluates the pushdown predicates over rows [begin, end) and gathers
  /// the survivors' projected columns into *out. Metering matches the row
  /// path: every evaluated row charges one column_values per predicate,
  /// every emitted row charges the projection width plus one output row.
  /// Rows with a set dirty bit are excluded from the vectorized lanes and
  /// evaluated on their override rows instead, then merged back in rid
  /// order; the per-run charge is identical either way.
  void ScanRun(size_t begin, size_t end, ExecContext* ctx, Batch* out) {
    if (delta_ != nullptr && delta_->AnyDirtyInRange(begin, end)) {
      ScanMixedRun(begin, end, ctx, out);
      return;
    }
    if (prof_.enabled()) prof_.node()->rows_clean += end - begin;
    match_.clear();
    for (size_t r = begin; r < end; ++r) {
      match_.push_back(static_cast<uint32_t>(r));
    }
    for (const NumRange& pred : spec_.ranges) {
      size_t kept = 0;
      if (table_->schema().column(pred.column).type == DataType::kInt64) {
        const int64_t* data = table_->IntData(pred.column);
        for (const uint32_t r : match_) {
          const double v = static_cast<double>(data[r]);
          if (v >= pred.lo && v <= pred.hi) match_[kept++] = r;
        }
      } else {
        const double* data = table_->DoubleData(pred.column);
        for (const uint32_t r : match_) {
          if (data[r] >= pred.lo && data[r] <= pred.hi) match_[kept++] = r;
        }
      }
      match_.resize(kept);
    }
    for (const CodePred& pred : code_preds_) {
      const uint32_t* codes = table_->CodeData(pred.column);
      size_t kept = 0;
      for (const uint32_t r : match_) {
        const uint32_t code = codes[r];
        bool found = false;
        for (const uint32_t c : pred.codes) {
          if (c == code) {
            found = true;
            break;
          }
        }
        if (found) match_[kept++] = r;
      }
      match_.resize(kept);
    }
    for (size_t j = 0; j < spec_.projection.size(); ++j) {
      const size_t col = spec_.projection[j];
      ColumnVector& dst = out->cols[j];
      switch (types_[j]) {
        case DataType::kInt64: {
          const int64_t* data = table_->IntData(col);
          for (const uint32_t r : match_) dst.ints.push_back(data[r]);
          break;
        }
        case DataType::kDouble: {
          const double* data = table_->DoubleData(col);
          for (const uint32_t r : match_) dst.doubles.push_back(data[r]);
          break;
        }
        case DataType::kString: {
          const uint32_t* codes = table_->CodeData(col);
          for (const uint32_t r : match_) {
            dst.strings.push_back(table_->DictEntry(col, codes[r]));
          }
          break;
        }
      }
    }
    out->rows += match_.size();
    if (ctx->meter != nullptr) {
      ctx->meter->column_values +=
          (end - begin) * (spec_.ranges.size() + code_preds_.size()) +
          match_.size() * spec_.projection.size();
      ctx->meter->output_rows += match_.size();
    }
  }

  /// ScanRun for a base run containing dirty rids: clean rids go through
  /// the vectorized lanes, dirty rids evaluate on their override rows,
  /// and the survivors merge back in ascending rid order so emission
  /// order matches the fully-folded scan exactly.
  void ScanMixedRun(size_t begin, size_t end, ExecContext* ctx,
                    Batch* out) {
    match_.clear();
    dirty_rows_.clear();
    for (size_t r = begin; r < end; ++r) {
      if (delta_->DirtyBit(r)) {
        dirty_rows_.push_back(static_cast<uint32_t>(r));
      } else {
        match_.push_back(static_cast<uint32_t>(r));
      }
    }
    if (prof_.enabled()) {
      prof_.node()->rows_clean += match_.size();
      prof_.node()->rows_override += dirty_rows_.size();
    }
    for (const NumRange& pred : spec_.ranges) {
      size_t kept = 0;
      if (table_->schema().column(pred.column).type == DataType::kInt64) {
        const int64_t* data = table_->IntData(pred.column);
        for (const uint32_t r : match_) {
          const double v = static_cast<double>(data[r]);
          if (v >= pred.lo && v <= pred.hi) match_[kept++] = r;
        }
      } else {
        const double* data = table_->DoubleData(pred.column);
        for (const uint32_t r : match_) {
          if (data[r] >= pred.lo && data[r] <= pred.hi) match_[kept++] = r;
        }
      }
      match_.resize(kept);
    }
    for (const CodePred& pred : code_preds_) {
      const uint32_t* codes = table_->CodeData(pred.column);
      size_t kept = 0;
      for (const uint32_t r : match_) {
        const uint32_t code = codes[r];
        bool found = false;
        for (const uint32_t c : pred.codes) {
          if (c == code) {
            found = true;
            break;
          }
        }
        if (found) match_[kept++] = r;
      }
      match_.resize(kept);
    }
    emits_.clear();
    size_t ci = 0;  // clean survivors cursor
    for (const uint32_t r : dirty_rows_) {
      while (ci < match_.size() && match_[ci] < r) {
        emits_.push_back(EmitRef{match_[ci++], nullptr});
      }
      const Row& row = delta_->OverrideRow(r);
      if (MatchesPushdowns(row, spec_)) emits_.push_back(EmitRef{r, &row});
    }
    while (ci < match_.size()) {
      emits_.push_back(EmitRef{match_[ci++], nullptr});
    }
    for (size_t j = 0; j < spec_.projection.size(); ++j) {
      const size_t col = spec_.projection[j];
      ColumnVector& dst = out->cols[j];
      switch (types_[j]) {
        case DataType::kInt64: {
          const int64_t* data = table_->IntData(col);
          for (const EmitRef& e : emits_) {
            dst.ints.push_back(e.row == nullptr ? data[e.rid]
                                                : (*e.row)[col].AsInt());
          }
          break;
        }
        case DataType::kDouble: {
          const double* data = table_->DoubleData(col);
          for (const EmitRef& e : emits_) {
            dst.doubles.push_back(e.row == nullptr
                                      ? data[e.rid]
                                      : (*e.row)[col].AsDouble());
          }
          break;
        }
        case DataType::kString: {
          const uint32_t* codes = table_->CodeData(col);
          for (const EmitRef& e : emits_) {
            if (e.row == nullptr) {
              dst.strings.push_back(table_->DictEntry(col, codes[e.rid]));
            } else {
              dst.strings.push_back((*e.row)[col].AsString());
            }
          }
          break;
        }
      }
    }
    out->rows += emits_.size();
    if (ctx->meter != nullptr) {
      // Every row in the run — clean or dirty — charges one predicate
      // pass; NumPredsByValue() == ranges + code_preds here (the mixed
      // path is never reached when impossible_ holds).
      ctx->meter->column_values +=
          (end - begin) * NumPredsByValue() +
          emits_.size() * spec_.projection.size();
      ctx->meter->output_rows += emits_.size();
    }
  }

  /// Run over a zone-map-pruned (or dictionary-impossible) base block:
  /// only the dirty rids can match, so only they are evaluated — and
  /// only they charge predicate work, exactly like the row path.
  void ScanDirtyOnlyRun(size_t begin, size_t end, ExecContext* ctx,
                        Batch* out) {
    if (delta_ == nullptr) return;
    for (size_t r = begin; r < end; ++r) {
      if (!delta_->DirtyBit(r)) continue;
      if (prof_.enabled()) prof_.node()->rows_override++;
      if (ctx->meter != nullptr) {
        ctx->meter->column_values += NumPredsByValue();
      }
      const Row& row = delta_->OverrideRow(r);
      if (MatchesPushdowns(row, spec_)) EmitRowToBatch(row, ctx, out);
    }
  }

  /// Run over the insert segment [base_rows_, bound_): per-row value
  /// evaluation of the snapshot's insert rows (no zone maps there).
  void ScanInsertRun(size_t begin, size_t end, ExecContext* ctx,
                     Batch* out) {
    if (prof_.enabled()) prof_.node()->rows_insert += end - begin;
    for (size_t r = begin; r < end; ++r) {
      if (ctx->meter != nullptr) {
        ctx->meter->column_values += NumPredsByValue();
      }
      const Row& row = delta_->InsertRow(r);
      if (MatchesPushdowns(row, spec_)) EmitRowToBatch(row, ctx, out);
    }
  }

  /// Projects a matching version row into the batch vectors.
  void EmitRowToBatch(const Row& row, ExecContext* ctx, Batch* out) {
    for (size_t j = 0; j < spec_.projection.size(); ++j) {
      const size_t col = spec_.projection[j];
      ColumnVector& dst = out->cols[j];
      switch (types_[j]) {
        case DataType::kInt64:
          dst.ints.push_back(row[col].AsInt());
          break;
        case DataType::kDouble:
          dst.doubles.push_back(row[col].AsDouble());
          break;
        case DataType::kString:
          dst.strings.push_back(row[col].AsString());
          break;
      }
    }
    ++out->rows;
    if (ctx->meter != nullptr) {
      ctx->meter->column_values += spec_.projection.size();
      ++ctx->meter->output_rows;
    }
  }

  /// Row-path evaluation of a version row (override or insert): charges
  /// one predicate pass, and on a match projects into *out and charges
  /// like the base emit path. Returns true when a row was produced.
  bool EvalDeltaRow(const Row& row, ExecContext* ctx, Row* out) {
    if (ctx->meter != nullptr) {
      ctx->meter->column_values += NumPredsByValue();
    }
    if (!MatchesPushdowns(row, spec_)) return false;
    out->clear();
    out->reserve(spec_.projection.size());
    for (size_t col : spec_.projection) out->push_back(row[col]);
    if (ctx->meter != nullptr) {
      ctx->meter->column_values += spec_.projection.size();
      ++ctx->meter->output_rows;
    }
    return true;
  }

  bool BlockPruned(size_t block) const {
    for (const NumRange& pred : spec_.ranges) {
      double mn;
      double mx;
      if (!table_->BlockMinMax(pred.column, block, &mn, &mx)) continue;
      if (mx < pred.lo || mn > pred.hi) return true;
    }
    return false;
  }

  bool Matches(size_t r, ExecContext* ctx) const {
    if (ctx->meter != nullptr) {
      ctx->meter->column_values +=
          spec_.ranges.size() + code_preds_.size();
    }
    for (const NumRange& pred : spec_.ranges) {
      const double v = table_->GetDouble(pred.column, r);
      if (v < pred.lo || v > pred.hi) return false;
    }
    for (const CodePred& pred : code_preds_) {
      const uint32_t code = table_->GetStringCode(pred.column, r);
      bool found = false;
      for (const uint32_t c : pred.codes) {
        if (c == code) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  /// Claims this worker's next morsel and clamps it to the snapshot
  /// bound. Returns false (scan done) in serial mode or when the morsel
  /// set is exhausted.
  bool ClaimNextRange() {
    if (spec_.morsels == nullptr) return false;
    size_t begin;
    size_t end;
    while (spec_.morsels->Claim(spec_.worker, &claim_, &begin, &end)) {
      end = std::min(end, bound_);
      if (begin >= end) continue;
      row_ = begin;
      limit_ = end;
      return true;
    }
    return false;
  }

  const ColumnTable* table_;
  size_t bound_;
  /// Visibility snapshot for bitmap merge mode; null in eager mode (and
  /// when the snapshot is empty), which degrades every path to the plain
  /// merged-base scan.
  const ColumnDeltaSnapshot* delta_;
  /// First insert-segment rid: delta_->base_rows, or bound_ without one.
  size_t base_rows_;
  ScanSpec spec_;
  std::vector<DataType> types_;
  size_t row_ = 0;
  size_t limit_ = 0;
  MorselSet::ClaimState claim_;
  std::vector<CodePred> code_preds_;
  std::vector<uint32_t> match_;  // surviving row ids of the current run
  std::vector<uint32_t> dirty_rows_;  // dirty rids of the current run
  std::vector<EmitRef> emits_;        // rid-ordered survivors (mixed run)
  bool impossible_ = false;
  /// True while scanning a zone-map-pruned block that has dirty bits:
  /// clean rows are skipped, dirty rows still evaluate.
  bool pruned_ = false;
  OpProfiler prof_;
};

/// Index range scan: walks a B+-tree index over [lo, hi] of the hinted
/// range predicate, fetches visible rows, applies the residual predicates
/// and projects. Used when a query plan hints an index that exists in the
/// physical schema (Figure 6b, "all indexes").
class IndexRangeScanOp final : public Operator {
 public:
  IndexRangeScanOp(const RowTable* table, const IndexInfo* index,
                   Ts snapshot, ScanSpec spec, NumRange bounds)
      : table_(table),
        index_(index),
        snapshot_(snapshot),
        spec_(std::move(spec)),
        bounds_(bounds) {}

  void Open(ExecContext* ctx) override {
    prof_.OpenBegin(ctx, "IndexScan",
                    "table=" + spec_.table + " index=" + spec_.index_hint);
    // Materialize candidate rids from the index (bounded range).
    std::string lo;
    std::string hi;
    key::EncodeInt64(static_cast<int64_t>(bounds_.lo), &lo);
    key::EncodeInt64(static_cast<int64_t>(bounds_.hi) + 1, &hi);
    index_->tree->ScanRange(
        lo, hi,
        [&](const std::string&, uint64_t rid) {
          rids_.push_back(rid);
          return true;
        },
        ctx->meter);
    pos_ = 0;
    prof_.OpenEnd(ctx);
  }

  bool Next(ExecContext* ctx, Row* out) override {
    return prof_.Next(ctx, [&] {
      Row row;
      while (pos_ < rids_.size()) {
        const Rid rid = rids_[pos_++];
        if (!table_->Read(rid, snapshot_, &row, ctx->meter)) continue;
        if (!MatchesPushdowns(row, spec_)) continue;
        out->clear();
        out->reserve(spec_.projection.size());
        for (size_t col : spec_.projection) out->push_back(row[col]);
        if (ctx->meter != nullptr) ++ctx->meter->output_rows;
        return true;
      }
      return false;
    });
  }

 private:
  const RowTable* table_;
  const IndexInfo* index_;
  Ts snapshot_;
  ScanSpec spec_;
  NumRange bounds_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
  OpProfiler prof_;
};

}  // namespace

OperatorPtr RowDataSource::Scan(const ScanSpec& spec) const {
  const RowTable* table = catalog_->GetTable(spec.table);
  assert(table != nullptr && "unknown table in scan spec");
  if (!spec.index_hint.empty() && spec.morsels == nullptr) {
    const IndexInfo* index = catalog_->GetIndex(spec.index_hint);
    if (index != nullptr && index->key_columns.size() == 1) {
      for (const NumRange& range : spec.ranges) {
        if (range.column == index->key_columns[0]) {
          return std::make_unique<IndexRangeScanOp>(table, index, snapshot_,
                                                    spec, range);
        }
      }
    }
  }
  return std::make_unique<RowScanOp>(table, snapshot_, spec);
}

size_t RowDataSource::ScanExtent(const std::string& table) const {
  const RowTable* t = catalog_->GetTable(table);
  // NumSlots may keep growing after the plan is built, but rids appended
  // past this point carry begin_ts > snapshot_ and are invisible anyway,
  // so the morsel cover of [0, extent) misses nothing the snapshot sees.
  return t == nullptr ? 0 : t->NumSlots();
}

OperatorPtr ColumnDataSource::Scan(const ScanSpec& spec) const {
  const auto it = tables_.find(spec.table);
  assert(it != tables_.end() && "unknown table in scan spec");
  return std::make_unique<ColumnScanOp>(it->second.table, it->second.bound,
                                        it->second.delta.get(), spec);
}

size_t ColumnDataSource::ScanExtent(const std::string& table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.bound;
}

}  // namespace hattrick
