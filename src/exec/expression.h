#ifndef HATTRICK_EXEC_EXPRESSION_H_
#define HATTRICK_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace hattrick {

/// A scalar expression evaluated against a row. Expression trees are
/// built by the hand-written HATtrick query plans (queries are defined
/// programmatically; there is no SQL parser in this reproduction).
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value Eval(const Row& row) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<Expr>;

/// References column `index` of the input row.
ExprPtr Col(size_t index);

/// A literal constant.
ExprPtr Lit(Value v);

/// Arithmetic: numeric operands, numeric result (int if both ints).
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);

/// Comparisons: int 1/0 result.
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);

/// Logical connectives over int operands.
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);

/// value BETWEEN lo AND hi (inclusive).
ExprPtr Between(ExprPtr e, Value lo, Value hi);

/// value IN (list).
ExprPtr InList(ExprPtr e, std::vector<Value> candidates);

/// Evaluates an expression as a boolean predicate.
inline bool EvalBool(const Expr& e, const Row& row) {
  return e.Eval(row).AsInt() != 0;
}

}  // namespace hattrick

#endif  // HATTRICK_EXEC_EXPRESSION_H_
