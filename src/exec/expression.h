#ifndef HATTRICK_EXEC_EXPRESSION_H_
#define HATTRICK_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "exec/batch.h"

namespace hattrick {

/// A scalar expression evaluated against a row. Expression trees are
/// built by the hand-written HATtrick query plans (queries are defined
/// programmatically; there is no SQL parser in this reproduction).
///
/// Two evaluation forms:
///  - Eval: one row at a time. The original interpreter; retained as the
///    fallback for nodes without a kernel and as the oracle the
///    differential tests check the vectorized path against.
///  - EvalBatch: all physical rows of a Batch at once into a typed
///    ColumnVector. The built-in nodes override it with loop kernels
///    over the typed payloads (no per-cell variant dispatch, no virtual
///    call per row); the base implementation materializes each row and
///    defers to Eval, so any Expr is batch-callable.
///
/// EvalBatch evaluates every *physical* row, ignoring the batch's
/// selection: expressions are pure, so values computed at unselected
/// rows are simply never read. Column types are uniform within a vector,
/// which is what lets one typed kernel stand in for the per-row dynamic
/// dispatch bit-for-bit.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value Eval(const Row& row) const = 0;
  virtual void EvalBatch(const Batch& batch, ColumnVector* out) const;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<Expr>;

/// References column `index` of the input row.
ExprPtr Col(size_t index);

/// A literal constant.
ExprPtr Lit(Value v);

/// Arithmetic: numeric operands, numeric result (int if both ints).
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);

/// Comparisons: int 1/0 result.
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);

/// Logical connectives over int operands.
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);

/// value BETWEEN lo AND hi (inclusive).
ExprPtr Between(ExprPtr e, Value lo, Value hi);

/// value IN (list).
ExprPtr InList(ExprPtr e, std::vector<Value> candidates);

/// Evaluates an expression as a boolean predicate.
inline bool EvalBool(const Expr& e, const Row& row) {
  return e.Eval(row).AsInt() != 0;
}

}  // namespace hattrick

#endif  // HATTRICK_EXEC_EXPRESSION_H_
