#ifndef HATTRICK_EXEC_SCAN_H_
#define HATTRICK_EXEC_SCAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/operator.h"
#include "storage/catalog.h"
#include "storage/column_table.h"
#include "storage/row_table.h"

namespace hattrick {

/// Scans MVCC row tables at a fixed snapshot. Used by the shared engine
/// (analytics on the primary copy) and by the isolated engine (analytics
/// on the standby's row-store replica).
class RowDataSource final : public DataSource {
 public:
  RowDataSource(const Catalog* catalog, Ts snapshot)
      : catalog_(catalog), snapshot_(snapshot) {}

  OperatorPtr Scan(const ScanSpec& spec) const override;
  size_t ScanExtent(const std::string& table) const override;

 private:
  const Catalog* catalog_;
  Ts snapshot_;
};

/// Scans column tables up to fixed per-table row bounds. Used by the
/// hybrid engines: the bound is the number of rows visible at query
/// start, giving the query a consistent columnar snapshot. Numeric
/// pushdown predicates prune zone-map blocks; string predicates evaluate
/// on dictionary codes.
///
/// In bitmap merge mode each table additionally carries a
/// ColumnDeltaSnapshot: the scan then covers the columnar base rows
/// whose visibility bit is clean through the vectorized lanes, evaluates
/// overridden and inserted rows from the snapshot's version rows, and
/// the bound extends over the insert segment ([base_rows, bound)). A
/// null snapshot degrades to exactly the merged-base scan.
class ColumnDataSource final : public DataSource {
 public:
  /// One scannable columnar table, the row bound visible to queries, and
  /// the (optional) visibility snapshot of its unfolded versions.
  struct BoundTable {
    const ColumnTable* table;
    size_t bound;
    std::shared_ptr<const ColumnDeltaSnapshot> delta;
  };

  OperatorPtr Scan(const ScanSpec& spec) const override;
  size_t ScanExtent(const std::string& table) const override;

  void AddTable(const std::string& name, const ColumnTable* table,
                size_t bound,
                std::shared_ptr<const ColumnDeltaSnapshot> delta = nullptr) {
    tables_.emplace(name, BoundTable{table, bound, std::move(delta)});
  }

 private:
  std::unordered_map<std::string, BoundTable> tables_;
};

}  // namespace hattrick

#endif  // HATTRICK_EXEC_SCAN_H_
