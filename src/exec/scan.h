#ifndef HATTRICK_EXEC_SCAN_H_
#define HATTRICK_EXEC_SCAN_H_

#include <string>
#include <unordered_map>

#include "exec/operator.h"
#include "storage/catalog.h"
#include "storage/column_table.h"
#include "storage/row_table.h"

namespace hattrick {

/// Scans MVCC row tables at a fixed snapshot. Used by the shared engine
/// (analytics on the primary copy) and by the isolated engine (analytics
/// on the standby's row-store replica).
class RowDataSource final : public DataSource {
 public:
  RowDataSource(const Catalog* catalog, Ts snapshot)
      : catalog_(catalog), snapshot_(snapshot) {}

  OperatorPtr Scan(const ScanSpec& spec) const override;
  size_t ScanExtent(const std::string& table) const override;

 private:
  const Catalog* catalog_;
  Ts snapshot_;
};

/// Scans column tables up to fixed per-table row bounds. Used by the
/// hybrid engines: the bound is the number of rows merged at query start,
/// giving the query a consistent columnar snapshot. Numeric pushdown
/// predicates prune zone-map blocks; string predicates evaluate on
/// dictionary codes.
class ColumnDataSource final : public DataSource {
 public:
  /// One scannable columnar table and the row bound visible to queries.
  struct BoundTable {
    const ColumnTable* table;
    size_t bound;
  };

  OperatorPtr Scan(const ScanSpec& spec) const override;
  size_t ScanExtent(const std::string& table) const override;

  void AddTable(const std::string& name, const ColumnTable* table,
                size_t bound) {
    tables_.emplace(name, BoundTable{table, bound});
  }

 private:
  std::unordered_map<std::string, BoundTable> tables_;
};

}  // namespace hattrick

#endif  // HATTRICK_EXEC_SCAN_H_
