#ifndef HATTRICK_EXEC_BATCH_H_
#define HATTRICK_EXEC_BATCH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace hattrick {

/// Rows per column-vector batch in vectorized execution. Matches the
/// column store's zone-map block size so a full batch never straddles a
/// pruning boundary. Overridable per query via ExecContext::batch_rows.
inline constexpr size_t kDefaultBatchRows = 1024;

/// Process-wide default for ExecContext::batch_rows: kDefaultBatchRows
/// unless the HATTRICK_BATCH_ROWS environment variable overrides it
/// (clamped to >= 1). The env override exists so the whole test suite can
/// run with degenerate batches (CI's --batch-size=1 leg) without touching
/// every ExecContext construction site.
size_t DefaultBatchRows();

/// A typed column of values — one column of a Batch. Exactly one of the
/// payload vectors is populated, per `type`. Vectors are flat typed
/// storage, so expression kernels run tight loops over them instead of
/// paying a std::variant dispatch per cell (common/value.h).
class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(DataType t) : type_(t) {}

  DataType type() const { return type_; }

  size_t size() const {
    switch (type_) {
      case DataType::kInt64:
        return ints.size();
      case DataType::kDouble:
        return doubles.size();
      case DataType::kString:
        return strings.size();
    }
    return 0;
  }

  /// Drops all values and retypes the vector.
  void Reset(DataType t) {
    type_ = t;
    ints.clear();
    doubles.clear();
    strings.clear();
  }

  /// Appends a dynamically typed value; must match the vector's type.
  void PushValue(const Value& v) {
    assert(v.type() == type_ && "type-skewed column vector");
    switch (type_) {
      case DataType::kInt64:
        ints.push_back(v.AsInt());
        break;
      case DataType::kDouble:
        doubles.push_back(v.AsDouble());
        break;
      case DataType::kString:
        strings.push_back(v.AsString());
        break;
    }
  }

  /// Materializes cell `i` as a dynamically typed value.
  Value GetValue(size_t i) const {
    switch (type_) {
      case DataType::kInt64:
        return Value(ints[i]);
      case DataType::kDouble:
        return Value(doubles[i]);
      case DataType::kString:
        return Value(strings[i]);
    }
    return Value();
  }

  bool is_numeric() const { return type_ != DataType::kString; }

  /// Numeric cell with int -> double promotion (Value::AsDouble).
  double NumericAt(size_t i) const {
    return type_ == DataType::kInt64 ? static_cast<double>(ints[i])
                                     : doubles[i];
  }

  /// Typed payloads. Public by design: kernels and scans read/fill them
  /// directly (this is the batch analogue of Row's public cells).
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;

 private:
  DataType type_ = DataType::kInt64;
};

/// Selection vector: indices of the rows of a batch that are logically
/// present, in ascending order. A filter refines the selection instead of
/// compacting the column payloads, so a chain of predicates touches the
/// data once.
struct SelVector {
  std::vector<uint32_t> idx;
};

/// A column-vector batch: `rows` physical rows across `cols` typed
/// vectors, plus an optional selection. When `filtered` is false all
/// physical rows are active and `sel` is ignored; when true only the rows
/// listed in `sel.idx` are active. Operators that rebuild payloads
/// (scans, joins, projections of compacted inputs) emit unfiltered
/// batches; FilterOp emits filtered ones.
struct Batch {
  size_t rows = 0;
  std::vector<ColumnVector> cols;
  SelVector sel;
  bool filtered = false;

  size_t num_cols() const { return cols.size(); }

  /// Number of active (selected) rows.
  size_t ActiveRows() const { return filtered ? sel.idx.size() : rows; }

  /// Physical index of the k-th active row.
  size_t ActiveIndex(size_t k) const {
    return filtered ? sel.idx[k] : k;
  }

  /// Drops all rows, keeping column types.
  void Clear() {
    rows = 0;
    filtered = false;
    sel.idx.clear();
    for (ColumnVector& c : cols) c.Reset(c.type());
  }

  /// Retypes to `types` and drops all rows.
  void ResetTypes(const std::vector<DataType>& types) {
    cols.resize(types.size());
    for (size_t i = 0; i < types.size(); ++i) cols[i].Reset(types[i]);
    rows = 0;
    filtered = false;
    sel.idx.clear();
  }

  /// True when `row`'s cell types match this batch's column types.
  /// Always true for an empty batch (AppendRow re-infers types then).
  /// Row→batch adapters use this to cut a batch early at a type skew —
  /// heterogeneously typed inputs (values scans in tests) stay correct,
  /// just in shorter batches.
  bool TypesMatch(const Row& row) const {
    if (rows == 0) return true;
    if (cols.size() != row.size()) return false;
    for (size_t i = 0; i < row.size(); ++i) {
      if (cols[i].type() != row[i].type()) return false;
    }
    return true;
  }

  /// Appends one row of dynamically typed cells; on the first row of an
  /// untyped batch the column types are inferred from the cells.
  void AppendRow(const Row& row) {
    if (cols.size() != row.size() || rows == 0) {
      if (rows == 0) {
        cols.resize(row.size());
        for (size_t i = 0; i < row.size(); ++i) cols[i].Reset(row[i].type());
      }
    }
    assert(cols.size() == row.size());
    for (size_t i = 0; i < row.size(); ++i) cols[i].PushValue(row[i]);
    ++rows;
  }

  /// Materializes physical row `i` (all columns).
  void MaterializeRow(size_t i, Row* out) const {
    out->clear();
    out->reserve(cols.size());
    for (const ColumnVector& c : cols) out->push_back(c.GetValue(i));
  }

  /// Appends every active row to `out` as materialized Rows.
  void AppendActiveRows(std::vector<Row>* out) const {
    const size_t n = ActiveRows();
    Row row;
    for (size_t k = 0; k < n; ++k) {
      MaterializeRow(ActiveIndex(k), &row);
      out->push_back(row);
    }
  }
};

}  // namespace hattrick

#endif  // HATTRICK_EXEC_BATCH_H_
