#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace hattrick {
namespace obs {
namespace {

/// Deterministic fixed-format float: %.9g round-trips every value we
/// emit (latencies, rates, lsns) and never depends on locale.
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

const char* KindName(MetricEntry::Kind kind) {
  switch (kind) {
    case MetricEntry::Kind::kCounter: return "counter";
    case MetricEntry::Kind::kGauge: return "gauge";
    case MetricEntry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

/// RFC-4180 CSV field: quoted (with internal quotes doubled) only when
/// the value contains a comma, quote, or newline, so existing exports of
/// plain names are byte-identical.
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// splitmix64: tiny, seedable, identical everywhere — reservoir
/// eviction must not depend on the platform's std::mt19937 stream.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

size_t Counter::ShardIndex() {
  // Hash of the thread id, computed once per thread. In the simulator
  // everything runs on one thread, so the same shard is hit every time
  // and Value() stays deterministic.
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return index;
}

Histogram::Histogram(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      rng_state_(0x8c17feed5ca1ab1eull) {
  reservoir_.reserve(capacity_);
}

void Histogram::Add(double sample) {
  MutexLock lock(&mutex_);
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(sample);
  } else {
    // Algorithm R: keep each of the `count_` samples with equal chance.
    const uint64_t slot = NextRandom(&rng_state_) % count_;
    if (slot < capacity_) reservoir_[slot] = sample;
  }
}

uint64_t Histogram::count() const {
  MutexLock lock(&mutex_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(&mutex_);
  return sum_;
}

double Histogram::Mean() const {
  MutexLock lock(&mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Min() const {
  MutexLock lock(&mutex_);
  return min_;
}

double Histogram::Max() const {
  MutexLock lock(&mutex_);
  return max_;
}

double Histogram::Percentile(double p) const {
  MutexLock lock(&mutex_);
  if (reservoir_.empty()) return 0.0;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank, matching Sampler::Percentile: smallest index i with
  // (i+1)/n >= p.
  const size_t rank =
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  const size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

const MetricEntry* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CountOf(const std::string& name) const {
  const MetricEntry* entry = Find(name);
  return entry == nullptr ? 0 : entry->count;
}

double MetricsSnapshot::ValueOf(const std::string& name) const {
  const MetricEntry* entry = Find(name);
  return entry == nullptr ? 0.0 : entry->value;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricEntry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + e.name + "\",\"kind\":\"" + KindName(e.kind) +
           "\"";
    switch (e.kind) {
      case MetricEntry::Kind::kCounter:
        out += ",\"count\":" + std::to_string(e.count);
        break;
      case MetricEntry::Kind::kGauge:
        out += ",\"value\":" + FormatDouble(e.value);
        break;
      case MetricEntry::Kind::kHistogram:
        out += ",\"count\":" + std::to_string(e.count) +
               ",\"sum\":" + FormatDouble(e.value) +
               ",\"min\":" + FormatDouble(e.min) +
               ",\"max\":" + FormatDouble(e.max) +
               ",\"mean\":" + FormatDouble(e.mean) +
               ",\"p50\":" + FormatDouble(e.p50) +
               ",\"p99\":" + FormatDouble(e.p99);
        break;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "name,kind,count,value,min,max,mean,p50,p99\n";
  for (const MetricEntry& e : entries) {
    out += CsvField(e.name);
    out += ",";
    out += KindName(e.kind);
    out += "," + std::to_string(e.count);
    out += "," + FormatDouble(e.value);
    out += "," + FormatDouble(e.min);
    out += "," + FormatDouble(e.max);
    out += "," + FormatDouble(e.mean);
    out += "," + FormatDouble(e.p50);
    out += "," + FormatDouble(e.p99);
    out += "\n";
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         size_t capacity) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(capacity);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mutex_);
  // The maps iterate in name order within each kind; merge the three
  // sorted ranges so the flat list is globally name-sorted.
  for (const auto& [name, counter] : counters_) {
    MetricEntry e;
    e.name = name;
    e.kind = MetricEntry::Kind::kCounter;
    e.count = counter->Value();
    snapshot.entries.push_back(std::move(e));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricEntry e;
    e.name = name;
    e.kind = MetricEntry::Kind::kGauge;
    e.value = gauge->Value();
    snapshot.entries.push_back(std::move(e));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricEntry e;
    e.name = name;
    e.kind = MetricEntry::Kind::kHistogram;
    e.count = histogram->count();
    e.value = histogram->sum();
    e.min = histogram->Min();
    e.max = histogram->Max();
    e.mean = histogram->Mean();
    e.p50 = histogram->Percentile(0.50);
    e.p99 = histogram->Percentile(0.99);
    snapshot.entries.push_back(std::move(e));
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const MetricEntry& a, const MetricEntry& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void PreRegisterDomainMetrics(MetricsRegistry* registry) {
  for (const char* name :
       {kTxnCommits, kTxnAbortsWriteConflict, kTxnAbortsReadConflict,
        kTxnWalRecords, kTxnWalBytes, kTxnDeltaInstalls, kReplAppliedRecords,
        kReplCrashRecoveries, kStoreMergePasses, kStoreMergeRows,
        kStoreMergeRecords, kStoreFoldPasses, kStoreFoldRows,
        kStoreBtreeSplits, kStoreVacuumedVersions}) {
    registry->GetCounter(name);
  }
  for (const char* name :
       {kReplShippedBytes, kReplAppliedLsn, kReplBacklogRecords,
        kReplRetainedRecords, kReplResendRequests, kReplResendsShipped,
        kReplResendsLost, kReplDuplicateSkips, kReplThrottleSeconds,
        kFaultInjectedDrops, kFaultInjectedDuplicates, kFaultInjectedReorders,
        kStoreDeltaPending, kStoreVersionDepth, kTxnRetryBackoffSeconds,
        kTraceDroppedSpans}) {
    registry->GetGauge(name);
  }
}

}  // namespace obs
}  // namespace hattrick
