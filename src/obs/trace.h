#ifndef HATTRICK_OBS_TRACE_H_
#define HATTRICK_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hattrick {
namespace obs {

/// One completed span (or instant event when begin == end and it was
/// recorded via Instant()). Times are in clock seconds — virtual seconds
/// under the simulator, wall seconds under the threaded driver; the
/// tracer itself never reads a clock, callers inject one (ScopedSpan) or
/// pass timestamps directly (RecordSpan).
struct Span {
  uint64_t id = 0;
  std::string name;
  std::string cat;      // trace-event category, e.g. "txn" / "query"
  uint32_t tid = 0;     // logical track (client / lane), not an OS thread
  double begin = 0;     // seconds
  double end = 0;       // seconds
  bool instant = false;
  std::string args;     // optional JSON object body, e.g. "\"type\":\"np\""
};

/// Bounded span sink with Chrome trace-event export. Capacity acts as a
/// ring: once full, recording a new span drops the oldest one (dropped()
/// counts them) so long runs cannot grow without bound. Thread-safe;
/// recording takes one mutex, which is acceptable because spans are
/// emitted at transaction/query granularity, never per row.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  /// Records a completed span with explicit timestamps (seconds on the
  /// injected clock). `args` is an optional JSON object body without the
  /// surrounding braces, e.g. "\"type\":\"np\"".
  void RecordSpan(const std::string& name, const std::string& cat,
                  uint32_t tid, double begin_s, double end_s,
                  std::string args = "");

  /// Records a zero-duration instant event.
  void Instant(const std::string& name, const std::string& cat, uint32_t tid,
               double at_s, std::string args = "");

  /// Labels a logical track; exported as thread_name metadata so
  /// Perfetto shows "t-client 3" instead of a bare tid.
  void SetTrackName(uint32_t tid, const std::string& name);

  /// Drops all spans, track names and the dropped count, and resets the
  /// span id counter — required so two same-seed runs through one
  /// Tracer produce byte-identical exports.
  void Clear();

  std::vector<Span> Spans() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with thread_name
  /// "M" metadata first, then "X"/"i" events sorted by (tid, ts,
  /// record order); ts/dur in microseconds, single pid. Loads in
  /// Perfetto and chrome://tracing.
  std::string ToChromeJson() const;

  /// Flat CSV: name,cat,tid,begin_us,end_us,dur_us (header first).
  std::string ToCsv() const;

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  std::deque<Span> spans_ GUARDED_BY(mutex_);
  std::vector<std::pair<uint32_t, std::string>> track_names_
      GUARDED_BY(mutex_);
  uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  uint64_t dropped_ GUARDED_BY(mutex_) = 0;
};

/// RAII span bound to an injected clock: reads Now() at construction and
/// destruction. Null-safe — with tracer == nullptr the constructor and
/// destructor do nothing, so call sites need no branching.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const Clock* clock, std::string name,
             std::string cat, uint32_t tid)
      : tracer_(tracer), clock_(clock), name_(std::move(name)),
        cat_(std::move(cat)), tid_(tid),
        begin_(tracer != nullptr && clock != nullptr ? clock->Now() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Extra ",\"k\":v"-style fields appended to the span's args.
  void AppendArgs(const std::string& json_fields) { args_ += json_fields; }

  ~ScopedSpan() {
    if (tracer_ == nullptr || clock_ == nullptr) return;
    tracer_->RecordSpan(name_, cat_, tid_, begin_, clock_->Now(),
                        std::move(args_));
  }

 private:
  Tracer* tracer_;
  const Clock* clock_;
  std::string name_, cat_;
  uint32_t tid_;
  double begin_;
  std::string args_;
};

}  // namespace obs
}  // namespace hattrick

#endif  // HATTRICK_OBS_TRACE_H_
