#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace hattrick {
namespace obs {
namespace {

/// Microsecond timestamp formatted with fixed precision. Perfetto wants
/// ts/dur in µs; fractional µs are kept (the simulator's virtual clock
/// is continuous) but pinned to 3 decimals for byte-stable output.
std::string FormatMicros(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::RecordSpan(const std::string& name, const std::string& cat,
                        uint32_t tid, double begin_s, double end_s,
                        std::string args) {
  MutexLock lock(&mutex_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  Span span;
  span.id = next_id_++;
  span.name = name;
  span.cat = cat;
  span.tid = tid;
  span.begin = begin_s;
  span.end = end_s;
  span.args = std::move(args);
  spans_.push_back(std::move(span));
}

void Tracer::Instant(const std::string& name, const std::string& cat,
                     uint32_t tid, double at_s, std::string args) {
  MutexLock lock(&mutex_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  Span span;
  span.id = next_id_++;
  span.name = name;
  span.cat = cat;
  span.tid = tid;
  span.begin = at_s;
  span.end = at_s;
  span.instant = true;
  span.args = std::move(args);
  spans_.push_back(std::move(span));
}

void Tracer::SetTrackName(uint32_t tid, const std::string& name) {
  MutexLock lock(&mutex_);
  for (auto& [existing_tid, existing_name] : track_names_) {
    if (existing_tid == tid) {
      existing_name = name;
      return;
    }
  }
  track_names_.emplace_back(tid, name);
}

void Tracer::Clear() {
  MutexLock lock(&mutex_);
  spans_.clear();
  track_names_.clear();
  next_id_ = 1;
  dropped_ = 0;
}

std::vector<Span> Tracer::Spans() const {
  MutexLock lock(&mutex_);
  return std::vector<Span>(spans_.begin(), spans_.end());
}

size_t Tracer::size() const {
  MutexLock lock(&mutex_);
  return spans_.size();
}

uint64_t Tracer::dropped() const {
  MutexLock lock(&mutex_);
  return dropped_;
}

std::string Tracer::ToChromeJson() const {
  MutexLock lock(&mutex_);

  // Stable event order: track name metadata first (sorted by tid), then
  // spans by (tid, begin, id). The id tiebreak keeps nested spans that
  // share a begin time in recording order.
  std::vector<const Span*> ordered;
  ordered.reserve(spans_.size());
  for (const Span& span : spans_) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const Span* a, const Span* b) {
              if (a->tid != b->tid) return a->tid < b->tid;
              if (a->begin != b->begin) return a->begin < b->begin;
              return a->id < b->id;
            });
  std::vector<std::pair<uint32_t, std::string>> tracks = track_names_;
  std::sort(tracks.begin(), tracks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : tracks) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           EscapeJson(name) + "\"}}";
  }
  for (const Span* span : ordered) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"";
    out += span->instant ? "i" : "X";
    out += "\",\"pid\":1,\"tid\":" + std::to_string(span->tid) +
           ",\"ts\":" + FormatMicros(span->begin);
    if (!span->instant) {
      out += ",\"dur\":" + FormatMicros(span->end - span->begin);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"name\":\"" + EscapeJson(span->name) + "\",\"cat\":\"" +
           EscapeJson(span->cat) + "\"";
    if (!span->args.empty()) {
      out += ",\"args\":{" + span->args + "}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string Tracer::ToCsv() const {
  MutexLock lock(&mutex_);
  std::string out = "name,cat,tid,begin_us,end_us,dur_us\n";
  for (const Span& span : spans_) {
    out += EscapeJson(span.name);
    out += ",";
    out += EscapeJson(span.cat);
    out += "," + std::to_string(span.tid);
    out += "," + FormatMicros(span.begin);
    out += "," + FormatMicros(span.end);
    out += "," + FormatMicros(span.end - span.begin);
    out += "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace hattrick
