#include "obs/plan_profile.h"

#include <algorithm>
#include <cstdio>

namespace hattrick {
namespace obs {
namespace {

/// Deterministic fixed-format float, same convention as the metrics
/// snapshot export (%.9g round-trips and never depends on locale).
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool SameShape(const std::deque<PlanProfileNode>& a,
               const std::deque<PlanProfileNode>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].parent != b[i].parent) return false;
  }
  return true;
}

/// Folds `from`'s counters into `into` (tree links untouched). Seconds
/// add (total across executions/shards); span bounds widen.
void SumInto(PlanProfileNode* into, const PlanProfileNode& from) {
  into->opens += from.opens;
  into->calls += from.calls;
  into->batches += from.batches;
  into->rows_out += from.rows_out;
  into->phys_rows += from.phys_rows;
  into->blocks_scanned += from.blocks_scanned;
  into->blocks_pruned += from.blocks_pruned;
  into->rows_clean += from.rows_clean;
  into->rows_override += from.rows_override;
  into->rows_insert += from.rows_insert;
  into->work_units += from.work_units;
  into->open_seconds += from.open_seconds;
  into->next_seconds += from.next_seconds;
  if (from.has_ts) {
    if (!into->has_ts) {
      into->first_ts = from.first_ts;
      into->last_ts = from.last_ts;
      into->has_ts = true;
    } else {
      into->first_ts = std::min(into->first_ts, from.first_ts);
      into->last_ts = std::max(into->last_ts, from.last_ts);
    }
  }
}

/// FNV-1a over `data`, folded into `hash`.
void FnvMix(const std::string& data, uint64_t* hash) {
  for (const char c : data) {
    *hash ^= static_cast<unsigned char>(c);
    *hash *= 0x100000001b3ull;
  }
}

}  // namespace

PlanProfileNode* PlanProfile::BeginNode(const char* name,
                                        std::string detail) {
  nodes_.emplace_back();
  PlanProfileNode* node = &nodes_.back();
  node->name = name;
  node->detail = std::move(detail);
  const int index = static_cast<int>(nodes_.size()) - 1;
  if (!stack_.empty()) {
    node->parent = stack_.back();
    nodes_[static_cast<size_t>(stack_.back())].children.push_back(index);
  }
  stack_.push_back(index);
  if (executions_ == 0) executions_ = 1;
  return node;
}

void PlanProfile::EndNode() {
  if (!stack_.empty()) stack_.pop_back();
}

void PlanProfile::AbsorbShards(const std::vector<PlanProfile>& shards) {
  if (shards.empty()) return;
  // Workers run copies of the same shard plan, so their profiles are
  // identically shaped and sum element-wise into one subtree. A
  // mismatched shard (defensive: should not happen) grafts separately.
  std::vector<std::deque<PlanProfileNode>> groups;
  for (const PlanProfile& shard : shards) {
    if (shard.empty()) continue;
    bool merged = false;
    for (std::deque<PlanProfileNode>& group : groups) {
      if (SameShape(group, shard.nodes_)) {
        for (size_t i = 0; i < group.size(); ++i) {
          SumInto(&group[i], shard.nodes_[i]);
        }
        merged = true;
        break;
      }
    }
    if (!merged) groups.push_back(shard.nodes_);
  }
  const int graft_parent = stack_.empty() ? -1 : stack_.back();
  for (const std::deque<PlanProfileNode>& group : groups) {
    const int base = static_cast<int>(nodes_.size());
    for (size_t i = 0; i < group.size(); ++i) {
      nodes_.push_back(group[i]);
      PlanProfileNode* copy = &nodes_.back();
      for (int& child : copy->children) child += base;
      if (copy->parent >= 0) {
        copy->parent += base;
      } else {
        copy->parent = graft_parent;
        if (graft_parent >= 0) {
          nodes_[static_cast<size_t>(graft_parent)].children.push_back(
              base + static_cast<int>(i));
        }
      }
    }
  }
}

bool PlanProfile::Accumulate(const PlanProfile& other) {
  if (other.empty()) return true;
  if (nodes_.empty()) {
    nodes_ = other.nodes_;
    if (label_.empty()) label_ = other.label_;
    executions_ = other.executions_;
    return true;
  }
  if (!SameShape(nodes_, other.nodes_)) return false;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    SumInto(&nodes_[i], other.nodes_[i]);
  }
  executions_ += other.executions_;
  return true;
}

void PlanProfile::RenderNode(int index, int depth, std::string* out) const {
  const PlanProfileNode& node = nodes_[static_cast<size_t>(index)];
  if (depth == 0) {
    *out += node.name;
  } else {
    out->append(static_cast<size_t>(depth - 1) * 6, ' ');
    *out += "  ->  " + node.name;
  }
  if (!node.detail.empty()) *out += " (" + node.detail + ")";
  *out += "  rows=" + std::to_string(node.rows_out);
  if (node.batches > 0) {
    *out += " batches=" + std::to_string(node.batches);
  }
  *out += " calls=" + std::to_string(node.calls);
  if (node.phys_rows > node.rows_out) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " density=%.1f%%",
                  node.SelectionDensity() * 100.0);
    *out += buf;
  }
  // Self work: this operator's share of the inclusive meter delta.
  uint64_t child_work = 0;
  for (const int child : node.children) {
    child_work += nodes_[static_cast<size_t>(child)].work_units;
  }
  const uint64_t self_work =
      node.work_units >= child_work ? node.work_units - child_work : 0;
  *out += " work=" + std::to_string(node.work_units) +
          " self=" + std::to_string(self_work);
  char time_buf[48];
  std::snprintf(time_buf, sizeof(time_buf), " time=%.3fms",
                node.TotalSeconds() * 1e3);
  *out += time_buf;
  if (node.blocks_scanned + node.blocks_pruned > 0 ||
      node.rows_clean + node.rows_override + node.rows_insert > 0) {
    *out += "\n";
    out->append(static_cast<size_t>(depth) * 6, ' ');
    *out += "      blocks: scanned=" + std::to_string(node.blocks_scanned) +
            " pruned=" + std::to_string(node.blocks_pruned) +
            "  lanes: clean=" + std::to_string(node.rows_clean) +
            " override=" + std::to_string(node.rows_override) +
            " insert=" + std::to_string(node.rows_insert);
  }
  *out += "\n";
  for (const int child : node.children) {
    RenderNode(child, depth + 1, out);
  }
}

std::string PlanProfile::ToText() const {
  std::string out;
  if (!label_.empty()) {
    out += label_ + " (executions=" + std::to_string(executions_) + ")\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent < 0) RenderNode(static_cast<int>(i), 0, &out);
  }
  return out;
}

std::string PlanProfile::ToJson() const {
  std::string out = "{\"profile_version\":1,\"label\":\"" +
                    EscapeJson(label_) + "\",\"executions\":" +
                    std::to_string(executions_) + ",\"digest\":\"" +
                    Digest() + "\",\"nodes\":[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PlanProfileNode& n = nodes_[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(i) +
           ",\"parent\":" + std::to_string(n.parent) +
           ",\"name\":\"" + EscapeJson(n.name) + "\"" +
           ",\"detail\":\"" + EscapeJson(n.detail) + "\"" +
           ",\"opens\":" + std::to_string(n.opens) +
           ",\"calls\":" + std::to_string(n.calls) +
           ",\"batches\":" + std::to_string(n.batches) +
           ",\"rows_out\":" + std::to_string(n.rows_out) +
           ",\"phys_rows\":" + std::to_string(n.phys_rows) +
           ",\"blocks_scanned\":" + std::to_string(n.blocks_scanned) +
           ",\"blocks_pruned\":" + std::to_string(n.blocks_pruned) +
           ",\"rows_clean\":" + std::to_string(n.rows_clean) +
           ",\"rows_override\":" + std::to_string(n.rows_override) +
           ",\"rows_insert\":" + std::to_string(n.rows_insert) +
           ",\"work_units\":" + std::to_string(n.work_units) +
           ",\"open_s\":" + FormatDouble(n.open_seconds) +
           ",\"next_s\":" + FormatDouble(n.next_seconds) +
           ",\"first_ts\":" + FormatDouble(n.has_ts ? n.first_ts : 0) +
           ",\"last_ts\":" + FormatDouble(n.has_ts ? n.last_ts : 0) + "}";
  }
  out += "]}\n";
  return out;
}

std::string PlanProfile::Digest() const {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  FnvMix(label_, &hash);
  FnvMix("#" + std::to_string(executions_), &hash);
  for (const PlanProfileNode& n : nodes_) {
    // Shape and metered behavior only — no time fields, so the digest
    // matches between virtual-clock and wall-clock executions.
    FnvMix("|" + n.name + "/" + n.detail + "/" + std::to_string(n.parent) +
               "/" + std::to_string(n.opens) + "/" + std::to_string(n.calls) +
               "/" + std::to_string(n.batches) + "/" +
               std::to_string(n.rows_out) + "/" +
               std::to_string(n.phys_rows) + "/" +
               std::to_string(n.blocks_scanned) + "/" +
               std::to_string(n.blocks_pruned) + "/" +
               std::to_string(n.rows_clean) + "/" +
               std::to_string(n.rows_override) + "/" +
               std::to_string(n.rows_insert) + "/" +
               std::to_string(n.work_units),
           &hash);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

void PlanProfile::EmitSpans(Tracer* tracer, uint32_t tid) const {
  if (tracer == nullptr) return;
  // Preorder: a parent's span brackets its children's (the parent opens
  // first and its last call returns after the child's), and its record
  // id is lower, so the Chrome JSON (tid, ts, id) sort nests correctly.
  for (const PlanProfileNode& n : nodes_) {
    if (!n.has_ts) continue;
    tracer->RecordSpan(n.name, "operator", tid, n.first_ts, n.last_ts,
                       "\"rows_out\":" + std::to_string(n.rows_out) +
                           ",\"work_units\":" +
                           std::to_string(n.work_units));
  }
}

}  // namespace obs
}  // namespace hattrick
