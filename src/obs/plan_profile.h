#ifndef HATTRICK_OBS_PLAN_PROFILE_H_
#define HATTRICK_OBS_PLAN_PROFILE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"

namespace hattrick {
namespace obs {

/// Per-operator counters of one profiled plan execution (EXPLAIN
/// ANALYZE). Operators hold a pointer to their node for the lifetime of
/// the query and bump the counters directly — PlanProfile is
/// single-threaded by design; parallel shards profile into private
/// profiles that are grafted in afterwards (AbsorbShards).
struct PlanProfileNode {
  std::string name;    // operator, e.g. "HashJoin"
  std::string detail;  // operator-specific, e.g. "table=LINEORDER"
  int parent = -1;     // index into PlanProfile::node(); -1 for the root
  std::vector<int> children;

  uint64_t opens = 0;      // Open() calls (> 1 only in aggregates)
  uint64_t calls = 0;      // Next() + NextBatch() calls
  uint64_t batches = 0;    // successful NextBatch() returns
  uint64_t rows_out = 0;   // active rows produced
  uint64_t phys_rows = 0;  // physical rows produced (before selection)

  /// Column-scan detail: zone-map pruning at block granularity and the
  /// bitmap-snapshot lanes the scanned rows came through. Zero for
  /// every other operator.
  uint64_t blocks_scanned = 0;  // blocks whose clean lanes were evaluated
  uint64_t blocks_pruned = 0;   // blocks skipped/narrowed by the zone map
  uint64_t rows_clean = 0;      // clean base rows evaluated
  uint64_t rows_override = 0;   // dirty/override rows evaluated
  uint64_t rows_insert = 0;     // insert-segment rows evaluated

  /// Inclusive work-meter units and injected-clock seconds: each covers
  /// this operator's Open + Next/NextBatch calls, children included
  /// (blocking operators drain children inside Open, streaming ones
  /// inside Next — either way the child's share nests in the parent's).
  uint64_t work_units = 0;
  double open_seconds = 0;
  double next_seconds = 0;

  /// Span bounds on the injected clock: first Open begin to the end of
  /// the last call. Used to emit per-operator child spans into a trace.
  double first_ts = 0;
  double last_ts = 0;
  bool has_ts = false;

  /// Active-row density of the produced batches in [0,1]; 1 when no
  /// physical rows were produced.
  double SelectionDensity() const {
    if (phys_rows == 0) return 1.0;
    return static_cast<double>(rows_out) / static_cast<double>(phys_rows);
  }

  double TotalSeconds() const { return open_seconds + next_seconds; }
};

/// The profile of one plan execution: a tree of PlanProfileNodes built
/// as operators Open (BeginNode/EndNode nest like the Open calls do),
/// then filled in as they produce rows. Deterministic by construction —
/// every counter derives from the metered execution and the injected
/// clock, so two same-seed simulated runs export byte-identical JSON.
///
/// Profiling must not perturb execution: nothing here writes the work
/// meter or changes operator control flow; operators only consult their
/// node pointer (null when profiling is off).
class PlanProfile {
 public:
  /// `clock` provides operator timings and span bounds; nullptr pins
  /// every timestamp to zero (counters still accumulate).
  explicit PlanProfile(const Clock* clock = nullptr) : clock_(clock) {}

  const Clock* clock() const { return clock_; }
  double NowOrZero() const { return clock_ != nullptr ? clock_->Now() : 0; }

  /// Registers an operator node under the currently open node (the plan
  /// root when none is open) and opens it; the operator's children
  /// register under it until EndNode. Returned pointer stays valid for
  /// the profile's lifetime.
  PlanProfileNode* BeginNode(const char* name, std::string detail);

  /// Closes the innermost open node.
  void EndNode();

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  const PlanProfileNode& node(size_t i) const { return nodes_[i]; }

  /// Executions folded into this profile: 1 once a tree was recorded,
  /// plus 1 per Accumulate.
  uint64_t executions() const { return executions_; }

  /// Display label (query name); empty by default.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Grafts the element-wise sum of the identically shaped `shards`
  /// under the currently open node (the gather-merge exchange calls this
  /// with its worker-shard profiles before closing its own node).
  /// Shards with mismatched shapes are grafted individually instead.
  void AbsorbShards(const std::vector<PlanProfile>& shards);

  /// Folds another execution of the same plan into this profile: copies
  /// the tree when this profile is empty, otherwise sums counters
  /// node-by-node. Returns false (leaving this profile unchanged) when
  /// the shapes differ.
  bool Accumulate(const PlanProfile& other);

  /// EXPLAIN ANALYZE-style tree rendering.
  std::string ToText() const;

  /// Deterministic JSON export: fixed field order, entries in tree
  /// preorder, doubles in the snapshot export format.
  std::string ToJson() const;

  /// 16-hex-digit FNV-1a digest over the tree shape and row/work
  /// counters. Time fields are excluded, so the digest is stable across
  /// clock choices (virtual vs wall) and only moves when the plan shape
  /// or its metered behavior changes.
  std::string Digest() const;

  /// Emits one span per timed node onto `tracer` (category "operator",
  /// track `tid`). Parent spans contain child spans, so trace viewers
  /// nest them like the EXPLAIN tree.
  void EmitSpans(Tracer* tracer, uint32_t tid) const;

 private:
  void RenderNode(int index, int depth, std::string* out) const;

  const Clock* clock_ = nullptr;
  std::string label_;
  uint64_t executions_ = 0;
  // deque: BeginNode must not invalidate the node pointers operators hold.
  std::deque<PlanProfileNode> nodes_;
  std::vector<int> stack_;
};

}  // namespace obs
}  // namespace hattrick

#endif  // HATTRICK_OBS_PLAN_PROFILE_H_
